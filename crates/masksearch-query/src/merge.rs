//! Merging partial query outputs from a partitioned catalog.
//!
//! A cluster coordinator (or any caller that split a catalog into disjoint
//! partitions) executes a query against each partition independently and
//! merges the partial [`QueryOutput`]s back into the answer the single-node
//! executor would have produced. The merge rules depend on the query shape:
//!
//! * **Filter** and **HAVING-aggregation** queries return one row per
//!   qualifying key, ascending by key, and the qualifying keys of the
//!   partitions are disjoint — the merge is a sorted union
//!   ([`merge_unordered`]).
//! * **Ranked** (top-k) queries return each partition's *local* top-k. The
//!   global top-k is contained in the union of local top-k's when every
//!   partition was asked for the full `k`; with smaller per-partition
//!   budgets the coordinator additionally needs each partition's k-th value
//!   as a bound and must refine ([`merge_ranked`], [`partial_may_improve`],
//!   and [`Session::execute_topk_partial`](crate::Session::execute_topk_partial)).
//!
//! Exactness requires the partition to respect the grouping key: grouped
//! (`GROUP BY image_id`) queries aggregate *within* an image, so all masks
//! of one image must live in the same partition. Partitions produced by
//! hashing the image id (the cluster's `ShardMap`) satisfy this by
//! construction.

use crate::exec::sort_ranked;
use crate::result::{QueryOutput, QueryStats, ResultRow, RowKey};
use crate::spec::Order;

/// A partition's share of a ranked query: its local top-k plus the bound
/// that any mask (or group) it did *not* return cannot beat.
#[derive(Debug, Clone)]
pub struct RankedPartial {
    /// The partition's local top-k rows (with exact values) and stats.
    pub output: QueryOutput,
    /// The partition's k-th value, present exactly when the partition holds
    /// more candidates than it returned. Every unreturned candidate on the
    /// partition ranks no better than this value, and among ties carries a
    /// larger key than every returned tied row — the two facts
    /// [`partial_may_improve`] builds on.
    pub bound: Option<f64>,
}

/// Sums the execution statistics of partial outputs.
pub fn merge_stats<'a>(partials: impl IntoIterator<Item = &'a QueryStats>) -> QueryStats {
    let mut merged = QueryStats::default();
    for s in partials {
        merged.candidates += s.candidates;
        merged.pruned += s.pruned;
        merged.accepted_without_load += s.accepted_without_load;
        merged.verified += s.verified;
        merged.masks_loaded += s.masks_loaded;
        merged.bytes_read += s.bytes_read;
        merged.indexes_built += s.indexes_built;
        merged.tiles_pruned += s.tiles_pruned;
        merged.tiles_hist += s.tiles_hist;
        merged.tiles_scanned += s.tiles_scanned;
        merged.pairs_bound += s.pairs_bound;
        merged.planner_kernel_on += s.planner_kernel_on;
        merged.planner_kernel_off += s.planner_kernel_off;
        merged.planner_bounds_skipped += s.planner_bounds_skipped;
        merged.planner_reorders += s.planner_reorders;
        merged.resolve_wall += s.resolve_wall;
        merged.filter_wall += s.filter_wall;
        merged.verify_wall += s.verify_wall;
        merged.total_wall += s.total_wall;
        merged.io_virtual += s.io_virtual;
    }
    merged
}

/// Merges partial outputs of an *unordered* query (filter, plain
/// aggregation, or HAVING aggregation) over disjoint partitions: the rows
/// are unioned and sorted ascending by key, matching the single-node
/// executors' output order; statistics are summed.
pub fn merge_unordered(partials: Vec<QueryOutput>) -> QueryOutput {
    let stats = merge_stats(partials.iter().map(|p| &p.stats));
    let mut rows: Vec<ResultRow> = partials.into_iter().flat_map(|p| p.rows).collect();
    rows.sort_by_key(|r| r.key);
    QueryOutput { rows, stats }
}

/// Merges partial outputs of a ranked query: rows are unioned and re-ranked
/// under `order` with the single-node executors' deterministic id tie-break,
/// then truncated to `k`.
///
/// The result is the exact global top-k **provided** every partition's
/// unreturned candidates are covered — either because the partition returned
/// all candidates it holds, or because its [`RankedPartial::bound`] fails
/// [`partial_may_improve`] against this merge.
pub fn merge_ranked(partials: &[QueryOutput], k: usize, order: Order) -> QueryOutput {
    let stats = merge_stats(partials.iter().map(|p| &p.stats));
    let mut ranked: Vec<(f64, RowKey)> = partials
        .iter()
        .flat_map(|p| p.rows.iter())
        .map(|row| {
            // Ranked rows always carry their exact value; the executors map
            // NaN to the worst value under the order before ranking.
            let value = row.value.unwrap_or(match order {
                Order::Desc => f64::NEG_INFINITY,
                Order::Asc => f64::INFINITY,
            });
            (value, row.key)
        })
        .collect();
    sort_ranked(&mut ranked, order, k);
    QueryOutput {
        rows: ranked
            .into_iter()
            .map(|(value, key)| ResultRow {
                key,
                value: Some(value),
            })
            .collect(),
        stats,
    }
}

/// Returns `true` if the partition behind `partial` could still change the
/// merged top-k in `merged` — i.e. it must be re-queried with a larger `k`.
///
/// A hidden row on the partition ranks no better than [`RankedPartial::bound`],
/// so a bound strictly worse than the merged k-th value rules the partition
/// out, and a strictly better bound rules it in. The tie case is decided
/// exactly: hidden rows tied with the bound all carry **larger** keys than
/// every returned row with that value (the executors keep the smallest keys
/// among ties), so they can displace the k-th row only if the partition's
/// largest returned tied key still precedes the merged k-th key.
pub fn partial_may_improve(
    partial: &RankedPartial,
    merged: &QueryOutput,
    k: usize,
    order: Order,
) -> bool {
    let Some(bound) = partial.bound else {
        // The partition returned everything it holds; nothing is hidden.
        return false;
    };
    if merged.rows.len() < k {
        // The merge has not even filled k rows; anything hidden matters.
        return true;
    }
    let Some(kth) = merged.rows.last() else {
        return true;
    };
    let Some(kth_value) = kth.value else {
        return true;
    };
    if order.better(bound, kth_value) {
        return true;
    }
    if bound != kth_value {
        return false;
    }
    // Tie with the k-th value: a hidden row must beat the k-th row's key,
    // and every hidden tied key exceeds the partition's largest returned
    // tied key.
    match partial
        .output
        .rows
        .iter()
        .filter(|r| r.value == Some(bound))
        .map(|r| r.key)
        .max()
    {
        Some(max_tied_key) => max_tied_key < kth.key,
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{ImageId, MaskId};

    fn mask_row(id: u64, value: Option<f64>) -> ResultRow {
        ResultRow::mask(MaskId::new(id), value)
    }

    fn out(rows: Vec<ResultRow>) -> QueryOutput {
        QueryOutput {
            rows,
            stats: QueryStats {
                candidates: 10,
                pruned: 2,
                ..Default::default()
            },
        }
    }

    #[test]
    fn unordered_merge_is_a_sorted_union() {
        let a = out(vec![mask_row(5, None), mask_row(1, None)]);
        let b = out(vec![mask_row(3, None)]);
        let merged = merge_unordered(vec![a, b]);
        assert_eq!(
            merged.rows,
            vec![mask_row(1, None), mask_row(3, None), mask_row(5, None)]
        );
        assert_eq!(merged.stats.candidates, 20);
        assert_eq!(merged.stats.pruned, 4);
    }

    #[test]
    fn unordered_merge_orders_image_rows_too() {
        let a = out(vec![ResultRow::image(ImageId::new(9), Some(1.0))]);
        let b = out(vec![ResultRow::image(ImageId::new(2), None)]);
        let merged = merge_unordered(vec![a, b]);
        assert_eq!(merged.image_ids(), vec![ImageId::new(2), ImageId::new(9)]);
    }

    #[test]
    fn ranked_merge_re_ranks_with_id_tie_break() {
        let a = out(vec![mask_row(7, Some(3.0)), mask_row(9, Some(1.0))]);
        let b = out(vec![mask_row(2, Some(3.0)), mask_row(4, Some(2.0))]);
        let merged = merge_ranked(&[a, b], 3, Order::Desc);
        assert_eq!(
            merged.rows,
            vec![
                mask_row(2, Some(3.0)),
                mask_row(7, Some(3.0)),
                mask_row(4, Some(2.0)),
            ]
        );
    }

    fn partial(rows: Vec<ResultRow>, bound: Option<f64>) -> RankedPartial {
        RankedPartial {
            output: out(rows),
            bound,
        }
    }

    #[test]
    fn bound_checks_respect_order_and_ties() {
        let merged = merge_ranked(
            &[out(vec![mask_row(1, Some(5.0)), mask_row(2, Some(3.0))])],
            2,
            Order::Desc,
        );
        // A strictly worse bound can never improve the merge.
        let p = partial(vec![mask_row(9, Some(2.9))], Some(2.9));
        assert!(!partial_may_improve(&p, &merged, 2, Order::Desc));
        // A strictly better bound always can.
        let p = partial(vec![mask_row(9, Some(3.1))], Some(3.1));
        assert!(partial_may_improve(&p, &merged, 2, Order::Desc));
        // A bound-less partition returned everything already.
        let p = partial(vec![mask_row(9, Some(10.0))], None);
        assert!(!partial_may_improve(&p, &merged, 2, Order::Desc));
        // Under-filled merges always refine.
        let p = partial(vec![mask_row(9, Some(0.0))], Some(0.0));
        assert!(partial_may_improve(&p, &merged, 3, Order::Desc));

        // Ties: hidden tied rows have keys beyond the partition's largest
        // returned tied key, so only a partition whose ties precede the
        // merged k-th key refines.
        let p = partial(vec![mask_row(0, Some(3.0))], Some(3.0));
        assert!(
            partial_may_improve(&p, &merged, 2, Order::Desc),
            "hidden ids 1.. could precede the k-th key (mask 2)"
        );
        let p = partial(vec![mask_row(7, Some(3.0))], Some(3.0));
        assert!(
            !partial_may_improve(&p, &merged, 2, Order::Desc),
            "hidden ids are all beyond mask 7 > mask 2"
        );

        let merged = merge_ranked(
            &[out(vec![mask_row(1, Some(1.0)), mask_row(2, Some(4.0))])],
            2,
            Order::Asc,
        );
        let p = partial(vec![mask_row(9, Some(4.1))], Some(4.1));
        assert!(!partial_may_improve(&p, &merged, 2, Order::Asc));
        let p = partial(vec![mask_row(0, Some(4.0))], Some(4.0));
        assert!(partial_may_improve(&p, &merged, 2, Order::Asc));
    }

    #[test]
    fn single_partition_ties_do_not_refine() {
        // One partition returning its exact top-k must never be re-queried,
        // even when every value ties: the k-th row is its own largest tied
        // key.
        let rows = vec![mask_row(1, Some(7.0)), mask_row(2, Some(7.0))];
        let p = partial(rows.clone(), Some(7.0));
        let merged = merge_ranked(&[out(rows)], 2, Order::Desc);
        assert!(!partial_may_improve(&p, &merged, 2, Order::Desc));
    }
}
