//! Per-mask evaluation of terms, expressions, and predicates — both exactly
//! (from the mask pixels) and as bounds (from the mask's CHI).

use crate::error::{QueryError, QueryResult};
use crate::expr::{Expr, Interval};
use crate::predicate::{Comparison, Predicate, Truth};
use crate::spec::{CpTerm, TermSource};
use masksearch_core::{
    cp, cp_composed, cp_many, Mask, MaskRecord, PixelRange, Roi, TileStats, TiledMask,
};
use masksearch_index::{composed_cp_bounds, Chi};

/// Options controlling exact (verification-stage) evaluation.
#[derive(Debug, Clone, Copy)]
pub struct VerifyOptions {
    /// Missing-object-box policy (see [`resolve_roi`]).
    pub object_box_fallback: bool,
    /// Route `CP` terms through the tiled verification kernel (`true`) or
    /// the reference batched scan (`false`). Counts are byte-identical
    /// either way; the flag exists for benchmarking and conformance tests.
    pub use_tiled_kernel: bool,
}

/// Resolves a term's ROI for a record.
///
/// When the term uses the per-mask object box but the record has none, the
/// behaviour depends on `object_box_fallback`: fall back to the full mask
/// (`true`) or report an error (`false`).
pub fn resolve_roi(
    term: &CpTerm,
    record: &MaskRecord,
    object_box_fallback: bool,
) -> QueryResult<Roi> {
    if let Some(roi) = term.roi.resolve(record) {
        return Ok(roi);
    }
    match term.roi {
        crate::spec::RoiSpec::ObjectBox if object_box_fallback => {
            if record.width == 0 || record.height == 0 {
                Err(QueryError::invalid(format!(
                    "mask {} has no recorded shape",
                    record.mask_id
                )))
            } else {
                Ok(Roi::new(0, 0, record.width, record.height).expect("non-zero shape"))
            }
        }
        crate::spec::RoiSpec::ObjectBox => Err(QueryError::MissingObjectBox(record.mask_id)),
        _ => Err(QueryError::invalid(format!(
            "mask {} has no recorded shape",
            record.mask_id
        ))),
    }
}

/// Rejects a pair-sourced term reaching a single-mask evaluation path: the
/// candidate binds only one mask, so silently counting it where the query
/// asked for `a.mask`/`b.mask`/a composition would be a wrong answer, not a
/// degraded one.
fn reject_pair_in_single(term: &CpTerm) -> QueryResult<()> {
    if term.source.is_pair() {
        return Err(QueryError::invalid(
            "CP terms over a.mask / b.mask or a mask composition require a pair (join) query",
        ));
    }
    Ok(())
}

/// Exact value of one term on a loaded mask.
pub fn term_exact(
    term: &CpTerm,
    record: &MaskRecord,
    mask: &Mask,
    object_box_fallback: bool,
) -> QueryResult<f64> {
    reject_pair_in_single(term)?;
    let roi = resolve_roi(term, record, object_box_fallback)?;
    Ok(cp(mask, &roi, &term.range) as f64)
}

/// Resolves and evaluates a batch of `CP` terms on a loaded tiled mask,
/// routing through the tiled kernel (or the reference batched scan when the
/// kernel is disabled) and recording tile classifications into `tiles`.
fn terms_exact_tiled(
    terms: &[&CpTerm],
    record: &MaskRecord,
    tiled: &TiledMask,
    opts: &VerifyOptions,
    tiles: &mut TileStats,
) -> QueryResult<Vec<f64>> {
    let resolved: Vec<(Roi, PixelRange)> = terms
        .iter()
        .map(|term| {
            reject_pair_in_single(term)?;
            Ok((
                resolve_roi(term, record, opts.object_box_fallback)?,
                term.range,
            ))
        })
        .collect::<QueryResult<_>>()?;
    let counts = if opts.use_tiled_kernel {
        tiled.cp_many_with_stats(&resolved, tiles)
    } else {
        cp_many(tiled.mask(), &resolved)
    };
    Ok(counts.into_iter().map(|c| c as f64).collect())
}

/// Exact value of one term on a loaded tiled mask.
pub fn term_exact_tiled(
    term: &CpTerm,
    record: &MaskRecord,
    tiled: &TiledMask,
    opts: &VerifyOptions,
    tiles: &mut TileStats,
) -> QueryResult<f64> {
    reject_pair_in_single(term)?;
    let roi = resolve_roi(term, record, opts.object_box_fallback)?;
    let count = if opts.use_tiled_kernel {
        tiled.cp_with_stats(&roi, &term.range, tiles)
    } else {
        cp(tiled.mask(), &roi, &term.range)
    };
    Ok(count as f64)
}

/// Exact value of an expression on a loaded tiled mask; all of the
/// expression's `CP` terms go through the kernel in one batch.
pub fn expr_exact_tiled(
    expr: &Expr,
    record: &MaskRecord,
    tiled: &TiledMask,
    opts: &VerifyOptions,
    tiles: &mut TileStats,
) -> QueryResult<f64> {
    let values = terms_exact_tiled(&expr.terms(), record, tiled, opts, tiles)?;
    Ok(expr.evaluate_exact(&values))
}

/// Exact truth of a predicate on a loaded tiled mask; the `CP` terms of
/// *every* comparison are evaluated in a single kernel batch.
pub fn predicate_exact_tiled(
    predicate: &Predicate,
    record: &MaskRecord,
    tiled: &TiledMask,
    opts: &VerifyOptions,
    tiles: &mut TileStats,
) -> QueryResult<bool> {
    let comparisons = predicate.comparisons();
    let mut all_terms: Vec<&CpTerm> = Vec::new();
    let mut term_counts = Vec::with_capacity(comparisons.len());
    for cmp in &comparisons {
        let terms = cmp.expr.terms();
        term_counts.push(terms.len());
        all_terms.extend(terms);
    }
    let all_values = terms_exact_tiled(&all_terms, record, tiled, opts, tiles)?;
    let mut values = Vec::with_capacity(comparisons.len());
    let mut offset = 0;
    for (cmp, count) in comparisons.iter().zip(term_counts) {
        values.push(cmp.expr.evaluate_exact(&all_values[offset..offset + count]));
        offset += count;
    }
    Ok(predicate.eval_exact(&values))
}

/// Bounds on one term from the mask's CHI.
pub fn term_bounds(
    term: &CpTerm,
    record: &MaskRecord,
    chi: &Chi,
    object_box_fallback: bool,
) -> QueryResult<Interval> {
    reject_pair_in_single(term)?;
    let roi = resolve_roi(term, record, object_box_fallback)?;
    let b = chi.cp_bounds(&roi, &term.range);
    Ok(Interval::new(b.lower as f64, b.upper as f64))
}

/// Exact value of an expression on a loaded mask.
pub fn expr_exact(
    expr: &Expr,
    record: &MaskRecord,
    mask: &Mask,
    object_box_fallback: bool,
) -> QueryResult<f64> {
    let mut values = Vec::new();
    for term in expr.terms() {
        values.push(term_exact(term, record, mask, object_box_fallback)?);
    }
    Ok(expr.evaluate_exact(&values))
}

/// Bounds on an expression from the mask's CHI.
pub fn expr_bounds(
    expr: &Expr,
    record: &MaskRecord,
    chi: &Chi,
    object_box_fallback: bool,
) -> QueryResult<Interval> {
    let mut intervals = Vec::new();
    for term in expr.terms() {
        intervals.push(term_bounds(term, record, chi, object_box_fallback)?);
    }
    Ok(expr.evaluate_bounds(&intervals))
}

/// Exact truth of a predicate on a loaded mask.
pub fn predicate_exact(
    predicate: &Predicate,
    record: &MaskRecord,
    mask: &Mask,
    object_box_fallback: bool,
) -> QueryResult<bool> {
    let mut values = Vec::new();
    for cmp in predicate.comparisons() {
        values.push(expr_exact(&cmp.expr, record, mask, object_box_fallback)?);
    }
    Ok(predicate.eval_exact(&values))
}

/// Three-valued truth of a predicate from the mask's CHI.
pub fn predicate_bounds(
    predicate: &Predicate,
    record: &MaskRecord,
    chi: &Chi,
    object_box_fallback: bool,
) -> QueryResult<Truth> {
    let mut intervals = Vec::new();
    for cmp in predicate.comparisons() {
        intervals.push(expr_bounds(&cmp.expr, record, chi, object_box_fallback)?);
    }
    Ok(predicate.eval_bounds(&intervals))
}

/// Three-valued truth of a predicate from the mask's CHI, computing the
/// comparisons' bounds in the planner's cost `order` and stopping as soon
/// as the partially-bound predicate is decided.
///
/// The result is byte-identical to [`predicate_bounds`]: an uncomputed
/// comparison contributes the unbounded interval, which evaluates
/// `Unknown`, and three-valued evaluation is monotone in the information
/// order — once the partial evaluation returns `True` or `False`, refining
/// the remaining comparisons cannot change it. Term ROIs are still resolved
/// in *written* order first, so a resolution error (e.g. a missing object
/// box without fallback) surfaces from the same comparison it always did.
///
/// An `order` that is not a permutation of `0..comparisons` falls back to
/// evaluating everything (never wrong, just not fast).
pub fn predicate_bounds_ordered(
    predicate: &Predicate,
    record: &MaskRecord,
    chi: &Chi,
    object_box_fallback: bool,
    order: &[usize],
) -> QueryResult<Truth> {
    BoundsClassifier::new(predicate, order).classify(record, chi, object_box_fallback)
}

/// A predicate compiled for repeated bounds classification.
///
/// The filter stage classifies every candidate against the *same* predicate
/// and cost order. Collecting comparison and term references anew for each
/// mask — plus the per-mask scratch vectors — made heap allocation the
/// dominant cost of a bounds-decided classification, so the classifier does
/// that work once and owns the scratch space: classifying another mask
/// allocates nothing. One classifier is built per worker thread and reused
/// across its whole chunk.
///
/// [`BoundsClassifier::classify`] is byte-identical to
/// [`predicate_bounds_ordered`] (which is implemented on top of it).
pub struct BoundsClassifier<'p> {
    predicate: &'p Predicate,
    /// Comparisons in written order, each with its terms flattened.
    comparisons: Vec<(&'p Comparison, Vec<&'p CpTerm>)>,
    /// The planner's cost order; indices are re-checked per use, matching
    /// [`predicate_bounds_ordered`]'s fallback rule.
    order: Vec<usize>,
    /// `false` when `order`'s length does not match the predicate: every
    /// classification then falls back to [`predicate_bounds`].
    ordered: bool,
    // Per-mask scratch, cleared on every classification.
    resolved: Vec<(Roi, PixelRange)>,
    offsets: Vec<usize>,
    intervals: Vec<Interval>,
    term_intervals: Vec<Interval>,
}

impl<'p> BoundsClassifier<'p> {
    /// Compiles `predicate` with the planner's cost `order`.
    pub fn new(predicate: &'p Predicate, order: &[usize]) -> Self {
        let comparisons: Vec<(&Comparison, Vec<&CpTerm>)> = predicate
            .comparisons()
            .into_iter()
            .map(|cmp| {
                let terms = cmp.expr.terms();
                (cmp, terms)
            })
            .collect();
        let ordered = order.len() == comparisons.len();
        Self {
            predicate,
            order: order.to_vec(),
            ordered,
            comparisons,
            resolved: Vec::new(),
            offsets: Vec::new(),
            intervals: Vec::new(),
            term_intervals: Vec::new(),
        }
    }

    /// Three-valued truth of the compiled predicate from one mask's CHI.
    pub fn classify(
        &mut self,
        record: &MaskRecord,
        chi: &Chi,
        object_box_fallback: bool,
    ) -> QueryResult<Truth> {
        if !self.ordered {
            return predicate_bounds(self.predicate, record, chi, object_box_fallback);
        }
        let Self {
            predicate,
            comparisons,
            order,
            resolved,
            offsets,
            intervals,
            term_intervals,
            ..
        } = self;
        // Written-order ROI resolution, exactly as the unordered path
        // performs it via `expr_bounds`: the first erroring term must not
        // depend on the cost order (or on an early exit skipping it).
        resolved.clear();
        offsets.clear();
        for (_, terms) in comparisons.iter() {
            offsets.push(resolved.len());
            for term in terms {
                reject_pair_in_single(term)?;
                resolved.push((resolve_roi(term, record, object_box_fallback)?, term.range));
            }
        }
        offsets.push(resolved.len());
        let unbounded = Interval::new(f64::NEG_INFINITY, f64::INFINITY);
        intervals.clear();
        intervals.resize(comparisons.len(), unbounded);
        let mut truth = Truth::Unknown;
        for &index in order.iter() {
            let Some((cmp, _)) = comparisons.get(index) else {
                return predicate_bounds(predicate, record, chi, object_box_fallback);
            };
            term_intervals.clear();
            for (roi, range) in &resolved[offsets[index]..offsets[index + 1]] {
                let b = chi.cp_bounds(roi, range);
                term_intervals.push(Interval::new(b.lower as f64, b.upper as f64));
            }
            intervals[index] = cmp.expr.evaluate_bounds(term_intervals);
            truth = predicate.eval_bounds(intervals);
            if truth != Truth::Unknown {
                return Ok(truth);
            }
        }
        Ok(truth)
    }
}

// ---------------------------------------------------------------------------
// Pair (multi-mask) evaluation: two masks of the same image bound per
// candidate, terms referencing either side or their pixelwise composition.
// ---------------------------------------------------------------------------

/// One pair candidate's catalog records: the left and right binding.
#[derive(Debug, Clone, Copy)]
pub struct PairRecords<'a> {
    /// Record of the left-bound mask.
    pub left: &'a MaskRecord,
    /// Record of the right-bound mask.
    pub right: &'a MaskRecord,
}

impl PairRecords<'_> {
    /// Resolves a pair term's ROI against the record of the mask it counts
    /// over (composed terms resolve against the left record; the executors
    /// enforce equal shapes before any pixels are counted).
    fn resolve(&self, term: &CpTerm, object_box_fallback: bool) -> QueryResult<Roi> {
        let record = match term.source {
            TermSource::Right => self.right,
            _ => self.left,
        };
        resolve_roi(term, record, object_box_fallback)
    }
}

fn reject_own_term() -> QueryError {
    QueryError::invalid(
        "pair queries require every CP term to name a.mask, b.mask, or a composition",
    )
}

/// Checks that the two bound masks can be composed; pair executors call
/// this once per candidate before any composed term touches pixels.
pub fn check_pair_shapes(records: &PairRecords<'_>, left: &Mask, right: &Mask) -> QueryResult<()> {
    if left.shape() != right.shape() {
        return Err(QueryError::invalid(format!(
            "pair masks {} and {} of image {} have different shapes {}x{} vs {}x{}",
            records.left.mask_id,
            records.right.mask_id,
            records.left.image_id,
            left.width(),
            left.height(),
            right.width(),
            right.height(),
        )));
    }
    Ok(())
}

/// Catalog-record-level shape precheck for composed terms. The filter stage
/// runs this for every candidate of a query that composes masks, so a
/// mismatched pair fails identically in every indexing mode — a decisive
/// CHI bound must not mask (in eager mode) an error that incremental or
/// disabled mode would surface at verification.
pub fn check_pair_record_shapes(records: &PairRecords<'_>) -> QueryResult<()> {
    let (l, r) = (records.left, records.right);
    if (l.width, l.height) != (r.width, r.height) {
        return Err(QueryError::invalid(format!(
            "pair masks {} and {} of image {} have different shapes {}x{} vs {}x{}",
            l.mask_id, r.mask_id, l.image_id, l.width, l.height, r.width, r.height,
        )));
    }
    Ok(())
}

/// Returns `true` if the expression composes the pair's two masks (as
/// opposed to referencing only one side), which is what requires equal
/// shapes.
pub fn expr_composes(expr: &Expr) -> bool {
    expr.terms()
        .iter()
        .any(|t| matches!(t.source, TermSource::Compose(_)))
}

/// Returns `true` if any comparison of the predicate composes the pair.
pub fn predicate_composes(predicate: &Predicate) -> bool {
    predicate
        .comparisons()
        .iter()
        .any(|c| expr_composes(&c.expr))
}

/// Bounds on one pair term from the two masks' CHIs.
pub fn pair_term_bounds(
    term: &CpTerm,
    records: &PairRecords<'_>,
    chi_left: &Chi,
    chi_right: &Chi,
    object_box_fallback: bool,
) -> QueryResult<Interval> {
    let roi = records.resolve(term, object_box_fallback)?;
    let b = match term.source {
        TermSource::Own => return Err(reject_own_term()),
        TermSource::Left => chi_left.cp_bounds(&roi, &term.range),
        TermSource::Right => chi_right.cp_bounds(&roi, &term.range),
        TermSource::Compose(op) => composed_cp_bounds(chi_left, chi_right, op, &roi, &term.range),
    };
    Ok(Interval::new(b.lower as f64, b.upper as f64))
}

/// Bounds on an expression over pair terms from the two masks' CHIs.
pub fn pair_expr_bounds(
    expr: &Expr,
    records: &PairRecords<'_>,
    chi_left: &Chi,
    chi_right: &Chi,
    object_box_fallback: bool,
) -> QueryResult<Interval> {
    let mut intervals = Vec::new();
    for term in expr.terms() {
        intervals.push(pair_term_bounds(
            term,
            records,
            chi_left,
            chi_right,
            object_box_fallback,
        )?);
    }
    Ok(expr.evaluate_bounds(&intervals))
}

/// Three-valued truth of a pair predicate from the two masks' CHIs.
pub fn pair_predicate_bounds(
    predicate: &Predicate,
    records: &PairRecords<'_>,
    chi_left: &Chi,
    chi_right: &Chi,
    object_box_fallback: bool,
) -> QueryResult<Truth> {
    let mut intervals = Vec::new();
    for cmp in predicate.comparisons() {
        intervals.push(pair_expr_bounds(
            &cmp.expr,
            records,
            chi_left,
            chi_right,
            object_box_fallback,
        )?);
    }
    Ok(predicate.eval_bounds(&intervals))
}

/// Exact values of a batch of pair terms on the two loaded tiled masks,
/// routing through the (composed) tile kernel or the reference scans.
fn pair_terms_exact_tiled(
    terms: &[&CpTerm],
    records: &PairRecords<'_>,
    left: &TiledMask,
    right: &TiledMask,
    opts: &VerifyOptions,
    tiles: &mut TileStats,
) -> QueryResult<Vec<f64>> {
    // Equal shapes are required only to *compose*; side-only terms
    // (CP(a.mask, …) / CP(b.mask, …)) are fine on differently-shaped pairs.
    if terms
        .iter()
        .any(|t| matches!(t.source, TermSource::Compose(_)))
    {
        check_pair_shapes(records, left.mask(), right.mask())?;
    }
    let mut values = Vec::with_capacity(terms.len());
    for term in terms {
        let roi = records.resolve(term, opts.object_box_fallback)?;
        let count = match term.source {
            TermSource::Own => return Err(reject_own_term()),
            TermSource::Left | TermSource::Right => {
                let side = if term.source == TermSource::Left {
                    left
                } else {
                    right
                };
                if opts.use_tiled_kernel {
                    side.cp_with_stats(&roi, &term.range, tiles)
                } else {
                    cp(side.mask(), &roi, &term.range)
                }
            }
            TermSource::Compose(op) => {
                if opts.use_tiled_kernel {
                    left.cp_composed_with_stats(right, op, &roi, &term.range, tiles)?
                } else {
                    cp_composed(left.mask(), right.mask(), op, &roi, &term.range)?
                }
            }
        };
        values.push(count as f64);
    }
    Ok(values)
}

/// Exact value of an expression over pair terms on the two loaded masks.
pub fn pair_expr_exact_tiled(
    expr: &Expr,
    records: &PairRecords<'_>,
    left: &TiledMask,
    right: &TiledMask,
    opts: &VerifyOptions,
    tiles: &mut TileStats,
) -> QueryResult<f64> {
    let values = pair_terms_exact_tiled(&expr.terms(), records, left, right, opts, tiles)?;
    Ok(expr.evaluate_exact(&values))
}

/// Exact truth of a pair predicate on the two loaded masks.
pub fn pair_predicate_exact_tiled(
    predicate: &Predicate,
    records: &PairRecords<'_>,
    left: &TiledMask,
    right: &TiledMask,
    opts: &VerifyOptions,
    tiles: &mut TileStats,
) -> QueryResult<bool> {
    let comparisons = predicate.comparisons();
    let mut values = Vec::with_capacity(comparisons.len());
    for cmp in &comparisons {
        values.push(pair_expr_exact_tiled(
            &cmp.expr, records, left, right, opts, tiles,
        )?);
    }
    Ok(predicate.eval_exact(&values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RoiSpec;
    use masksearch_core::{MaskId, PixelRange};
    use masksearch_index::ChiConfig;

    fn mask() -> Mask {
        Mask::from_fn(32, 32, |x, y| if x < 16 && y < 16 { 0.9 } else { 0.1 })
    }

    fn record(with_box: bool) -> MaskRecord {
        let mut b = MaskRecord::builder(MaskId::new(1)).shape(32, 32);
        if with_box {
            b = b.object_box(Roi::new(0, 0, 16, 16).unwrap());
        }
        b.build()
    }

    #[test]
    fn roi_resolution_and_fallback() {
        let term = CpTerm::object_roi(PixelRange::new(0.8, 1.0).unwrap());
        let with_box = record(true);
        assert_eq!(
            resolve_roi(&term, &with_box, false).unwrap(),
            Roi::new(0, 0, 16, 16).unwrap()
        );
        let without = record(false);
        assert!(matches!(
            resolve_roi(&term, &without, false),
            Err(QueryError::MissingObjectBox(_))
        ));
        assert_eq!(
            resolve_roi(&term, &without, true).unwrap(),
            Roi::new(0, 0, 32, 32).unwrap()
        );
        // A full-mask term on a record with no shape errors out.
        let term = CpTerm::full_mask(PixelRange::full());
        let shapeless = MaskRecord::builder(MaskId::new(2)).build();
        assert!(resolve_roi(&term, &shapeless, true).is_err());
    }

    #[test]
    fn exact_and_bounded_evaluation_agree() {
        let m = mask();
        let rec = record(true);
        let chi = Chi::build(&m, &ChiConfig::new(8, 8, 16).unwrap());
        let range = PixelRange::new(0.8, 1.0).unwrap();
        // Ratio of salient pixels in the object box to salient pixels overall.
        let expr = Expr::cp_object(range).div(Expr::cp_full(range));
        let exact = expr_exact(&expr, &rec, &m, false).unwrap();
        assert!((exact - 1.0).abs() < 1e-12); // all salient pixels are inside the box
        let bounds = expr_bounds(&expr, &rec, &chi, false).unwrap();
        assert!(bounds.contains(exact));
    }

    #[test]
    fn predicate_evaluation_paths() {
        let m = mask();
        let rec = record(true);
        let chi = Chi::build(&m, &ChiConfig::new(8, 8, 16).unwrap());
        let range = PixelRange::new(0.8, 1.0).unwrap();
        // 256 salient pixels inside the object box.
        let pred = Predicate::gt(Expr::cp_object(range), 200.0)
            .and(Predicate::lt(Expr::cp_full(range), 300.0));
        assert!(predicate_exact(&pred, &rec, &m, false).unwrap());
        // The object box is cell-aligned and the range bin-aligned, so the
        // bounds are exact and the filter stage can accept outright.
        assert_eq!(
            predicate_bounds(&pred, &rec, &chi, false).unwrap(),
            Truth::True
        );
        let never = Predicate::gt(Expr::cp_object(range), 100_000.0);
        assert_eq!(
            predicate_bounds(&never, &rec, &chi, false).unwrap(),
            Truth::False
        );
        assert!(!predicate_exact(&never, &rec, &m, false).unwrap());
    }

    #[test]
    fn term_bounds_error_on_missing_object_box_without_fallback() {
        let m = mask();
        let rec = record(false);
        let chi = Chi::build(&m, &ChiConfig::new(8, 8, 16).unwrap());
        let term = CpTerm {
            source: TermSource::Own,
            roi: RoiSpec::ObjectBox,
            range: PixelRange::full(),
        };
        assert!(term_bounds(&term, &rec, &chi, false).is_err());
        assert!(term_exact(&term, &rec, &m, false).is_err());
    }
}
