//! Per-mask evaluation of terms, expressions, and predicates — both exactly
//! (from the mask pixels) and as bounds (from the mask's CHI).

use crate::error::{QueryError, QueryResult};
use crate::expr::{Expr, Interval};
use crate::predicate::{Predicate, Truth};
use crate::spec::CpTerm;
use masksearch_core::{cp, cp_many, Mask, MaskRecord, PixelRange, Roi, TileStats, TiledMask};
use masksearch_index::Chi;

/// Options controlling exact (verification-stage) evaluation.
#[derive(Debug, Clone, Copy)]
pub struct VerifyOptions {
    /// Missing-object-box policy (see [`resolve_roi`]).
    pub object_box_fallback: bool,
    /// Route `CP` terms through the tiled verification kernel (`true`) or
    /// the reference batched scan (`false`). Counts are byte-identical
    /// either way; the flag exists for benchmarking and conformance tests.
    pub use_tiled_kernel: bool,
}

/// Resolves a term's ROI for a record.
///
/// When the term uses the per-mask object box but the record has none, the
/// behaviour depends on `object_box_fallback`: fall back to the full mask
/// (`true`) or report an error (`false`).
pub fn resolve_roi(
    term: &CpTerm,
    record: &MaskRecord,
    object_box_fallback: bool,
) -> QueryResult<Roi> {
    if let Some(roi) = term.roi.resolve(record) {
        return Ok(roi);
    }
    match term.roi {
        crate::spec::RoiSpec::ObjectBox if object_box_fallback => {
            if record.width == 0 || record.height == 0 {
                Err(QueryError::invalid(format!(
                    "mask {} has no recorded shape",
                    record.mask_id
                )))
            } else {
                Ok(Roi::new(0, 0, record.width, record.height).expect("non-zero shape"))
            }
        }
        crate::spec::RoiSpec::ObjectBox => Err(QueryError::MissingObjectBox(record.mask_id)),
        _ => Err(QueryError::invalid(format!(
            "mask {} has no recorded shape",
            record.mask_id
        ))),
    }
}

/// Exact value of one term on a loaded mask.
pub fn term_exact(
    term: &CpTerm,
    record: &MaskRecord,
    mask: &Mask,
    object_box_fallback: bool,
) -> QueryResult<f64> {
    let roi = resolve_roi(term, record, object_box_fallback)?;
    Ok(cp(mask, &roi, &term.range) as f64)
}

/// Resolves and evaluates a batch of `CP` terms on a loaded tiled mask,
/// routing through the tiled kernel (or the reference batched scan when the
/// kernel is disabled) and recording tile classifications into `tiles`.
fn terms_exact_tiled(
    terms: &[&CpTerm],
    record: &MaskRecord,
    tiled: &TiledMask,
    opts: &VerifyOptions,
    tiles: &mut TileStats,
) -> QueryResult<Vec<f64>> {
    let resolved: Vec<(Roi, PixelRange)> = terms
        .iter()
        .map(|term| {
            Ok((
                resolve_roi(term, record, opts.object_box_fallback)?,
                term.range,
            ))
        })
        .collect::<QueryResult<_>>()?;
    let counts = if opts.use_tiled_kernel {
        tiled.cp_many_with_stats(&resolved, tiles)
    } else {
        cp_many(tiled.mask(), &resolved)
    };
    Ok(counts.into_iter().map(|c| c as f64).collect())
}

/// Exact value of one term on a loaded tiled mask.
pub fn term_exact_tiled(
    term: &CpTerm,
    record: &MaskRecord,
    tiled: &TiledMask,
    opts: &VerifyOptions,
    tiles: &mut TileStats,
) -> QueryResult<f64> {
    let roi = resolve_roi(term, record, opts.object_box_fallback)?;
    let count = if opts.use_tiled_kernel {
        tiled.cp_with_stats(&roi, &term.range, tiles)
    } else {
        cp(tiled.mask(), &roi, &term.range)
    };
    Ok(count as f64)
}

/// Exact value of an expression on a loaded tiled mask; all of the
/// expression's `CP` terms go through the kernel in one batch.
pub fn expr_exact_tiled(
    expr: &Expr,
    record: &MaskRecord,
    tiled: &TiledMask,
    opts: &VerifyOptions,
    tiles: &mut TileStats,
) -> QueryResult<f64> {
    let values = terms_exact_tiled(&expr.terms(), record, tiled, opts, tiles)?;
    Ok(expr.evaluate_exact(&values))
}

/// Exact truth of a predicate on a loaded tiled mask; the `CP` terms of
/// *every* comparison are evaluated in a single kernel batch.
pub fn predicate_exact_tiled(
    predicate: &Predicate,
    record: &MaskRecord,
    tiled: &TiledMask,
    opts: &VerifyOptions,
    tiles: &mut TileStats,
) -> QueryResult<bool> {
    let comparisons = predicate.comparisons();
    let mut all_terms: Vec<&CpTerm> = Vec::new();
    let mut term_counts = Vec::with_capacity(comparisons.len());
    for cmp in &comparisons {
        let terms = cmp.expr.terms();
        term_counts.push(terms.len());
        all_terms.extend(terms);
    }
    let all_values = terms_exact_tiled(&all_terms, record, tiled, opts, tiles)?;
    let mut values = Vec::with_capacity(comparisons.len());
    let mut offset = 0;
    for (cmp, count) in comparisons.iter().zip(term_counts) {
        values.push(cmp.expr.evaluate_exact(&all_values[offset..offset + count]));
        offset += count;
    }
    Ok(predicate.eval_exact(&values))
}

/// Bounds on one term from the mask's CHI.
pub fn term_bounds(
    term: &CpTerm,
    record: &MaskRecord,
    chi: &Chi,
    object_box_fallback: bool,
) -> QueryResult<Interval> {
    let roi = resolve_roi(term, record, object_box_fallback)?;
    let b = chi.cp_bounds(&roi, &term.range);
    Ok(Interval::new(b.lower as f64, b.upper as f64))
}

/// Exact value of an expression on a loaded mask.
pub fn expr_exact(
    expr: &Expr,
    record: &MaskRecord,
    mask: &Mask,
    object_box_fallback: bool,
) -> QueryResult<f64> {
    let mut values = Vec::new();
    for term in expr.terms() {
        values.push(term_exact(term, record, mask, object_box_fallback)?);
    }
    Ok(expr.evaluate_exact(&values))
}

/// Bounds on an expression from the mask's CHI.
pub fn expr_bounds(
    expr: &Expr,
    record: &MaskRecord,
    chi: &Chi,
    object_box_fallback: bool,
) -> QueryResult<Interval> {
    let mut intervals = Vec::new();
    for term in expr.terms() {
        intervals.push(term_bounds(term, record, chi, object_box_fallback)?);
    }
    Ok(expr.evaluate_bounds(&intervals))
}

/// Exact truth of a predicate on a loaded mask.
pub fn predicate_exact(
    predicate: &Predicate,
    record: &MaskRecord,
    mask: &Mask,
    object_box_fallback: bool,
) -> QueryResult<bool> {
    let mut values = Vec::new();
    for cmp in predicate.comparisons() {
        values.push(expr_exact(&cmp.expr, record, mask, object_box_fallback)?);
    }
    Ok(predicate.eval_exact(&values))
}

/// Three-valued truth of a predicate from the mask's CHI.
pub fn predicate_bounds(
    predicate: &Predicate,
    record: &MaskRecord,
    chi: &Chi,
    object_box_fallback: bool,
) -> QueryResult<Truth> {
    let mut intervals = Vec::new();
    for cmp in predicate.comparisons() {
        intervals.push(expr_bounds(&cmp.expr, record, chi, object_box_fallback)?);
    }
    Ok(predicate.eval_bounds(&intervals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RoiSpec;
    use masksearch_core::{MaskId, PixelRange};
    use masksearch_index::ChiConfig;

    fn mask() -> Mask {
        Mask::from_fn(32, 32, |x, y| if x < 16 && y < 16 { 0.9 } else { 0.1 })
    }

    fn record(with_box: bool) -> MaskRecord {
        let mut b = MaskRecord::builder(MaskId::new(1)).shape(32, 32);
        if with_box {
            b = b.object_box(Roi::new(0, 0, 16, 16).unwrap());
        }
        b.build()
    }

    #[test]
    fn roi_resolution_and_fallback() {
        let term = CpTerm::object_roi(PixelRange::new(0.8, 1.0).unwrap());
        let with_box = record(true);
        assert_eq!(
            resolve_roi(&term, &with_box, false).unwrap(),
            Roi::new(0, 0, 16, 16).unwrap()
        );
        let without = record(false);
        assert!(matches!(
            resolve_roi(&term, &without, false),
            Err(QueryError::MissingObjectBox(_))
        ));
        assert_eq!(
            resolve_roi(&term, &without, true).unwrap(),
            Roi::new(0, 0, 32, 32).unwrap()
        );
        // A full-mask term on a record with no shape errors out.
        let term = CpTerm::full_mask(PixelRange::full());
        let shapeless = MaskRecord::builder(MaskId::new(2)).build();
        assert!(resolve_roi(&term, &shapeless, true).is_err());
    }

    #[test]
    fn exact_and_bounded_evaluation_agree() {
        let m = mask();
        let rec = record(true);
        let chi = Chi::build(&m, &ChiConfig::new(8, 8, 16).unwrap());
        let range = PixelRange::new(0.8, 1.0).unwrap();
        // Ratio of salient pixels in the object box to salient pixels overall.
        let expr = Expr::cp_object(range).div(Expr::cp_full(range));
        let exact = expr_exact(&expr, &rec, &m, false).unwrap();
        assert!((exact - 1.0).abs() < 1e-12); // all salient pixels are inside the box
        let bounds = expr_bounds(&expr, &rec, &chi, false).unwrap();
        assert!(bounds.contains(exact));
    }

    #[test]
    fn predicate_evaluation_paths() {
        let m = mask();
        let rec = record(true);
        let chi = Chi::build(&m, &ChiConfig::new(8, 8, 16).unwrap());
        let range = PixelRange::new(0.8, 1.0).unwrap();
        // 256 salient pixels inside the object box.
        let pred = Predicate::gt(Expr::cp_object(range), 200.0)
            .and(Predicate::lt(Expr::cp_full(range), 300.0));
        assert!(predicate_exact(&pred, &rec, &m, false).unwrap());
        // The object box is cell-aligned and the range bin-aligned, so the
        // bounds are exact and the filter stage can accept outright.
        assert_eq!(
            predicate_bounds(&pred, &rec, &chi, false).unwrap(),
            Truth::True
        );
        let never = Predicate::gt(Expr::cp_object(range), 100_000.0);
        assert_eq!(
            predicate_bounds(&never, &rec, &chi, false).unwrap(),
            Truth::False
        );
        assert!(!predicate_exact(&never, &rec, &m, false).unwrap());
    }

    #[test]
    fn term_bounds_error_on_missing_object_box_without_fallback() {
        let m = mask();
        let rec = record(false);
        let chi = Chi::build(&m, &ChiConfig::new(8, 8, 16).unwrap());
        let term = CpTerm {
            roi: RoiSpec::ObjectBox,
            range: PixelRange::full(),
        };
        assert!(term_bounds(&term, &rec, &chi, false).is_err());
        assert!(term_exact(&term, &rec, &m, false).is_err());
    }
}
