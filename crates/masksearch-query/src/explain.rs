//! Query plans: `EXPLAIN` and `EXPLAIN ANALYZE`.
//!
//! A [`PlanNode`] tree describes *how* a query will run — the selection, the
//! CP-term order, whether the CHI bounds pass can classify candidates or
//! every mask must be loaded, and whether the tiled verification kernel is
//! routed — before any work happens. `EXPLAIN ANALYZE` executes the query
//! and annotates the same tree with the measured [`QueryStats`], copying
//! each counter verbatim so the annotated plan and the stats can never
//! disagree (a property the integration tests assert).
//!
//! Plans render to indented `name key=value` lines, the same grammar the
//! span trees and `STATS PROFILES` use, so one parser serves every surface.

use crate::planner::ExecPlan;
use crate::query::{Query, QueryKind, Selection};
use crate::result::QueryStats;
use crate::session::{IndexingMode, SessionConfig};
use crate::spec::{CpTerm, RoiSpec, TermSource};
use masksearch_plan::KernelMode;

/// One node of a query plan: a named stage with ordered properties and
/// child stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// Stage name (`query`, `select`, `filter`, `verify`, ...).
    pub name: String,
    /// Ordered `key=value` properties.
    pub props: Vec<(String, String)>,
    /// Child stages in execution order.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// An empty node named `name`.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            props: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Appends (or overwrites) a property.
    pub fn set(&mut self, key: &str, value: impl ToString) {
        let value = value.to_string();
        if let Some(entry) = self.props.iter_mut().find(|(k, _)| k == key) {
            entry.1 = value;
        } else {
            self.props.push((key.to_string(), value));
        }
    }

    /// Builder-style [`PlanNode::set`].
    pub fn with(mut self, key: &str, value: impl ToString) -> Self {
        self.set(key, value);
        self
    }

    /// Looks up a property by key.
    pub fn prop(&self, key: &str) -> Option<&str> {
        self.props
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a property and parses it as an integer (the form every
    /// measured counter takes).
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.prop(key)?.parse().ok()
    }

    /// Finds the first node (depth-first, including `self`) named `name`.
    pub fn find(&self, name: &str) -> Option<&PlanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn find_mut(&mut self, name: &str) -> Option<&mut PlanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter_mut().find_map(|c| c.find_mut(name))
    }

    /// Renders the plan as indented text lines, two spaces per level.
    pub fn render(&self) -> Vec<String> {
        let mut lines = Vec::new();
        self.render_into(0, &mut lines);
        lines
    }

    fn render_into(&self, depth: usize, lines: &mut Vec<String>) {
        let mut line = format!("{}{}", "  ".repeat(depth), self.name);
        for (k, v) in &self.props {
            line.push_str(&format!(" {k}={v}"));
        }
        lines.push(line);
        for child in &self.children {
            child.render_into(depth + 1, lines);
        }
    }
}

fn kind_name(kind: &QueryKind) -> &'static str {
    match kind {
        QueryKind::Filter { .. } => "filter",
        QueryKind::TopK { .. } => "topk",
        QueryKind::Aggregate { .. } => "aggregate",
        QueryKind::MaskAggregate { .. } => "mask_aggregate",
        QueryKind::PairFilter { .. } => "pair_filter",
        QueryKind::PairTopK { .. } => "pair_topk",
    }
}

fn indexing_name(mode: IndexingMode) -> &'static str {
    match mode {
        IndexingMode::Eager => "eager",
        IndexingMode::Incremental => "incremental",
        IndexingMode::Disabled => "disabled",
    }
}

fn describe_roi(roi: &RoiSpec) -> String {
    match roi {
        RoiSpec::Constant(r) => format!("box({},{},{},{})", r.x0(), r.y0(), r.x1(), r.y1()),
        RoiSpec::ObjectBox => "object".to_string(),
        RoiSpec::FullMask => "full".to_string(),
    }
}

fn describe_source(source: &TermSource) -> String {
    match source {
        TermSource::Own => "own".to_string(),
        TermSource::Left => "left".to_string(),
        TermSource::Right => "right".to_string(),
        TermSource::Compose(op) => format!("compose:{op:?}").to_lowercase(),
    }
}

fn describe_term(term: &CpTerm) -> String {
    format!(
        "cp({},{},[{},{}))",
        describe_source(&term.source),
        describe_roi(&term.roi),
        term.range.lo(),
        term.range.hi(),
    )
}

/// The query's `CP` terms in written order (also the planner's feature
/// universe).
pub(crate) fn cp_terms(query: &Query) -> Vec<CpTerm> {
    match &query.kind {
        QueryKind::Filter { predicate } | QueryKind::PairFilter { predicate, .. } => predicate
            .comparisons()
            .iter()
            .flat_map(|c| c.expr.terms())
            .copied()
            .collect(),
        QueryKind::TopK { expr, .. }
        | QueryKind::Aggregate { expr, .. }
        | QueryKind::PairTopK { expr, .. } => expr.terms().into_iter().copied().collect(),
        QueryKind::MaskAggregate { term, .. } => vec![*term],
    }
}

fn selection_node(selection: &Selection, name: &str) -> PlanNode {
    let mut node = PlanNode::new(name);
    match &selection.mask_ids {
        Some(ids) => node.set("mask_ids", ids.len()),
        None => node.set("mask_ids", "*"),
    }
    if let Some(model) = selection.model_id {
        node.set("model", model.raw());
    }
    if let Some(types) = &selection.mask_types {
        node.set("mask_types", types.len());
    }
    if let Some(labels) = &selection.predicted_labels {
        node.set("labels", labels.len());
    }
    match &selection.image_ids {
        Some(ids) => node.set("image_ids", ids.len()),
        None => node.set("image_ids", "*"),
    }
    node
}

/// Builds the plan of `query` under `config`, without executing anything.
///
/// The tree always contains a `query` root with a `select` child plus the
/// two-stage skeleton of the paper's framework: a `filter` node (the CHI
/// bounds pass) and a `verify` node (pixel verification), so
/// [`annotate`] has a stable place for every [`QueryStats`] counter.
pub fn plan(query: &Query, config: &SessionConfig) -> PlanNode {
    let terms = cp_terms(query);
    let mut root = PlanNode::new("query")
        .with("kind", kind_name(&query.kind))
        .with("grouped", query.is_grouped())
        .with("indexing", indexing_name(config.indexing_mode))
        .with("threads", config.threads);

    root.children
        .push(selection_node(&query.selection, "select"));

    if let QueryKind::PairFilter { join, .. } | QueryKind::PairTopK { join, .. } = &query.kind {
        let mut bind = PlanNode::new("pair.bind");
        bind.children.push(selection_node(&join.left, "left"));
        bind.children.push(selection_node(&join.right, "right"));
        root.children.push(bind);
    }

    let mut filter = PlanNode::new("filter");
    filter.set(
        "strategy",
        match config.indexing_mode {
            // Without an index every candidate is verified by loading.
            IndexingMode::Disabled => "load-all",
            _ => "chi-bounds",
        },
    );
    filter.set("cp_terms", terms.len());
    for (i, term) in terms.iter().enumerate() {
        filter.children.push(
            PlanNode::new("term")
                .with("ord", i)
                .with("cp", describe_term(term)),
        );
    }
    root.children.push(filter);

    match &query.kind {
        QueryKind::TopK { k, order, .. } => {
            root.set("k", k);
            root.set("order", format!("{order:?}").to_lowercase());
        }
        QueryKind::PairTopK { k, order, .. } => {
            root.set("k", k);
            root.set("order", format!("{order:?}").to_lowercase());
        }
        QueryKind::Aggregate {
            agg, having, top_k, ..
        } => {
            root.set("agg", agg.name());
            if having.is_some() {
                root.set("having", "yes");
            }
            if let Some((k, order)) = top_k {
                root.set("k", k);
                root.set("order", format!("{order:?}").to_lowercase());
            }
        }
        QueryKind::MaskAggregate {
            agg, having, top_k, ..
        } => {
            root.set("agg", format!("{agg:?}").to_lowercase());
            if having.is_some() {
                root.set("having", "yes");
            }
            if let Some((k, order)) = top_k {
                root.set("k", k);
                root.set("order", format!("{order:?}").to_lowercase());
            }
        }
        _ => {}
    }

    let verify = PlanNode::new("verify").with(
        "kernel",
        match config.kernel_mode {
            KernelMode::ForceOn => "tiled",
            KernelMode::ForceOff => "scan",
            KernelMode::Auto => "auto",
        },
    );
    root.children.push(verify);
    root
}

/// [`plan`] plus the cost-based planner's resolved choices and estimates:
/// the `verify` node's `kernel` becomes the decided routing, the `filter`
/// node gains the estimated selectivity, term order, and (for pair queries)
/// whether the bounds pass runs, and each `term` node gains the estimated
/// selectivity of its comparison (`est_selectivity=`).
pub fn plan_with(query: &Query, config: &SessionConfig, exec: Option<&ExecPlan>) -> PlanNode {
    let mut root = plan(query, config);
    let Some(exec) = exec else {
        return root;
    };
    if let Some(verify) = root.find_mut("verify") {
        verify.set("kernel", exec.plan.kernel.label());
    }
    // Access path: which secondary index the resolution probes, or `scan`.
    // Pair queries carry one decision per binding side instead.
    if matches!(
        query.kind,
        QueryKind::PairFilter { .. } | QueryKind::PairTopK { .. }
    ) {
        if let Some(bind) = root.find_mut("pair.bind") {
            for (side, access) in bind.children.iter_mut().zip(&exec.pair_index_access) {
                side.set("index", access.as_deref().unwrap_or("scan"));
            }
        }
    } else if let Some(select) = root.find_mut("select") {
        select.set("index", exec.index_access.as_deref().unwrap_or("scan"));
    }
    if let Some(filter) = root.find_mut("filter") {
        if exec.sampled {
            filter.set(
                "est_selectivity",
                format!("{:.3}", exec.plan.est_selectivity),
            );
        }
        if !exec.term_order().is_empty() {
            filter.set(
                "order",
                if exec.plan.reordered() {
                    exec.term_order()
                        .iter()
                        .map(|i| i.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                } else {
                    "written".to_string()
                },
            );
        }
        if matches!(
            query.kind,
            QueryKind::PairFilter { .. } | QueryKind::PairTopK { .. }
        ) {
            filter.set(
                "bounds",
                if exec.load_first() {
                    "skipped"
                } else {
                    "first"
                },
            );
        }
        // Per-comparison estimates land on the comparison's term nodes (a
        // multi-term expression shares its comparison's estimate).
        if let QueryKind::Filter { predicate } | QueryKind::PairFilter { predicate, .. } =
            &query.kind
        {
            let comparisons = predicate.comparisons();
            if exec.sampled && exec.plan.term_estimates.len() == comparisons.len() {
                let mut term_idx = 0;
                for (ci, cmp) in comparisons.iter().enumerate() {
                    let est = format!("{:.3}", exec.plan.term_estimates[ci]);
                    for _ in cmp.expr.terms() {
                        if let Some(node) = filter.children.get_mut(term_idx) {
                            node.set("est_selectivity", &est);
                        }
                        term_idx += 1;
                    }
                }
            }
        }
    }
    root
}

/// Annotates a plan with measured statistics, copying every counter of
/// `stats` verbatim onto its stage node — the `EXPLAIN ANALYZE` half.
///
/// `rows` is the query's result-row count (not part of [`QueryStats`]).
pub fn annotate(mut plan: PlanNode, stats: &QueryStats, rows: u64) -> PlanNode {
    use masksearch_obs::keys;
    plan.set(keys::WALL_US, stats.total_wall.as_micros() as u64);
    plan.set(keys::CANDIDATES, stats.candidates);
    plan.set("rows", rows);
    plan.set("io_virtual_us", stats.io_virtual.as_micros() as u64);
    if let Some(select) = plan.find_mut("select") {
        select.set(keys::WALL_US, stats.resolve_wall.as_micros() as u64);
        select.set(keys::INDEX_PROBES, stats.index_probes);
        select.set(keys::INDEX_ROWS, stats.index_rows);
        select.set(keys::PLANNER_INDEX_ON, stats.planner_index_on);
        select.set(keys::PLANNER_INDEX_OFF, stats.planner_index_off);
    }
    if let Some(bind) = plan.find_mut("pair.bind") {
        bind.set(keys::PAIRS_BOUND, stats.pairs_bound);
    }
    if let Some(filter) = plan.find_mut("filter") {
        filter.set(keys::WALL_US, stats.filter_wall.as_micros() as u64);
        filter.set(keys::PRUNED, stats.pruned);
        filter.set(keys::ACCEPTED, stats.accepted_without_load);
        filter.set(keys::VERIFIED, stats.verified);
        if stats.candidates > 0 {
            filter.set(
                "actual_selectivity",
                format!("{:.3}", rows as f64 / stats.candidates as f64),
            );
        }
        filter.set(keys::PLANNER_BOUNDS_SKIPPED, stats.planner_bounds_skipped);
        filter.set(keys::PLANNER_REORDERS, stats.planner_reorders);
    }
    if let Some(verify) = plan.find_mut("verify") {
        verify.set(keys::WALL_US, stats.verify_wall.as_micros() as u64);
        verify.set(keys::LOADED, stats.masks_loaded);
        verify.set(keys::BYTES_READ, stats.bytes_read);
        verify.set(keys::INDEXES_BUILT, stats.indexes_built);
        verify.set(keys::TILES_PRUNED, stats.tiles_pruned);
        verify.set(keys::TILES_HIST, stats.tiles_hist);
        verify.set(keys::TILES_SCANNED, stats.tiles_scanned);
        verify.set(keys::PLANNER_KERNEL_ON, stats.planner_kernel_on);
        verify.set(keys::PLANNER_KERNEL_OFF, stats.planner_kernel_off);
    }
    plan
}

/// The *shape key* of a query: its structure without literal constants,
/// used to bucket per-shape statistics ([`masksearch_obs::ShapeStatsRegistry`]).
///
/// Two queries share a shape exactly when a cost-based planner would treat
/// them alike: same kind, same CP-term count and ROI/source mix, same
/// kernel and indexing configuration.
pub fn shape_key(query: &Query, config: &SessionConfig) -> String {
    let terms = cp_terms(query);
    let mut rois: Vec<&str> = terms
        .iter()
        .map(|t| match t.roi {
            RoiSpec::Constant(_) => "const",
            RoiSpec::ObjectBox => "object",
            RoiSpec::FullMask => "full",
        })
        .collect();
    rois.sort_unstable();
    rois.dedup();
    let roi = if rois.is_empty() {
        "none".to_string()
    } else {
        rois.join("+")
    };
    format!(
        "{}/cp={}/roi={}/kernel={}/idx={}",
        kind_name(&query.kind),
        terms.len(),
        roi,
        config.kernel_mode.label(),
        indexing_name(config.indexing_mode),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::MaskJoin;
    use crate::spec::Order;
    use masksearch_core::{PixelRange, Roi};
    use std::time::Duration;

    fn config() -> SessionConfig {
        SessionConfig::default().threads(2)
    }

    fn filter_query() -> Query {
        Query::filter_cp_gt(
            Roi::new(0, 0, 16, 16).unwrap(),
            PixelRange::new(0.5, 1.0).unwrap(),
            10.0,
        )
    }

    #[test]
    fn plan_has_the_two_stage_skeleton() {
        let p = plan(&filter_query(), &config());
        assert_eq!(p.name, "query");
        assert_eq!(p.prop("kind"), Some("filter"));
        assert!(p.find("select").is_some());
        let filter = p.find("filter").unwrap();
        assert_eq!(filter.prop("strategy"), Some("chi-bounds"));
        assert_eq!(filter.counter("cp_terms"), Some(1));
        assert_eq!(filter.children[0].name, "term");
        assert!(filter.children[0]
            .prop("cp")
            .unwrap()
            .starts_with("cp(own,box("));
        // The default kernel policy is the planner's per-mask decision;
        // forcing resolves it statically.
        assert_eq!(p.find("verify").unwrap().prop("kernel"), Some("auto"));
        let forced = plan(&filter_query(), &config().tiled_kernel(true));
        assert_eq!(forced.find("verify").unwrap().prop("kernel"), Some("tiled"));
    }

    #[test]
    fn disabled_indexing_plans_load_all() {
        let cfg = config()
            .indexing_mode(IndexingMode::Disabled)
            .tiled_kernel(false);
        let p = plan(&filter_query(), &cfg);
        assert_eq!(p.find("filter").unwrap().prop("strategy"), Some("load-all"));
        assert_eq!(p.find("verify").unwrap().prop("kernel"), Some("scan"));
    }

    #[test]
    fn pair_plans_carry_the_bind_stage_and_ranked_props() {
        let range = PixelRange::new(0.5, 1.0).unwrap();
        let q = Query::pair_top_k(
            MaskJoin::new(Selection::all(), Selection::all()),
            Expr::Cp(CpTerm::full_mask(range).with_source(TermSource::Left)),
            5,
            Order::Asc,
        );
        let p = plan(&q, &config());
        assert_eq!(p.prop("k"), Some("5"));
        assert_eq!(p.prop("order"), Some("asc"));
        let bind = p.find("pair.bind").unwrap();
        assert_eq!(bind.children.len(), 2);
    }

    #[test]
    fn annotate_copies_stats_verbatim() {
        let stats = QueryStats {
            candidates: 100,
            pruned: 70,
            accepted_without_load: 20,
            verified: 10,
            masks_loaded: 10,
            bytes_read: 4096,
            indexes_built: 3,
            tiles_pruned: 40,
            tiles_hist: 5,
            tiles_scanned: 2,
            filter_wall: Duration::from_micros(120),
            verify_wall: Duration::from_micros(950),
            total_wall: Duration::from_micros(1100),
            ..Default::default()
        };
        let annotated = annotate(plan(&filter_query(), &config()), &stats, 25);
        assert_eq!(annotated.counter("wall_us"), Some(1100));
        assert_eq!(annotated.counter("candidates"), Some(100));
        assert_eq!(annotated.counter("rows"), Some(25));
        let filter = annotated.find("filter").unwrap();
        assert_eq!(filter.counter("pruned"), Some(70));
        assert_eq!(filter.counter("accepted"), Some(20));
        assert_eq!(filter.counter("verified"), Some(10));
        assert_eq!(filter.counter("wall_us"), Some(120));
        let verify = annotated.find("verify").unwrap();
        assert_eq!(verify.counter("loaded"), Some(10));
        assert_eq!(verify.counter("bytes_read"), Some(4096));
        assert_eq!(verify.counter("tiles_pruned"), Some(40));
    }

    #[test]
    fn shape_keys_ignore_constants_but_track_structure() {
        let cfg = config();
        let a = Query::filter_cp_gt(
            Roi::new(0, 0, 8, 8).unwrap(),
            PixelRange::new(0.1, 0.9).unwrap(),
            5.0,
        );
        let b = Query::filter_cp_gt(
            Roi::new(4, 4, 12, 12).unwrap(),
            PixelRange::new(0.5, 1.0).unwrap(),
            900.0,
        );
        assert_eq!(shape_key(&a, &cfg), shape_key(&b, &cfg));
        assert_eq!(
            shape_key(&a, &cfg),
            "filter/cp=1/roi=const/kernel=auto/idx=incremental"
        );
        let ranked = Query::top_k_cp(
            Roi::new(0, 0, 8, 8).unwrap(),
            PixelRange::new(0.1, 0.9).unwrap(),
            3,
            Order::Desc,
        );
        assert_ne!(shape_key(&a, &cfg), shape_key(&ranked, &cfg));
        assert_ne!(shape_key(&a, &cfg), shape_key(&a, &cfg.tiled_kernel(false)));
    }

    #[test]
    fn render_is_indented_and_stable() {
        let lines = plan(&filter_query(), &config()).render();
        assert!(lines[0].starts_with("query kind=filter"));
        assert!(lines.iter().any(|l| l.starts_with("  select ")));
        assert!(lines.iter().any(|l| l.starts_with("  filter ")));
        assert!(lines.iter().any(|l| l.starts_with("    term ")));
    }
}
