//! Query outputs: result rows and per-query execution statistics.

use masksearch_core::{ImageId, MaskId};
use std::time::Duration;

/// The key of a result row: a mask for mask-level queries, an image for
/// grouped (aggregation) queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RowKey {
    /// A mask id.
    Mask(MaskId),
    /// An image id (grouped queries).
    Image(ImageId),
}

/// One row of a query result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultRow {
    /// The mask or image the row refers to.
    pub key: RowKey,
    /// The computed expression / aggregate value, when the executor had to
    /// compute it exactly. Rows accepted purely from index bounds carry
    /// `None` (the paper's filter queries return ids, not values).
    pub value: Option<f64>,
}

impl ResultRow {
    /// A row keyed by mask id.
    pub fn mask(mask_id: MaskId, value: Option<f64>) -> Self {
        Self {
            key: RowKey::Mask(mask_id),
            value,
        }
    }

    /// A row keyed by image id.
    pub fn image(image_id: ImageId, value: Option<f64>) -> Self {
        Self {
            key: RowKey::Image(image_id),
            value,
        }
    }
}

/// Execution statistics for one query — the quantities the paper's
/// evaluation reports (number of masks loaded, FML, stage breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Number of masks targeted by the query after the relational selection.
    pub candidates: u64,
    /// Masks pruned by the filter stage (guaranteed to fail).
    pub pruned: u64,
    /// Masks accepted by the filter stage without loading (guaranteed to
    /// satisfy).
    pub accepted_without_load: u64,
    /// Masks sent to the verification stage.
    pub verified: u64,
    /// Masks actually loaded from storage during the query (the paper's
    /// "number of masks loaded", Table 2).
    pub masks_loaded: u64,
    /// Bytes read from storage during the query.
    pub bytes_read: u64,
    /// CHIs built during the query (incremental indexing, §3.6).
    pub indexes_built: u64,
    /// Verification-kernel tiles decided from min/max summaries alone
    /// (all-in or all-out) without touching pixels.
    pub tiles_pruned: u64,
    /// Verification-kernel tiles answered exactly from tile histograms.
    pub tiles_hist: u64,
    /// Verification-kernel tiles that fell back to a pixel scan.
    pub tiles_scanned: u64,
    /// Pair (multi-mask) queries: images where both mask bindings resolved
    /// and the pair entered the candidate set.
    pub pairs_bound: u64,
    /// Verified masks the planner routed through the tiled kernel.
    pub planner_kernel_on: u64,
    /// Verified masks the planner routed to the reference scan.
    pub planner_kernel_off: u64,
    /// Pair candidates whose bounds pass the planner skipped (load-first).
    pub planner_bounds_skipped: u64,
    /// 1 when the planner evaluated CP comparisons off written order
    /// (summed across partials by the cluster merge).
    pub planner_reorders: u64,
    /// Secondary-index point probes issued during candidate resolution.
    pub index_probes: u64,
    /// Mask ids returned by secondary-index probes before re-verification
    /// against the full selection.
    pub index_rows: u64,
    /// Metadata-constrained resolutions answered through a secondary index.
    pub planner_index_on: u64,
    /// Metadata-constrained resolutions answered by a catalog scan.
    pub planner_index_off: u64,
    /// Wall-clock time spent resolving the relational selection into the
    /// candidate set (catalog scan or secondary-index probe). This is the
    /// stage a metadata index accelerates, so it is reported separately
    /// from the filter/verify stages that follow it.
    pub resolve_wall: Duration,
    /// Wall-clock time spent in the filter stage.
    pub filter_wall: Duration,
    /// Wall-clock time spent in the verification stage (including index
    /// building in incremental mode).
    pub verify_wall: Duration,
    /// Total wall-clock time of the query, including candidate resolution.
    pub total_wall: Duration,
    /// Virtual I/O time charged by the disk cost model during the query.
    pub io_virtual: Duration,
}

impl QueryStats {
    /// Fraction of targeted masks that were loaded from storage (the paper's
    /// FML, §4.4). Zero when there were no candidates.
    pub fn fml(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.masks_loaded as f64 / self.candidates as f64
        }
    }

    /// Modelled end-to-end time: CPU wall time plus the virtual I/O charge.
    ///
    /// This is the quantity the experiment harness reports as "query time":
    /// on the paper's hardware the I/O would overlap poorly with compute
    /// because the disk is the bottleneck, so the sum is the right
    /// first-order model.
    pub fn modeled_total(&self) -> Duration {
        self.total_wall + self.io_virtual
    }
}

/// The complete output of one query: rows plus statistics.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Result rows. For filter queries the order is ascending by key; for
    /// ranked queries the order follows the requested ordering.
    pub rows: Vec<ResultRow>,
    /// Execution statistics.
    pub stats: QueryStats,
}

impl QueryOutput {
    /// Mask ids of all mask-keyed rows, in row order.
    pub fn mask_ids(&self) -> Vec<MaskId> {
        self.rows
            .iter()
            .filter_map(|r| match r.key {
                RowKey::Mask(id) => Some(id),
                RowKey::Image(_) => None,
            })
            .collect()
    }

    /// Image ids of all image-keyed rows, in row order.
    pub fn image_ids(&self) -> Vec<ImageId> {
        self.rows
            .iter()
            .filter_map(|r| match r.key {
                RowKey::Image(id) => Some(id),
                RowKey::Mask(_) => None,
            })
            .collect()
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the query returned no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_constructors_and_accessors() {
        let out = QueryOutput {
            rows: vec![
                ResultRow::mask(MaskId::new(3), Some(12.0)),
                ResultRow::mask(MaskId::new(5), None),
                ResultRow::image(ImageId::new(9), Some(1.5)),
            ],
            stats: QueryStats::default(),
        };
        assert_eq!(out.len(), 3);
        assert!(!out.is_empty());
        assert_eq!(out.mask_ids(), vec![MaskId::new(3), MaskId::new(5)]);
        assert_eq!(out.image_ids(), vec![ImageId::new(9)]);
    }

    #[test]
    fn fml_and_modeled_total() {
        let stats = QueryStats {
            candidates: 1000,
            masks_loaded: 37,
            total_wall: Duration::from_millis(20),
            io_virtual: Duration::from_millis(380),
            ..Default::default()
        };
        assert!((stats.fml() - 0.037).abs() < 1e-12);
        assert_eq!(stats.modeled_total(), Duration::from_millis(400));
        assert_eq!(QueryStats::default().fml(), 0.0);
    }
}
