//! Write operations against a session: the DML half of the query model.

use masksearch_core::{Mask, MaskId, MaskRecord};

/// A write operation lowered from SQL (or built programmatically) and
/// applied through [`Session::apply`](crate::Session::apply).
#[derive(Debug, Clone)]
pub enum Mutation {
    /// Insert (or overwrite) a batch of masks with their catalog records,
    /// committed atomically when the underlying store supports it.
    Insert(Vec<(MaskRecord, Mask)>),
    /// Delete a batch of masks by id.
    Delete(Vec<MaskId>),
}

impl Mutation {
    /// Number of masks the mutation touches.
    pub fn len(&self) -> usize {
        match self {
            Mutation::Insert(batch) => batch.len(),
            Mutation::Delete(ids) => ids.len(),
        }
    }

    /// Returns `true` if the mutation touches no masks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a mutation did, as reported back to the caller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationOutcome {
    /// Masks inserted (or overwritten).
    pub inserted: usize,
    /// Masks deleted.
    pub deleted: usize,
}
