//! Write operations against a session: the DML half of the query model.

use masksearch_core::{Label, Mask, MaskId, MaskRecord, MaskType, ModelId};
use masksearch_storage::MetaColumn;

/// An in-place change to one existing mask: re-masked pixels and/or new
/// metadata. `None` fields keep their current value.
///
/// The primary key (`mask_id`) names the target and the sharding key
/// (`image_id`) is immutable — a mask can never migrate between shards
/// through an UPDATE.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MaskUpdate {
    /// Id of the mask to update.
    pub mask_id: MaskId,
    /// New pixel values (row-major, `[0, 1]`), when re-masking.
    pub pixels: Option<Vec<f32>>,
    /// New `(width, height)`; only valid together with `pixels`.
    pub shape: Option<(u32, u32)>,
    /// New model id.
    pub model_id: Option<ModelId>,
    /// New mask type.
    pub mask_type: Option<MaskType>,
    /// New predicted label.
    pub predicted_label: Option<Label>,
    /// New true label.
    pub true_label: Option<Label>,
}

impl MaskUpdate {
    /// A no-op update of `mask_id` (builder-style starting point).
    pub fn of(mask_id: MaskId) -> Self {
        Self {
            mask_id,
            ..Self::default()
        }
    }

    /// Returns `true` if no field would change.
    pub fn is_noop(&self) -> bool {
        self.pixels.is_none()
            && self.shape.is_none()
            && self.model_id.is_none()
            && self.mask_type.is_none()
            && self.predicted_label.is_none()
            && self.true_label.is_none()
    }
}

/// A write operation lowered from SQL (or built programmatically) and
/// applied through [`Session::apply`](crate::Session::apply).
#[derive(Debug, Clone)]
pub enum Mutation {
    /// Insert (or overwrite) a batch of masks with their catalog records,
    /// committed atomically when the underlying store supports it.
    Insert(Vec<(MaskRecord, Mask)>),
    /// Delete a batch of masks by id.
    Delete(Vec<MaskId>),
    /// Update existing masks in place (pixels and/or metadata), committed
    /// atomically like an insert batch.
    Update(Vec<MaskUpdate>),
    /// Define a secondary metadata index.
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed metadata column.
        column: MetaColumn,
        /// Swallow a duplicate definition instead of erroring.
        if_not_exists: bool,
    },
    /// Drop a secondary metadata index by name.
    DropIndex {
        /// Index name.
        name: String,
        /// Swallow a missing definition instead of erroring.
        if_exists: bool,
    },
}

impl Mutation {
    /// Number of masks the mutation touches (DDL touches none).
    pub fn len(&self) -> usize {
        match self {
            Mutation::Insert(batch) => batch.len(),
            Mutation::Delete(ids) => ids.len(),
            Mutation::Update(updates) => updates.len(),
            Mutation::CreateIndex { .. } | Mutation::DropIndex { .. } => 0,
        }
    }

    /// Returns `true` if the mutation touches no masks and is not DDL.
    pub fn is_empty(&self) -> bool {
        match self {
            Mutation::CreateIndex { .. } | Mutation::DropIndex { .. } => false,
            other => other.len() == 0,
        }
    }
}

/// What a mutation did, as reported back to the caller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationOutcome {
    /// Masks inserted (or overwritten).
    pub inserted: usize,
    /// Masks deleted.
    pub deleted: usize,
    /// Masks updated in place.
    pub updated: usize,
}
