//! # masksearch-query
//!
//! The MaskSearch query model and execution framework (paper §2 and §3.2–3.6):
//!
//! * [`spec`] — ROI specifications (constant, per-mask object box, full
//!   mask), `CP` terms, scalar aggregates and orderings.
//! * [`expr`] — arithmetic expressions over `CP` terms with interval
//!   (bound) evaluation, used for generic predicates such as
//!   `CP(...) / CP(...) < T` (§3.3).
//! * [`predicate`] — comparisons and AND/OR trees evaluated in three-valued
//!   logic over bounds.
//! * [`query`] — the [`Query`] type: selection + one of Filter / Top-K /
//!   Aggregation / Mask-aggregation, with builder helpers.
//! * [`session`] — [`Session`]: owns the mask store, catalog, buffer cache
//!   and CHI store, supports eager or incremental indexing (§3.6), and
//!   executes queries with the filter–verification framework.
//! * [`exec`] — the executors themselves.
//! * [`planner`] — plan-time feature extraction feeding the cost model of
//!   `masksearch-plan`; every query is planned before dispatch and every
//!   choice is byte-identical to the fixed strategies it replaces.
//! * [`explain`] — `EXPLAIN` / `EXPLAIN ANALYZE` plan trees and normalized
//!   query-shape keys for persisted per-shape statistics.
//! * [`result`] — result rows and per-query statistics (masks loaded,
//!   fraction of masks loaded, stage timings).
//!
//! ```
//! use masksearch_core::{Mask, MaskId, MaskRecord, PixelRange, Roi};
//! use masksearch_index::ChiConfig;
//! use masksearch_query::{IndexingMode, Query, Session, SessionConfig};
//! use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};
//! use std::sync::Arc;
//!
//! // A tiny database of two masks.
//! let store = MemoryMaskStore::for_tests();
//! let mut catalog = Catalog::new();
//! for i in 0..2u64 {
//!     let mask = Mask::from_fn(32, 32, move |x, _| if i == 0 { 0.9 } else { x as f32 / 64.0 });
//!     store.put(MaskId::new(i), &mask).unwrap();
//!     catalog.insert(MaskRecord::builder(MaskId::new(i)).shape(32, 32).build());
//! }
//! let session = Session::new(
//!     Arc::new(store),
//!     catalog,
//!     SessionConfig::new(ChiConfig::new(8, 8, 16).unwrap()).indexing_mode(IndexingMode::Eager),
//! ).unwrap();
//!
//! // Masks with more than 500 pixels above 0.8 in the top-left quadrant.
//! let query = Query::filter_cp_gt(
//!     Roi::new(0, 0, 16, 16).unwrap(),
//!     PixelRange::new(0.8, 1.0).unwrap(),
//!     200.0,
//! );
//! let result = session.execute(&query).unwrap();
//! assert_eq!(result.mask_ids(), vec![MaskId::new(0)]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod eval;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod merge;
pub mod mutation;
pub mod planner;
pub mod predicate;
pub mod query;
pub mod result;
pub mod session;
pub mod spec;

pub use error::{QueryError, QueryResult as QueryResultExt};
pub use explain::{shape_key, PlanNode};
pub use expr::{Expr, Interval};
pub use masksearch_plan::{KernelMode, PairMode};
pub use masksearch_storage::{MetaColumn, MetaIndexDef, MetaIndexRegistry};
pub use merge::RankedPartial;
pub use mutation::{MaskUpdate, Mutation, MutationOutcome};
pub use planner::ExecPlan;
pub use predicate::{CmpOp, Comparison, Predicate, Truth};
pub use query::{MaskJoin, Query, QueryKind, Selection};
pub use result::{QueryOutput, QueryStats, ResultRow, RowKey};
pub use session::{IndexingMode, Session, SessionConfig};
pub use spec::{CpTerm, Order, RoiSpec, ScalarAgg, TermSource};
