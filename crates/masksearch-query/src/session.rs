//! Sessions: the long-lived object that owns the mask store, catalog, buffer
//! cache, and CHI store, and executes queries.
//!
//! A [`Session`] corresponds to the paper's "MaskSearch session" (§3.2,
//! §3.6): the CHI of each mask is held in memory for the lifetime of the
//! session, may be built eagerly up front (the *MS* configuration of the
//! evaluation), incrementally as masks are first touched by queries
//! (*MS-II*), or not at all (which makes the session behave like the NumPy
//! baseline — useful for cost comparisons inside one API).
//!
//! Sessions are also *writable*: [`Session::insert_masks`] and
//! [`Session::delete_masks`] push batches through the store (durably, when
//! the store supports it), keep the CHI store and mask cache consistent, and
//! publish the batch's catalog records atomically. Candidate resolution
//! happens under one catalog guard, so a query's *candidate set* reflects
//! whole batches only — never half of one. Per-mask record lookups during
//! verification are read-committed: a query racing a batch that overwrites
//! its candidates' metadata may see some records from before and some from
//! after that batch.

use crate::error::{QueryError, QueryResult};
use crate::eval;
use crate::exec;
use crate::explain::{self, PlanNode};
use crate::merge;
use crate::mutation::{MaskUpdate, Mutation, MutationOutcome};
use crate::planner::{self, ExecPlan};
use crate::query::{MaskJoin, Query, QueryKind, Selection};
use crate::result::{QueryOutput, QueryStats};
use masksearch_core::{ImageId, Mask, MaskAgg, MaskId, MaskRecord, TiledMask};
use masksearch_index::{build_chi_store, BuildOptions, Chi, ChiConfig, ChiReader, ChiStore};
use masksearch_obs::counters as obs_counters;
use masksearch_obs::{CatalogStats, ShapeObservation, ShapeStatsRegistry};
use masksearch_plan::{KernelMode, PairMode};
use masksearch_storage::{Catalog, MaskCache, MaskStore, MetaColumn, MetaIndexRegistry};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::Path;
use std::sync::Arc;

/// When CHIs are built relative to query execution (§3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexingMode {
    /// Build the CHI of every catalogued mask when the session starts
    /// (the paper's vanilla "MS" configuration).
    Eager,
    /// Build the CHI of a mask the first time a query loads it
    /// (the paper's "MS-II" configuration).
    Incremental,
    /// Never build or use indexes; every query loads every targeted mask.
    Disabled,
}

/// Session configuration.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// CHI configuration (cell size and bin count).
    pub chi_config: ChiConfig,
    /// Indexing mode.
    pub indexing_mode: IndexingMode,
    /// Worker threads used by the filter/verification stages and bulk index
    /// builds.
    pub threads: usize,
    /// Byte budget of the decoded-mask buffer cache (0 disables caching,
    /// reproducing the paper's cold-cache setting).
    pub cache_bytes: u64,
    /// When a query uses `roi = object` but a mask has no recorded object
    /// box: fall back to the full mask (`true`) or fail the query (`false`).
    pub object_box_fallback: bool,
    /// How verification-stage `CP` terms are routed: through the tiled
    /// kernel (per-tile min/max + histogram summaries; see
    /// `masksearch-core`), the reference batched scan, or — the default —
    /// per mask as the planner decides. Counts are byte-identical under
    /// every mode; forcing exists for benchmarking and conformance tests.
    pub kernel_mode: KernelMode,
    /// How pair (join) queries stage their work: composed-bounds pass first,
    /// load-everything first, or — the default — as the planner decides
    /// from the shape's observed verified fraction. Results are
    /// byte-identical under every mode.
    pub pair_mode: PairMode,
}

impl SessionConfig {
    /// Creates a configuration with the given CHI parameters and defaults:
    /// incremental indexing, all available threads, no mask cache.
    pub fn new(chi_config: ChiConfig) -> Self {
        Self {
            chi_config,
            indexing_mode: IndexingMode::Incremental,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_bytes: 0,
            object_box_fallback: true,
            kernel_mode: KernelMode::Auto,
            pair_mode: PairMode::Auto,
        }
    }

    /// Sets the indexing mode.
    pub fn indexing_mode(mut self, mode: IndexingMode) -> Self {
        self.indexing_mode = mode;
        self
    }

    /// Sets the number of worker threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the buffer-cache byte budget.
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the missing-object-box policy.
    pub fn object_box_fallback(mut self, fallback: bool) -> Self {
        self.object_box_fallback = fallback;
        self
    }

    /// Forces the tiled verification kernel on (`true`) or off (`false`).
    ///
    /// Deprecated spelling of [`SessionConfig::kernel_mode`] from before the
    /// planner existed, kept for callers that need a fixed pipeline
    /// (benchmarks, conformance tests): `true` maps to
    /// [`KernelMode::ForceOn`], `false` to [`KernelMode::ForceOff`]. New
    /// code should leave the default [`KernelMode::Auto`] and let the
    /// planner choose per mask.
    pub fn tiled_kernel(mut self, enabled: bool) -> Self {
        self.kernel_mode = if enabled {
            KernelMode::ForceOn
        } else {
            KernelMode::ForceOff
        };
        self
    }

    /// Sets the planner's kernel policy (force on, force off, or decide per
    /// mask).
    pub fn kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernel_mode = mode;
        self
    }

    /// Sets the planner's pair stage-order policy (force bounds-first,
    /// force load-first, or decide from observed statistics).
    pub fn pair_mode(mut self, mode: PairMode) -> Self {
        self.pair_mode = mode;
        self
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self::new(ChiConfig::default())
    }
}

/// A MaskSearch session: storage + catalog + indexes + query execution +
/// write path.
pub struct Session {
    store: Arc<dyn MaskStore>,
    /// The catalog lives behind a lock so writes publish whole batches
    /// atomically; every accessor copies out what it needs, so no lock guard
    /// ever escapes.
    catalog: RwLock<Catalog>,
    config: SessionConfig,
    chi: Arc<ChiStore>,
    /// When the store maintains `chi` itself on commit (the durable mask
    /// database does), the session skips its own index maintenance on writes
    /// instead of rebuilding the same CHIs a second time.
    chi_maintained_by_store: bool,
    cache: MaskCache,
    /// Indexes over *aggregated* masks (one per `MASK_AGG` signature), keyed
    /// inside each store by the image id (§3.4).
    agg_indexes: RwLock<HashMap<String, Arc<ChiStore>>>,
    /// Serialises whole write operations. Without it, two concurrent writes
    /// to the same mask id could commit to the store in one order and
    /// publish their catalog records in the other, leaving a record that
    /// describes a different write's pixels.
    writes: Mutex<()>,
    /// Per-query-shape aggregate statistics. Shared with the store when the
    /// store persists one across restarts (the durable mask database);
    /// otherwise private to this session's lifetime.
    shape_stats: Arc<ShapeStatsRegistry>,
    /// Secondary metadata index definitions. Shared with the store when the
    /// store persists them across restarts (the durable mask database);
    /// otherwise private to this session's lifetime.
    meta_indexes: Arc<MetaIndexRegistry>,
}

/// How one candidate resolution answered a metadata selection: through a
/// secondary index (probes + pre-verification row count) or a catalog scan.
#[derive(Debug, Clone, Default)]
pub(crate) struct ResolveTrace {
    /// Secondary-index point probes issued (one per probed value).
    pub index_probes: u64,
    /// Mask ids the probes returned before re-verification.
    pub index_rows: u64,
    /// Name of the index used, `None` on the scan path.
    pub index_name: Option<String>,
    /// `true` when the selection constrained at least one indexable
    /// metadata column — the gate for the planner's index-on/off counters.
    pub constrained: bool,
}

impl ResolveTrace {
    /// Folds this resolution into a query's statistics.
    pub fn apply(&self, stats: &mut QueryStats) {
        stats.index_probes += self.index_probes;
        stats.index_rows += self.index_rows;
        if self.constrained {
            if self.index_name.is_some() {
                stats.planner_index_on += 1;
            } else {
                stats.planner_index_off += 1;
            }
        }
    }
}

/// A resolved index-selection decision: which index to probe with which
/// key values.
struct IndexChoice {
    name: String,
    column: MetaColumn,
    values: Vec<u64>,
}

/// The equality key values `selection` constrains `column` to, as the raw
/// `u64` keys the catalog's secondary maps are probed with. `None` when the
/// selection leaves the column unconstrained.
fn selection_values(selection: &Selection, column: MetaColumn) -> Option<Vec<u64>> {
    let mut values = match column {
        MetaColumn::ImageId => selection
            .image_ids
            .as_ref()
            .map(|ids| ids.iter().map(|i| i.raw()).collect::<Vec<u64>>())?,
        MetaColumn::ModelId => vec![selection.model_id?.raw()],
        MetaColumn::MaskType => selection
            .mask_types
            .as_ref()
            .map(|types| types.iter().map(|t| t.to_code() as u64).collect())?,
        MetaColumn::PredictedLabel => selection
            .predicted_labels
            .as_ref()
            .map(|labels| labels.iter().map(|l| l.raw()).collect())?,
    };
    values.sort_unstable();
    values.dedup();
    Some(values)
}

/// Whether the selection constrains any indexable metadata column.
fn has_meta_constraint(selection: &Selection) -> bool {
    MetaColumn::ALL
        .into_iter()
        .any(|c| selection_values(selection, c).is_some())
}

impl Session {
    /// Creates a session. In [`IndexingMode::Eager`] this builds the CHI of
    /// every catalogued mask up front (charging the store's cost model, as
    /// the paper attributes up-front indexing cost to the 0-th query).
    pub fn new(
        store: Arc<dyn MaskStore>,
        catalog: Catalog,
        config: SessionConfig,
    ) -> QueryResult<Self> {
        let chi = match config.indexing_mode {
            IndexingMode::Eager => {
                let ids = catalog.mask_ids();
                build_chi_store(
                    store.as_ref(),
                    &ids,
                    config.chi_config,
                    BuildOptions {
                        threads: config.threads,
                    },
                )?
            }
            _ => ChiStore::new(config.chi_config),
        };
        Ok(Self {
            cache: MaskCache::new(config.cache_bytes),
            shape_stats: store.shape_stats().unwrap_or_default(),
            meta_indexes: store.meta_indexes().unwrap_or_default(),
            store,
            catalog: RwLock::new(catalog),
            config,
            chi: Arc::new(chi),
            chi_maintained_by_store: false,
            agg_indexes: RwLock::new(HashMap::new()),
            writes: Mutex::new(()),
        })
    }

    /// Creates a session around an existing CHI store (e.g. loaded from a
    /// previous session's persisted index file).
    pub fn with_index(
        store: Arc<dyn MaskStore>,
        catalog: Catalog,
        config: SessionConfig,
        chi: ChiStore,
    ) -> Self {
        Self {
            cache: MaskCache::new(config.cache_bytes),
            shape_stats: store.shape_stats().unwrap_or_default(),
            meta_indexes: store.meta_indexes().unwrap_or_default(),
            store,
            catalog: RwLock::new(catalog),
            config,
            chi: Arc::new(chi),
            chi_maintained_by_store: false,
            agg_indexes: RwLock::new(HashMap::new()),
            writes: Mutex::new(()),
        }
    }

    /// Creates a session over a store that maintains the shared CHI store
    /// itself on every commit (the durable mask database of `masksearch-db`).
    /// The session then uses `chi` for filtering but leaves index
    /// maintenance on writes to the store, avoiding duplicate CHI builds.
    pub fn with_store_maintained_index(
        store: Arc<dyn MaskStore>,
        catalog: Catalog,
        config: SessionConfig,
        chi: Arc<ChiStore>,
    ) -> Self {
        Self {
            cache: MaskCache::new(config.cache_bytes),
            shape_stats: store.shape_stats().unwrap_or_default(),
            meta_indexes: store.meta_indexes().unwrap_or_default(),
            store,
            catalog: RwLock::new(catalog),
            config,
            chi,
            chi_maintained_by_store: true,
            agg_indexes: RwLock::new(HashMap::new()),
            writes: Mutex::new(()),
        }
    }

    /// Acquires the catalog lock for reading, charging the wait to the
    /// global lock-contention counters so serving-layer profiles can see
    /// catalog contention directly (the suspected shape of multi-worker
    /// scaling plateaus).
    pub(crate) fn catalog_read(&self) -> RwLockReadGuard<'_, Catalog> {
        obs_counters::timed_acquire(
            &obs_counters::CATALOG_READ_WAIT_US,
            &obs_counters::CATALOG_LOCK_ACQUIRES,
            || self.catalog.read(),
        )
    }

    /// One read guard over the per-mask CHI store for a batch of lookups —
    /// the filter stage's hot loop. `None` when indexing is disabled (every
    /// candidate then goes to verification, as in [`Session::chi_for`]).
    pub(crate) fn chi_reader(&self) -> Option<ChiReader<'_>> {
        (self.config.indexing_mode != IndexingMode::Disabled).then(|| self.chi.reader())
    }

    /// Acquires the catalog lock for writing (see [`Session::catalog_read`]).
    fn catalog_write(&self) -> RwLockWriteGuard<'_, Catalog> {
        obs_counters::timed_acquire(
            &obs_counters::CATALOG_WRITE_WAIT_US,
            &obs_counters::CATALOG_LOCK_ACQUIRES,
            || self.catalog.write(),
        )
    }

    /// A point-in-time copy of the session's catalog.
    pub fn catalog(&self) -> Catalog {
        self.catalog_read().clone()
    }

    /// Number of catalogued masks.
    pub fn catalog_len(&self) -> usize {
        self.catalog_read().len()
    }

    /// The session's mask store.
    pub fn store(&self) -> &Arc<dyn MaskStore> {
        &self.store
    }

    /// Caps the filter/verification worker threads (floor 1).
    ///
    /// Embedding layers that multiplex several concurrent queries over one
    /// session — e.g. a service engine with its own worker pool — use this
    /// to divide the machine's cores among those queries instead of letting
    /// each query claim all of them.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The per-mask CHI store.
    pub fn chi_store(&self) -> &ChiStore {
        &self.chi
    }

    /// The decoded-mask buffer cache.
    pub fn cache(&self) -> &MaskCache {
        &self.cache
    }

    /// Number of masks currently indexed.
    pub fn indexed_masks(&self) -> usize {
        self.chi.len()
    }

    /// Total bytes of all in-memory indexes (per-mask plus aggregated).
    pub fn index_bytes(&self) -> u64 {
        let agg: u64 = self
            .agg_indexes
            .read()
            .values()
            .map(|s| s.total_bytes())
            .sum();
        self.chi.total_bytes() + agg
    }

    /// Persists the per-mask index to a file ("when a MaskSearch session
    /// ends, the CHI for all the masks in the session is persisted to disk",
    /// §3.6).
    pub fn persist_index(&self, path: impl AsRef<Path>) -> QueryResult<()> {
        self.chi.save(path).map_err(QueryError::from)
    }

    /// Loads a per-mask index file produced by [`Session::persist_index`].
    pub fn load_index_file(path: impl AsRef<Path>) -> QueryResult<ChiStore> {
        ChiStore::load(path).map_err(QueryError::from)
    }

    /// The catalog record of a mask, or an error if unknown.
    pub fn record(&self, mask_id: MaskId) -> QueryResult<MaskRecord> {
        self.catalog_read()
            .get(mask_id)
            .cloned()
            .ok_or(QueryError::UnknownMask(mask_id))
    }

    /// The CHI of a mask, if one exists and indexing is enabled.
    pub fn chi_for(&self, mask_id: MaskId) -> Option<Arc<Chi>> {
        if self.config.indexing_mode == IndexingMode::Disabled {
            return None;
        }
        self.chi.get(mask_id)
    }

    /// Loads a mask through the buffer cache.
    pub fn load_mask(&self, mask_id: MaskId) -> QueryResult<Arc<Mask>> {
        Ok(self.load_tiled(mask_id)?.mask_arc())
    }

    /// Loads a mask in tiled form through the buffer cache. Stores that
    /// maintain tile summaries (the durable mask database) seed the grid;
    /// otherwise it is built lazily on first kernel use.
    pub fn load_tiled(&self, mask_id: MaskId) -> QueryResult<Arc<TiledMask>> {
        self.cache
            .get_or_load_tiled(mask_id, || self.store.get_tiled(mask_id))
            .map_err(QueryError::from)
    }

    /// Evaluation options for the verification stage with the kernel
    /// resolved statically from the configuration alone (`ForceOff` scans,
    /// anything else uses the kernel). Execution paths that hold an
    /// [`ExecPlan`] resolve per mask via [`Session::verify_options_with`]
    /// instead.
    pub fn verify_options(&self) -> eval::VerifyOptions {
        self.verify_options_with(!matches!(self.config.kernel_mode, KernelMode::ForceOff))
    }

    /// Evaluation options for the verification stage with an explicit
    /// (planner-resolved) kernel decision.
    pub fn verify_options_with(&self, use_tiled_kernel: bool) -> eval::VerifyOptions {
        eval::VerifyOptions {
            object_box_fallback: self.config.object_box_fallback,
            use_tiled_kernel,
        }
    }

    /// Loads a mask and, in incremental mode, builds and retains its CHI
    /// (§3.6). Returns the tiled mask and whether an index was built.
    pub fn load_and_index(&self, mask_id: MaskId) -> QueryResult<(Arc<TiledMask>, bool)> {
        // Snapshot the CHI removal generation before loading: if a write
        // evicts this mask's index while we hold pre-write pixels, the
        // guarded install below refuses to put stale bounds in the index.
        let chi_generation = self.chi.removal_generation();
        let mask = self.load_tiled(mask_id)?;
        let built = if self.config.indexing_mode == IndexingMode::Incremental
            && !self.chi.contains(mask_id)
        {
            self.chi
                .index_mask_if_current(mask_id, mask.mask(), chi_generation)
        } else {
            false
        };
        Ok((mask, built))
    }

    /// Inserts (or overwrites) a batch of masks with their catalog records.
    ///
    /// The store commit happens first (atomically and durably when the store
    /// supports it), then the CHI store and mask cache are brought up to
    /// date, and finally the records are published to the catalog under one
    /// write guard — so a concurrent query's *candidate set* includes either
    /// none or all of the batch (per-mask record lookups afterwards are
    /// read-committed; see the module docs).
    pub fn insert_masks(&self, batch: &[(MaskRecord, Mask)]) -> QueryResult<usize> {
        if batch.is_empty() {
            return Ok(0);
        }
        let _writes = self.writes.lock();
        self.insert_batch_locked(batch)?;
        Ok(batch.len())
    }

    /// The body of [`Session::insert_masks`], assuming the caller already
    /// holds the write lock (shared with the UPDATE path, which rides the
    /// same evict-then-publish sequence).
    fn insert_batch_locked(&self, batch: &[(MaskRecord, Mask)]) -> QueryResult<()> {
        if !self.chi_maintained_by_store {
            // Evict the CHIs of overwritten ids before the new pixels can
            // become visible: stale bounds over new pixels could accept or
            // prune a mask without verification. Until the re-index below,
            // queries fall back to loading the mask.
            for (record, _) in batch {
                self.chi.remove(record.mask_id);
            }
        }
        self.store.insert_batch(batch)?;
        for (record, mask) in batch {
            self.cache.invalidate(record.mask_id);
            if !self.chi_maintained_by_store && self.config.indexing_mode != IndexingMode::Disabled
            {
                self.chi.index_mask(record.mask_id, mask);
            }
        }
        {
            let mut catalog = self.catalog_write();
            for (record, _) in batch {
                catalog.insert(record.clone());
            }
        }
        // Aggregated-mask indexes are built over group contents; any write
        // can invalidate them, so they are dropped and rebuilt on demand.
        self.agg_indexes.write().clear();
        Ok(())
    }

    /// The post-image of one update applied to the mask's current state —
    /// `current` when the mask was already rewritten earlier in the same
    /// statement or transaction, the committed catalog + store state
    /// otherwise. Fails with [`QueryError::UnknownMask`] before any side
    /// effect when the target does not exist.
    fn updated_entry(
        &self,
        current: Option<&(MaskRecord, Mask)>,
        catalog: &Catalog,
        update: &MaskUpdate,
    ) -> QueryResult<(MaskRecord, Mask)> {
        let (mut record, mut mask) = match current {
            Some((record, mask)) => (record.clone(), mask.clone()),
            None => {
                let record = catalog
                    .get(update.mask_id)
                    .cloned()
                    .ok_or(QueryError::UnknownMask(update.mask_id))?;
                let mask = self.store.get(update.mask_id)?;
                (record, mask)
            }
        };
        if let Some(pixels) = &update.pixels {
            let (width, height) = update.shape.unwrap_or((record.width, record.height));
            if (width as usize) * (height as usize) != pixels.len() {
                return Err(QueryError::invalid(format!(
                    "UPDATE of mask {} sets {} pixels but the mask shape is {}x{}",
                    update.mask_id,
                    pixels.len(),
                    width,
                    height
                )));
            }
            if (width, height) != (record.width, record.height) {
                // A reshape can leave the recorded object box outside the
                // new mask; drop it rather than let ROI resolution read
                // out of bounds.
                if let Some(roi) = record.object_box {
                    if roi.x1() > width || roi.y1() > height {
                        record.object_box = None;
                    }
                }
            }
            record.width = width;
            record.height = height;
            mask = Mask::new(width, height, pixels.clone())?;
        } else if update.shape.is_some() {
            return Err(QueryError::invalid(
                "UPDATE cannot change a mask's shape without new pixels",
            ));
        }
        if let Some(model_id) = update.model_id {
            record.model_id = model_id;
        }
        if let Some(mask_type) = update.mask_type {
            record.mask_type = mask_type;
        }
        if let Some(label) = update.predicted_label {
            record.predicted_label = Some(label);
        }
        if let Some(label) = update.true_label {
            record.true_label = Some(label);
        }
        Ok((record, mask))
    }

    /// Updates masks in place: re-masked pixels and/or new metadata ride the
    /// insert path (CHI evict → store commit → cache invalidate → catalog
    /// publish), so tiles, CHI, stats, and secondary indexes stay atomic
    /// with the pixels. Unknown targets fail before any side effect;
    /// repeated updates of one mask within the slice compose in order.
    pub fn update_masks(&self, updates: &[MaskUpdate]) -> QueryResult<usize> {
        if updates.is_empty() {
            return Ok(0);
        }
        let _writes = self.writes.lock();
        let batch: Vec<(MaskRecord, Mask)> = {
            let catalog = self.catalog_read();
            let mut pending: BTreeMap<MaskId, (MaskRecord, Mask)> = BTreeMap::new();
            for update in updates {
                let entry = self.updated_entry(pending.get(&update.mask_id), &catalog, update)?;
                pending.insert(update.mask_id, entry);
            }
            pending.into_values().collect()
        };
        self.insert_batch_locked(&batch)?;
        Ok(updates.len())
    }

    /// Defines a secondary metadata index. Returns `true` when a new
    /// definition was created (`false` when `IF NOT EXISTS` swallowed a
    /// duplicate); persisted immediately when the store keeps index files.
    pub fn create_index(
        &self,
        name: &str,
        column: MetaColumn,
        if_not_exists: bool,
    ) -> QueryResult<bool> {
        let _writes = self.writes.lock();
        let created = self
            .meta_indexes
            .create(name, column, if_not_exists)
            .map_err(QueryError::invalid)?;
        if created {
            self.store.persist_meta_indexes()?;
        }
        Ok(created)
    }

    /// Drops a secondary metadata index by name. Returns `true` when a
    /// definition was removed (`false` when `IF EXISTS` swallowed a miss).
    pub fn drop_index(&self, name: &str, if_exists: bool) -> QueryResult<bool> {
        let _writes = self.writes.lock();
        let dropped = self
            .meta_indexes
            .drop_index(name, if_exists)
            .map_err(QueryError::invalid)?;
        if dropped {
            self.store.persist_meta_indexes()?;
        }
        Ok(dropped)
    }

    /// The session's secondary metadata index registry.
    pub fn meta_indexes(&self) -> &Arc<MetaIndexRegistry> {
        &self.meta_indexes
    }

    /// Deletes a batch of masks.
    ///
    /// The ids are deduplicated and validated against the catalog first
    /// (failing with [`QueryError::UnknownMask`] before any side effect).
    /// Then: CHI entries are evicted (the filter stage must never hold
    /// bounds for a mask that is about to vanish), the store delete commits,
    /// and only then are the catalog records removed — so a store failure
    /// leaves catalog and store consistent, at the cost of a short window
    /// where a new query can still resolve a deleted id and fail on load.
    ///
    /// Isolation note: a query that resolved its candidates *before* the
    /// delete may still try to load a deleted mask and fail with
    /// [`QueryError::UnknownMask`] or a storage not-found error. That is
    /// deliberate — failing loudly and letting the caller retry beats
    /// silently returning a result that mixes pre- and post-delete state.
    pub fn delete_masks(&self, mask_ids: &[MaskId]) -> QueryResult<usize> {
        if mask_ids.is_empty() {
            return Ok(0);
        }
        let _writes = self.writes.lock();
        // Deduplicate: `DELETE ... WHERE mask_id IN (5, 5)` means one
        // delete, and a duplicate must not make the store's batch fail
        // halfway.
        let ids: Vec<MaskId> = {
            let mut seen = std::collections::BTreeSet::new();
            mask_ids
                .iter()
                .copied()
                .filter(|id| seen.insert(*id))
                .collect()
        };
        {
            let catalog = self.catalog_read();
            for &id in &ids {
                if catalog.get(id).is_none() {
                    return Err(QueryError::UnknownMask(id));
                }
            }
        }
        if !self.chi_maintained_by_store {
            for &id in &ids {
                self.chi.remove(id);
            }
        }
        // Store first, catalog second: if the store delete fails, the
        // catalog still matches the store (the evicted CHI entries merely
        // cost a re-index). Removing catalog records first would leave
        // permanently orphaned pixels on a store error.
        self.store.delete_batch(&ids)?;
        {
            let mut catalog = self.catalog_write();
            for &id in &ids {
                catalog.remove(id);
            }
        }
        for &id in &ids {
            self.cache.invalidate(id);
        }
        self.agg_indexes.write().clear();
        Ok(ids.len())
    }

    /// Brings the session in line with a write that was applied *directly
    /// to the underlying store* — the serving side of replication, where a
    /// tailer applies shipped transactions to the store (which also
    /// maintains the shared CHI and tile indexes) and the session only has
    /// to refresh its own derived state: the catalog snapshot swaps to the
    /// store's post-apply catalog, the cache entries of the changed masks
    /// are invalidated, and the aggregated-mask indexes are dropped.
    ///
    /// Only meaningful on sessions created with
    /// [`Session::with_store_maintained_index`]; on others the shared CHI
    /// would not have been maintained by anyone.
    pub fn sync_replicated(&self, catalog: Catalog, changed: &[MaskId]) {
        let _writes = self.writes.lock();
        *self.catalog_write() = catalog;
        for &id in changed {
            self.cache.invalidate(id);
        }
        self.agg_indexes.write().clear();
    }

    /// Applies a lowered write statement.
    pub fn apply(&self, mutation: &Mutation) -> QueryResult<MutationOutcome> {
        match mutation {
            Mutation::Insert(batch) => Ok(MutationOutcome {
                inserted: self.insert_masks(batch)?,
                ..Default::default()
            }),
            Mutation::Delete(ids) => Ok(MutationOutcome {
                deleted: self.delete_masks(ids)?,
                ..Default::default()
            }),
            Mutation::Update(updates) => Ok(MutationOutcome {
                updated: self.update_masks(updates)?,
                ..Default::default()
            }),
            Mutation::CreateIndex {
                name,
                column,
                if_not_exists,
            } => {
                self.create_index(name, *column, *if_not_exists)?;
                Ok(MutationOutcome::default())
            }
            Mutation::DropIndex { name, if_exists } => {
                self.drop_index(name, *if_exists)?;
                Ok(MutationOutcome::default())
            }
        }
    }

    /// Applies a `BEGIN ... COMMIT` block of write statements atomically.
    ///
    /// The statements are first *simulated* against the committed state
    /// under the write lock — later statements observe earlier ones, and
    /// any validation error (unknown mask, malformed update, DDL inside the
    /// block) rejects the whole transaction before a single side effect.
    /// The surviving net effect — one batch of upserts plus one batch of
    /// deletes, disjoint by construction — is then applied through
    /// [`MaskStore::apply_batch`], which durable stores publish in a single
    /// commit frame: a crash at any byte recovers all of the transaction or
    /// none of it.
    pub fn apply_transaction(&self, mutations: &[Mutation]) -> QueryResult<MutationOutcome> {
        if mutations.is_empty() {
            return Ok(MutationOutcome::default());
        }
        let _writes = self.writes.lock();
        let mut outcome = MutationOutcome::default();
        let mut upserts: BTreeMap<MaskId, (MaskRecord, Mask)> = BTreeMap::new();
        let mut deletes: BTreeSet<MaskId> = BTreeSet::new();
        {
            let catalog = self.catalog_read();
            for mutation in mutations {
                match mutation {
                    Mutation::Insert(batch) => {
                        for (record, mask) in batch {
                            deletes.remove(&record.mask_id);
                            upserts.insert(record.mask_id, (record.clone(), mask.clone()));
                        }
                        outcome.inserted += batch.len();
                    }
                    Mutation::Delete(ids) => {
                        let mut seen = BTreeSet::new();
                        for &id in ids {
                            if !seen.insert(id) {
                                continue;
                            }
                            let was_pending = upserts.remove(&id).is_some();
                            let in_catalog = !deletes.contains(&id) && catalog.get(id).is_some();
                            if !was_pending && !in_catalog {
                                return Err(QueryError::UnknownMask(id));
                            }
                            // Only masks the committed state knows need a
                            // store delete; a pending insert that never
                            // committed just evaporates.
                            if catalog.get(id).is_some() {
                                deletes.insert(id);
                            }
                            outcome.deleted += 1;
                        }
                    }
                    Mutation::Update(updates) => {
                        for update in updates {
                            if deletes.contains(&update.mask_id)
                                && !upserts.contains_key(&update.mask_id)
                            {
                                return Err(QueryError::UnknownMask(update.mask_id));
                            }
                            let entry =
                                self.updated_entry(upserts.get(&update.mask_id), &catalog, update)?;
                            upserts.insert(update.mask_id, entry);
                        }
                        outcome.updated += updates.len();
                    }
                    Mutation::CreateIndex { .. } | Mutation::DropIndex { .. } => {
                        return Err(QueryError::invalid(
                            "index DDL is not allowed inside a transaction",
                        ));
                    }
                }
            }
        }
        let inserts: Vec<(MaskRecord, Mask)> = upserts.into_values().collect();
        let delete_ids: Vec<MaskId> = deletes.into_iter().collect();
        if inserts.is_empty() && delete_ids.is_empty() {
            return Ok(outcome);
        }
        if !self.chi_maintained_by_store {
            for (record, _) in &inserts {
                self.chi.remove(record.mask_id);
            }
            for &id in &delete_ids {
                self.chi.remove(id);
            }
        }
        self.store.apply_batch(&inserts, &delete_ids)?;
        for &id in &delete_ids {
            self.cache.invalidate(id);
        }
        for (record, mask) in &inserts {
            self.cache.invalidate(record.mask_id);
            if !self.chi_maintained_by_store && self.config.indexing_mode != IndexingMode::Disabled
            {
                self.chi.index_mask(record.mask_id, mask);
            }
        }
        {
            let mut catalog = self.catalog_write();
            for &id in &delete_ids {
                catalog.remove(id);
            }
            for (record, _) in &inserts {
                catalog.insert(record.clone());
            }
        }
        self.agg_indexes.write().clear();
        Ok(outcome)
    }

    /// Picks the cheapest applicable secondary index for a conjunction of
    /// selections, or `None` when no defined index covers a constrained
    /// column — or when the catalog's own posting-list lengths estimate the
    /// probe no better than half a scan (a near-unselective probe still
    /// pays the sort/dedup/re-verify tax on top of touching most records).
    fn choose_index(&self, catalog: &Catalog, selections: &[&Selection]) -> Option<IndexChoice> {
        if self.meta_indexes.is_empty() {
            return None;
        }
        let mut best: Option<(IndexChoice, usize)> = None;
        for def in self.meta_indexes.list() {
            let Some(values) = selections
                .iter()
                .find_map(|s| selection_values(s, def.column))
            else {
                continue;
            };
            let est: usize = values
                .iter()
                .map(|&v| def.column.estimate(catalog, v))
                .sum();
            if est * 2 > catalog.len() {
                continue;
            }
            if best.as_ref().is_none_or(|(_, b)| est < *b) {
                best = Some((
                    IndexChoice {
                        name: def.name,
                        column: def.column,
                        values,
                    },
                    est,
                ));
            }
        }
        best.map(|(choice, _)| choice)
    }

    /// The index (by name) the planner would probe for a conjunction of
    /// selections — the `EXPLAIN` face of [`Session::choose_index`], so the
    /// displayed access path and the executed one come from one decision.
    pub(crate) fn index_access_for(&self, selections: &[&Selection]) -> Option<String> {
        let catalog = self.catalog_read();
        self.choose_index(&catalog, selections).map(|c| c.name)
    }

    /// Resolves a conjunction of selections to the ascending list of
    /// matching mask ids, probing a secondary index when one applies.
    ///
    /// The probe path is byte-identical to the scan: posting lists are
    /// ascending per value, so their merged sort/dedup matches
    /// [`Catalog::filter`]'s BTreeMap order, and every probed id is
    /// re-verified against the *full* conjunction (the index only covers
    /// one column). The differential oracle in `tests/` holds this equality
    /// across every query shape.
    fn resolve_conjunction(
        &self,
        catalog: &Catalog,
        selections: &[&Selection],
    ) -> (Vec<MaskId>, ResolveTrace) {
        let constrained = selections.iter().any(|s| has_meta_constraint(s));
        let matches = |r: &MaskRecord| selections.iter().all(|s| s.matches(r));
        if let Some(choice) = self.choose_index(catalog, selections) {
            let mut ids: Vec<MaskId> = Vec::new();
            for &value in &choice.values {
                ids.extend(choice.column.probe(catalog, value));
            }
            ids.sort_unstable();
            ids.dedup();
            let index_rows = ids.len() as u64;
            ids.retain(|&id| catalog.get(id).is_some_and(matches));
            obs_counters::add(&obs_counters::META_INDEX_PROBES, choice.values.len() as u64);
            (
                ids,
                ResolveTrace {
                    index_probes: choice.values.len() as u64,
                    index_rows,
                    index_name: Some(choice.name),
                    constrained,
                },
            )
        } else {
            obs_counters::incr(&obs_counters::CATALOG_SCANS);
            (
                catalog.filter(|r| matches(r)),
                ResolveTrace {
                    constrained,
                    ..Default::default()
                },
            )
        }
    }

    /// Resolves a selection into the sorted list of targeted mask ids.
    ///
    /// The whole resolution happens under one catalog read guard, so the
    /// candidate set reflects a single committed state — concurrent write
    /// batches are observed entirely or not at all.
    pub fn resolve_selection(&self, selection: &Selection) -> Vec<MaskId> {
        self.resolve_selection_traced(selection).0
    }

    /// [`Session::resolve_selection`] plus how the resolution was answered
    /// (index probe vs catalog scan), for the query's statistics.
    pub(crate) fn resolve_selection_traced(
        &self,
        selection: &Selection,
    ) -> (Vec<MaskId>, ResolveTrace) {
        let catalog = self.catalog_read();
        self.resolve_conjunction(&catalog, &[selection])
    }

    /// Groups targeted masks by image id.
    pub fn group_by_image(&self, mask_ids: &[MaskId]) -> Vec<(ImageId, Vec<MaskId>)> {
        self.catalog_read().group_by_image(mask_ids)
    }

    /// Resolves a pair query's candidates: for each image, the smallest mask
    /// id matching `selection ∧ join.left` and the smallest matching
    /// `selection ∧ join.right`; images where either side fails to bind are
    /// skipped. Ascending by image id, under one catalog read guard (the
    /// candidate set reflects whole write batches only).
    pub fn resolve_pairs(
        &self,
        selection: &Selection,
        join: &MaskJoin,
    ) -> Vec<(ImageId, MaskId, MaskId)> {
        self.resolve_pairs_traced(selection, join).0
    }

    /// [`Session::resolve_pairs`] plus how each side's resolution was
    /// answered (index probe vs catalog scan), for the query's statistics.
    pub(crate) fn resolve_pairs_traced(
        &self,
        selection: &Selection,
        join: &MaskJoin,
    ) -> (Vec<(ImageId, MaskId, MaskId)>, ResolveTrace, ResolveTrace) {
        let catalog = self.catalog_read();
        // Each side resolves `selection ∧ join.side`; the lists come back
        // ascending by mask id (from the scan or the re-verified probe), so
        // the first id seen per image is the smallest — the deterministic
        // binding rule.
        let (left_ids, left_trace) = self.resolve_conjunction(&catalog, &[selection, &join.left]);
        let (right_ids, right_trace) =
            self.resolve_conjunction(&catalog, &[selection, &join.right]);
        let mut left: BTreeMap<ImageId, MaskId> = BTreeMap::new();
        let mut right: BTreeMap<ImageId, MaskId> = BTreeMap::new();
        for id in left_ids {
            if let Some(r) = catalog.get(id) {
                left.entry(r.image_id).or_insert(id);
            }
        }
        for id in right_ids {
            if let Some(r) = catalog.get(id) {
                right.entry(r.image_id).or_insert(id);
            }
        }
        let pairs = left
            .into_iter()
            .filter_map(|(image, l)| right.get(&image).map(|&r| (image, l, r)))
            .collect();
        (pairs, left_trace, right_trace)
    }

    /// Signature string identifying an aggregated-mask index: the aggregation
    /// function plus the selection whose groups it was built over.
    pub(crate) fn aggregate_signature(agg: &MaskAgg, selection: &Selection) -> String {
        format!("{agg:?}|{selection:?}")
    }

    /// Pre-builds the CHI of every aggregated mask for a `MASK_AGG` query
    /// shape (§3.4: "the index for the aggregated masks is either built ahead
    /// of time or incrementally built"). The inner store is keyed by image
    /// id (as a raw [`MaskId`]).
    pub fn build_aggregate_index(&self, agg: &MaskAgg, selection: &Selection) -> QueryResult<()> {
        let ids = self.resolve_selection(selection);
        let groups = self.group_by_image(&ids);
        let agg_store = ChiStore::new(self.config.chi_config);
        for (image_id, member_ids) in groups {
            let mut masks = Vec::with_capacity(member_ids.len());
            for id in &member_ids {
                masks.push(self.load_mask(*id)?);
            }
            let refs: Vec<&Mask> = masks.iter().map(|m| m.as_ref()).collect();
            let aggregated = agg.apply(&refs)?;
            agg_store.index_mask(MaskId::new(image_id.raw()), &aggregated);
        }
        self.agg_indexes.write().insert(
            Self::aggregate_signature(agg, selection),
            Arc::new(agg_store),
        );
        Ok(())
    }

    /// Looks up an aggregated-mask index by signature.
    pub(crate) fn aggregate_index(&self, signature: &str) -> Option<Arc<ChiStore>> {
        if self.config.indexing_mode == IndexingMode::Disabled {
            return None;
        }
        self.agg_indexes.read().get(signature).cloned()
    }

    /// Registers (or replaces) an aggregated-mask index under a signature.
    pub(crate) fn insert_aggregate_chi(&self, signature: &str, image_id: ImageId, chi: Chi) {
        if self.config.indexing_mode != IndexingMode::Incremental {
            return;
        }
        let mut indexes = self.agg_indexes.write();
        let store = indexes
            .entry(signature.to_string())
            .or_insert_with(|| Arc::new(ChiStore::new(self.config.chi_config)));
        store.insert(MaskId::new(image_id.raw()), chi);
    }

    /// Executes a query, dispatching on its kind.
    pub fn execute(&self, query: &Query) -> QueryResult<QueryOutput> {
        // Pair queries resolve their own image-keyed candidate set; don't
        // pay a full catalog scan for a mask-id list they never read.
        if matches!(
            query.kind,
            QueryKind::PairFilter { .. } | QueryKind::PairTopK { .. }
        ) {
            return self.execute_resolved(query, &[]);
        }
        let resolve_start = std::time::Instant::now();
        let (candidates, trace) = {
            let _resolve = masksearch_obs::span("resolve");
            self.resolve_selection_traced(&query.selection)
        };
        let resolve_wall = resolve_start.elapsed();
        let mut output = self.execute_resolved(query, &candidates)?;
        trace.apply(&mut output.stats);
        // Resolution runs before the executor starts its clock; charge it
        // so `total_wall` (and the modelled query time) covers the stage a
        // metadata index exists to shrink.
        output.stats.resolve_wall = resolve_wall;
        output.stats.total_wall += resolve_wall;
        Ok(output)
    }

    /// Plans a query without executing it: resolves candidates, extracts
    /// cost features (sampled CHI bounds, range alignment, shape feedback),
    /// and returns the strategies the executor would use.
    pub fn plan_query(&self, query: &Query) -> ExecPlan {
        let candidates = if matches!(
            query.kind,
            QueryKind::PairFilter { .. } | QueryKind::PairTopK { .. }
        ) {
            Vec::new()
        } else {
            self.resolve_selection(&query.selection)
        };
        planner::plan_query(self, query, &candidates)
    }

    /// The compact strategy signature the planner would choose for a query
    /// (`kernel=... bounds=... order=...`) — what the slow-query log
    /// records.
    pub fn plan_signature(&self, query: &Query) -> String {
        self.plan_query(query).signature()
    }

    /// The query's plan under this session's configuration (`EXPLAIN`): the
    /// stage tree the executor will walk, before anything runs, including
    /// the cost-based choices and their estimates.
    pub fn explain(&self, query: &Query) -> PlanNode {
        explain::plan_with(query, &self.config, Some(&self.plan_query(query)))
    }

    /// Executes the query and returns its plan annotated with the measured
    /// statistics (`EXPLAIN ANALYZE`), together with the output itself. The
    /// annotated counters are copied verbatim from the output's
    /// [`QueryStats`], so the two never disagree.
    pub fn explain_analyze(&self, query: &Query) -> QueryResult<(PlanNode, QueryOutput)> {
        // Plan once up front for display; execution re-plans internally from
        // the same deterministic sample and feedback state, so the displayed
        // estimates are the executed ones.
        let exec_plan = self.plan_query(query);
        let output = self.execute(query)?;
        let plan = explain::annotate(
            explain::plan_with(query, &self.config, Some(&exec_plan)),
            &output.stats,
            output.rows.len() as u64,
        );
        Ok((plan, output))
    }

    /// The per-query-shape statistics registry this session records into.
    /// Shared with the store when the store persists shapes across restarts.
    pub fn shape_stats(&self) -> &Arc<ShapeStatsRegistry> {
        &self.shape_stats
    }

    /// Folds one finished query into the aggregate statistics of its shape.
    fn record_query(&self, query: &Query, output: &QueryOutput) {
        let s = &output.stats;
        self.shape_stats.record(
            &explain::shape_key(query, &self.config),
            &ShapeObservation {
                candidates: s.candidates,
                rows: output.rows.len() as u64,
                pruned: s.pruned,
                accepted: s.accepted_without_load,
                verified: s.verified,
                masks_loaded: s.masks_loaded,
                tiles_pruned: s.tiles_pruned,
                tiles_hist: s.tiles_hist,
                tiles_scanned: s.tiles_scanned,
                filter_wall_us: s.filter_wall.as_micros() as u64,
                verify_wall_us: s.verify_wall.as_micros() as u64,
            },
        );
    }

    /// Executes a ranked query in *partial* (cluster-shard) mode: the query's
    /// `k` is optionally overridden, and alongside the local top-k the method
    /// reports the k-th value as a bound on everything it did **not** return
    /// (Eq. 15's pruning threshold, exported): any unreturned candidate —
    /// pruned by its CHI bounds or verified and rejected — ranks no better
    /// than the bound. A distributed top-k coordinator re-queries a shard
    /// only while its bound could still beat the merged k-th row (see
    /// [`merge::partial_may_improve`]).
    ///
    /// The bound is `None` when the partition returned *every* candidate it
    /// holds (nothing is hidden). Non-ranked queries execute normally and
    /// also carry no bound.
    pub fn execute_topk_partial(
        &self,
        query: &Query,
        k_override: Option<usize>,
    ) -> QueryResult<merge::RankedPartial> {
        let mut query = query.clone();
        let ranked = match &mut query.kind {
            QueryKind::TopK { k, .. } => {
                if let Some(n) = k_override {
                    *k = n;
                }
                true
            }
            QueryKind::Aggregate {
                top_k: Some((k, _)),
                ..
            }
            | QueryKind::MaskAggregate {
                top_k: Some((k, _)),
                ..
            }
            | QueryKind::PairTopK { k, .. } => {
                if let Some(n) = k_override {
                    *k = n;
                }
                true
            }
            _ => false,
        };
        // Pair top-k resolves its own (image-keyed) candidate set; resolve
        // once and count from the same snapshot the executor uses.
        if let QueryKind::PairTopK {
            join,
            expr,
            k,
            order,
        } = &query.kind
        {
            let (pairs, left_trace, right_trace) =
                self.resolve_pairs_traced(&query.selection, join);
            let total = pairs.len();
            let plan = planner::plan_query(self, &query, &[]);
            let mut output = exec::pair::execute_topk(self, &pairs, expr, *k, *order, &plan)?;
            self.record_query(&query, &output);
            self.record_planner(&plan, &output);
            left_trace.apply(&mut output.stats);
            right_trace.apply(&mut output.stats);
            let bound = if output.rows.len() < total {
                output.rows.last().and_then(|r| r.value)
            } else {
                None
            };
            return Ok(merge::RankedPartial { output, bound });
        }
        if matches!(query.kind, QueryKind::PairFilter { .. }) {
            // Non-ranked pair statement: no bound, and no mask-id
            // candidate scan either (see `execute`).
            return Ok(merge::RankedPartial {
                output: self.execute_resolved(&query, &[])?,
                bound: None,
            });
        }
        let (candidates, trace) = self.resolve_selection_traced(&query.selection);
        if !ranked {
            let mut output = self.execute_resolved(&query, &candidates)?;
            trace.apply(&mut output.stats);
            return Ok(merge::RankedPartial {
                output,
                bound: None,
            });
        }
        // Count ranked items from the same candidate snapshot the executor
        // receives, so "did we return everything" cannot race a write.
        let total = if query.is_grouped() {
            self.group_by_image(&candidates).len()
        } else {
            candidates.len()
        };
        let mut output = self.execute_resolved(&query, &candidates)?;
        trace.apply(&mut output.stats);
        let bound = if output.rows.len() < total {
            output.rows.last().and_then(|r| r.value)
        } else {
            None
        };
        Ok(merge::RankedPartial { output, bound })
    }

    /// Executes a query against an already resolved candidate set:
    /// plan, dispatch, record.
    fn execute_resolved(&self, query: &Query, candidates: &[MaskId]) -> QueryResult<QueryOutput> {
        let plan = {
            let _plan = masksearch_obs::span("plan");
            planner::plan_query(self, query, candidates)
        };
        let output = self.dispatch(query, candidates, &plan)?;
        self.record_query(query, &output);
        self.record_planner(&plan, &output);
        Ok(output)
    }

    /// Folds one planned execution into the catalog-level planner
    /// statistics (persisted with the shape registry at checkpoint).
    fn record_planner(&self, plan: &ExecPlan, output: &QueryOutput) {
        let s = &output.stats;
        let est_error_milli = if plan.sampled && s.candidates > 0 {
            let actual = output.rows.len() as f64 / s.candidates as f64;
            ((plan.plan.est_selectivity - actual).abs() * 1000.0).round() as u64
        } else {
            0
        };
        self.shape_stats.record_catalog(&CatalogStats {
            planned: 1,
            kernel_on: s.planner_kernel_on,
            kernel_off: s.planner_kernel_off,
            bounds_skipped: s.planner_bounds_skipped,
            reorders: s.planner_reorders,
            est_error_milli,
        });
    }

    /// Dispatches on the query kind.
    fn dispatch(
        &self,
        query: &Query,
        candidates: &[MaskId],
        plan: &ExecPlan,
    ) -> QueryResult<QueryOutput> {
        match &query.kind {
            QueryKind::Filter { predicate } => {
                exec::filter::execute(self, candidates, predicate, plan)
            }
            QueryKind::TopK { expr, k, order } => {
                exec::topk::execute(self, candidates, expr, *k, *order, plan)
            }
            QueryKind::Aggregate {
                expr,
                agg,
                having,
                top_k,
            } => exec::aggregate::execute(self, candidates, expr, *agg, *having, *top_k, plan),
            QueryKind::MaskAggregate {
                agg,
                term,
                having,
                top_k,
            } => exec::mask_agg::execute(
                self,
                &query.selection,
                candidates,
                agg,
                term,
                *having,
                *top_k,
            ),
            // Pair queries resolve their own image-keyed candidate set from
            // the join's two selections (the mask-id candidates do not
            // apply).
            QueryKind::PairFilter { join, predicate } => {
                let (pairs, left_trace, right_trace) =
                    self.resolve_pairs_traced(&query.selection, join);
                let mut output = exec::pair::execute_filter(self, &pairs, predicate, plan)?;
                left_trace.apply(&mut output.stats);
                right_trace.apply(&mut output.stats);
                Ok(output)
            }
            QueryKind::PairTopK {
                join,
                expr,
                k,
                order,
            } => {
                let (pairs, left_trace, right_trace) =
                    self.resolve_pairs_traced(&query.selection, join);
                let mut output = exec::pair::execute_topk(self, &pairs, expr, *k, *order, plan)?;
                left_trace.apply(&mut output.stats);
                right_trace.apply(&mut output.stats);
                Ok(output)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{PixelRange, Roi};
    use masksearch_index::ChiConfig;
    use masksearch_storage::MemoryMaskStore;

    fn small_db(n: u64) -> (Arc<dyn MaskStore>, Catalog) {
        let store = MemoryMaskStore::for_tests();
        let mut catalog = Catalog::new();
        for i in 0..n {
            let mask = Mask::from_fn(16, 16, move |x, y| ((x + y + i as u32) % 10) as f32 / 10.0);
            store.put(MaskId::new(i), &mask).unwrap();
            catalog.insert(
                MaskRecord::builder(MaskId::new(i))
                    .image_id(ImageId::new(i / 2))
                    .shape(16, 16)
                    .object_box(Roi::new(2, 2, 10, 10).unwrap())
                    .build(),
            );
        }
        (Arc::new(store), catalog)
    }

    fn config() -> SessionConfig {
        SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap()).threads(2)
    }

    #[test]
    fn eager_session_indexes_everything_up_front() {
        let (store, catalog) = small_db(6);
        let session =
            Session::new(store, catalog, config().indexing_mode(IndexingMode::Eager)).unwrap();
        assert_eq!(session.indexed_masks(), 6);
        assert!(session.index_bytes() > 0);
    }

    #[test]
    fn incremental_session_starts_empty_and_indexes_on_load() {
        let (store, catalog) = small_db(4);
        let session = Session::new(
            store,
            catalog,
            config().indexing_mode(IndexingMode::Incremental),
        )
        .unwrap();
        assert_eq!(session.indexed_masks(), 0);
        let (_, built) = session.load_and_index(MaskId::new(2)).unwrap();
        assert!(built);
        assert_eq!(session.indexed_masks(), 1);
        let (_, built_again) = session.load_and_index(MaskId::new(2)).unwrap();
        assert!(!built_again);
    }

    #[test]
    fn disabled_session_never_exposes_indexes() {
        let (store, catalog) = small_db(4);
        let session = Session::new(
            store,
            catalog,
            config().indexing_mode(IndexingMode::Disabled),
        )
        .unwrap();
        let (_, built) = session.load_and_index(MaskId::new(1)).unwrap();
        assert!(!built);
        assert!(session.chi_for(MaskId::new(1)).is_none());
    }

    #[test]
    fn selection_resolution_and_grouping() {
        let (store, catalog) = small_db(6);
        let session = Session::new(store, catalog, config()).unwrap();
        let all = session.resolve_selection(&Selection::all());
        assert_eq!(all.len(), 6);
        let subset =
            session.resolve_selection(&Selection::all().with_image_ids(vec![ImageId::new(1)]));
        assert_eq!(subset, vec![MaskId::new(2), MaskId::new(3)]);
        let groups = session.group_by_image(&all);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].1.len(), 2);
    }

    #[test]
    fn unknown_mask_is_an_error() {
        let (store, catalog) = small_db(2);
        let session = Session::new(store, catalog, config()).unwrap();
        assert!(matches!(
            session.record(MaskId::new(99)),
            Err(QueryError::UnknownMask(_))
        ));
    }

    #[test]
    fn index_persistence_round_trip() {
        let (store, catalog) = small_db(3);
        let session = Session::new(
            Arc::clone(&store),
            catalog.clone(),
            config().indexing_mode(IndexingMode::Eager),
        )
        .unwrap();
        let path = std::env::temp_dir().join(format!(
            "masksearch-session-index-{}.idx",
            std::process::id()
        ));
        session.persist_index(&path).unwrap();
        let chi = Session::load_index_file(&path).unwrap();
        assert_eq!(chi.len(), 3);
        let restored = Session::with_index(store, catalog, config(), chi);
        assert_eq!(restored.indexed_masks(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn aggregate_index_build() {
        let (store, catalog) = small_db(6);
        let session =
            Session::new(store, catalog, config().indexing_mode(IndexingMode::Eager)).unwrap();
        let agg = MaskAgg::IntersectThreshold { threshold: 0.5 };
        let selection = Selection::all();
        session.build_aggregate_index(&agg, &selection).unwrap();
        let signature = Session::aggregate_signature(&agg, &selection);
        let index = session.aggregate_index(&signature).unwrap();
        assert_eq!(index.len(), 3); // one aggregated mask per image
    }

    #[test]
    fn insert_masks_are_immediately_queryable_and_indexed() {
        let (store, catalog) = small_db(4);
        let session =
            Session::new(store, catalog, config().indexing_mode(IndexingMode::Eager)).unwrap();
        assert_eq!(session.indexed_masks(), 4);

        let new_mask = Mask::from_fn(16, 16, |_, _| 0.9);
        let record = MaskRecord::builder(MaskId::new(100))
            .image_id(ImageId::new(50))
            .shape(16, 16)
            .build();
        let inserted = session.insert_masks(&[(record, new_mask)]).unwrap();
        assert_eq!(inserted, 1);
        assert_eq!(session.catalog_len(), 5);
        assert_eq!(session.indexed_masks(), 5);

        // The new all-0.9 mask matches a high-threshold query alone.
        let query = Query::filter_cp_gt(
            Roi::new(0, 0, 16, 16).unwrap(),
            PixelRange::new(0.85, 1.0).unwrap(),
            200.0,
        );
        let out = session.execute(&query).unwrap();
        assert_eq!(out.mask_ids(), vec![MaskId::new(100)]);
    }

    #[test]
    fn delete_masks_vanish_from_results_index_and_cache() {
        let (store, catalog) = small_db(6);
        let session = Session::new(
            store,
            catalog,
            config()
                .indexing_mode(IndexingMode::Eager)
                .cache_bytes(1 << 20),
        )
        .unwrap();
        // Warm the cache.
        session.load_mask(MaskId::new(2)).unwrap();
        assert!(session.cache().peek(MaskId::new(2)).is_some());

        let deleted = session
            .delete_masks(&[MaskId::new(2), MaskId::new(3)])
            .unwrap();
        assert_eq!(deleted, 2);
        assert_eq!(session.catalog_len(), 4);
        assert_eq!(session.indexed_masks(), 4);
        assert!(session.chi_for(MaskId::new(2)).is_none());
        assert!(session.cache().peek(MaskId::new(2)).is_none());
        assert!(!session.store().contains(MaskId::new(2)));

        let query = Query::filter_cp_gt(
            Roi::new(0, 0, 16, 16).unwrap(),
            PixelRange::new(0.0, 1.0).unwrap(),
            0.0,
        );
        let out = session.execute(&query).unwrap();
        assert_eq!(
            out.mask_ids(),
            vec![
                MaskId::new(0),
                MaskId::new(1),
                MaskId::new(4),
                MaskId::new(5)
            ]
        );
        // Unknown ids fail up front without side effects.
        assert!(matches!(
            session.delete_masks(&[MaskId::new(0), MaskId::new(77)]),
            Err(QueryError::UnknownMask(_))
        ));
        assert_eq!(session.catalog_len(), 4);
        // Duplicated ids collapse to one delete.
        let deleted = session
            .delete_masks(&[MaskId::new(0), MaskId::new(0)])
            .unwrap();
        assert_eq!(deleted, 1);
        assert_eq!(session.catalog_len(), 3);
    }

    #[test]
    fn overwriting_insert_refreshes_chi_and_cache() {
        let (store, catalog) = small_db(3);
        let session = Session::new(
            store,
            catalog,
            config()
                .indexing_mode(IndexingMode::Eager)
                .cache_bytes(1 << 20),
        )
        .unwrap();
        session.load_mask(MaskId::new(1)).unwrap();

        // Overwrite mask 1 with an all-high mask; stale CHI or cache would
        // make the query below miss it or mis-prune.
        let bright = Mask::from_fn(16, 16, |_, _| 0.95);
        let record = MaskRecord::builder(MaskId::new(1))
            .image_id(ImageId::new(0))
            .shape(16, 16)
            .build();
        session.insert_masks(&[(record, bright.clone())]).unwrap();
        assert_eq!(session.catalog_len(), 3);
        assert_eq!(*session.load_mask(MaskId::new(1)).unwrap(), bright);

        let query = Query::filter_cp_gt(
            Roi::new(0, 0, 16, 16).unwrap(),
            PixelRange::new(0.9, 1.0).unwrap(),
            200.0,
        );
        let out = session.execute(&query).unwrap();
        assert_eq!(out.mask_ids(), vec![MaskId::new(1)]);
    }

    #[test]
    fn mutations_clear_aggregate_indexes() {
        let (store, catalog) = small_db(6);
        let session =
            Session::new(store, catalog, config().indexing_mode(IndexingMode::Eager)).unwrap();
        let agg = MaskAgg::IntersectThreshold { threshold: 0.5 };
        let selection = Selection::all();
        session.build_aggregate_index(&agg, &selection).unwrap();
        let signature = Session::aggregate_signature(&agg, &selection);
        assert!(session.aggregate_index(&signature).is_some());

        session.delete_masks(&[MaskId::new(5)]).unwrap();
        assert!(session.aggregate_index(&signature).is_none());
    }

    #[test]
    fn apply_dispatches_mutations() {
        let (store, catalog) = small_db(2);
        let session = Session::new(store, catalog, config()).unwrap();
        let mask = Mask::from_fn(16, 16, |_, _| 0.5);
        let record = MaskRecord::builder(MaskId::new(9)).shape(16, 16).build();
        let outcome = session
            .apply(&crate::Mutation::Insert(vec![(record, mask)]))
            .unwrap();
        assert_eq!(
            outcome,
            crate::MutationOutcome {
                inserted: 1,
                ..Default::default()
            }
        );
        let outcome = session
            .apply(&crate::Mutation::Delete(vec![MaskId::new(9)]))
            .unwrap();
        assert_eq!(
            outcome,
            crate::MutationOutcome {
                deleted: 1,
                ..Default::default()
            }
        );
        assert_eq!(session.catalog_len(), 2);
    }

    #[test]
    fn partial_topk_reports_the_kth_bound() {
        let (store, catalog) = small_db(6);
        let session =
            Session::new(store, catalog, config().indexing_mode(IndexingMode::Eager)).unwrap();
        let query = Query::top_k_cp(
            Roi::new(0, 0, 16, 16).unwrap(),
            PixelRange::new(0.0, 1.0).unwrap(),
            4,
            crate::Order::Desc,
        );
        let partial = session.execute_topk_partial(&query, None).unwrap();
        assert_eq!(partial.output.len(), 4);
        // Two candidates were not returned, so the 4th value bounds them.
        assert_eq!(partial.bound, partial.output.rows.last().unwrap().value);

        // Overriding k to cover every candidate removes the bound.
        let all = session.execute_topk_partial(&query, Some(6)).unwrap();
        assert_eq!(all.output.len(), 6);
        assert_eq!(all.bound, None);

        // The k-override changes nothing else: prefix agreement.
        assert_eq!(&all.output.rows[..4], &partial.output.rows[..]);

        // Non-ranked queries pass through without a bound.
        let filter = Query::filter_cp_gt(
            Roi::new(0, 0, 16, 16).unwrap(),
            PixelRange::new(0.0, 1.0).unwrap(),
            0.0,
        );
        let partial = session.execute_topk_partial(&filter, Some(2)).unwrap();
        assert_eq!(partial.output.len(), 6);
        assert_eq!(partial.bound, None);
    }

    #[test]
    fn simple_end_to_end_filter_query() {
        let (store, catalog) = small_db(6);
        let session =
            Session::new(store, catalog, config().indexing_mode(IndexingMode::Eager)).unwrap();
        let query = Query::filter_cp_gt(
            Roi::new(0, 0, 16, 16).unwrap(),
            PixelRange::new(0.0, 1.0).unwrap(),
            0.0,
        );
        let out = session.execute(&query).unwrap();
        // Every mask has 256 pixels in [0,1) > 0, so all qualify.
        assert_eq!(out.len(), 6);
        assert_eq!(out.stats.candidates, 6);
    }
}
