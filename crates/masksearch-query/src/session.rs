//! Sessions: the long-lived object that owns the mask store, catalog, buffer
//! cache, and CHI store, and executes queries.
//!
//! A [`Session`] corresponds to the paper's "MaskSearch session" (§3.2,
//! §3.6): the CHI of each mask is held in memory for the lifetime of the
//! session, may be built eagerly up front (the *MS* configuration of the
//! evaluation), incrementally as masks are first touched by queries
//! (*MS-II*), or not at all (which makes the session behave like the NumPy
//! baseline — useful for cost comparisons inside one API).

use crate::error::{QueryError, QueryResult};
use crate::exec;
use crate::query::{Query, QueryKind, Selection};
use crate::result::QueryOutput;
use masksearch_core::{ImageId, Mask, MaskAgg, MaskId, MaskRecord};
use masksearch_index::{build_chi_store, BuildOptions, Chi, ChiConfig, ChiStore};
use masksearch_storage::{Catalog, MaskCache, MaskStore};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// When CHIs are built relative to query execution (§3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexingMode {
    /// Build the CHI of every catalogued mask when the session starts
    /// (the paper's vanilla "MS" configuration).
    Eager,
    /// Build the CHI of a mask the first time a query loads it
    /// (the paper's "MS-II" configuration).
    Incremental,
    /// Never build or use indexes; every query loads every targeted mask.
    Disabled,
}

/// Session configuration.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// CHI configuration (cell size and bin count).
    pub chi_config: ChiConfig,
    /// Indexing mode.
    pub indexing_mode: IndexingMode,
    /// Worker threads used by the filter/verification stages and bulk index
    /// builds.
    pub threads: usize,
    /// Byte budget of the decoded-mask buffer cache (0 disables caching,
    /// reproducing the paper's cold-cache setting).
    pub cache_bytes: u64,
    /// When a query uses `roi = object` but a mask has no recorded object
    /// box: fall back to the full mask (`true`) or fail the query (`false`).
    pub object_box_fallback: bool,
}

impl SessionConfig {
    /// Creates a configuration with the given CHI parameters and defaults:
    /// incremental indexing, all available threads, no mask cache.
    pub fn new(chi_config: ChiConfig) -> Self {
        Self {
            chi_config,
            indexing_mode: IndexingMode::Incremental,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_bytes: 0,
            object_box_fallback: true,
        }
    }

    /// Sets the indexing mode.
    pub fn indexing_mode(mut self, mode: IndexingMode) -> Self {
        self.indexing_mode = mode;
        self
    }

    /// Sets the number of worker threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the buffer-cache byte budget.
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the missing-object-box policy.
    pub fn object_box_fallback(mut self, fallback: bool) -> Self {
        self.object_box_fallback = fallback;
        self
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self::new(ChiConfig::default())
    }
}

/// A MaskSearch session: storage + catalog + indexes + query execution.
pub struct Session {
    store: Arc<dyn MaskStore>,
    catalog: Catalog,
    config: SessionConfig,
    chi: ChiStore,
    cache: MaskCache,
    /// Indexes over *aggregated* masks (one per `MASK_AGG` signature), keyed
    /// inside each store by the image id (§3.4).
    agg_indexes: RwLock<HashMap<String, Arc<ChiStore>>>,
}

impl Session {
    /// Creates a session. In [`IndexingMode::Eager`] this builds the CHI of
    /// every catalogued mask up front (charging the store's cost model, as
    /// the paper attributes up-front indexing cost to the 0-th query).
    pub fn new(
        store: Arc<dyn MaskStore>,
        catalog: Catalog,
        config: SessionConfig,
    ) -> QueryResult<Self> {
        let chi = match config.indexing_mode {
            IndexingMode::Eager => {
                let ids = catalog.mask_ids();
                build_chi_store(
                    store.as_ref(),
                    &ids,
                    config.chi_config,
                    BuildOptions {
                        threads: config.threads,
                    },
                )?
            }
            _ => ChiStore::new(config.chi_config),
        };
        Ok(Self {
            cache: MaskCache::new(config.cache_bytes),
            store,
            catalog,
            config,
            chi,
            agg_indexes: RwLock::new(HashMap::new()),
        })
    }

    /// Creates a session around an existing CHI store (e.g. loaded from a
    /// previous session's persisted index file).
    pub fn with_index(
        store: Arc<dyn MaskStore>,
        catalog: Catalog,
        config: SessionConfig,
        chi: ChiStore,
    ) -> Self {
        Self {
            cache: MaskCache::new(config.cache_bytes),
            store,
            catalog,
            config,
            chi,
            agg_indexes: RwLock::new(HashMap::new()),
        }
    }

    /// The session's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The session's mask store.
    pub fn store(&self) -> &Arc<dyn MaskStore> {
        &self.store
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The per-mask CHI store.
    pub fn chi_store(&self) -> &ChiStore {
        &self.chi
    }

    /// The decoded-mask buffer cache.
    pub fn cache(&self) -> &MaskCache {
        &self.cache
    }

    /// Number of masks currently indexed.
    pub fn indexed_masks(&self) -> usize {
        self.chi.len()
    }

    /// Total bytes of all in-memory indexes (per-mask plus aggregated).
    pub fn index_bytes(&self) -> u64 {
        let agg: u64 = self
            .agg_indexes
            .read()
            .values()
            .map(|s| s.total_bytes())
            .sum();
        self.chi.total_bytes() + agg
    }

    /// Persists the per-mask index to a file ("when a MaskSearch session
    /// ends, the CHI for all the masks in the session is persisted to disk",
    /// §3.6).
    pub fn persist_index(&self, path: impl AsRef<Path>) -> QueryResult<()> {
        self.chi.save(path).map_err(QueryError::from)
    }

    /// Loads a per-mask index file produced by [`Session::persist_index`].
    pub fn load_index_file(path: impl AsRef<Path>) -> QueryResult<ChiStore> {
        ChiStore::load(path).map_err(QueryError::from)
    }

    /// The catalog record of a mask, or an error if unknown.
    pub fn record(&self, mask_id: MaskId) -> QueryResult<&MaskRecord> {
        self.catalog
            .get(mask_id)
            .ok_or(QueryError::UnknownMask(mask_id))
    }

    /// The CHI of a mask, if one exists and indexing is enabled.
    pub fn chi_for(&self, mask_id: MaskId) -> Option<Arc<Chi>> {
        if self.config.indexing_mode == IndexingMode::Disabled {
            return None;
        }
        self.chi.get(mask_id)
    }

    /// Loads a mask through the buffer cache.
    pub fn load_mask(&self, mask_id: MaskId) -> QueryResult<Arc<Mask>> {
        self.cache
            .get_or_load(mask_id, || self.store.get(mask_id))
            .map_err(QueryError::from)
    }

    /// Loads a mask and, in incremental mode, builds and retains its CHI
    /// (§3.6). Returns the mask and whether an index was built.
    pub fn load_and_index(&self, mask_id: MaskId) -> QueryResult<(Arc<Mask>, bool)> {
        let mask = self.load_mask(mask_id)?;
        let built = if self.config.indexing_mode == IndexingMode::Incremental
            && !self.chi.contains(mask_id)
        {
            self.chi.index_mask(mask_id, &mask);
            true
        } else {
            false
        };
        Ok((mask, built))
    }

    /// Resolves a selection into the sorted list of targeted mask ids.
    pub fn resolve_selection(&self, selection: &Selection) -> Vec<MaskId> {
        self.catalog.filter(|record| selection.matches(record))
    }

    /// Groups targeted masks by image id.
    pub fn group_by_image(&self, mask_ids: &[MaskId]) -> Vec<(ImageId, Vec<MaskId>)> {
        self.catalog.group_by_image(mask_ids)
    }

    /// Signature string identifying an aggregated-mask index: the aggregation
    /// function plus the selection whose groups it was built over.
    pub(crate) fn aggregate_signature(agg: &MaskAgg, selection: &Selection) -> String {
        format!("{agg:?}|{selection:?}")
    }

    /// Pre-builds the CHI of every aggregated mask for a `MASK_AGG` query
    /// shape (§3.4: "the index for the aggregated masks is either built ahead
    /// of time or incrementally built"). The inner store is keyed by image
    /// id (as a raw [`MaskId`]).
    pub fn build_aggregate_index(&self, agg: &MaskAgg, selection: &Selection) -> QueryResult<()> {
        let ids = self.resolve_selection(selection);
        let groups = self.group_by_image(&ids);
        let agg_store = ChiStore::new(self.config.chi_config);
        for (image_id, member_ids) in groups {
            let mut masks = Vec::with_capacity(member_ids.len());
            for id in &member_ids {
                masks.push(self.load_mask(*id)?);
            }
            let refs: Vec<&Mask> = masks.iter().map(|m| m.as_ref()).collect();
            let aggregated = agg.apply(&refs)?;
            agg_store.index_mask(MaskId::new(image_id.raw()), &aggregated);
        }
        self.agg_indexes.write().insert(
            Self::aggregate_signature(agg, selection),
            Arc::new(agg_store),
        );
        Ok(())
    }

    /// Looks up an aggregated-mask index by signature.
    pub(crate) fn aggregate_index(&self, signature: &str) -> Option<Arc<ChiStore>> {
        if self.config.indexing_mode == IndexingMode::Disabled {
            return None;
        }
        self.agg_indexes.read().get(signature).cloned()
    }

    /// Registers (or replaces) an aggregated-mask index under a signature.
    pub(crate) fn insert_aggregate_chi(&self, signature: &str, image_id: ImageId, chi: Chi) {
        if self.config.indexing_mode != IndexingMode::Incremental {
            return;
        }
        let mut indexes = self.agg_indexes.write();
        let store = indexes
            .entry(signature.to_string())
            .or_insert_with(|| Arc::new(ChiStore::new(self.config.chi_config)));
        store.insert(MaskId::new(image_id.raw()), chi);
    }

    /// Executes a query, dispatching on its kind.
    pub fn execute(&self, query: &Query) -> QueryResult<QueryOutput> {
        let candidates = self.resolve_selection(&query.selection);
        match &query.kind {
            QueryKind::Filter { predicate } => exec::filter::execute(self, &candidates, predicate),
            QueryKind::TopK { expr, k, order } => {
                exec::topk::execute(self, &candidates, expr, *k, *order)
            }
            QueryKind::Aggregate {
                expr,
                agg,
                having,
                top_k,
            } => exec::aggregate::execute(self, &candidates, expr, *agg, *having, *top_k),
            QueryKind::MaskAggregate {
                agg,
                term,
                having,
                top_k,
            } => exec::mask_agg::execute(
                self,
                &query.selection,
                &candidates,
                agg,
                term,
                *having,
                *top_k,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{PixelRange, Roi};
    use masksearch_index::ChiConfig;
    use masksearch_storage::MemoryMaskStore;

    fn small_db(n: u64) -> (Arc<dyn MaskStore>, Catalog) {
        let store = MemoryMaskStore::for_tests();
        let mut catalog = Catalog::new();
        for i in 0..n {
            let mask = Mask::from_fn(16, 16, move |x, y| ((x + y + i as u32) % 10) as f32 / 10.0);
            store.put(MaskId::new(i), &mask).unwrap();
            catalog.insert(
                MaskRecord::builder(MaskId::new(i))
                    .image_id(ImageId::new(i / 2))
                    .shape(16, 16)
                    .object_box(Roi::new(2, 2, 10, 10).unwrap())
                    .build(),
            );
        }
        (Arc::new(store), catalog)
    }

    fn config() -> SessionConfig {
        SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap()).threads(2)
    }

    #[test]
    fn eager_session_indexes_everything_up_front() {
        let (store, catalog) = small_db(6);
        let session =
            Session::new(store, catalog, config().indexing_mode(IndexingMode::Eager)).unwrap();
        assert_eq!(session.indexed_masks(), 6);
        assert!(session.index_bytes() > 0);
    }

    #[test]
    fn incremental_session_starts_empty_and_indexes_on_load() {
        let (store, catalog) = small_db(4);
        let session = Session::new(
            store,
            catalog,
            config().indexing_mode(IndexingMode::Incremental),
        )
        .unwrap();
        assert_eq!(session.indexed_masks(), 0);
        let (_, built) = session.load_and_index(MaskId::new(2)).unwrap();
        assert!(built);
        assert_eq!(session.indexed_masks(), 1);
        let (_, built_again) = session.load_and_index(MaskId::new(2)).unwrap();
        assert!(!built_again);
    }

    #[test]
    fn disabled_session_never_exposes_indexes() {
        let (store, catalog) = small_db(4);
        let session = Session::new(
            store,
            catalog,
            config().indexing_mode(IndexingMode::Disabled),
        )
        .unwrap();
        let (_, built) = session.load_and_index(MaskId::new(1)).unwrap();
        assert!(!built);
        assert!(session.chi_for(MaskId::new(1)).is_none());
    }

    #[test]
    fn selection_resolution_and_grouping() {
        let (store, catalog) = small_db(6);
        let session = Session::new(store, catalog, config()).unwrap();
        let all = session.resolve_selection(&Selection::all());
        assert_eq!(all.len(), 6);
        let subset =
            session.resolve_selection(&Selection::all().with_image_ids(vec![ImageId::new(1)]));
        assert_eq!(subset, vec![MaskId::new(2), MaskId::new(3)]);
        let groups = session.group_by_image(&all);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].1.len(), 2);
    }

    #[test]
    fn unknown_mask_is_an_error() {
        let (store, catalog) = small_db(2);
        let session = Session::new(store, catalog, config()).unwrap();
        assert!(matches!(
            session.record(MaskId::new(99)),
            Err(QueryError::UnknownMask(_))
        ));
    }

    #[test]
    fn index_persistence_round_trip() {
        let (store, catalog) = small_db(3);
        let session = Session::new(
            Arc::clone(&store),
            catalog.clone(),
            config().indexing_mode(IndexingMode::Eager),
        )
        .unwrap();
        let path = std::env::temp_dir().join(format!(
            "masksearch-session-index-{}.idx",
            std::process::id()
        ));
        session.persist_index(&path).unwrap();
        let chi = Session::load_index_file(&path).unwrap();
        assert_eq!(chi.len(), 3);
        let restored = Session::with_index(store, catalog, config(), chi);
        assert_eq!(restored.indexed_masks(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn aggregate_index_build() {
        let (store, catalog) = small_db(6);
        let session =
            Session::new(store, catalog, config().indexing_mode(IndexingMode::Eager)).unwrap();
        let agg = MaskAgg::IntersectThreshold { threshold: 0.5 };
        let selection = Selection::all();
        session.build_aggregate_index(&agg, &selection).unwrap();
        let signature = Session::aggregate_signature(&agg, &selection);
        let index = session.aggregate_index(&signature).unwrap();
        assert_eq!(index.len(), 3); // one aggregated mask per image
    }

    #[test]
    fn simple_end_to_end_filter_query() {
        let (store, catalog) = small_db(6);
        let session =
            Session::new(store, catalog, config().indexing_mode(IndexingMode::Eager)).unwrap();
        let query = Query::filter_cp_gt(
            Roi::new(0, 0, 16, 16).unwrap(),
            PixelRange::new(0.0, 1.0).unwrap(),
            0.0,
        );
        let out = session.execute(&query).unwrap();
        // Every mask has 256 pixels in [0,1) > 0, so all qualify.
        assert_eq!(out.len(), 6);
        assert_eq!(out.stats.candidates, 6);
    }
}
