//! Top-k execution with bound-based pruning (§3.5).
//!
//! MaskSearch processes the masks sequentially while maintaining the current
//! top-k set. For a descending query a mask can be pruned as soon as its
//! *upper* bound cannot beat the current k-th best value; for ascending
//! queries the *lower* bound plays that role. Masks that survive the check
//! are loaded, their exact expression value computed, and the top-k set
//! updated (Eq. 15).

use crate::error::QueryResult;
use crate::eval;
use crate::exec::{apply_io_delta, elapsed, sort_ranked, worst_index, worst_value};
use crate::expr::Expr;
use crate::planner::ExecPlan;
use crate::result::{QueryOutput, QueryStats, ResultRow};
use crate::session::Session;
use crate::spec::Order;
use masksearch_core::{MaskId, TileStats};
use masksearch_obs::keys as obs_keys;
use std::time::Instant;

/// Executes a top-k query over `candidates`, routing each loaded mask's
/// verification through the kernel as `plan` decides.
pub fn execute(
    session: &Session,
    candidates: &[MaskId],
    expr: &Expr,
    k: usize,
    order: Order,
    plan: &ExecPlan,
) -> QueryResult<QueryOutput> {
    let total_start = Instant::now();
    let io_before = session.store().io_stats().snapshot();
    let fallback = session.config().object_box_fallback;
    let mut tiles = TileStats::default();
    let mut kernel_on_count = 0u64;
    let mut kernel_off_count = 0u64;

    if k == 0 {
        return Ok(QueryOutput::default());
    }

    // Current top-k as (value, mask_id); worst entry found by linear scan
    // (k is small — the paper uses k = 25).
    let rank_span = masksearch_obs::span("rank");
    let mut top: Vec<(f64, MaskId)> = Vec::with_capacity(k + 1);
    let mut pruned = 0u64;
    let mut verified = 0u64;
    let mut indexes_built = 0u64;
    let mut filter_wall = std::time::Duration::ZERO;
    let mut verify_wall = std::time::Duration::ZERO;

    for &mask_id in candidates {
        let record = session.record(mask_id)?;

        // Filter step: can the bounds already rule this mask out?
        let filter_start = Instant::now();
        let prune = if top.len() == k {
            if let Some(chi) = session.chi_for(mask_id) {
                let bounds = eval::expr_bounds(expr, &record, &chi, fallback)?;
                let threshold = worst_value(&top, order);
                match order {
                    // Equation 15: a new mask must be strictly better than the
                    // current k-th value to enter the result.
                    Order::Desc => bounds.hi <= threshold,
                    Order::Asc => bounds.lo >= threshold,
                }
            } else {
                false
            }
        } else {
            false
        };
        filter_wall += elapsed(filter_start);
        if prune {
            pruned += 1;
            continue;
        }

        // Verification step: load the mask and compute the exact value.
        let verify_start = Instant::now();
        let (mask, built) = session.load_and_index(mask_id)?;
        if built {
            indexes_built += 1;
        }
        verified += 1;
        let kernel_on = plan.kernel_on_for(&mask);
        if kernel_on {
            kernel_on_count += 1;
        } else {
            kernel_off_count += 1;
        }
        let mut value = eval::expr_exact_tiled(
            expr,
            &record,
            &mask,
            &session.verify_options_with(kernel_on),
            &mut tiles,
        )?;
        if value.is_nan() {
            // NaN (e.g. 0/0 ratios) ranks worst under either order.
            value = match order {
                Order::Desc => f64::NEG_INFINITY,
                Order::Asc => f64::INFINITY,
            };
        }
        verify_wall += elapsed(verify_start);

        if top.len() < k {
            top.push((value, mask_id));
        } else {
            let threshold = worst_value(&top, order);
            if order.better(value, threshold) {
                // Replace the worst entry.
                let worst_idx = worst_index(&top, order);
                top[worst_idx] = (value, mask_id);
            }
        }
    }

    masksearch_obs::add_counter(obs_keys::CANDIDATES, candidates.len() as u64);
    masksearch_obs::add_counter(obs_keys::PRUNED, pruned);
    masksearch_obs::add_counter(obs_keys::VERIFIED, verified);
    masksearch_obs::add_counter(obs_keys::INDEXES_BUILT, indexes_built);
    masksearch_obs::add_counter(obs_keys::PLANNER_KERNEL_ON, kernel_on_count);
    masksearch_obs::add_counter(obs_keys::PLANNER_KERNEL_OFF, kernel_off_count);
    drop(rank_span);
    sort_ranked(&mut top, order, k);

    let io_delta = session
        .store()
        .io_stats()
        .snapshot()
        .delta_since(&io_before);
    let mut stats = QueryStats {
        candidates: candidates.len() as u64,
        pruned,
        accepted_without_load: 0,
        verified,
        indexes_built,
        tiles_pruned: tiles.tiles_pruned,
        tiles_hist: tiles.tiles_hist,
        tiles_scanned: tiles.tiles_scanned,
        planner_kernel_on: kernel_on_count,
        planner_kernel_off: kernel_off_count,
        filter_wall,
        verify_wall,
        total_wall: elapsed(total_start),
        ..Default::default()
    };
    apply_io_delta(&mut stats, &io_delta);

    Ok(QueryOutput {
        rows: top
            .into_iter()
            .map(|(value, id)| ResultRow::mask(id, Some(value)))
            .collect(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::session::{IndexingMode, SessionConfig};
    use masksearch_core::{cp, ImageId, Mask, MaskRecord, PixelRange, Roi};
    use masksearch_index::ChiConfig;
    use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};
    use std::sync::Arc;

    fn blob_db(n: u64) -> (Arc<MemoryMaskStore>, Catalog, Vec<Mask>) {
        let store = Arc::new(MemoryMaskStore::for_tests());
        let mut catalog = Catalog::new();
        let mut masks = Vec::new();
        for i in 0..n {
            // Blob radius varies non-monotonically with the id so ranking is
            // not trivially the id order.
            let radius = 2.0 + ((i * 7) % 13) as f32;
            let mask = Mask::from_fn(48, 48, move |x, y| {
                let dx = x as f32 - 20.0;
                let dy = y as f32 - 28.0;
                if (dx * dx + dy * dy).sqrt() < radius {
                    0.92
                } else {
                    0.03
                }
            });
            store.put(MaskId::new(i), &mask).unwrap();
            catalog.insert(
                MaskRecord::builder(MaskId::new(i))
                    .image_id(ImageId::new(i))
                    .shape(48, 48)
                    .object_box(Roi::new(8, 16, 34, 42).unwrap())
                    .build(),
            );
            masks.push(mask);
        }
        (store, catalog, masks)
    }

    fn brute_force_topk(
        masks: &[Mask],
        roi: &Roi,
        range: &PixelRange,
        k: usize,
        order: Order,
    ) -> Vec<(f64, MaskId)> {
        let mut rows: Vec<(f64, MaskId)> = masks
            .iter()
            .enumerate()
            .map(|(i, m)| (cp(m, roi, range) as f64, MaskId::new(i as u64)))
            .collect();
        sort_ranked(&mut rows, order, k);
        rows
    }

    fn session(store: Arc<MemoryMaskStore>, catalog: Catalog, mode: IndexingMode) -> Session {
        Session::new(
            store as Arc<dyn MaskStore>,
            catalog,
            SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap()).indexing_mode(mode),
        )
        .unwrap()
    }

    #[test]
    fn topk_matches_brute_force_desc_and_asc() {
        let (store, catalog, masks) = blob_db(30);
        let s = session(store, catalog, IndexingMode::Eager);
        let roi = Roi::new(5, 5, 43, 43).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        for order in [Order::Desc, Order::Asc] {
            let out = s.execute(&Query::top_k_cp(roi, range, 7, order)).unwrap();
            let expected = brute_force_topk(&masks, &roi, &range, 7, order);
            let got: Vec<(f64, MaskId)> = out
                .rows
                .iter()
                .map(|r| {
                    let id = match r.key {
                        crate::result::RowKey::Mask(id) => id,
                        _ => panic!("mask rows expected"),
                    };
                    (r.value.unwrap(), id)
                })
                .collect();
            assert_eq!(got, expected, "{order:?}");
        }
    }

    #[test]
    fn pruning_avoids_loading_most_masks() {
        let (store, catalog, _) = blob_db(60);
        let s = session(store.clone(), catalog, IndexingMode::Eager);
        store.io_stats().reset();
        let roi = Roi::new(5, 5, 43, 43).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        let out = s
            .execute(&Query::top_k_cp(roi, range, 5, Order::Desc))
            .unwrap();
        assert_eq!(out.len(), 5);
        assert!(
            out.stats.masks_loaded < 60,
            "expected pruning, loaded {}",
            out.stats.masks_loaded
        );
        assert!(out.stats.pruned > 0);
    }

    #[test]
    fn k_larger_than_candidates_returns_everything_ranked() {
        let (store, catalog, masks) = blob_db(6);
        let s = session(store, catalog, IndexingMode::Eager);
        let roi = Roi::new(0, 0, 48, 48).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        let out = s
            .execute(&Query::top_k_cp(roi, range, 100, Order::Desc))
            .unwrap();
        assert_eq!(out.len(), 6);
        let expected = brute_force_topk(&masks, &roi, &range, 100, Order::Desc);
        assert_eq!(out.rows[0].value.unwrap(), expected[0].0);
    }

    #[test]
    fn k_zero_returns_empty() {
        let (store, catalog, _) = blob_db(4);
        let s = session(store, catalog, IndexingMode::Eager);
        let out = s
            .execute(&Query::top_k_cp(
                Roi::new(0, 0, 48, 48).unwrap(),
                PixelRange::full(),
                0,
                Order::Desc,
            ))
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn ratio_ranking_matches_brute_force() {
        // Example 1 from the paper: rank by the ratio of salient pixels in an
        // ROI to salient pixels in the whole mask, ascending.
        let (store, catalog, masks) = blob_db(25);
        let s = session(store, catalog, IndexingMode::Eager);
        let roi = Roi::new(0, 0, 24, 48).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        let expr = Expr::cp(roi, range).div(Expr::cp_full(range));
        let out = s.execute(&Query::top_k(expr, 5, Order::Asc)).unwrap();
        let mut expected: Vec<(f64, MaskId)> = masks
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let num = cp(m, &roi, &range) as f64;
                let den = cp(m, &m.full_roi(), &range) as f64;
                (num / den, MaskId::new(i as u64))
            })
            .collect();
        sort_ranked(&mut expected, Order::Asc, 5);
        let got_ids: Vec<MaskId> = out.mask_ids();
        assert_eq!(
            got_ids,
            expected.iter().map(|(_, id)| *id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn incremental_mode_still_returns_correct_topk() {
        let (store, catalog, masks) = blob_db(20);
        let s = session(store, catalog, IndexingMode::Incremental);
        let roi = Roi::new(5, 5, 43, 43).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        let out = s
            .execute(&Query::top_k_cp(roi, range, 4, Order::Desc))
            .unwrap();
        let expected = brute_force_topk(&masks, &roi, &range, 4, Order::Desc);
        assert_eq!(
            out.mask_ids(),
            expected.iter().map(|(_, id)| *id).collect::<Vec<_>>()
        );
        // First query in incremental mode loads everything (and indexes it).
        assert_eq!(out.stats.masks_loaded, 20);
        assert_eq!(s.indexed_masks(), 20);
        // A repeat of the query now prunes using the freshly built indexes.
        let again = s
            .execute(&Query::top_k_cp(roi, range, 4, Order::Desc))
            .unwrap();
        assert_eq!(again.mask_ids(), out.mask_ids());
        assert!(again.stats.masks_loaded < 20);
    }
}
