//! Scalar-aggregation execution (§3.4): group masks by image, aggregate the
//! per-mask expression values with a monotone scalar aggregate, then filter
//! (`HAVING`) and/or rank (top-k) the groups.
//!
//! Because SUM/AVG/MIN/MAX are monotone in each member value, bounds on the
//! members propagate to bounds on the aggregate: the executor can prune or
//! accept an entire group — and skip loading every one of its masks — from
//! index information alone.

use crate::error::QueryResult;
use crate::eval;
use crate::exec::{apply_io_delta, elapsed, sort_ranked, worst_index, worst_value};
use crate::expr::{Expr, Interval};
use crate::planner::ExecPlan;
use crate::predicate::{CmpOp, Comparison, Truth};
use crate::result::{QueryOutput, QueryStats, ResultRow};
use crate::session::Session;
use crate::spec::{Order, ScalarAgg};
use masksearch_core::{ImageId, MaskId, TileStats};
use masksearch_obs::keys as obs_keys;
use std::time::Instant;

/// Bounds on a scalar aggregate from bounds on its member values.
fn aggregate_interval(agg: ScalarAgg, members: &[Interval]) -> Interval {
    if members.is_empty() {
        return Interval::point(0.0);
    }
    match agg {
        ScalarAgg::Sum => Interval::new(
            members.iter().map(|i| i.lo).sum(),
            members.iter().map(|i| i.hi).sum(),
        ),
        ScalarAgg::Avg => {
            let n = members.len() as f64;
            Interval::new(
                members.iter().map(|i| i.lo).sum::<f64>() / n,
                members.iter().map(|i| i.hi).sum::<f64>() / n,
            )
        }
        ScalarAgg::Min => Interval::new(
            members.iter().map(|i| i.lo).fold(f64::INFINITY, f64::min),
            members.iter().map(|i| i.hi).fold(f64::INFINITY, f64::min),
        ),
        ScalarAgg::Max => Interval::new(
            members
                .iter()
                .map(|i| i.lo)
                .fold(f64::NEG_INFINITY, f64::max),
            members
                .iter()
                .map(|i| i.hi)
                .fold(f64::NEG_INFINITY, f64::max),
        ),
    }
}

/// Executes an aggregation query over `candidates`.
pub fn execute(
    session: &Session,
    candidates: &[MaskId],
    expr: &Expr,
    agg: ScalarAgg,
    having: Option<(CmpOp, f64)>,
    top_k: Option<(usize, Order)>,
    plan: &ExecPlan,
) -> QueryResult<QueryOutput> {
    let total_start = Instant::now();
    let io_before = session.store().io_stats().snapshot();
    let fallback = session.config().object_box_fallback;
    let mut tiles = TileStats::default();
    let mut kernel_on_count = 0u64;
    let mut kernel_off_count = 0u64;

    let groups = session.group_by_image(candidates);
    let mut pruned_groups = 0u64;
    let mut accepted_without_load = 0u64;
    let mut verified_groups = 0u64;
    let mut indexes_built = 0u64;
    let mut filter_wall = std::time::Duration::ZERO;
    let mut verify_wall = std::time::Duration::ZERO;

    // For HAVING-only queries: accepted rows (value optional).
    let mut accepted_rows: Vec<ResultRow> = Vec::new();
    // For top-k queries: the running top-k of (value, image).
    let (k, order) = match top_k {
        Some((k, order)) => (k, Some(order)),
        None => (0, None),
    };
    let mut top: Vec<(f64, ImageId)> = Vec::new();

    for (image_id, member_ids) in &groups {
        // ---- Filter step: bound the aggregate from member CHIs. ----------
        let filter_start = Instant::now();
        let mut member_bounds = Vec::with_capacity(member_ids.len());
        let mut all_indexed = true;
        for &mask_id in member_ids {
            let record = session.record(mask_id)?;
            match session.chi_for(mask_id) {
                Some(chi) => member_bounds.push(eval::expr_bounds(expr, &record, &chi, fallback)?),
                None => {
                    all_indexed = false;
                    break;
                }
            }
        }
        let group_bounds = if all_indexed {
            Some(aggregate_interval(agg, &member_bounds))
        } else {
            None
        };
        filter_wall += elapsed(filter_start);

        // Decide whether the group can be pruned or accepted without loading.
        if let Some(bounds) = &group_bounds {
            if let Some(order) = order {
                if top.len() == k && k > 0 {
                    let threshold = worst_value(&top, order);
                    let cannot_enter = match order {
                        Order::Desc => bounds.hi <= threshold,
                        Order::Asc => bounds.lo >= threshold,
                    };
                    if cannot_enter {
                        pruned_groups += 1;
                        continue;
                    }
                }
            } else if let Some((op, threshold)) = having {
                let cmp = Comparison::new(Expr::Const(0.0), op, threshold);
                match cmp.eval_bounds(bounds) {
                    Truth::False => {
                        pruned_groups += 1;
                        continue;
                    }
                    Truth::True => {
                        accepted_without_load += 1;
                        accepted_rows.push(ResultRow::image(*image_id, None));
                        continue;
                    }
                    Truth::Unknown => {}
                }
            }
        }

        // ---- Verification step: load every member and compute exactly. ----
        let verify_start = Instant::now();
        verified_groups += 1;
        let mut values = Vec::with_capacity(member_ids.len());
        for &mask_id in member_ids {
            let record = session.record(mask_id)?;
            let (mask, built) = session.load_and_index(mask_id)?;
            if built {
                indexes_built += 1;
            }
            let kernel_on = plan.kernel_on_for(&mask);
            if kernel_on {
                kernel_on_count += 1;
            } else {
                kernel_off_count += 1;
            }
            values.push(eval::expr_exact_tiled(
                expr,
                &record,
                &mask,
                &session.verify_options_with(kernel_on),
                &mut tiles,
            )?);
        }
        let value = agg.apply(&values);
        verify_wall += elapsed(verify_start);

        if let Some(order) = order {
            if k == 0 {
                continue;
            }
            if top.len() < k {
                top.push((value, *image_id));
            } else {
                let threshold = worst_value(&top, order);
                if order.better(value, threshold) {
                    let idx = worst_index(&top, order);
                    top[idx] = (value, *image_id);
                }
            }
        } else if let Some((op, threshold)) = having {
            if op.eval(value, threshold) {
                accepted_rows.push(ResultRow::image(*image_id, Some(value)));
            } else {
                pruned_groups += 1;
            }
        } else {
            // Plain aggregation: every group is returned with its value.
            accepted_rows.push(ResultRow::image(*image_id, Some(value)));
        }
    }

    let rows = if let Some(order) = order {
        let mut ranked = top;
        sort_ranked(&mut ranked, order, k);
        ranked
            .into_iter()
            .map(|(value, image)| ResultRow::image(image, Some(value)))
            .collect()
    } else {
        accepted_rows.sort_by_key(|r| r.key);
        accepted_rows
    };

    masksearch_obs::add_counter(obs_keys::PLANNER_KERNEL_ON, kernel_on_count);
    masksearch_obs::add_counter(obs_keys::PLANNER_KERNEL_OFF, kernel_off_count);

    let io_delta = session
        .store()
        .io_stats()
        .snapshot()
        .delta_since(&io_before);
    let mut stats = QueryStats {
        candidates: candidates.len() as u64,
        pruned: pruned_groups,
        accepted_without_load,
        verified: verified_groups,
        indexes_built,
        planner_kernel_on: kernel_on_count,
        planner_kernel_off: kernel_off_count,
        tiles_pruned: tiles.tiles_pruned,
        tiles_hist: tiles.tiles_hist,
        tiles_scanned: tiles.tiles_scanned,
        filter_wall,
        verify_wall,
        total_wall: elapsed(total_start),
        ..Default::default()
    };
    apply_io_delta(&mut stats, &io_delta);

    Ok(QueryOutput { rows, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::session::{IndexingMode, SessionConfig};
    use masksearch_core::{cp, Mask, MaskRecord, ModelId, PixelRange, Roi};
    use masksearch_index::ChiConfig;
    use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    /// Two masks (two "models") per image, varying blob sizes.
    fn two_model_db(images: u64) -> (Arc<MemoryMaskStore>, Catalog, BTreeMap<u64, Vec<Mask>>) {
        let store = Arc::new(MemoryMaskStore::for_tests());
        let mut catalog = Catalog::new();
        let mut by_image = BTreeMap::new();
        let mut mask_id = 0u64;
        for img in 0..images {
            let mut group = Vec::new();
            for model in 0..2u64 {
                let radius = 1.5 + ((img * 5 + model * 3) % 11) as f32;
                let mask = Mask::from_fn(40, 40, move |x, y| {
                    let dx = x as f32 - 20.0;
                    let dy = y as f32 - 20.0;
                    if (dx * dx + dy * dy).sqrt() < radius {
                        0.9
                    } else {
                        0.05
                    }
                });
                store.put(MaskId::new(mask_id), &mask).unwrap();
                catalog.insert(
                    MaskRecord::builder(MaskId::new(mask_id))
                        .image_id(ImageId::new(img))
                        .model_id(ModelId::new(model + 1))
                        .shape(40, 40)
                        .object_box(Roi::new(10, 10, 30, 30).unwrap())
                        .build(),
                );
                group.push(mask);
                mask_id += 1;
            }
            by_image.insert(img, group);
        }
        (store, catalog, by_image)
    }

    fn object_box() -> Roi {
        Roi::new(10, 10, 30, 30).unwrap()
    }

    fn brute_force_mean(
        by_image: &BTreeMap<u64, Vec<Mask>>,
        range: &PixelRange,
    ) -> BTreeMap<u64, f64> {
        by_image
            .iter()
            .map(|(img, masks)| {
                let mean = masks
                    .iter()
                    .map(|m| cp(m, &object_box(), range) as f64)
                    .sum::<f64>()
                    / masks.len() as f64;
                (*img, mean)
            })
            .collect()
    }

    fn session(store: Arc<MemoryMaskStore>, catalog: Catalog, mode: IndexingMode) -> Session {
        Session::new(
            store as Arc<dyn MaskStore>,
            catalog,
            SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap()).indexing_mode(mode),
        )
        .unwrap()
    }

    #[test]
    fn aggregate_interval_propagation() {
        let members = vec![Interval::new(1.0, 3.0), Interval::new(2.0, 4.0)];
        assert_eq!(
            aggregate_interval(ScalarAgg::Sum, &members),
            Interval::new(3.0, 7.0)
        );
        assert_eq!(
            aggregate_interval(ScalarAgg::Avg, &members),
            Interval::new(1.5, 3.5)
        );
        assert_eq!(
            aggregate_interval(ScalarAgg::Min, &members),
            Interval::new(1.0, 3.0)
        );
        assert_eq!(
            aggregate_interval(ScalarAgg::Max, &members),
            Interval::new(2.0, 4.0)
        );
        assert_eq!(
            aggregate_interval(ScalarAgg::Sum, &[]),
            Interval::point(0.0)
        );
    }

    #[test]
    fn top_k_by_mean_cp_matches_brute_force() {
        // Paper Q4: top-k images by mean CP over the two models' masks.
        let (store, catalog, by_image) = two_model_db(20);
        let s = session(store, catalog, IndexingMode::Eager);
        let range = PixelRange::new(0.8, 1.0).unwrap();
        let query = Query::aggregate(Expr::cp_object(range), ScalarAgg::Avg)
            .with_group_top_k(5, Order::Desc);
        let out = s.execute(&query).unwrap();
        assert_eq!(out.len(), 5);

        let exact = brute_force_mean(&by_image, &range);
        let mut expected: Vec<(f64, ImageId)> = exact
            .iter()
            .map(|(img, v)| (*v, ImageId::new(*img)))
            .collect();
        sort_ranked(&mut expected, Order::Desc, 5);
        assert_eq!(
            out.image_ids(),
            expected.iter().map(|(_, id)| *id).collect::<Vec<_>>()
        );
        for (row, (value, _)) in out.rows.iter().zip(&expected) {
            assert!((row.value.unwrap() - value).abs() < 1e-9);
        }
    }

    #[test]
    fn group_pruning_avoids_loading_all_masks() {
        let (store, catalog, _) = two_model_db(30);
        let s = session(store.clone(), catalog, IndexingMode::Eager);
        store.io_stats().reset();
        let range = PixelRange::new(0.8, 1.0).unwrap();
        let query = Query::aggregate(Expr::cp_object(range), ScalarAgg::Avg)
            .with_group_top_k(3, Order::Desc);
        let out = s.execute(&query).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.stats.masks_loaded < 60);
        assert!(out.stats.pruned > 0);
    }

    #[test]
    fn having_filter_matches_brute_force() {
        let (store, catalog, by_image) = two_model_db(16);
        let s = session(store, catalog, IndexingMode::Eager);
        let range = PixelRange::new(0.8, 1.0).unwrap();
        let threshold = 60.0;
        let query = Query::aggregate(Expr::cp_object(range), ScalarAgg::Sum)
            .with_having(CmpOp::Gt, threshold);
        let out = s.execute(&query).unwrap();
        let expected: Vec<ImageId> = by_image
            .iter()
            .filter(|(_, masks)| {
                masks
                    .iter()
                    .map(|m| cp(m, &object_box(), &range) as f64)
                    .sum::<f64>()
                    > threshold
            })
            .map(|(img, _)| ImageId::new(*img))
            .collect();
        assert_eq!(out.image_ids(), expected);
    }

    #[test]
    fn plain_aggregation_returns_every_group_with_its_value() {
        let (store, catalog, by_image) = two_model_db(8);
        let s = session(store, catalog, IndexingMode::Eager);
        let range = PixelRange::new(0.8, 1.0).unwrap();
        let query = Query::aggregate(Expr::cp_object(range), ScalarAgg::Max);
        let out = s.execute(&query).unwrap();
        assert_eq!(out.len(), 8);
        for row in &out.rows {
            let img = match row.key {
                crate::result::RowKey::Image(id) => id.raw(),
                _ => panic!("image rows expected"),
            };
            let expected = by_image[&img]
                .iter()
                .map(|m| cp(m, &object_box(), &range) as f64)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!((row.value.unwrap() - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn incremental_mode_matches_eager_results() {
        let (store, catalog, _) = two_model_db(12);
        let range = PixelRange::new(0.8, 1.0).unwrap();
        let query = Query::aggregate(Expr::cp_object(range), ScalarAgg::Avg)
            .with_group_top_k(4, Order::Asc);
        let eager = session(store.clone(), catalog.clone(), IndexingMode::Eager)
            .execute(&query)
            .unwrap();
        let incremental = session(store, catalog, IndexingMode::Incremental)
            .execute(&query)
            .unwrap();
        assert_eq!(eager.image_ids(), incremental.image_ids());
    }
}
