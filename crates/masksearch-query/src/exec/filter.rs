//! Filter-query execution: the two-stage filter–verification framework of
//! §3.2 applied to `WHERE <predicate on CP(...)>` queries.

use crate::error::QueryResult;
use crate::eval;
use crate::exec::{apply_io_delta, chunks_for_threads, elapsed};
use crate::planner::ExecPlan;
use crate::predicate::{Predicate, Truth};
use crate::result::{QueryOutput, QueryStats, ResultRow};
use crate::session::Session;
use masksearch_core::{MaskId, TileStats};
use masksearch_obs::keys as obs_keys;
use parking_lot::Mutex;
use std::time::Instant;

/// Per-mask outcome of the filter stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FilterOutcome {
    /// Guaranteed to satisfy the predicate: goes straight to the result set.
    Accept,
    /// Guaranteed to fail the predicate: pruned.
    Prune,
    /// Undecided: must be verified by loading the mask.
    Verify,
}

/// Executes a filter query over `candidates`, following `plan`'s term
/// order and per-mask kernel routing (both byte-identical to the fixed
/// strategies; see `masksearch-plan`).
pub fn execute(
    session: &Session,
    candidates: &[MaskId],
    predicate: &Predicate,
    plan: &ExecPlan,
) -> QueryResult<QueryOutput> {
    let total_start = Instant::now();
    let io_before = session.store().io_stats().snapshot();
    let fallback = session.config().object_box_fallback;
    let threads = session.config().threads;

    // ---- Filter stage -----------------------------------------------------
    let filter_span = masksearch_obs::span("filter");
    let filter_start = Instant::now();
    let chunks = chunks_for_threads(candidates, threads);
    // The stage is pure CPU (nothing is loaded), so one catalog guard and
    // one CHI-store guard cover all of it: per-candidate lock round-trips,
    // record clones, and `Arc` bumps used to dominate bounds-decided
    // classification. Both guards drop at the end of this block, before
    // verification starts loading masks.
    let outcomes: Vec<(MaskId, FilterOutcome)> = {
        let catalog = session.catalog_read();
        let chi_reader = session.chi_reader();
        let classify_chunk = |chunk: &[MaskId]| -> QueryResult<Vec<(MaskId, FilterOutcome)>> {
            let mut classifier = eval::BoundsClassifier::new(predicate, plan.term_order());
            let mut local = Vec::with_capacity(chunk.len());
            for &mask_id in chunk {
                let record = catalog
                    .get(mask_id)
                    .ok_or(crate::error::QueryError::UnknownMask(mask_id))?;
                let outcome = match chi_reader.as_ref().and_then(|r| r.get(mask_id)) {
                    // No index: incremental and disabled modes verify by
                    // loading.
                    None => FilterOutcome::Verify,
                    Some(chi) => match classifier.classify(record, chi, fallback)? {
                        Truth::True => FilterOutcome::Accept,
                        Truth::False => FilterOutcome::Prune,
                        Truth::Unknown => FilterOutcome::Verify,
                    },
                };
                local.push((mask_id, outcome));
            }
            Ok(local)
        };
        if chunks.len() <= 1 {
            // One chunk (single-threaded session or small input): classify
            // inline — spawning a worker costs more than the work it does.
            match chunks.first() {
                Some(chunk) => classify_chunk(chunk)?,
                None => Vec::new(),
            }
        } else {
            let results: Mutex<Vec<(MaskId, FilterOutcome)>> =
                Mutex::new(Vec::with_capacity(candidates.len()));
            let first_error: Mutex<Option<crate::error::QueryError>> = Mutex::new(None);
            std::thread::scope(|scope| {
                for chunk in &chunks {
                    scope.spawn(|| match classify_chunk(chunk) {
                        Ok(local) => results.lock().extend(local),
                        Err(e) => {
                            let mut slot = first_error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                        }
                    });
                }
            });
            if let Some(err) = first_error.into_inner() {
                return Err(err);
            }
            results.into_inner()
        }
    };
    let filter_wall = elapsed(filter_start);

    let mut accepted: Vec<MaskId> = Vec::new();
    let mut to_verify: Vec<MaskId> = Vec::new();
    let mut pruned = 0u64;
    for (id, outcome) in outcomes {
        match outcome {
            FilterOutcome::Accept => accepted.push(id),
            FilterOutcome::Prune => pruned += 1,
            FilterOutcome::Verify => to_verify.push(id),
        }
    }
    to_verify.sort_unstable();
    masksearch_obs::add_counter(obs_keys::CANDIDATES, candidates.len() as u64);
    masksearch_obs::add_counter(obs_keys::PRUNED, pruned);
    masksearch_obs::add_counter(obs_keys::VERIFIED, to_verify.len() as u64);
    drop(filter_span);

    // ---- Verification stage ----------------------------------------------
    let verify_span = masksearch_obs::span("verify");
    let verify_start = Instant::now();
    let verify_chunks = chunks_for_threads(&to_verify, threads);
    #[derive(Default)]
    struct ChunkVerify {
        hits: Vec<MaskId>,
        built: u64,
        tiles: TileStats,
        kernel: (u64, u64),
    }
    let verify_chunk = |chunk: &[MaskId]| -> QueryResult<ChunkVerify> {
        let mut out = ChunkVerify::default();
        for &mask_id in chunk {
            let record = session.record(mask_id)?;
            let (mask, built) = session.load_and_index(mask_id)?;
            let kernel_on = plan.kernel_on_for(&mask);
            if kernel_on {
                out.kernel.0 += 1;
            } else {
                out.kernel.1 += 1;
            }
            let satisfied = eval::predicate_exact_tiled(
                predicate,
                &record,
                &mask,
                &session.verify_options_with(kernel_on),
                &mut out.tiles,
            )?;
            if satisfied {
                out.hits.push(mask_id);
            }
            if built {
                out.built += 1;
            }
        }
        Ok(out)
    };
    let verified = if verify_chunks.len() <= 1 {
        // Same single-chunk shortcut as the filter stage.
        match verify_chunks.first() {
            Some(chunk) => verify_chunk(chunk)?,
            None => ChunkVerify::default(),
        }
    } else {
        let merged: Mutex<ChunkVerify> = Mutex::new(ChunkVerify::default());
        let first_error: Mutex<Option<crate::error::QueryError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for chunk in &verify_chunks {
                scope.spawn(|| match verify_chunk(chunk) {
                    Ok(out) => {
                        let mut m = merged.lock();
                        m.hits.extend(out.hits);
                        m.built += out.built;
                        m.tiles.merge(&out.tiles);
                        m.kernel.0 += out.kernel.0;
                        m.kernel.1 += out.kernel.1;
                    }
                    Err(e) => {
                        let mut slot = first_error.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                });
            }
        });
        if let Some(err) = first_error.into_inner() {
            return Err(err);
        }
        merged.into_inner()
    };
    let verify_wall = elapsed(verify_start);
    let (kernel_on_count, kernel_off_count) = verified.kernel;
    masksearch_obs::add_counter(obs_keys::INDEXES_BUILT, verified.built);
    masksearch_obs::add_counter(obs_keys::PLANNER_KERNEL_ON, kernel_on_count);
    masksearch_obs::add_counter(obs_keys::PLANNER_KERNEL_OFF, kernel_off_count);
    drop(verify_span);

    accepted.extend(verified.hits);
    accepted.sort_unstable();

    let io_delta = session
        .store()
        .io_stats()
        .snapshot()
        .delta_since(&io_before);
    let tiles = verified.tiles;
    let mut stats = QueryStats {
        candidates: candidates.len() as u64,
        pruned,
        accepted_without_load: (accepted.len() as u64)
            .saturating_sub(io_delta.masks_loaded.min(accepted.len() as u64)),
        verified: to_verify.len() as u64,
        indexes_built: verified.built,
        tiles_pruned: tiles.tiles_pruned,
        tiles_hist: tiles.tiles_hist,
        tiles_scanned: tiles.tiles_scanned,
        planner_kernel_on: kernel_on_count,
        planner_kernel_off: kernel_off_count,
        planner_reorders: plan.plan.reordered() as u64,
        filter_wall,
        verify_wall,
        total_wall: elapsed(total_start),
        ..Default::default()
    };
    // accepted_without_load counts masks admitted purely from bounds.
    stats.accepted_without_load = (candidates.len() as u64)
        .saturating_sub(pruned)
        .saturating_sub(to_verify.len() as u64);
    apply_io_delta(&mut stats, &io_delta);

    Ok(QueryOutput {
        rows: accepted
            .into_iter()
            .map(|id| ResultRow::mask(id, None))
            .collect(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::{Query, Selection};
    use crate::session::{IndexingMode, SessionConfig};
    use masksearch_core::{cp, ImageId, Mask, MaskRecord, PixelRange, Roi};
    use masksearch_index::ChiConfig;
    use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};
    use std::sync::Arc;

    /// A database of blob masks with varying salient-pixel counts.
    fn blob_db(n: u64) -> (Arc<MemoryMaskStore>, Catalog, Vec<Mask>) {
        let store = Arc::new(MemoryMaskStore::for_tests());
        let mut catalog = Catalog::new();
        let mut masks = Vec::new();
        for i in 0..n {
            let radius = 2.0 + (i as f32) * 0.7;
            let mask = Mask::from_fn(48, 48, move |x, y| {
                let dx = x as f32 - 24.0;
                let dy = y as f32 - 24.0;
                if (dx * dx + dy * dy).sqrt() < radius {
                    0.9
                } else {
                    0.05
                }
            });
            store.put(MaskId::new(i), &mask).unwrap();
            catalog.insert(
                MaskRecord::builder(MaskId::new(i))
                    .image_id(ImageId::new(i))
                    .shape(48, 48)
                    .object_box(Roi::new(12, 12, 36, 36).unwrap())
                    .build(),
            );
            masks.push(mask);
        }
        (store, catalog, masks)
    }

    fn brute_force(masks: &[Mask], roi: &Roi, range: &PixelRange, t: f64) -> Vec<MaskId> {
        masks
            .iter()
            .enumerate()
            .filter(|(_, m)| (cp(m, roi, range) as f64) > t)
            .map(|(i, _)| MaskId::new(i as u64))
            .collect()
    }

    fn run(mode: IndexingMode) {
        let (store, catalog, masks) = blob_db(24);
        let config = SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap())
            .threads(3)
            .indexing_mode(mode);
        let session = Session::new(store.clone() as Arc<dyn MaskStore>, catalog, config).unwrap();
        let roi = Roi::new(10, 10, 40, 40).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        for t in [0.0, 50.0, 200.0, 800.0, 3000.0] {
            let query = Query::filter_cp_gt(roi, range, t);
            let out = session.execute(&query).unwrap();
            assert_eq!(
                out.mask_ids(),
                brute_force(&masks, &roi, &range, t),
                "threshold {t} mode {mode:?}"
            );
            assert_eq!(out.stats.candidates, 24);
            assert_eq!(
                out.stats.pruned + out.stats.accepted_without_load + out.stats.verified,
                24
            );
        }
    }

    #[test]
    fn filter_results_match_brute_force_in_eager_mode() {
        run(IndexingMode::Eager);
    }

    #[test]
    fn filter_results_match_brute_force_in_incremental_mode() {
        run(IndexingMode::Incremental);
    }

    #[test]
    fn filter_results_match_brute_force_with_indexing_disabled() {
        run(IndexingMode::Disabled);
    }

    #[test]
    fn eager_mode_loads_fewer_masks_than_disabled() {
        let (store, catalog, _) = blob_db(32);
        let roi = Roi::new(16, 16, 32, 32).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        let query = Query::filter_cp_gt(roi, range, 60.0);

        let eager_session = Session::new(
            store.clone() as Arc<dyn MaskStore>,
            catalog.clone(),
            SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap()).indexing_mode(IndexingMode::Eager),
        )
        .unwrap();
        // Reset stats so the eager build is not counted against the query.
        store.io_stats().reset();
        let eager_out = eager_session.execute(&query).unwrap();

        let disabled_session = Session::new(
            store.clone() as Arc<dyn MaskStore>,
            catalog,
            SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap())
                .indexing_mode(IndexingMode::Disabled),
        )
        .unwrap();
        store.io_stats().reset();
        let disabled_out = disabled_session.execute(&query).unwrap();

        assert_eq!(eager_out.mask_ids(), disabled_out.mask_ids());
        assert!(eager_out.stats.masks_loaded < disabled_out.stats.masks_loaded);
        assert_eq!(disabled_out.stats.masks_loaded, 32);
        assert!(eager_out.stats.fml() < 1.0);
        assert!((disabled_out.stats.fml() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_mode_builds_indexes_as_a_side_effect() {
        let (store, catalog, _) = blob_db(10);
        let session = Session::new(
            store as Arc<dyn MaskStore>,
            catalog,
            SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap())
                .indexing_mode(IndexingMode::Incremental),
        )
        .unwrap();
        let roi = Roi::new(10, 10, 40, 40).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        let query = Query::filter_cp_gt(roi, range, 100.0);

        let first = session.execute(&query).unwrap();
        assert_eq!(first.stats.masks_loaded, 10);
        assert_eq!(first.stats.indexes_built, 10);
        assert_eq!(session.indexed_masks(), 10);

        // The second execution benefits from the indexes built by the first.
        let second = session.execute(&query).unwrap();
        assert_eq!(second.mask_ids(), first.mask_ids());
        assert!(second.stats.masks_loaded < 10);
        assert_eq!(second.stats.indexes_built, 0);
    }

    #[test]
    fn selection_restricts_candidates() {
        let (store, catalog, _) = blob_db(12);
        let session = Session::new(
            store as Arc<dyn MaskStore>,
            catalog,
            SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap()).indexing_mode(IndexingMode::Eager),
        )
        .unwrap();
        let roi = Roi::new(0, 0, 48, 48).unwrap();
        let query = Query::filter_cp_gt(roi, PixelRange::full(), 0.0).with_selection(
            Selection::all().with_image_ids(vec![ImageId::new(3), ImageId::new(5)]),
        );
        let out = session.execute(&query).unwrap();
        assert_eq!(out.stats.candidates, 2);
        assert_eq!(out.mask_ids(), vec![MaskId::new(3), MaskId::new(5)]);
    }

    #[test]
    fn compound_predicates_and_object_rois() {
        let (store, catalog, masks) = blob_db(20);
        let session = Session::new(
            store as Arc<dyn MaskStore>,
            catalog.clone(),
            SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap()).indexing_mode(IndexingMode::Eager),
        )
        .unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        // Salient pixels inside the object box > 100 AND salient pixels in
        // the whole mask < 600 (an annulus-style query).
        let pred = Predicate::gt(Expr::cp_object(range), 100.0)
            .and(Predicate::lt(Expr::cp_full(range), 600.0));
        let out = session.execute(&Query::filter(pred)).unwrap();
        let object_box = Roi::new(12, 12, 36, 36).unwrap();
        let expected: Vec<MaskId> = masks
            .iter()
            .enumerate()
            .filter(|(_, m)| {
                let inside = cp(m, &object_box, &range) as f64;
                let total = cp(m, &m.full_roi(), &range) as f64;
                inside > 100.0 && total < 600.0
            })
            .map(|(i, _)| MaskId::new(i as u64))
            .collect();
        assert_eq!(out.mask_ids(), expected);
    }
}
