//! Mask-aggregation execution (§3.4, paper Q5 / Example 2): group masks by
//! image, combine the group's masks with a `MASK_AGG` function (e.g.
//! intersection after thresholding), evaluate a `CP` term on the aggregated
//! mask, then filter and/or rank the groups.
//!
//! If the session holds a pre-built index over the aggregated masks
//! ([`Session::build_aggregate_index`]), the filter stage bounds the `CP`
//! value from that index and most groups are never materialised; otherwise
//! every group is verified by loading its member masks (and, in incremental
//! mode, the aggregated mask's CHI is built and retained as a side effect).
//!
//! The planner deliberately leaves this executor on its reference scan: the
//! aggregated mask is materialised fresh for each group, so a tile-summary
//! grid built over it could never amortise across queries the way per-mask
//! grids do.

use crate::error::QueryResult;
use crate::exec::{apply_io_delta, elapsed, sort_ranked, worst_index, worst_value};
use crate::expr::Interval;
use crate::predicate::{CmpOp, Comparison, Truth};
use crate::query::Selection;
use crate::result::{QueryOutput, QueryStats, ResultRow};
use crate::session::Session;
use crate::spec::{CpTerm, Order, RoiSpec};
use masksearch_core::{cp, ImageId, Mask, MaskAgg, MaskId, PixelRange, Roi};
use masksearch_index::Chi;
use std::time::Instant;

/// Executes a mask-aggregation query over `candidates`.
#[allow(clippy::too_many_arguments)]
pub fn execute(
    session: &Session,
    selection: &Selection,
    candidates: &[MaskId],
    agg: &MaskAgg,
    term: &CpTerm,
    having: Option<(CmpOp, f64)>,
    top_k: Option<(usize, Order)>,
) -> QueryResult<QueryOutput> {
    let total_start = Instant::now();
    let io_before = session.store().io_stats().snapshot();

    let groups = session.group_by_image(candidates);
    let signature = Session::aggregate_signature(agg, selection);
    let agg_index = session.aggregate_index(&signature);

    let mut pruned_groups = 0u64;
    let mut accepted_without_load = 0u64;
    let mut verified_groups = 0u64;
    let mut indexes_built = 0u64;
    let mut filter_wall = std::time::Duration::ZERO;
    let mut verify_wall = std::time::Duration::ZERO;

    let mut accepted_rows: Vec<ResultRow> = Vec::new();
    let (k, order) = match top_k {
        Some((k, order)) => (k, Some(order)),
        None => (0, None),
    };
    let mut top: Vec<(f64, ImageId)> = Vec::new();

    for (image_id, member_ids) in &groups {
        // Resolve the term's ROI for this group. Object boxes are shared by
        // the group's masks (they annotate the same image), so the first
        // record's box is used.
        let roi = group_roi(session, term, member_ids)?;

        // ---- Filter step using the aggregated-mask index, if present. -----
        let filter_start = Instant::now();
        let group_bounds: Option<Interval> = agg_index
            .as_ref()
            .and_then(|index| index.get(MaskId::new(image_id.raw())))
            .map(|chi| {
                let b = chi.cp_bounds(&roi, &term.range);
                Interval::new(b.lower as f64, b.upper as f64)
            });
        filter_wall += elapsed(filter_start);

        if let Some(bounds) = &group_bounds {
            if let Some(order) = order {
                if top.len() == k && k > 0 {
                    let threshold = worst_value(&top, order);
                    let cannot_enter = match order {
                        Order::Desc => bounds.hi <= threshold,
                        Order::Asc => bounds.lo >= threshold,
                    };
                    if cannot_enter {
                        pruned_groups += 1;
                        continue;
                    }
                }
            } else if let Some((op, threshold)) = having {
                let cmp = Comparison::new(crate::expr::Expr::Const(0.0), op, threshold);
                match cmp.eval_bounds(bounds) {
                    Truth::False => {
                        pruned_groups += 1;
                        continue;
                    }
                    Truth::True => {
                        accepted_without_load += 1;
                        accepted_rows.push(ResultRow::image(*image_id, None));
                        continue;
                    }
                    Truth::Unknown => {}
                }
            }
        }

        // ---- Verification: load the group, aggregate, evaluate exactly. ---
        let verify_start = Instant::now();
        verified_groups += 1;
        let mut loaded = Vec::with_capacity(member_ids.len());
        for &mask_id in member_ids {
            let (mask, built) = session.load_and_index(mask_id)?;
            if built {
                indexes_built += 1;
            }
            loaded.push(mask);
        }
        let refs: Vec<&Mask> = loaded.iter().map(|m| m.mask()).collect();
        let aggregated = agg.apply(&refs)?;
        // The aggregated mask is freshly materialised and evaluated exactly
        // once, so the tiled kernel's summary build (a full extra pixel
        // pass) can never amortise here — the reference ROI scan is
        // strictly cheaper. The kernel covers the per-mask CP terms of the
        // other executors, where cached masks reuse their summaries.
        let value = cp(&aggregated, &roi, &term.range) as f64;
        // Incremental indexing of the aggregated mask (§3.4): retain its CHI
        // so later queries with the same aggregation shape can prune.
        if agg_index.is_none()
            || !agg_index
                .as_ref()
                .unwrap()
                .contains(MaskId::new(image_id.raw()))
        {
            let chi = Chi::build(&aggregated, &session.config().chi_config);
            session.insert_aggregate_chi(&signature, *image_id, chi);
        }
        verify_wall += elapsed(verify_start);

        if let Some(order) = order {
            if k == 0 {
                continue;
            }
            if top.len() < k {
                top.push((value, *image_id));
            } else {
                let threshold = worst_value(&top, order);
                if order.better(value, threshold) {
                    let idx = worst_index(&top, order);
                    top[idx] = (value, *image_id);
                }
            }
        } else if let Some((op, threshold)) = having {
            if op.eval(value, threshold) {
                accepted_rows.push(ResultRow::image(*image_id, Some(value)));
            } else {
                pruned_groups += 1;
            }
        } else {
            accepted_rows.push(ResultRow::image(*image_id, Some(value)));
        }
    }

    let rows = if let Some(order) = order {
        let mut ranked = top;
        sort_ranked(&mut ranked, order, k);
        ranked
            .into_iter()
            .map(|(value, image)| ResultRow::image(image, Some(value)))
            .collect()
    } else {
        accepted_rows.sort_by_key(|r| r.key);
        accepted_rows
    };

    let io_delta = session
        .store()
        .io_stats()
        .snapshot()
        .delta_since(&io_before);
    let mut stats = QueryStats {
        candidates: candidates.len() as u64,
        pruned: pruned_groups,
        accepted_without_load,
        verified: verified_groups,
        indexes_built,
        filter_wall,
        verify_wall,
        total_wall: elapsed(total_start),
        ..Default::default()
    };
    apply_io_delta(&mut stats, &io_delta);

    Ok(QueryOutput { rows, stats })
}

/// Resolves the query term's ROI for a group of masks.
fn group_roi(session: &Session, term: &CpTerm, member_ids: &[MaskId]) -> QueryResult<Roi> {
    let fallback = session.config().object_box_fallback;
    let first = member_ids
        .first()
        .ok_or_else(|| crate::error::QueryError::invalid("empty group"))?;
    let record = session.record(*first)?;
    match term.roi {
        RoiSpec::Constant(roi) => Ok(roi),
        RoiSpec::FullMask | RoiSpec::ObjectBox => crate::eval::resolve_roi(term, &record, fallback),
    }
}

/// Brute-force reference used by tests and the baseline engines: aggregate
/// each group's masks and evaluate the `CP` term exactly.
pub fn brute_force_group_value(
    masks: &[&Mask],
    agg: &MaskAgg,
    roi: &Roi,
    range: &PixelRange,
) -> QueryResult<f64> {
    let aggregated = agg.apply(masks)?;
    Ok(cp(&aggregated, roi, range) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::session::{IndexingMode, SessionConfig};
    use masksearch_core::{MaskRecord, ModelId};
    use masksearch_index::ChiConfig;
    use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn db(images: u64) -> (Arc<MemoryMaskStore>, Catalog, BTreeMap<u64, Vec<Mask>>) {
        let store = Arc::new(MemoryMaskStore::for_tests());
        let mut catalog = Catalog::new();
        let mut by_image = BTreeMap::new();
        let mut mask_id = 0u64;
        for img in 0..images {
            let mut group = Vec::new();
            for model in 0..2u64 {
                // Two overlapping blobs whose intersection size varies by image.
                let offset = ((img * 3 + model * 5) % 9) as f32;
                let mask = Mask::from_fn(40, 40, move |x, y| {
                    let dx = x as f32 - (16.0 + offset);
                    let dy = y as f32 - 20.0;
                    if (dx * dx + dy * dy).sqrt() < 8.0 {
                        0.9
                    } else {
                        0.1
                    }
                });
                store.put(MaskId::new(mask_id), &mask).unwrap();
                catalog.insert(
                    MaskRecord::builder(MaskId::new(mask_id))
                        .image_id(ImageId::new(img))
                        .model_id(ModelId::new(model + 1))
                        .shape(40, 40)
                        .object_box(Roi::new(8, 8, 32, 32).unwrap())
                        .build(),
                );
                group.push(mask);
                mask_id += 1;
            }
            by_image.insert(img, group);
        }
        (store, catalog, by_image)
    }

    fn brute_force_topk(
        by_image: &BTreeMap<u64, Vec<Mask>>,
        agg: &MaskAgg,
        roi: &Roi,
        range: &PixelRange,
        k: usize,
    ) -> Vec<ImageId> {
        let mut rows: Vec<(f64, ImageId)> = by_image
            .iter()
            .map(|(img, masks)| {
                let refs: Vec<&Mask> = masks.iter().collect();
                (
                    brute_force_group_value(&refs, agg, roi, range).unwrap(),
                    ImageId::new(*img),
                )
            })
            .collect();
        sort_ranked(&mut rows, Order::Desc, k);
        rows.into_iter().map(|(_, id)| id).collect()
    }

    fn make_session(store: Arc<MemoryMaskStore>, catalog: Catalog, mode: IndexingMode) -> Session {
        Session::new(
            store as Arc<dyn MaskStore>,
            catalog,
            SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap()).indexing_mode(mode),
        )
        .unwrap()
    }

    #[test]
    fn q5_style_query_matches_brute_force() {
        // Paper Q5: top-k images by CP(intersect(masks > 0.7), roi, (0.7, 1.0)).
        let (store, catalog, by_image) = db(18);
        let session = make_session(store, catalog, IndexingMode::Eager);
        let agg = MaskAgg::IntersectThreshold { threshold: 0.7 };
        let range = PixelRange::new(0.7, 1.0).unwrap();
        let term = CpTerm::object_roi(range);
        let query = Query::mask_aggregate(agg.clone(), term).with_group_top_k(5, Order::Desc);
        let out = session.execute(&query).unwrap();
        let expected =
            brute_force_topk(&by_image, &agg, &Roi::new(8, 8, 32, 32).unwrap(), &range, 5);
        assert_eq!(out.image_ids(), expected);
    }

    #[test]
    fn prebuilt_aggregate_index_reduces_group_loads() {
        let (store, catalog, by_image) = db(24);
        let session = make_session(store.clone(), catalog, IndexingMode::Eager);
        let agg = MaskAgg::IntersectThreshold { threshold: 0.7 };
        let range = PixelRange::new(0.7, 1.0).unwrap();
        let term = CpTerm::object_roi(range);
        let selection = Selection::all();
        session.build_aggregate_index(&agg, &selection).unwrap();
        store.io_stats().reset();

        let query = Query::mask_aggregate(agg.clone(), term)
            .with_selection(selection)
            .with_group_top_k(4, Order::Desc);
        let out = session.execute(&query).unwrap();
        let expected =
            brute_force_topk(&by_image, &agg, &Roi::new(8, 8, 32, 32).unwrap(), &range, 4);
        assert_eq!(out.image_ids(), expected);
        // With the aggregate index, most groups are pruned without loading.
        assert!(out.stats.masks_loaded < 48);
        assert!(out.stats.pruned > 0);
    }

    #[test]
    fn having_filter_on_aggregated_masks() {
        let (store, catalog, by_image) = db(10);
        let session = make_session(store, catalog, IndexingMode::Eager);
        let agg = MaskAgg::UnionThreshold { threshold: 0.7 };
        let range = PixelRange::new(0.7, 1.0).unwrap();
        let roi = Roi::new(0, 0, 40, 40).unwrap();
        let term = CpTerm::constant_roi(roi, range);
        let threshold = 260.0;
        let query = Query::mask_aggregate(agg.clone(), term).with_having(CmpOp::Gt, threshold);
        let out = session.execute(&query).unwrap();
        let expected: Vec<ImageId> = by_image
            .iter()
            .filter(|(_, masks)| {
                let refs: Vec<&Mask> = masks.iter().collect();
                brute_force_group_value(&refs, &agg, &roi, &range).unwrap() > threshold
            })
            .map(|(img, _)| ImageId::new(*img))
            .collect();
        assert_eq!(out.image_ids(), expected);
    }

    #[test]
    fn incremental_mode_builds_aggregate_indexes_across_queries() {
        let (store, catalog, _) = db(8);
        let session = make_session(store, catalog, IndexingMode::Incremental);
        let agg = MaskAgg::IntersectThreshold { threshold: 0.7 };
        let range = PixelRange::new(0.7, 1.0).unwrap();
        let term = CpTerm::object_roi(range);
        let query = Query::mask_aggregate(agg, term).with_group_top_k(3, Order::Desc);
        let first = session.execute(&query).unwrap();
        assert_eq!(first.stats.masks_loaded, 16);
        let second = session.execute(&query).unwrap();
        assert_eq!(second.image_ids(), first.image_ids());
        // The aggregated-mask CHIs built during the first query prune groups
        // in the second.
        assert!(second.stats.masks_loaded < 16);
    }

    #[test]
    fn plain_mask_aggregation_returns_all_groups() {
        let (store, catalog, by_image) = db(6);
        let session = make_session(store, catalog, IndexingMode::Eager);
        let agg = MaskAgg::Mean;
        let range = PixelRange::new(0.4, 1.0).unwrap();
        let roi = Roi::new(0, 0, 40, 40).unwrap();
        let query = Query::mask_aggregate(agg.clone(), CpTerm::constant_roi(roi, range));
        let out = session.execute(&query).unwrap();
        assert_eq!(out.len(), 6);
        for row in &out.rows {
            let img = match row.key {
                crate::result::RowKey::Image(id) => id.raw(),
                _ => panic!("image rows expected"),
            };
            let refs: Vec<&Mask> = by_image[&img].iter().collect();
            let expected = brute_force_group_value(&refs, &agg, &roi, &range).unwrap();
            assert_eq!(row.value.unwrap(), expected);
        }
    }
}
