//! Pair-query execution: the filter–verification framework applied to
//! multi-mask (self-join) queries.
//!
//! A pair candidate is one image with two bound masks (see
//! [`crate::query::MaskJoin`]). The filter stage bounds every `CP` term —
//! including terms over the pixelwise composition of the two masks — from
//! the two per-mask CHIs via the bound algebra of
//! `masksearch_index::compose`, so undecidable candidates are the only ones
//! that load pixels. Verification loads *both* masks through the buffer
//! cache and evaluates through the composed tile kernel.
//!
//! Result rows are keyed by image id (ascending for filters, rank order
//! with an image-id tie-break for top-k), which is exactly the key the
//! cluster's shard map hashes — so pair partials merge exactly.

use crate::error::QueryResult;
use crate::eval::{self, PairRecords};
use crate::exec::{
    apply_io_delta, chunks_for_threads, elapsed, sort_ranked, worst_index, worst_value,
};
use crate::expr::Expr;
use crate::planner::ExecPlan;
use crate::predicate::{Predicate, Truth};
use crate::result::{QueryOutput, QueryStats, ResultRow};
use crate::session::Session;
use crate::spec::Order;
use masksearch_core::{ImageId, MaskId, TileStats};
use masksearch_obs::keys as obs_keys;
use parking_lot::Mutex;
use std::time::Instant;

/// One resolved pair candidate: the image plus its two bound mask ids.
pub type PairCandidate = (ImageId, MaskId, MaskId);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FilterOutcome {
    Accept,
    Prune,
    Verify,
}

/// Classifies one pair candidate from bounds alone (when both CHIs exist).
///
/// `composes` is whether the predicate composes the two masks: then the
/// record shapes are checked here, *before* any bound can decide the
/// candidate — so a mismatched pair fails identically whether or not the
/// CHI would have been decisive (and in every indexing mode).
fn classify(
    session: &Session,
    pair: &PairCandidate,
    predicate: &Predicate,
    fallback: bool,
    composes: bool,
) -> QueryResult<FilterOutcome> {
    let (_, left_id, right_id) = *pair;
    let left = session.record(left_id)?;
    let right = session.record(right_id)?;
    let records = PairRecords {
        left: &left,
        right: &right,
    };
    if composes {
        eval::check_pair_record_shapes(&records)?;
    }
    let (Some(chi_left), Some(chi_right)) = (session.chi_for(left_id), session.chi_for(right_id))
    else {
        return Ok(FilterOutcome::Verify);
    };
    let truth = eval::pair_predicate_bounds(predicate, &records, &chi_left, &chi_right, fallback)?;
    Ok(match truth {
        Truth::True => FilterOutcome::Accept,
        Truth::False => FilterOutcome::Prune,
        Truth::Unknown => FilterOutcome::Verify,
    })
}

/// Executes a pair-filter query over resolved pair candidates.
///
/// When `plan` chose load-first, the composed-bounds classify stage is
/// skipped entirely and every pair goes to verification. The rows are
/// byte-identical to the bounds-first path: CHI bounds are sound, so a
/// bounds-accepted pair verifies to `true` and a bounds-pruned pair to
/// `false`; shape checks under a composing predicate run for every
/// candidate on either path (here in `classify`, there inside
/// [`eval::pair_predicate_exact_tiled`]).
pub fn execute_filter(
    session: &Session,
    pairs: &[PairCandidate],
    predicate: &Predicate,
    plan: &ExecPlan,
) -> QueryResult<QueryOutput> {
    let total_start = Instant::now();
    let io_before = session.store().io_stats().snapshot();
    let fallback = session.config().object_box_fallback;
    let threads = session.config().threads;
    let composes = eval::predicate_composes(predicate);
    let load_first = plan.load_first();

    // ---- Filter stage -----------------------------------------------------
    let filter_span = masksearch_obs::span("filter");
    let filter_start = Instant::now();
    let mut accepted: Vec<ImageId> = Vec::new();
    let mut to_verify: Vec<PairCandidate>;
    let mut pruned = 0u64;
    if load_first {
        // Predicted ~everything undecidable from bounds: send every pair
        // straight to verification.
        to_verify = pairs.to_vec();
    } else {
        let chunks = chunks_for_threads(pairs, threads);
        let results: Mutex<Vec<(PairCandidate, FilterOutcome)>> =
            Mutex::new(Vec::with_capacity(pairs.len()));
        let first_error: Mutex<Option<crate::error::QueryError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for chunk in &chunks {
                scope.spawn(|| {
                    let mut local = Vec::with_capacity(chunk.len());
                    for pair in *chunk {
                        match classify(session, pair, predicate, fallback, composes) {
                            Ok(outcome) => local.push((*pair, outcome)),
                            Err(e) => {
                                let mut slot = first_error.lock();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                return;
                            }
                        }
                    }
                    results.lock().extend(local);
                });
            }
        });
        if let Some(err) = first_error.into_inner() {
            return Err(err);
        }
        let outcomes = results.into_inner();
        to_verify = Vec::new();
        for (pair, outcome) in outcomes {
            match outcome {
                FilterOutcome::Accept => accepted.push(pair.0),
                FilterOutcome::Prune => pruned += 1,
                FilterOutcome::Verify => to_verify.push(pair),
            }
        }
    }
    let filter_wall = elapsed(filter_start);
    to_verify.sort_unstable();
    let bounds_skipped = if load_first { pairs.len() as u64 } else { 0 };
    masksearch_obs::add_counter(obs_keys::CANDIDATES, pairs.len() as u64);
    masksearch_obs::add_counter(obs_keys::PAIRS_BOUND, pairs.len() as u64);
    masksearch_obs::add_counter(obs_keys::PRUNED, pruned);
    masksearch_obs::add_counter(obs_keys::VERIFIED, to_verify.len() as u64);
    masksearch_obs::add_counter(obs_keys::PLANNER_BOUNDS_SKIPPED, bounds_skipped);
    drop(filter_span);

    // ---- Verification stage ----------------------------------------------
    let verify_span = masksearch_obs::span("verify");
    let verify_start = Instant::now();
    let verify_chunks = chunks_for_threads(&to_verify, threads);
    let verified_hits: Mutex<Vec<ImageId>> = Mutex::new(Vec::new());
    let indexes_built: Mutex<u64> = Mutex::new(0);
    let tile_stats: Mutex<TileStats> = Mutex::new(TileStats::default());
    let kernel_routing: Mutex<(u64, u64)> = Mutex::new((0, 0));
    let first_error: Mutex<Option<crate::error::QueryError>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for chunk in &verify_chunks {
            scope.spawn(|| {
                let mut local_hits = Vec::new();
                let mut local_built = 0u64;
                let mut local_tiles = TileStats::default();
                let mut local_kernel = (0u64, 0u64);
                for &(image_id, left_id, right_id) in *chunk {
                    let mut step = || -> QueryResult<(bool, u64)> {
                        let left_rec = session.record(left_id)?;
                        let right_rec = session.record(right_id)?;
                        let (left, built_l) = session.load_and_index(left_id)?;
                        let (right, built_r) = session.load_and_index(right_id)?;
                        let records = PairRecords {
                            left: &left_rec,
                            right: &right_rec,
                        };
                        // A noisy mask on either side defeats the kernel's
                        // tile summaries; route to the scan unless both
                        // sides favour the kernel.
                        let kernel_on = plan.kernel_on_for(&left) && plan.kernel_on_for(&right);
                        if kernel_on {
                            local_kernel.0 += 1;
                        } else {
                            local_kernel.1 += 1;
                        }
                        let satisfied = eval::pair_predicate_exact_tiled(
                            predicate,
                            &records,
                            &left,
                            &right,
                            &session.verify_options_with(kernel_on),
                            &mut local_tiles,
                        )?;
                        Ok((satisfied, u64::from(built_l) + u64::from(built_r)))
                    };
                    match step() {
                        Ok((satisfied, built)) => {
                            if satisfied {
                                local_hits.push(image_id);
                            }
                            local_built += built;
                        }
                        Err(e) => {
                            let mut slot = first_error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            return;
                        }
                    }
                }
                verified_hits.lock().extend(local_hits);
                *indexes_built.lock() += local_built;
                tile_stats.lock().merge(&local_tiles);
                let mut routing = kernel_routing.lock();
                routing.0 += local_kernel.0;
                routing.1 += local_kernel.1;
            });
        }
    });
    if let Some(err) = first_error.into_inner() {
        return Err(err);
    }
    let verify_wall = elapsed(verify_start);
    let (kernel_on_count, kernel_off_count) = *kernel_routing.lock();
    masksearch_obs::add_counter(obs_keys::INDEXES_BUILT, *indexes_built.lock());
    masksearch_obs::add_counter(obs_keys::PLANNER_KERNEL_ON, kernel_on_count);
    masksearch_obs::add_counter(obs_keys::PLANNER_KERNEL_OFF, kernel_off_count);
    drop(verify_span);

    accepted.extend(verified_hits.into_inner());
    accepted.sort_unstable();

    let io_delta = session
        .store()
        .io_stats()
        .snapshot()
        .delta_since(&io_before);
    let tiles = *tile_stats.lock();
    let mut stats = QueryStats {
        candidates: pairs.len() as u64,
        pairs_bound: pairs.len() as u64,
        pruned,
        accepted_without_load: (pairs.len() as u64)
            .saturating_sub(pruned)
            .saturating_sub(to_verify.len() as u64),
        verified: to_verify.len() as u64,
        indexes_built: *indexes_built.lock(),
        tiles_pruned: tiles.tiles_pruned,
        tiles_hist: tiles.tiles_hist,
        tiles_scanned: tiles.tiles_scanned,
        planner_kernel_on: kernel_on_count,
        planner_kernel_off: kernel_off_count,
        planner_bounds_skipped: bounds_skipped,
        filter_wall,
        verify_wall,
        total_wall: elapsed(total_start),
        ..Default::default()
    };
    apply_io_delta(&mut stats, &io_delta);

    Ok(QueryOutput {
        rows: accepted
            .into_iter()
            .map(|id| ResultRow::image(id, None))
            .collect(),
        stats,
    })
}

/// Executes a pair top-k query over resolved pair candidates, pruning
/// against the running k-th value with composed CHI bounds (§3.5 applied to
/// the pair's bound algebra).
///
/// Under a load-first `plan` the bounds prune check is skipped: a pruned
/// pair could never displace the current k-th row (the prune condition is
/// the negation of the strictly-better entry rule), so verifying it instead
/// yields the same top-k, byte for byte.
pub fn execute_topk(
    session: &Session,
    pairs: &[PairCandidate],
    expr: &Expr,
    k: usize,
    order: Order,
    plan: &ExecPlan,
) -> QueryResult<QueryOutput> {
    let total_start = Instant::now();
    let io_before = session.store().io_stats().snapshot();
    let fallback = session.config().object_box_fallback;
    let composes = eval::expr_composes(expr);
    let load_first = plan.load_first();
    let mut tiles = TileStats::default();
    let mut kernel_on_count = 0u64;
    let mut kernel_off_count = 0u64;
    let mut bounds_skipped = 0u64;

    if k == 0 {
        return Ok(QueryOutput::default());
    }

    let mut top: Vec<(f64, ImageId)> = Vec::with_capacity(k + 1);
    let mut pruned = 0u64;
    let mut verified = 0u64;
    let mut indexes_built = 0u64;
    let mut filter_wall = std::time::Duration::ZERO;
    let mut verify_wall = std::time::Duration::ZERO;

    for &(image_id, left_id, right_id) in pairs {
        let left_rec = session.record(left_id)?;
        let right_rec = session.record(right_id)?;
        let records = PairRecords {
            left: &left_rec,
            right: &right_rec,
        };
        // Mismatched shapes under a composing expression fail before any
        // bound or rank decision — identically in every indexing mode.
        if composes {
            eval::check_pair_record_shapes(&records)?;
        }

        // Filter step: both CHIs present and the composed bounds already
        // beaten by the current k-th value?
        let filter_start = Instant::now();
        if load_first && top.len() == k {
            bounds_skipped += 1;
        }
        let prune = if !load_first && top.len() == k {
            if let (Some(chi_left), Some(chi_right)) =
                (session.chi_for(left_id), session.chi_for(right_id))
            {
                let bounds =
                    eval::pair_expr_bounds(expr, &records, &chi_left, &chi_right, fallback)?;
                let threshold = worst_value(&top, order);
                match order {
                    Order::Desc => bounds.hi <= threshold,
                    Order::Asc => bounds.lo >= threshold,
                }
            } else {
                false
            }
        } else {
            false
        };
        filter_wall += elapsed(filter_start);
        if prune {
            pruned += 1;
            continue;
        }

        // Verification step: load both masks, evaluate exactly.
        let verify_start = Instant::now();
        let (left, built_l) = session.load_and_index(left_id)?;
        let (right, built_r) = session.load_and_index(right_id)?;
        indexes_built += u64::from(built_l) + u64::from(built_r);
        verified += 1;
        let kernel_on = plan.kernel_on_for(&left) && plan.kernel_on_for(&right);
        if kernel_on {
            kernel_on_count += 1;
        } else {
            kernel_off_count += 1;
        }
        let mut value = eval::pair_expr_exact_tiled(
            expr,
            &records,
            &left,
            &right,
            &session.verify_options_with(kernel_on),
            &mut tiles,
        )?;
        if value.is_nan() {
            // NaN (e.g. the 0/0 IoU of two empty binarisations) ranks worst
            // under either order.
            value = match order {
                Order::Desc => f64::NEG_INFINITY,
                Order::Asc => f64::INFINITY,
            };
        }
        verify_wall += elapsed(verify_start);

        if top.len() < k {
            top.push((value, image_id));
        } else {
            let threshold = worst_value(&top, order);
            if order.better(value, threshold) {
                let worst_idx = worst_index(&top, order);
                top[worst_idx] = (value, image_id);
            }
        }
    }

    sort_ranked(&mut top, order, k);
    masksearch_obs::add_counter(obs_keys::PLANNER_KERNEL_ON, kernel_on_count);
    masksearch_obs::add_counter(obs_keys::PLANNER_KERNEL_OFF, kernel_off_count);
    masksearch_obs::add_counter(obs_keys::PLANNER_BOUNDS_SKIPPED, bounds_skipped);

    let io_delta = session
        .store()
        .io_stats()
        .snapshot()
        .delta_since(&io_before);
    let mut stats = QueryStats {
        candidates: pairs.len() as u64,
        pairs_bound: pairs.len() as u64,
        pruned,
        accepted_without_load: 0,
        verified,
        indexes_built,
        tiles_pruned: tiles.tiles_pruned,
        tiles_hist: tiles.tiles_hist,
        tiles_scanned: tiles.tiles_scanned,
        planner_kernel_on: kernel_on_count,
        planner_kernel_off: kernel_off_count,
        planner_bounds_skipped: bounds_skipped,
        filter_wall,
        verify_wall,
        total_wall: elapsed(total_start),
        ..Default::default()
    };
    apply_io_delta(&mut stats, &io_delta);

    Ok(QueryOutput {
        rows: top
            .into_iter()
            .map(|(value, id)| ResultRow::image(id, Some(value)))
            .collect(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{MaskJoin, Query, Selection};
    use crate::session::{IndexingMode, SessionConfig};
    use crate::spec::RoiSpec;
    use masksearch_core::{cp, cp_composed, Mask, MaskOp, MaskRecord, ModelId, PixelRange, Roi};
    use masksearch_index::ChiConfig;
    use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};
    use std::sync::Arc;

    /// Two models' masks per image: model 1 is a blob, model 2 the same blob
    /// shifted by an image-dependent offset (so disagreement varies).
    fn pair_db(n: u64) -> (Arc<MemoryMaskStore>, Catalog, Vec<(Mask, Mask)>) {
        let store = Arc::new(MemoryMaskStore::for_tests());
        let mut catalog = Catalog::new();
        let mut masks = Vec::new();
        for i in 0..n {
            let shift = (i % 7) as f32;
            let make = move |cx: f32, cy: f32| {
                Mask::from_fn(40, 40, move |x, y| {
                    let dx = x as f32 - cx;
                    let dy = y as f32 - cy;
                    (0.95 * (-(dx * dx + dy * dy) / 40.0).exp()).min(0.999)
                })
            };
            let a = make(20.0, 20.0);
            let b = make(20.0 + shift, 17.0);
            for (slot, (mask, model)) in [(&a, 1u64), (&b, 2u64)].iter().enumerate() {
                let mask_id = MaskId::new(i * 2 + slot as u64);
                store.put(mask_id, mask).unwrap();
                catalog.insert(
                    MaskRecord::builder(mask_id)
                        .image_id(ImageId::new(i))
                        .model_id(ModelId::new(*model))
                        .shape(40, 40)
                        .object_box(Roi::new(10, 10, 30, 30).unwrap())
                        .build(),
                );
            }
            masks.push((a, b));
        }
        (store, catalog, masks)
    }

    fn join() -> MaskJoin {
        MaskJoin::new(
            Selection::all().with_model(ModelId::new(1)),
            Selection::all().with_model(ModelId::new(2)),
        )
    }

    fn session(store: Arc<MemoryMaskStore>, catalog: Catalog, mode: IndexingMode) -> Session {
        Session::new(
            store as Arc<dyn MaskStore>,
            catalog,
            SessionConfig::new(ChiConfig::new(8, 8, 16).unwrap())
                .threads(3)
                .indexing_mode(mode),
        )
        .unwrap()
    }

    #[test]
    fn pair_filter_matches_brute_force_in_every_mode() {
        let (store, catalog, masks) = pair_db(18);
        let roi = Roi::new(5, 5, 35, 35).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        for mode in [
            IndexingMode::Eager,
            IndexingMode::Incremental,
            IndexingMode::Disabled,
        ] {
            let s = session(Arc::clone(&store), catalog.clone(), mode);
            for t in [0.0, 5.0, 40.0, 2000.0] {
                let predicate = Predicate::gt(
                    Expr::cp_composed(MaskOp::Diff, RoiSpec::Constant(roi), range),
                    t,
                );
                let query = Query::pair_filter(join(), predicate);
                let out = s.execute(&query).unwrap();
                let expected: Vec<ImageId> = masks
                    .iter()
                    .enumerate()
                    .filter(|(_, (a, b))| {
                        (cp_composed(a, b, MaskOp::Diff, &roi, &range).unwrap() as f64) > t
                    })
                    .map(|(i, _)| ImageId::new(i as u64))
                    .collect();
                assert_eq!(out.image_ids(), expected, "mode {mode:?} threshold {t}");
                assert_eq!(out.stats.candidates, 18);
                assert_eq!(out.stats.pairs_bound, 18);
                assert_eq!(
                    out.stats.pruned + out.stats.accepted_without_load + out.stats.verified,
                    18
                );
            }
        }
    }

    #[test]
    fn pair_topk_iou_matches_brute_force() {
        let (store, catalog, masks) = pair_db(21);
        let s = session(store, catalog, IndexingMode::Eager);
        let range = PixelRange::new(0.5, 1.0).unwrap();
        let expr = Expr::iou(RoiSpec::FullMask, range);
        let query = Query::pair_top_k(join(), expr, 6, Order::Asc);
        let out = s.execute(&query).unwrap();
        let roi = Roi::new(0, 0, 40, 40).unwrap();
        let mut expected: Vec<(f64, ImageId)> = masks
            .iter()
            .enumerate()
            .map(|(i, (a, b))| {
                let inter = cp_composed(a, b, MaskOp::Intersect, &roi, &range).unwrap() as f64;
                let union = cp_composed(a, b, MaskOp::Union, &roi, &range).unwrap() as f64;
                let mut v = inter / union;
                if v.is_nan() {
                    v = f64::INFINITY;
                }
                (v, ImageId::new(i as u64))
            })
            .collect();
        sort_ranked(&mut expected, Order::Asc, 6);
        let got: Vec<(f64, ImageId)> = out
            .rows
            .iter()
            .map(|r| {
                let id = match r.key {
                    crate::result::RowKey::Image(id) => id,
                    _ => panic!("image rows expected"),
                };
                (r.value.unwrap(), id)
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn pair_terms_can_mix_sides_and_composition() {
        // "Images where the models disagree a lot relative to how salient
        // model 1 thinks the image is": DIFF count > 0.3 * left count.
        let (store, catalog, masks) = pair_db(15);
        let s = session(store, catalog, IndexingMode::Eager);
        let range = PixelRange::new(0.5, 1.0).unwrap();
        let predicate = Predicate::gt(
            Expr::cp_composed(MaskOp::Diff, RoiSpec::FullMask, range).sub(
                Expr::cp_side(crate::spec::TermSource::Left, RoiSpec::FullMask, range)
                    .mul(Expr::Const(0.3)),
            ),
            0.0,
        );
        let out = s.execute(&Query::pair_filter(join(), predicate)).unwrap();
        let roi = Roi::new(0, 0, 40, 40).unwrap();
        let expected: Vec<ImageId> = masks
            .iter()
            .enumerate()
            .filter(|(_, (a, b))| {
                let diff = cp_composed(a, b, MaskOp::Diff, &roi, &range).unwrap() as f64;
                let left = cp(a, &roi, &range) as f64;
                diff - left * 0.3 > 0.0
            })
            .map(|(i, _)| ImageId::new(i as u64))
            .collect();
        assert_eq!(out.image_ids(), expected);
    }

    #[test]
    fn composed_bounds_prune_identical_pairs() {
        // Every image's two masks are concentrated blobs: `CP(DIFF) ≤
        // CP∪ ≤ CPa + CPb`, which the composed bound algebra derives from
        // the two CHIs alone — so a threshold above that sum must prune
        // every candidate without loading a single mask.
        let store = Arc::new(MemoryMaskStore::for_tests());
        let mut catalog = Catalog::new();
        for i in 0..12u64 {
            let mask = Mask::from_fn(32, 32, move |x, y| {
                let dx = x as f32 - 16.0;
                let dy = y as f32 - (i % 5) as f32 - 12.0;
                (0.9 * (-(dx * dx + dy * dy) / 30.0).exp()).min(0.999)
            });
            for (slot, model) in [1u64, 2u64].iter().enumerate() {
                let mask_id = MaskId::new(i * 2 + slot as u64);
                store.put(mask_id, &mask).unwrap();
                catalog.insert(
                    MaskRecord::builder(mask_id)
                        .image_id(ImageId::new(i))
                        .model_id(ModelId::new(*model))
                        .shape(32, 32)
                        .build(),
                );
            }
        }
        let s = session(Arc::clone(&store), catalog, IndexingMode::Eager);
        store.io_stats().reset();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        let predicate = Predicate::gt(
            Expr::cp_composed(MaskOp::Diff, RoiSpec::FullMask, range),
            600.0,
        );
        let out = s.execute(&Query::pair_filter(join(), predicate)).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.stats.pruned, 12);
        assert_eq!(out.stats.masks_loaded, 0, "composed bounds failed to prune");
    }

    #[test]
    fn pair_terms_in_single_mask_queries_fail_loudly() {
        // A pair-sourced term smuggled into a plain filter / top-k query
        // must error, never silently evaluate against the candidate's own
        // mask.
        let (store, catalog, _) = pair_db(4);
        for mode in [IndexingMode::Eager, IndexingMode::Disabled] {
            let s = session(Arc::clone(&store), catalog.clone(), mode);
            let range = PixelRange::new(0.5, 1.0).unwrap();
            let composed = Expr::cp_composed(MaskOp::Diff, RoiSpec::FullMask, range);
            let filter = Query::filter(Predicate::gt(composed.clone(), 0.0));
            assert!(s.execute(&filter).is_err(), "filter, mode {mode:?}");
            let topk = Query::top_k(composed, 3, Order::Desc);
            assert!(s.execute(&topk).is_err(), "topk, mode {mode:?}");
            let side = Query::filter(Predicate::gt(
                Expr::cp_side(crate::spec::TermSource::Left, RoiSpec::FullMask, range),
                0.0,
            ));
            assert!(s.execute(&side).is_err(), "side term, mode {mode:?}");
        }
    }

    #[test]
    fn unpaired_images_are_skipped_and_shapes_must_match() {
        let store = Arc::new(MemoryMaskStore::for_tests());
        let mut catalog = Catalog::new();
        let add = |store: &Arc<MemoryMaskStore>,
                   catalog: &mut Catalog,
                   id: u64,
                   image: u64,
                   model: u64,
                   side: u32| {
            let mask = Mask::constant(side, side, 0.5).unwrap();
            store.put(MaskId::new(id), &mask).unwrap();
            catalog.insert(
                MaskRecord::builder(MaskId::new(id))
                    .image_id(ImageId::new(image))
                    .model_id(ModelId::new(model))
                    .shape(side, side)
                    .build(),
            );
        };
        // Image 0: complete pair. Image 1: left only. Image 2: mismatched
        // shapes.
        add(&store, &mut catalog, 0, 0, 1, 16);
        add(&store, &mut catalog, 1, 0, 2, 16);
        add(&store, &mut catalog, 2, 1, 1, 16);
        add(&store, &mut catalog, 3, 2, 1, 16);
        add(&store, &mut catalog, 4, 2, 2, 8);
        let s = session(store, catalog, IndexingMode::Disabled);
        let range = PixelRange::full();
        let predicate = Predicate::gt(
            Expr::cp_composed(MaskOp::Union, RoiSpec::FullMask, range),
            0.0,
        );
        // With the mismatched image included, execution fails loudly.
        let err = s.execute(&Query::pair_filter(join(), predicate.clone()));
        assert!(err.is_err());
        // Restricting to the complete image works and skips the unpaired one.
        let query = Query::pair_filter(join(), predicate).with_selection(
            Selection::all().with_image_ids(vec![ImageId::new(0), ImageId::new(1)]),
        );
        let out = s.execute(&query).unwrap();
        assert_eq!(out.image_ids(), vec![ImageId::new(0)]);
        assert_eq!(out.stats.pairs_bound, 1);
    }
}
