//! Query executors: one module per query shape.
//!
//! All executors share the same skeleton (§3.2): a **filter stage** that
//! classifies each targeted mask from its CHI bounds alone, and a
//! **verification stage** that loads only the masks the bounds could not
//! decide. Ranked (top-k) execution interleaves the two stages, maintaining
//! the current top-k to prune against (§3.5); grouped execution pushes
//! bounds through monotone scalar aggregates before loading any member mask
//! (§3.4).

pub mod aggregate;
pub mod filter;
pub mod mask_agg;
pub mod pair;
pub mod topk;

use crate::result::QueryStats;
use masksearch_storage::disk::IoSnapshot;
use std::time::Duration;

/// Fills the I/O-derived fields of [`QueryStats`] from a snapshot delta.
pub(crate) fn apply_io_delta(stats: &mut QueryStats, delta: &IoSnapshot) {
    stats.masks_loaded = delta.masks_loaded;
    stats.bytes_read = delta.bytes_read;
    stats.io_virtual = delta.virtual_read + delta.virtual_write;
}

/// Splits a slice into `parts` nearly equal chunks (at least one element per
/// chunk; fewer chunks if the slice is short).
pub(crate) fn chunks_for_threads<T>(items: &[T], parts: usize) -> Vec<&[T]> {
    if items.is_empty() {
        return Vec::new();
    }
    let parts = parts.max(1).min(items.len());
    let chunk = items.len().div_ceil(parts);
    items.chunks(chunk).collect()
}

/// Sorts `(value, id)` pairs by value under an order with a deterministic
/// tie-break on id, and truncates to `k`.
pub(crate) fn sort_ranked<K: Ord + Copy>(
    rows: &mut Vec<(f64, K)>,
    order: crate::spec::Order,
    k: usize,
) {
    rows.sort_by(|a, b| {
        let cmp = match order {
            crate::spec::Order::Desc => b.0.partial_cmp(&a.0),
            crate::spec::Order::Asc => a.0.partial_cmp(&b.0),
        }
        .unwrap_or(std::cmp::Ordering::Equal);
        cmp.then_with(|| a.1.cmp(&b.1))
    });
    rows.truncate(k);
}

/// Duration since a start instant, saturating at zero.
pub(crate) fn elapsed(start: std::time::Instant) -> Duration {
    start.elapsed()
}

/// The worst (k-th) value currently held in a ranked top-k buffer.
pub(crate) fn worst_value<K>(top: &[(f64, K)], order: crate::spec::Order) -> f64 {
    match order {
        crate::spec::Order::Desc => top.iter().map(|(v, _)| *v).fold(f64::INFINITY, f64::min),
        crate::spec::Order::Asc => top
            .iter()
            .map(|(v, _)| *v)
            .fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Index of the top-k entry to evict: the worst value, breaking ties
/// towards the **largest** key so the final result tie-breaks
/// deterministically towards smaller keys — the rule the brute-force
/// reference ordering and the cluster merge's exactness both depend on.
/// Shared by every ranked executor so the rule lives in one place.
pub(crate) fn worst_index<K: Ord + Copy>(top: &[(f64, K)], order: crate::spec::Order) -> usize {
    let mut idx = 0;
    for (i, (v, key)) in top.iter().enumerate() {
        let worse = match order {
            crate::spec::Order::Desc => *v < top[idx].0,
            crate::spec::Order::Asc => *v > top[idx].0,
        };
        let tied_but_larger_key = *v == top[idx].0 && *key > top[idx].1;
        if worse || tied_but_larger_key {
            idx = i;
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Order;

    #[test]
    fn chunking_covers_all_items() {
        let items: Vec<u32> = (0..10).collect();
        let chunks = chunks_for_threads(&items, 3);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 10);
        assert!(chunks.len() <= 3);
        assert!(chunks_for_threads::<u32>(&[], 4).is_empty());
        let single = chunks_for_threads(&items, 100);
        assert_eq!(single.len(), 10);
    }

    #[test]
    fn ranked_sort_is_deterministic() {
        let mut rows = vec![(3.0, 5u64), (3.0, 2), (7.0, 9), (1.0, 1)];
        sort_ranked(&mut rows, Order::Desc, 3);
        assert_eq!(rows, vec![(7.0, 9), (3.0, 2), (3.0, 5)]);
        let mut rows = vec![(3.0, 5u64), (3.0, 2), (7.0, 9), (1.0, 1)];
        sort_ranked(&mut rows, Order::Asc, 2);
        assert_eq!(rows, vec![(1.0, 1), (3.0, 2)]);
    }
}
