//! The query model: relational selection plus one of the four query shapes.

use crate::expr::Expr;
use crate::predicate::{CmpOp, Predicate};
use crate::spec::{CpTerm, Order, RoiSpec, ScalarAgg};
use masksearch_core::{
    ImageId, Label, MaskAgg, MaskId, MaskRecord, MaskType, ModelId, PixelRange, Roi,
};

/// The relational part of a query: which rows of `MasksDatabaseView` are
/// targeted before any mask pixels are considered.
///
/// All populated fields must match (conjunction). An empty selection targets
/// every mask.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Selection {
    /// Restrict to these mask ids.
    pub mask_ids: Option<Vec<MaskId>>,
    /// Restrict to masks produced by this model.
    pub model_id: Option<ModelId>,
    /// Restrict to these mask types (`mask_type IN (...)`).
    pub mask_types: Option<Vec<MaskType>>,
    /// Restrict to masks of images predicted as one of these labels.
    pub predicted_labels: Option<Vec<Label>>,
    /// Restrict to masks of these images.
    pub image_ids: Option<Vec<ImageId>>,
}

impl Selection {
    /// Targets every mask in the database.
    pub fn all() -> Self {
        Self::default()
    }

    /// Restricts the selection to explicit mask ids.
    pub fn with_mask_ids(mut self, ids: Vec<MaskId>) -> Self {
        self.mask_ids = Some(ids);
        self
    }

    /// Restricts the selection to one model.
    pub fn with_model(mut self, model_id: ModelId) -> Self {
        self.model_id = Some(model_id);
        self
    }

    /// Restricts the selection to the given mask types.
    pub fn with_mask_types(mut self, types: Vec<MaskType>) -> Self {
        self.mask_types = Some(types);
        self
    }

    /// Restricts the selection to masks of images predicted as these labels.
    pub fn with_predicted_labels(mut self, labels: Vec<Label>) -> Self {
        self.predicted_labels = Some(labels);
        self
    }

    /// Restricts the selection to masks of these images.
    pub fn with_image_ids(mut self, ids: Vec<ImageId>) -> Self {
        self.image_ids = Some(ids);
        self
    }

    /// Returns `true` if the record satisfies every populated constraint.
    pub fn matches(&self, record: &MaskRecord) -> bool {
        if let Some(ids) = &self.mask_ids {
            if !ids.contains(&record.mask_id) {
                return false;
            }
        }
        if let Some(model) = self.model_id {
            if record.model_id != model {
                return false;
            }
        }
        if let Some(types) = &self.mask_types {
            if !types.contains(&record.mask_type) {
                return false;
            }
        }
        if let Some(labels) = &self.predicted_labels {
            match record.predicted_label {
                Some(l) if labels.contains(&l) => {}
                _ => return false,
            }
        }
        if let Some(images) = &self.image_ids {
            if !images.contains(&record.image_id) {
                return false;
            }
        }
        true
    }
}

/// The two per-image mask bindings of a multi-mask (pair) query.
///
/// A pair query joins the mask relation with itself on `image_id`: for every
/// image, the **left** binding is the image's smallest-id mask matching
/// `left`, the **right** binding its smallest-id mask matching `right`, and
/// the image is a candidate only when *both* sides bind. Because the binding
/// decision depends only on the image's own masks — which a cluster's shard
/// map co-locates by hashing the image id — pair queries merge exactly
/// across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskJoin {
    /// Selection of the left mask within each image.
    pub left: Selection,
    /// Selection of the right mask within each image.
    pub right: Selection,
}

impl MaskJoin {
    /// A join binding each image's left/right mask by the two selections.
    pub fn new(left: Selection, right: Selection) -> Self {
        Self { left, right }
    }
}

/// The shape of the non-relational part of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// Return every targeted mask satisfying a predicate (paper Q1/Q2).
    Filter {
        /// The filter predicate over `CP` expressions.
        predicate: Predicate,
    },
    /// Return the top-k masks ranked by an expression (paper Q3, Example 1).
    TopK {
        /// Ranking expression.
        expr: Expr,
        /// Number of masks to return.
        k: usize,
        /// Ranking order.
        order: Order,
    },
    /// Group targeted masks by image, aggregate per-mask expression values
    /// with a scalar aggregate, then filter and/or rank the groups
    /// (paper Q4, §3.4).
    Aggregate {
        /// Per-mask expression.
        expr: Expr,
        /// Scalar aggregate applied to each group's member values.
        agg: ScalarAgg,
        /// Optional `HAVING` filter on the aggregate value.
        having: Option<(CmpOp, f64)>,
        /// Optional top-k over the aggregate value.
        top_k: Option<(usize, Order)>,
    },
    /// Group targeted masks by image, aggregate the masks themselves with a
    /// `MASK_AGG`, evaluate a `CP` term on the aggregated mask, then filter
    /// and/or rank the groups (paper Q5, Example 2).
    MaskAggregate {
        /// Mask aggregation function.
        agg: MaskAgg,
        /// `CP` term evaluated on the aggregated mask.
        term: CpTerm,
        /// Optional `HAVING` filter on the `CP` value.
        having: Option<(CmpOp, f64)>,
        /// Optional top-k over the `CP` value.
        top_k: Option<(usize, Order)>,
    },
    /// Self-join on `image_id` binding two masks per image, filtered by a
    /// predicate whose `CP` terms may reference either mask or their
    /// pixelwise composition (the multi-mask workload of the demonstration
    /// paper: saliency-vs-object comparison, old-vs-new model audits).
    /// Returns one image-keyed row per qualifying image.
    PairFilter {
        /// The two per-image mask bindings.
        join: MaskJoin,
        /// Predicate over pair `CP` terms.
        predicate: Predicate,
    },
    /// Self-join on `image_id` binding two masks per image, ranked by an
    /// expression over pair `CP` terms (e.g. `IOU` ascending: the images
    /// where two models disagree most).
    PairTopK {
        /// The two per-image mask bindings.
        join: MaskJoin,
        /// Ranking expression over pair `CP` terms.
        expr: Expr,
        /// Number of images to return.
        k: usize,
        /// Ranking order.
        order: Order,
    },
}

/// A complete MaskSearch query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Which masks the query targets.
    pub selection: Selection,
    /// What is computed over the targeted masks.
    pub kind: QueryKind,
}

impl Query {
    /// A filter query with an arbitrary predicate over all masks.
    pub fn filter(predicate: Predicate) -> Self {
        Self {
            selection: Selection::all(),
            kind: QueryKind::Filter { predicate },
        }
    }

    /// Convenience: `CP(mask, roi, range) > threshold` over all masks.
    pub fn filter_cp_gt(roi: Roi, range: PixelRange, threshold: f64) -> Self {
        Self::filter(Predicate::gt(Expr::cp(roi, range), threshold))
    }

    /// Convenience: `CP(mask, roi, range) < threshold` over all masks.
    pub fn filter_cp_lt(roi: Roi, range: PixelRange, threshold: f64) -> Self {
        Self::filter(Predicate::lt(Expr::cp(roi, range), threshold))
    }

    /// Convenience: `CP(mask, object_box, range) > threshold`.
    pub fn filter_object_cp_gt(range: PixelRange, threshold: f64) -> Self {
        Self::filter(Predicate::gt(Expr::cp_object(range), threshold))
    }

    /// A top-k query ranked by an arbitrary expression.
    pub fn top_k(expr: Expr, k: usize, order: Order) -> Self {
        Self {
            selection: Selection::all(),
            kind: QueryKind::TopK { expr, k, order },
        }
    }

    /// Convenience: top-k masks by `CP(mask, roi, range)`.
    pub fn top_k_cp(roi: Roi, range: PixelRange, k: usize, order: Order) -> Self {
        Self::top_k(Expr::cp(roi, range), k, order)
    }

    /// An aggregation query grouped by image.
    pub fn aggregate(expr: Expr, agg: ScalarAgg) -> Self {
        Self {
            selection: Selection::all(),
            kind: QueryKind::Aggregate {
                expr,
                agg,
                having: None,
                top_k: None,
            },
        }
    }

    /// A mask-aggregation query grouped by image.
    pub fn mask_aggregate(agg: MaskAgg, term: CpTerm) -> Self {
        Self {
            selection: Selection::all(),
            kind: QueryKind::MaskAggregate {
                agg,
                term,
                having: None,
                top_k: None,
            },
        }
    }

    /// Replaces the selection.
    pub fn with_selection(mut self, selection: Selection) -> Self {
        self.selection = selection;
        self
    }

    /// Adds a `HAVING` clause (aggregation kinds only; no-op otherwise).
    pub fn with_having(mut self, op: CmpOp, threshold: f64) -> Self {
        match &mut self.kind {
            QueryKind::Aggregate { having, .. } | QueryKind::MaskAggregate { having, .. } => {
                *having = Some((op, threshold));
            }
            _ => {}
        }
        self
    }

    /// Adds a top-k clause to an aggregation query (no-op for other kinds).
    pub fn with_group_top_k(mut self, k: usize, order: Order) -> Self {
        match &mut self.kind {
            QueryKind::Aggregate { top_k, .. } | QueryKind::MaskAggregate { top_k, .. } => {
                *top_k = Some((k, order));
            }
            _ => {}
        }
        self
    }

    /// A pair-filter query joining each image's two bound masks.
    pub fn pair_filter(join: MaskJoin, predicate: Predicate) -> Self {
        Self {
            selection: Selection::all(),
            kind: QueryKind::PairFilter { join, predicate },
        }
    }

    /// A pair top-k query ranked by an expression over pair terms.
    pub fn pair_top_k(join: MaskJoin, expr: Expr, k: usize, order: Order) -> Self {
        Self {
            selection: Selection::all(),
            kind: QueryKind::PairTopK {
                join,
                expr,
                k,
                order,
            },
        }
    }

    /// Returns `true` if the query produces image-keyed (grouped) rows.
    pub fn is_grouped(&self) -> bool {
        matches!(
            self.kind,
            QueryKind::Aggregate { .. }
                | QueryKind::MaskAggregate { .. }
                | QueryKind::PairFilter { .. }
                | QueryKind::PairTopK { .. }
        )
    }

    /// Returns the ROI specifications referenced by the query, used by
    /// executors to decide whether per-mask metadata (object boxes) is
    /// required.
    pub fn roi_specs(&self) -> Vec<RoiSpec> {
        match &self.kind {
            QueryKind::Filter { predicate } => predicate
                .comparisons()
                .iter()
                .flat_map(|c| c.expr.terms())
                .map(|t| t.roi)
                .collect(),
            QueryKind::TopK { expr, .. } => expr.terms().iter().map(|t| t.roi).collect(),
            QueryKind::Aggregate { expr, .. } => expr.terms().iter().map(|t| t.roi).collect(),
            QueryKind::MaskAggregate { term, .. } => vec![term.roi],
            QueryKind::PairFilter { predicate, .. } => predicate
                .comparisons()
                .iter()
                .flat_map(|c| c.expr.terms())
                .map(|t| t.roi)
                .collect(),
            QueryKind::PairTopK { expr, .. } => expr.terms().iter().map(|t| t.roi).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(mask_id: u64, image_id: u64, model_id: u64, mask_type: MaskType) -> MaskRecord {
        MaskRecord::builder(MaskId::new(mask_id))
            .image_id(ImageId::new(image_id))
            .model_id(ModelId::new(model_id))
            .mask_type(mask_type)
            .shape(32, 32)
            .predicted_label(Label::new(model_id * 10))
            .build()
    }

    #[test]
    fn selection_matching() {
        let rec = record(1, 100, 2, MaskType::SaliencyMap);
        assert!(Selection::all().matches(&rec));
        assert!(Selection::all().with_model(ModelId::new(2)).matches(&rec));
        assert!(!Selection::all().with_model(ModelId::new(3)).matches(&rec));
        assert!(Selection::all()
            .with_mask_types(vec![MaskType::SaliencyMap, MaskType::DepthMap])
            .matches(&rec));
        assert!(!Selection::all()
            .with_mask_types(vec![MaskType::DepthMap])
            .matches(&rec));
        assert!(Selection::all()
            .with_predicted_labels(vec![Label::new(20)])
            .matches(&rec));
        assert!(!Selection::all()
            .with_predicted_labels(vec![Label::new(99)])
            .matches(&rec));
        assert!(Selection::all()
            .with_image_ids(vec![ImageId::new(100)])
            .with_mask_ids(vec![MaskId::new(1)])
            .matches(&rec));
        assert!(!Selection::all()
            .with_mask_ids(vec![MaskId::new(7)])
            .matches(&rec));
        // A record with no predicted label fails a predicted-label filter.
        let unlabeled = MaskRecord::builder(MaskId::new(9)).build();
        assert!(!Selection::all()
            .with_predicted_labels(vec![Label::new(1)])
            .matches(&unlabeled));
    }

    #[test]
    fn query_builders_produce_expected_shapes() {
        let roi = Roi::new(0, 0, 8, 8).unwrap();
        let range = PixelRange::new(0.6, 1.0).unwrap();
        let q = Query::filter_cp_gt(roi, range, 100.0);
        assert!(matches!(q.kind, QueryKind::Filter { .. }));
        assert!(!q.is_grouped());
        assert_eq!(q.roi_specs(), vec![RoiSpec::Constant(roi)]);

        let q = Query::top_k_cp(roi, range, 25, Order::Desc);
        assert!(matches!(q.kind, QueryKind::TopK { k: 25, .. }));

        let q = Query::aggregate(Expr::cp_object(range), ScalarAgg::Avg)
            .with_group_top_k(25, Order::Desc)
            .with_having(CmpOp::Gt, 10.0);
        match &q.kind {
            QueryKind::Aggregate { having, top_k, .. } => {
                assert_eq!(*having, Some((CmpOp::Gt, 10.0)));
                assert_eq!(*top_k, Some((25, Order::Desc)));
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert!(q.is_grouped());
        assert_eq!(q.roi_specs(), vec![RoiSpec::ObjectBox]);

        let q = Query::mask_aggregate(
            MaskAgg::IntersectThreshold { threshold: 0.8 },
            CpTerm::object_roi(range),
        )
        .with_group_top_k(10, Order::Desc);
        assert!(q.is_grouped());
        assert_eq!(q.roi_specs(), vec![RoiSpec::ObjectBox]);

        // Having / top-k are no-ops on non-grouped queries.
        let q = Query::filter_cp_gt(roi, range, 1.0).with_having(CmpOp::Lt, 2.0);
        assert!(matches!(q.kind, QueryKind::Filter { .. }));
    }
}
