//! Query building blocks: ROI specifications, `CP` terms, scalar aggregates,
//! and result orderings.

use masksearch_core::{MaskOp, MaskRecord, PixelRange, Roi};

/// How the region of interest of a `CP` term is determined for each mask.
///
/// The paper's queries use all three forms: a constant user-specified box
/// (Q1, Q3), the per-mask foreground-object box computed by an object
/// detector (Q2, Q4, Q5 — `roi = object`), and the full mask (the denominator
/// of Example 1's ratio query).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoiSpec {
    /// The same bounding box for every mask.
    Constant(Roi),
    /// The mask-specific foreground-object bounding box stored in the
    /// catalog record.
    ObjectBox,
    /// The entire mask.
    FullMask,
}

impl RoiSpec {
    /// Resolves the specification into a concrete ROI for one mask.
    ///
    /// Returns `None` for [`RoiSpec::ObjectBox`] when the record has no
    /// object box (callers decide whether that is an error or a fallback to
    /// the full mask).
    pub fn resolve(&self, record: &MaskRecord) -> Option<Roi> {
        match self {
            RoiSpec::Constant(roi) => Some(*roi),
            RoiSpec::ObjectBox => record.object_box,
            RoiSpec::FullMask => {
                if record.width == 0 || record.height == 0 {
                    None
                } else {
                    Some(Roi::new(0, 0, record.width, record.height).expect("non-zero shape"))
                }
            }
        }
    }

    /// Returns `true` if the ROI differs per mask.
    pub fn is_mask_specific(&self) -> bool {
        matches!(self, RoiSpec::ObjectBox)
    }
}

/// Which mask of a candidate a `CP` term counts over.
///
/// Every classic (single-mask) query uses [`TermSource::Own`]. Pair-joined
/// queries (`masksearch-query`'s `PairFilter` / `PairTopK` shapes) bind
/// **two** masks of the same image per candidate and may count over either
/// one or over their pixelwise composition ([`MaskOp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TermSource {
    /// The candidate's own (single) mask.
    #[default]
    Own,
    /// The left mask of a pair-joined candidate image.
    Left,
    /// The right mask of a pair-joined candidate image.
    Right,
    /// The pixelwise composition `op(left, right)` of the pair's masks.
    Compose(MaskOp),
}

impl TermSource {
    /// Returns `true` if the term needs a pair binding (anything but
    /// [`TermSource::Own`]).
    pub fn is_pair(&self) -> bool {
        !matches!(self, TermSource::Own)
    }
}

/// One `CP(mask, roi, (lv, uv))` term of a query expression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpTerm {
    /// Which mask (or composition) to count over.
    pub source: TermSource,
    /// Where to count.
    pub roi: RoiSpec,
    /// Which pixel values to count.
    pub range: PixelRange,
}

impl CpTerm {
    /// Term with a constant ROI (over the candidate's own mask).
    pub fn constant_roi(roi: Roi, range: PixelRange) -> Self {
        Self {
            source: TermSource::Own,
            roi: RoiSpec::Constant(roi),
            range,
        }
    }

    /// Term counting within the mask-specific object bounding box.
    pub fn object_roi(range: PixelRange) -> Self {
        Self {
            source: TermSource::Own,
            roi: RoiSpec::ObjectBox,
            range,
        }
    }

    /// Term counting over the whole mask.
    pub fn full_mask(range: PixelRange) -> Self {
        Self {
            source: TermSource::Own,
            roi: RoiSpec::FullMask,
            range,
        }
    }

    /// Rebinds the term to another source (pair-query construction).
    pub fn with_source(mut self, source: TermSource) -> Self {
        self.source = source;
        self
    }

    /// Term counting over the pixelwise composition of a pair's masks.
    pub fn composed(op: MaskOp, roi: RoiSpec, range: PixelRange) -> Self {
        Self {
            source: TermSource::Compose(op),
            roi,
            range,
        }
    }
}

/// Scalar aggregation functions over per-mask `CP` expression values
/// (paper §2.1 `SCALAR_AGG` and §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarAgg {
    /// Sum of the member values.
    Sum,
    /// Arithmetic mean of the member values.
    Avg,
    /// Minimum of the member values.
    Min,
    /// Maximum of the member values.
    Max,
}

impl ScalarAgg {
    /// Applies the aggregate to exact per-member values.
    pub fn apply(&self, values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        match self {
            ScalarAgg::Sum => values.iter().sum(),
            ScalarAgg::Avg => values.iter().sum::<f64>() / values.len() as f64,
            ScalarAgg::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            ScalarAgg::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// A short stable name for plans and statistics output.
    pub fn name(&self) -> &'static str {
        match self {
            ScalarAgg::Sum => "sum",
            ScalarAgg::Avg => "avg",
            ScalarAgg::Min => "min",
            ScalarAgg::Max => "max",
        }
    }
}

/// Result ordering for ranked (top-k) queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Order {
    /// Largest values first (`ORDER BY ... DESC`).
    Desc,
    /// Smallest values first (`ORDER BY ... ASC`).
    Asc,
}

impl Order {
    /// Returns `true` if `a` ranks strictly better than `b` under this order.
    pub fn better(&self, a: f64, b: f64) -> bool {
        match self {
            Order::Desc => a > b,
            Order::Asc => a < b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{MaskId, MaskRecord};

    fn record(with_box: bool) -> MaskRecord {
        let mut b = MaskRecord::builder(MaskId::new(1)).shape(64, 48);
        if with_box {
            b = b.object_box(Roi::new(10, 10, 30, 30).unwrap());
        }
        b.build()
    }

    #[test]
    fn roi_spec_resolution() {
        let constant = RoiSpec::Constant(Roi::new(0, 0, 5, 5).unwrap());
        assert_eq!(
            constant.resolve(&record(false)),
            Some(Roi::new(0, 0, 5, 5).unwrap())
        );
        assert!(!constant.is_mask_specific());

        let object = RoiSpec::ObjectBox;
        assert_eq!(
            object.resolve(&record(true)),
            Some(Roi::new(10, 10, 30, 30).unwrap())
        );
        assert_eq!(object.resolve(&record(false)), None);
        assert!(object.is_mask_specific());

        let full = RoiSpec::FullMask;
        assert_eq!(
            full.resolve(&record(false)),
            Some(Roi::new(0, 0, 64, 48).unwrap())
        );
        let empty_record = MaskRecord::builder(MaskId::new(2)).build();
        assert_eq!(full.resolve(&empty_record), None);
    }

    #[test]
    fn cp_term_constructors() {
        let range = PixelRange::new(0.8, 1.0).unwrap();
        assert_eq!(
            CpTerm::constant_roi(Roi::new(0, 0, 4, 4).unwrap(), range).roi,
            RoiSpec::Constant(Roi::new(0, 0, 4, 4).unwrap())
        );
        assert_eq!(CpTerm::object_roi(range).roi, RoiSpec::ObjectBox);
        assert_eq!(CpTerm::full_mask(range).roi, RoiSpec::FullMask);
    }

    #[test]
    fn scalar_aggregates() {
        let values = [1.0, 2.0, 3.0, 6.0];
        assert_eq!(ScalarAgg::Sum.apply(&values), 12.0);
        assert_eq!(ScalarAgg::Avg.apply(&values), 3.0);
        assert_eq!(ScalarAgg::Min.apply(&values), 1.0);
        assert_eq!(ScalarAgg::Max.apply(&values), 6.0);
        assert_eq!(ScalarAgg::Sum.apply(&[]), 0.0);
        assert_eq!(ScalarAgg::Avg.name(), "avg");
    }

    #[test]
    fn order_comparisons() {
        assert!(Order::Desc.better(5.0, 3.0));
        assert!(!Order::Desc.better(3.0, 5.0));
        assert!(Order::Asc.better(3.0, 5.0));
        assert!(!Order::Asc.better(5.0, 5.0));
    }
}
