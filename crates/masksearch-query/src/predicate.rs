//! Filter predicates and three-valued evaluation over bounds.
//!
//! During the filter stage a predicate is evaluated from *bounds* on its `CP`
//! expressions, so the outcome is three-valued: definitely true (the mask can
//! be accepted without loading it), definitely false (the mask can be
//! pruned), or unknown (the mask must be verified). This module implements
//! that logic, including AND/OR composition (§3.2, §3.3).

use crate::expr::{Expr, Interval};
use std::fmt;

/// Comparison operators supported in filter predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
}

impl CmpOp {
    /// Evaluates the comparison on exact values.
    pub fn eval(&self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
        };
        write!(f, "{s}")
    }
}

/// The outcome of evaluating a predicate from bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Guaranteed to hold — the mask can be accepted without verification.
    True,
    /// Guaranteed not to hold — the mask can be pruned.
    False,
    /// Cannot be decided from the bounds — the mask must be verified.
    Unknown,
}

impl Truth {
    /// Three-valued conjunction.
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    /// Three-valued disjunction.
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// Three-valued negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// Converts a definite boolean into a [`Truth`].
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

/// A comparison of a `CP` expression against a constant threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Left-hand side expression.
    pub expr: Expr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side threshold.
    pub threshold: f64,
}

impl Comparison {
    /// Creates a comparison.
    pub fn new(expr: Expr, op: CmpOp, threshold: f64) -> Self {
        Self {
            expr,
            op,
            threshold,
        }
    }

    /// Evaluates the comparison from an interval on the expression value.
    pub fn eval_bounds(&self, value: &Interval) -> Truth {
        let t = self.threshold;
        match self.op {
            CmpOp::Gt => {
                if value.lo > t {
                    Truth::True
                } else if value.hi <= t {
                    Truth::False
                } else {
                    Truth::Unknown
                }
            }
            CmpOp::Ge => {
                if value.lo >= t {
                    Truth::True
                } else if value.hi < t {
                    Truth::False
                } else {
                    Truth::Unknown
                }
            }
            CmpOp::Lt => {
                if value.hi < t {
                    Truth::True
                } else if value.lo >= t {
                    Truth::False
                } else {
                    Truth::Unknown
                }
            }
            CmpOp::Le => {
                if value.hi <= t {
                    Truth::True
                } else if value.lo > t {
                    Truth::False
                } else {
                    Truth::Unknown
                }
            }
        }
    }

    /// Evaluates the comparison from the exact expression value.
    pub fn eval_exact(&self, value: f64) -> bool {
        self.op.eval(value, self.threshold)
    }
}

/// A filter predicate: comparisons composed with AND / OR / NOT.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// A single comparison.
    Cmp(Comparison),
    /// All children must hold.
    And(Vec<Predicate>),
    /// At least one child must hold.
    Or(Vec<Predicate>),
    /// The child must not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor: `expr > threshold`.
    pub fn gt(expr: Expr, threshold: f64) -> Self {
        Predicate::Cmp(Comparison::new(expr, CmpOp::Gt, threshold))
    }

    /// Convenience constructor: `expr < threshold`.
    pub fn lt(expr: Expr, threshold: f64) -> Self {
        Predicate::Cmp(Comparison::new(expr, CmpOp::Lt, threshold))
    }

    /// Convenience constructor: `expr >= threshold`.
    pub fn ge(expr: Expr, threshold: f64) -> Self {
        Predicate::Cmp(Comparison::new(expr, CmpOp::Ge, threshold))
    }

    /// Convenience constructor: `expr <= threshold`.
    pub fn le(expr: Expr, threshold: f64) -> Self {
        Predicate::Cmp(Comparison::new(expr, CmpOp::Le, threshold))
    }

    /// Conjunction of two predicates.
    pub fn and(self, other: Predicate) -> Self {
        match self {
            Predicate::And(mut children) => {
                children.push(other);
                Predicate::And(children)
            }
            p => Predicate::And(vec![p, other]),
        }
    }

    /// Disjunction of two predicates.
    pub fn or(self, other: Predicate) -> Self {
        match self {
            Predicate::Or(mut children) => {
                children.push(other);
                Predicate::Or(children)
            }
            p => Predicate::Or(vec![p, other]),
        }
    }

    /// Negation.
    pub fn negate(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Every comparison contained in the predicate, in left-to-right order.
    pub fn comparisons(&self) -> Vec<&Comparison> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a Comparison>) {
        match self {
            Predicate::Cmp(c) => out.push(c),
            Predicate::And(children) | Predicate::Or(children) => {
                for c in children {
                    c.collect(out);
                }
            }
            Predicate::Not(child) => child.collect(out),
        }
    }

    /// Evaluates the predicate given, for each comparison (in
    /// [`Predicate::comparisons`] order), an interval on its expression.
    pub fn eval_bounds(&self, intervals: &[Interval]) -> Truth {
        let mut cursor = 0usize;
        self.eval_bounds_inner(intervals, &mut cursor)
    }

    fn eval_bounds_inner(&self, intervals: &[Interval], cursor: &mut usize) -> Truth {
        match self {
            Predicate::Cmp(c) => {
                let t = c.eval_bounds(&intervals[*cursor]);
                *cursor += 1;
                t
            }
            Predicate::And(children) => {
                let mut acc = Truth::True;
                for child in children {
                    let t = child.eval_bounds_inner(intervals, cursor);
                    acc = acc.and(t);
                }
                acc
            }
            Predicate::Or(children) => {
                let mut acc = Truth::False;
                for child in children {
                    let t = child.eval_bounds_inner(intervals, cursor);
                    acc = acc.or(t);
                }
                acc
            }
            Predicate::Not(child) => child.eval_bounds_inner(intervals, cursor).not(),
        }
    }

    /// Evaluates the predicate given exact values for each comparison's
    /// expression (same order as [`Predicate::comparisons`]).
    pub fn eval_exact(&self, values: &[f64]) -> bool {
        let mut cursor = 0usize;
        self.eval_exact_inner(values, &mut cursor)
    }

    fn eval_exact_inner(&self, values: &[f64], cursor: &mut usize) -> bool {
        match self {
            Predicate::Cmp(c) => {
                let v = c.eval_exact(values[*cursor]);
                *cursor += 1;
                v
            }
            Predicate::And(children) => {
                let mut acc = true;
                for child in children {
                    let v = child.eval_exact_inner(values, cursor);
                    acc = acc && v;
                }
                acc
            }
            Predicate::Or(children) => {
                let mut acc = false;
                for child in children {
                    let v = child.eval_exact_inner(values, cursor);
                    acc = acc || v;
                }
                acc
            }
            Predicate::Not(child) => !child.eval_exact_inner(values, cursor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{PixelRange, Roi};

    fn simple_expr() -> Expr {
        Expr::cp(
            Roi::new(0, 0, 10, 10).unwrap(),
            PixelRange::new(0.8, 1.0).unwrap(),
        )
    }

    #[test]
    fn truth_algebra() {
        use Truth::*;
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(False.or(False), False);
        assert_eq!(Unknown.not(), Unknown);
        assert_eq!(True.not(), False);
        assert_eq!(Truth::from_bool(true), True);
    }

    #[test]
    fn comparison_bounds_cases() {
        // The three cases of Step 2 (§3.2.1) for CP > T.
        let cmp = Comparison::new(simple_expr(), CmpOp::Gt, 100.0);
        assert_eq!(cmp.eval_bounds(&Interval::new(150.0, 200.0)), Truth::True);
        assert_eq!(cmp.eval_bounds(&Interval::new(10.0, 100.0)), Truth::False);
        assert_eq!(cmp.eval_bounds(&Interval::new(50.0, 150.0)), Truth::Unknown);

        // CP < T (§3.3): accept when the upper bound is already below T.
        let cmp = Comparison::new(simple_expr(), CmpOp::Lt, 100.0);
        assert_eq!(cmp.eval_bounds(&Interval::new(0.0, 99.0)), Truth::True);
        assert_eq!(cmp.eval_bounds(&Interval::new(100.0, 200.0)), Truth::False);
        assert_eq!(cmp.eval_bounds(&Interval::new(50.0, 150.0)), Truth::Unknown);

        // Boundary semantics of >= and <=.
        let ge = Comparison::new(simple_expr(), CmpOp::Ge, 100.0);
        assert_eq!(ge.eval_bounds(&Interval::new(100.0, 120.0)), Truth::True);
        let le = Comparison::new(simple_expr(), CmpOp::Le, 100.0);
        assert_eq!(le.eval_bounds(&Interval::new(0.0, 100.0)), Truth::True);
    }

    #[test]
    fn bound_and_exact_evaluation_agree_on_tight_intervals() {
        let cmp = Comparison::new(simple_expr(), CmpOp::Gt, 42.0);
        for v in [0.0, 42.0, 42.5, 100.0] {
            let exact = cmp.eval_exact(v);
            let bound = cmp.eval_bounds(&Interval::point(v));
            assert_eq!(bound, Truth::from_bool(exact), "value {v}");
        }
    }

    #[test]
    fn predicate_composition() {
        let p = Predicate::gt(simple_expr(), 50.0).and(Predicate::lt(simple_expr(), 200.0));
        assert_eq!(p.comparisons().len(), 2);
        // Both certain.
        assert_eq!(
            p.eval_bounds(&[Interval::new(60.0, 80.0), Interval::new(60.0, 80.0)]),
            Truth::True
        );
        // One certain false short-circuits to false even if the other is unknown.
        assert_eq!(
            p.eval_bounds(&[Interval::new(0.0, 10.0), Interval::new(100.0, 300.0)]),
            Truth::False
        );
        // Exact evaluation.
        assert!(p.eval_exact(&[60.0, 199.0]));
        assert!(!p.eval_exact(&[60.0, 200.0]));

        let q = Predicate::gt(simple_expr(), 50.0)
            .or(Predicate::gt(simple_expr(), 1000.0))
            .negate();
        assert_eq!(q.comparisons().len(), 2);
        assert!(!q.eval_exact(&[60.0, 0.0]));
        assert!(q.eval_exact(&[0.0, 0.0]));
        assert_eq!(
            q.eval_bounds(&[Interval::new(60.0, 70.0), Interval::new(0.0, 1.0)]),
            Truth::False
        );
    }

    #[test]
    fn and_or_builders_flatten() {
        let p = Predicate::gt(simple_expr(), 1.0)
            .and(Predicate::gt(simple_expr(), 2.0))
            .and(Predicate::gt(simple_expr(), 3.0));
        match p {
            Predicate::And(children) => assert_eq!(children.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
        let p = Predicate::gt(simple_expr(), 1.0)
            .or(Predicate::gt(simple_expr(), 2.0))
            .or(Predicate::gt(simple_expr(), 3.0));
        match p {
            Predicate::Or(children) => assert_eq!(children.len(), 3),
            other => panic!("expected Or, got {other:?}"),
        }
    }
}
