//! Arithmetic expressions over `CP` terms, with interval (bound) evaluation.
//!
//! Queries frequently combine several `CP` terms arithmetically — the paper's
//! Example 1 ranks X-rays by the *ratio* of salient pixels inside the lung
//! ROI to salient pixels in the whole image, and §3.3 generalises the filter
//! framework to any expression that is monotone in each `CP` term (`+`, `−`,
//! `×`; we also support `/` with conservative interval handling).
//!
//! An [`Expr`] can be evaluated two ways:
//!
//! * **exactly**, given the exact value of every `CP` term (verification
//!   stage), and
//! * **as an interval**, given lower/upper bounds on every term (filter
//!   stage) — standard interval arithmetic, so the resulting interval is
//!   guaranteed to contain the exact value.

use crate::spec::{CpTerm, RoiSpec, TermSource};
use masksearch_core::{MaskOp, PixelRange, Roi};
use std::fmt;

/// A closed interval `[lo, hi]` used for bound propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower end of the interval.
    pub lo: f64,
    /// Upper end of the interval.
    pub hi: f64,
}

impl Interval {
    /// Creates an interval, normalising an inverted pair.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            Self { lo, hi }
        } else {
            Self { lo: hi, hi: lo }
        }
    }

    /// A degenerate interval containing a single value.
    pub fn point(v: f64) -> Self {
        Self { lo: v, hi: v }
    }

    /// Returns `true` if the interval contains `v`.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Interval addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(&self, other: &Interval) -> Interval {
        Interval::new(self.lo + other.lo, self.hi + other.hi)
    }

    /// Interval subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(&self, other: &Interval) -> Interval {
        Interval::new(self.lo - other.hi, self.hi - other.lo)
    }

    /// Interval multiplication.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(&self, other: &Interval) -> Interval {
        let candidates = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        let lo = candidates.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = candidates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval { lo, hi }
    }

    /// Interval division. If the divisor interval contains zero the result is
    /// unbounded in the corresponding direction (conservative but sound).
    #[allow(clippy::should_implement_trait)]
    pub fn div(&self, other: &Interval) -> Interval {
        if other.lo <= 0.0 && other.hi >= 0.0 {
            // Division by an interval straddling (or touching) zero.
            return Interval {
                lo: f64::NEG_INFINITY,
                hi: f64::INFINITY,
            };
        }
        let candidates = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ];
        let lo = candidates.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = candidates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval { lo, hi }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// An arithmetic expression over `CP` terms and constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A `CP(mask, roi, range)` term.
    Cp(CpTerm),
    /// A numeric constant.
    Const(f64),
    /// Sum of two sub-expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two sub-expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two sub-expressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient of two sub-expressions.
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor: a single `CP` term with a constant ROI.
    pub fn cp(roi: Roi, range: PixelRange) -> Self {
        Expr::Cp(CpTerm::constant_roi(roi, range))
    }

    /// Convenience constructor: a single `CP` term over the mask-specific
    /// object bounding box.
    pub fn cp_object(range: PixelRange) -> Self {
        Expr::Cp(CpTerm::object_roi(range))
    }

    /// Convenience constructor: a single `CP` term over the full mask.
    pub fn cp_full(range: PixelRange) -> Self {
        Expr::Cp(CpTerm::full_mask(range))
    }

    /// Convenience constructor: a `CP` term over the pixelwise composition
    /// of a pair's masks (pair queries only).
    pub fn cp_composed(op: MaskOp, roi: RoiSpec, range: PixelRange) -> Self {
        Expr::Cp(CpTerm::composed(op, roi, range))
    }

    /// Convenience constructor: a `CP` term over one side of a pair.
    pub fn cp_side(source: TermSource, roi: RoiSpec, range: PixelRange) -> Self {
        Expr::Cp(CpTerm { source, roi, range })
    }

    /// The `IOU(a.mask, b.mask, roi, θ)` metric of a pair: the masks are
    /// binarised at the range's lower bound (`range` is `[θ, 1)`), and the
    /// metric is `CP∩ / CP∪` — which lowers to a plain ratio expression, so
    /// the whole filter/top-k bound machinery (interval division included)
    /// applies unchanged. Two empty binarisations yield `0 / 0 = NaN`,
    /// which never satisfies a comparison and ranks last under either
    /// order.
    pub fn iou(roi: RoiSpec, range: PixelRange) -> Self {
        Expr::cp_composed(MaskOp::Intersect, roi, range).div(Expr::cp_composed(
            MaskOp::Union,
            roi,
            range,
        ))
    }

    /// Returns `true` if any `CP` term binds a pair (left/right/composed)
    /// rather than the candidate's own mask.
    pub fn uses_pair_terms(&self) -> bool {
        self.terms().iter().any(|t| t.source.is_pair())
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Self {
        Expr::Add(Box::new(self), Box::new(other))
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Self {
        Expr::Sub(Box::new(self), Box::new(other))
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Self {
        Expr::Mul(Box::new(self), Box::new(other))
    }

    /// `self / other`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Self {
        Expr::Div(Box::new(self), Box::new(other))
    }

    /// Collects every `CP` term in the expression, left to right.
    pub fn terms(&self) -> Vec<&CpTerm> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a CpTerm>) {
        match self {
            Expr::Cp(term) => out.push(term),
            Expr::Const(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_terms(out);
                b.collect_terms(out);
            }
        }
    }

    /// Returns `true` if any `CP` term uses a mask-specific ROI.
    pub fn uses_mask_specific_roi(&self) -> bool {
        self.terms().iter().any(|t| t.roi.is_mask_specific())
    }

    /// Evaluates the expression given exact values for the `CP` terms, in the
    /// order produced by [`Expr::terms`].
    ///
    /// # Panics
    /// Panics if `values` has fewer entries than the expression has terms;
    /// the executor always sizes it from [`Expr::terms`].
    pub fn evaluate_exact(&self, values: &[f64]) -> f64 {
        let mut cursor = 0usize;
        self.eval_exact_inner(values, &mut cursor)
    }

    fn eval_exact_inner(&self, values: &[f64], cursor: &mut usize) -> f64 {
        match self {
            Expr::Cp(_) => {
                let v = values[*cursor];
                *cursor += 1;
                v
            }
            Expr::Const(c) => *c,
            Expr::Add(a, b) => {
                a.eval_exact_inner(values, cursor) + b.eval_exact_inner(values, cursor)
            }
            Expr::Sub(a, b) => {
                a.eval_exact_inner(values, cursor) - b.eval_exact_inner(values, cursor)
            }
            Expr::Mul(a, b) => {
                a.eval_exact_inner(values, cursor) * b.eval_exact_inner(values, cursor)
            }
            Expr::Div(a, b) => {
                let num = a.eval_exact_inner(values, cursor);
                let den = b.eval_exact_inner(values, cursor);
                num / den
            }
        }
    }

    /// Evaluates the expression over intervals for the `CP` terms (same order
    /// as [`Expr::terms`]), producing an interval guaranteed to contain the
    /// exact value.
    pub fn evaluate_bounds(&self, intervals: &[Interval]) -> Interval {
        let mut cursor = 0usize;
        self.eval_bounds_inner(intervals, &mut cursor)
    }

    fn eval_bounds_inner(&self, intervals: &[Interval], cursor: &mut usize) -> Interval {
        match self {
            Expr::Cp(_) => {
                let v = intervals[*cursor];
                *cursor += 1;
                v
            }
            Expr::Const(c) => Interval::point(*c),
            Expr::Add(a, b) => {
                let x = a.eval_bounds_inner(intervals, cursor);
                let y = b.eval_bounds_inner(intervals, cursor);
                x.add(&y)
            }
            Expr::Sub(a, b) => {
                let x = a.eval_bounds_inner(intervals, cursor);
                let y = b.eval_bounds_inner(intervals, cursor);
                x.sub(&y)
            }
            Expr::Mul(a, b) => {
                let x = a.eval_bounds_inner(intervals, cursor);
                let y = b.eval_bounds_inner(intervals, cursor);
                x.mul(&y)
            }
            Expr::Div(a, b) => {
                let x = a.eval_bounds_inner(intervals, cursor);
                let y = b.eval_bounds_inner(intervals, cursor);
                x.div(&y)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(lo: f32, hi: f32) -> PixelRange {
        PixelRange::new(lo, hi).unwrap()
    }

    #[test]
    fn interval_arithmetic_is_sound() {
        let a = Interval::new(2.0, 5.0);
        let b = Interval::new(-1.0, 3.0);
        assert_eq!(a.add(&b), Interval::new(1.0, 8.0));
        assert_eq!(a.sub(&b), Interval::new(-1.0, 6.0));
        assert_eq!(a.mul(&b), Interval::new(-5.0, 15.0));
        // Division by an interval containing zero is unbounded.
        let d = a.div(&b);
        assert_eq!(d.lo, f64::NEG_INFINITY);
        assert_eq!(d.hi, f64::INFINITY);
        // Division by a strictly positive interval is finite.
        let c = Interval::new(1.0, 2.0);
        assert_eq!(a.div(&c), Interval::new(1.0, 5.0));
        // Inverted constructor arguments are normalised.
        assert_eq!(Interval::new(4.0, 1.0), Interval::new(1.0, 4.0));
        assert!(Interval::point(3.0).contains(3.0));
    }

    #[test]
    fn terms_are_collected_in_evaluation_order() {
        let roi = Roi::new(0, 0, 10, 10).unwrap();
        let expr = Expr::cp(roi, range(0.8, 1.0))
            .div(Expr::cp_full(range(0.8, 1.0)))
            .add(Expr::Const(1.0));
        let terms = expr.terms();
        assert_eq!(terms.len(), 2);
        assert!(!terms[0].roi.is_mask_specific());
        assert!(expr
            .clone()
            .mul(Expr::cp_object(range(0.1, 0.2)))
            .uses_mask_specific_roi());
        assert!(!expr.uses_mask_specific_roi());
    }

    #[test]
    fn exact_evaluation_matches_hand_computation() {
        let roi = Roi::new(0, 0, 10, 10).unwrap();
        // (cp1 / cp2) * 100 - 5
        let expr = Expr::cp(roi, range(0.8, 1.0))
            .div(Expr::cp_full(range(0.8, 1.0)))
            .mul(Expr::Const(100.0))
            .sub(Expr::Const(5.0));
        let value = expr.evaluate_exact(&[30.0, 120.0]);
        assert!((value - (30.0 / 120.0 * 100.0 - 5.0)).abs() < 1e-12);
    }

    #[test]
    fn interval_evaluation_contains_exact_value() {
        let roi = Roi::new(0, 0, 10, 10).unwrap();
        let expr = Expr::cp(roi, range(0.8, 1.0))
            .mul(Expr::Const(2.0))
            .sub(Expr::cp_full(range(0.5, 1.0)));
        // Exact term values 40 and 70; intervals containing them.
        let exact = expr.evaluate_exact(&[40.0, 70.0]);
        let bounds = expr.evaluate_bounds(&[Interval::new(35.0, 50.0), Interval::new(60.0, 90.0)]);
        assert!(bounds.contains(exact));
        // Degenerate intervals give a degenerate result equal to the exact value.
        let tight = expr.evaluate_bounds(&[Interval::point(40.0), Interval::point(70.0)]);
        assert_eq!(tight.lo, exact);
        assert_eq!(tight.hi, exact);
    }

    #[test]
    fn ratio_expression_with_zero_denominator_bound_is_conservative() {
        let roi = Roi::new(0, 0, 10, 10).unwrap();
        let expr = Expr::cp(roi, range(0.8, 1.0)).div(Expr::cp_full(range(0.8, 1.0)));
        let bounds = expr.evaluate_bounds(&[Interval::new(0.0, 10.0), Interval::new(0.0, 50.0)]);
        assert_eq!(bounds.hi, f64::INFINITY);
    }
}
