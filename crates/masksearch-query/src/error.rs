//! Error types for query construction and execution.

use masksearch_core::MaskId;
use std::fmt;

/// Convenience alias for query-layer results.
pub type QueryResult<T> = std::result::Result<T, QueryError>;

/// Errors produced while building or executing a query.
#[derive(Debug, Clone)]
pub enum QueryError {
    /// The underlying storage layer failed.
    Storage(masksearch_storage::StorageError),
    /// The core data model rejected a value (e.g. a mask aggregation over
    /// mismatched shapes).
    Core(masksearch_core::Error),
    /// The query references a mask that is not in the catalog.
    UnknownMask(MaskId),
    /// A query parameter is structurally invalid.
    InvalidQuery {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A `RoiSpec::ObjectBox` term was evaluated for a mask whose catalog
    /// record has no object bounding box.
    MissingObjectBox(MaskId),
}

impl QueryError {
    /// Builds an [`QueryError::InvalidQuery`] from a description.
    pub fn invalid(reason: impl Into<String>) -> Self {
        QueryError::InvalidQuery {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
            QueryError::Core(e) => write!(f, "data model error: {e}"),
            QueryError::UnknownMask(id) => write!(f, "mask {id} is not in the catalog"),
            QueryError::InvalidQuery { reason } => write!(f, "invalid query: {reason}"),
            QueryError::MissingObjectBox(id) => write!(
                f,
                "mask {id} has no object bounding box but the query uses roi = object"
            ),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Storage(e) => Some(e),
            QueryError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<masksearch_storage::StorageError> for QueryError {
    fn from(e: masksearch_storage::StorageError) -> Self {
        QueryError::Storage(e)
    }
}

impl From<masksearch_core::Error> for QueryError {
    fn from(e: masksearch_core::Error) -> Self {
        QueryError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: QueryError = masksearch_core::Error::EmptyMask.into();
        assert!(e.to_string().contains("data model"));
        let e: QueryError = masksearch_storage::StorageError::MaskNotFound(MaskId::new(4)).into();
        assert!(e.to_string().contains("storage"));
        assert!(QueryError::invalid("k must be positive")
            .to_string()
            .contains("k must be positive"));
        assert!(QueryError::MissingObjectBox(MaskId::new(2))
            .to_string()
            .contains("object"));
    }
}
