//! Plan-time feature extraction: the glue between a [`Session`] and the
//! pure cost model of `masksearch-plan`.
//!
//! Before dispatching a query, the session calls `plan_query`, which
//! samples a handful of candidate CHIs (bounds classification + bound-gap
//! fractions), checks the query's ranges for tile-bin alignment, looks up
//! the shape's observed aggregates, and asks the cost model for a
//! [`QueryPlan`]. The resulting [`ExecPlan`] travels into the executors,
//! which resolve the per-mask kernel decision against each verified mask's
//! own tile summaries.
//!
//! Planning is *advisory*: any feature-extraction error (an unknown mask, a
//! missing object box) is swallowed here and the affected candidate simply
//! contributes no evidence — the same error will surface from the executor
//! itself, on the same candidate, exactly as it does under a fixed plan.

use crate::eval;
use crate::expr::Interval;
use crate::predicate::Predicate;
use crate::query::{Query, QueryKind};
use crate::session::Session;
use crate::spec::CpTerm;
use masksearch_core::{MaskId, PixelRange, TiledMask};
use masksearch_plan::{
    choose_kernel, choose_load_first, order_terms, range_is_bin_aligned, QueryPlan, TermStats,
    SAMPLE_TARGET,
};

/// An executable plan: the cost model's choices plus the query features the
/// executors need to resolve per-mask decisions.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    /// The chosen strategies and the estimates that picked them.
    pub plan: QueryPlan,
    /// `true` when the estimates were derived from sampled candidates (as
    /// opposed to the no-evidence defaults) — the gate for folding the
    /// estimated-vs-actual selectivity error into the catalog statistics.
    pub sampled: bool,
    /// Name of the secondary index the candidate resolution probes for the
    /// query's selection, `None` on the catalog-scan path. Comes from the
    /// same decision the executor makes, so `EXPLAIN` cannot disagree with
    /// execution.
    pub index_access: Option<String>,
    /// Pair queries: the index access of the left and right binding's
    /// resolution (`selection ∧ join.side`), in that order.
    pub pair_index_access: [Option<String>; 2],
    /// Distinct `CP` ranges of the query, for per-mask kernel resolution.
    ranges: Vec<PixelRange>,
}

impl ExecPlan {
    /// A plan reproducing a fixed pre-planner pipeline: written term order,
    /// forced kernel, bounds-first. Used by the differential tests as the
    /// baseline every planned execution must match byte-for-byte.
    pub fn fixed(kernel_on: bool) -> Self {
        Self {
            plan: QueryPlan::fixed(kernel_on),
            sampled: false,
            index_access: None,
            pair_index_access: [None, None],
            ranges: Vec::new(),
        }
    }

    /// Cost order over the predicate's comparisons (empty = written order).
    pub fn term_order(&self) -> &[usize] {
        &self.plan.term_order
    }

    /// Pair queries: skip the composed-bounds pass and load every pair.
    pub fn load_first(&self) -> bool {
        self.plan.load_first
    }

    /// Compact strategy signature (`kernel=... bounds=... order=...`) for
    /// the slow-query log and `EXPLAIN`.
    pub fn signature(&self) -> String {
        self.plan.signature()
    }

    /// Resolves the kernel decision for one verified mask. Forced and
    /// aligned-range plans decide statically; otherwise the mask's own tile
    /// summaries (when already built or seeded by the store) estimate the
    /// fraction of tiles the kernel would have to pixel-scan anyway.
    pub fn kernel_on_for(&self, tiled: &TiledMask) -> bool {
        if let Some(on) = self.plan.kernel.static_decision() {
            return on;
        }
        self.plan
            .kernel
            .decide(mask_gap_fraction(tiled, &self.ranges))
    }
}

/// The fraction of the mask's tiles whose min/max summary cannot decide
/// membership for the *hardest* of the query's ranges — the tiles the kernel
/// would boundary-scan. `None` when there is no cheap evidence (no grid
/// built yet, or no ranges): building a grid just to decide whether to use
/// it would defeat the point.
fn mask_gap_fraction(tiled: &TiledMask, ranges: &[PixelRange]) -> Option<f64> {
    if ranges.is_empty() || !tiled.has_grid() {
        return None;
    }
    let summaries = tiled.grid().summaries();
    if summaries.is_empty() {
        return None;
    }
    let mut worst = 0.0f64;
    for range in ranges {
        let (lo, hi) = (range.lo(), range.hi());
        let undecided = summaries
            .iter()
            .filter(|s| {
                let all_out = s.max() < lo || s.min() >= hi;
                let all_in = s.uncountable() == 0 && s.min() >= lo && s.max() < hi;
                !(all_out || all_in)
            })
            .count();
        worst = worst.max(undecided as f64 / summaries.len() as f64);
    }
    Some(worst)
}

/// Stride-samples up to [`SAMPLE_TARGET`] ids covering the candidate list.
fn sample_ids(candidates: &[MaskId]) -> impl Iterator<Item = MaskId> + '_ {
    let stride = (candidates.len() / SAMPLE_TARGET.max(1)).max(1);
    candidates
        .iter()
        .step_by(stride)
        .take(SAMPLE_TARGET)
        .copied()
}

/// Per-comparison and whole-predicate statistics from the candidate sample.
struct PredicateSample {
    per_comparison: Vec<TermStats>,
    predicate: TermStats,
}

/// Samples candidate CHIs against a filter predicate: per comparison, how
/// the bound interval classified each sampled candidate and how wide the
/// bounds were relative to the ROI area.
fn sample_predicate(
    session: &Session,
    predicate: &Predicate,
    candidates: &[MaskId],
) -> PredicateSample {
    let comparisons = predicate.comparisons();
    let fallback = session.config().object_box_fallback;
    let mut per_comparison = vec![TermStats::default(); comparisons.len()];
    let mut pred_stats = TermStats::default();
    'candidates: for mask_id in sample_ids(candidates) {
        let Some(chi) = session.chi_for(mask_id) else {
            continue;
        };
        let Ok(record) = session.record(mask_id) else {
            continue;
        };
        let mut cmp_intervals = Vec::with_capacity(comparisons.len());
        let mut cmp_gaps = Vec::with_capacity(comparisons.len());
        for cmp in &comparisons {
            let terms = cmp.expr.terms();
            let mut term_intervals = Vec::with_capacity(terms.len());
            let mut gap = 0.0f64;
            for &term in &terms {
                if term.source.is_pair() {
                    // Pair-sourced terms cannot be bounded from one CHI; the
                    // executor will reject the query itself.
                    continue 'candidates;
                }
                let Ok(roi) = eval::resolve_roi(term, &record, fallback) else {
                    continue 'candidates;
                };
                let b = chi.cp_bounds(&roi, &term.range);
                let area = roi.area();
                if area > 0 {
                    gap += (b.upper.saturating_sub(b.lower)) as f64 / area as f64;
                }
                term_intervals.push(Interval::new(b.lower as f64, b.upper as f64));
            }
            cmp_intervals.push(cmp.expr.evaluate_bounds(&term_intervals));
            cmp_gaps.push(if terms.is_empty() {
                0.0
            } else {
                gap / terms.len() as f64
            });
        }
        for (i, cmp) in comparisons.iter().enumerate() {
            let stats = &mut per_comparison[i];
            tally(stats, cmp.eval_bounds(&cmp_intervals[i]), cmp_gaps[i]);
        }
        let mean_gap = if cmp_gaps.is_empty() {
            0.0
        } else {
            cmp_gaps.iter().sum::<f64>() / cmp_gaps.len() as f64
        };
        tally(
            &mut pred_stats,
            predicate.eval_bounds(&cmp_intervals),
            mean_gap,
        );
    }
    PredicateSample {
        per_comparison,
        predicate: pred_stats,
    }
}

fn tally(stats: &mut TermStats, truth: crate::predicate::Truth, gap: f64) {
    use crate::predicate::Truth;
    match truth {
        Truth::True => stats.trues += 1,
        Truth::False => stats.falses += 1,
        Truth::Unknown => stats.unknowns += 1,
    }
    stats.gap_sum += gap;
}

/// Samples candidate CHIs against a ranked/aggregate expression, returning
/// the mean bound-gap fraction (the kernel's smoothness feature). `None`
/// when nothing could be sampled.
fn sample_expr_gap(session: &Session, terms: &[CpTerm], candidates: &[MaskId]) -> Option<f64> {
    let fallback = session.config().object_box_fallback;
    let mut gap_sum = 0.0f64;
    let mut sampled = 0u32;
    'candidates: for mask_id in sample_ids(candidates) {
        let Some(chi) = session.chi_for(mask_id) else {
            continue;
        };
        let Ok(record) = session.record(mask_id) else {
            continue;
        };
        let mut gap = 0.0f64;
        for term in terms {
            if term.source.is_pair() {
                return None;
            }
            let Ok(roi) = eval::resolve_roi(term, &record, fallback) else {
                continue 'candidates;
            };
            let b = chi.cp_bounds(&roi, &term.range);
            let area = roi.area();
            if area > 0 {
                gap += (b.upper.saturating_sub(b.lower)) as f64 / area as f64;
            }
        }
        gap_sum += gap / terms.len().max(1) as f64;
        sampled += 1;
    }
    (sampled > 0).then(|| (gap_sum / sampled as f64).clamp(0.0, 1.0))
}

/// Builds the execution plan for a query: extracts features, consults the
/// cost model, and packages the choices for the executors. Pair kinds pass
/// an empty candidate list (their image-keyed candidates carry no single
/// CHI to sample); their decisions run on alignment and shape feedback.
pub(crate) fn plan_query(session: &Session, query: &Query, candidates: &[MaskId]) -> ExecPlan {
    let config = session.config();
    let shape = crate::explain::shape_key(query, config);
    let feedback = session.shape_stats().get(&shape);
    let terms = crate::explain::cp_terms(query);
    let aligned = !terms.is_empty() && terms.iter().all(|t| range_is_bin_aligned(&t.range));
    let mut ranges: Vec<PixelRange> = Vec::new();
    for term in &terms {
        if !ranges
            .iter()
            .any(|r| r.lo() == term.range.lo() && r.hi() == term.range.hi())
        {
            ranges.push(term.range);
        }
    }

    let is_pair = matches!(
        query.kind,
        QueryKind::PairFilter { .. } | QueryKind::PairTopK { .. }
    );
    let load_first = if is_pair {
        choose_load_first(config.pair_mode, feedback.as_ref())
    } else {
        false
    };

    let (term_order, term_estimates, est_selectivity, sampled, sampled_gap) = match &query.kind {
        QueryKind::Filter { predicate } => {
            let sample = sample_predicate(session, predicate, candidates);
            let estimates: Vec<f64> = sample
                .per_comparison
                .iter()
                .map(|s| s.est_selectivity())
                .collect();
            let sampled = sample.predicate.sampled() > 0;
            let order = if estimates.len() > 1 && sampled {
                order_terms(&estimates)
            } else {
                (0..estimates.len()).collect()
            };
            let gap = sampled.then(|| sample.predicate.mean_gap());
            (
                order,
                estimates,
                sample.predicate.est_selectivity(),
                sampled,
                gap,
            )
        }
        QueryKind::TopK { expr, .. } | QueryKind::Aggregate { expr, .. } => {
            let gap = sample_expr_gap(
                session,
                &expr.terms().into_iter().copied().collect::<Vec<_>>(),
                candidates,
            );
            (Vec::new(), Vec::new(), 0.5, false, gap)
        }
        _ => (Vec::new(), Vec::new(), 0.5, false, None),
    };

    let kernel = choose_kernel(config.kernel_mode, aligned, sampled_gap, feedback.as_ref());

    // The access-path face of the plan: which secondary index (if any) the
    // candidate resolution will probe. Pair kinds resolve per side.
    let (index_access, pair_index_access) = match &query.kind {
        QueryKind::PairFilter { join, .. } | QueryKind::PairTopK { join, .. } => (
            None,
            [
                session.index_access_for(&[&query.selection, &join.left]),
                session.index_access_for(&[&query.selection, &join.right]),
            ],
        ),
        _ => (session.index_access_for(&[&query.selection]), [None, None]),
    };

    ExecPlan {
        plan: QueryPlan {
            term_order,
            term_estimates,
            est_selectivity,
            kernel,
            load_first,
        },
        sampled,
        index_access,
        pair_index_access,
        ranges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::session::{IndexingMode, SessionConfig};
    use masksearch_core::{ImageId, Mask, MaskRecord, Roi};
    use masksearch_index::ChiConfig;
    use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};
    use std::sync::Arc;

    fn db(n: u64) -> (Arc<dyn MaskStore>, Catalog) {
        let store = MemoryMaskStore::for_tests();
        let mut catalog = Catalog::new();
        for i in 0..n {
            let mask = Mask::from_fn(32, 32, move |x, y| {
                let dx = x as f32 - 16.0;
                let dy = y as f32 - 16.0;
                if (dx * dx + dy * dy).sqrt() < 2.0 + i as f32 {
                    0.9
                } else {
                    0.05
                }
            });
            store.put(MaskId::new(i), &mask).unwrap();
            catalog.insert(
                MaskRecord::builder(MaskId::new(i))
                    .image_id(ImageId::new(i))
                    .shape(32, 32)
                    .build(),
            );
        }
        (Arc::new(store), catalog)
    }

    fn eager_session() -> Session {
        let (store, catalog) = db(16);
        Session::new(
            store,
            catalog,
            SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap()).indexing_mode(IndexingMode::Eager),
        )
        .unwrap()
    }

    #[test]
    fn filter_plans_sample_and_estimate_selectivity() {
        let session = eager_session();
        let roi = Roi::new(0, 0, 32, 32).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        // Threshold 0: every candidate with a salient pixel passes.
        let query = Query::filter_cp_gt(roi, range, 0.0);
        let candidates: Vec<MaskId> = (0..16).map(MaskId::new).collect();
        let plan = plan_query(&session, &query, &candidates);
        assert!(plan.sampled);
        assert_eq!(plan.plan.term_estimates.len(), 1);
        assert!(
            plan.plan.est_selectivity > 0.5,
            "a permissive filter is estimated permissive"
        );
        // Impossible threshold: the bounds prove every sample fails.
        let query = Query::filter_cp_gt(roi, range, 1e9);
        let plan = plan_query(&session, &query, &candidates);
        assert!(plan.plan.est_selectivity < 0.5);
    }

    #[test]
    fn unindexed_candidates_produce_no_evidence() {
        let (store, catalog) = db(8);
        let session = Session::new(
            store,
            catalog,
            SessionConfig::new(ChiConfig::new(8, 8, 8).unwrap())
                .indexing_mode(IndexingMode::Disabled),
        )
        .unwrap();
        let query = Query::filter_cp_gt(
            Roi::new(0, 0, 32, 32).unwrap(),
            PixelRange::new(0.5, 1.0).unwrap(),
            10.0,
        );
        let candidates: Vec<MaskId> = (0..8).map(MaskId::new).collect();
        let plan = plan_query(&session, &query, &candidates);
        assert!(!plan.sampled);
        assert_eq!(plan.plan.est_selectivity, 0.5);
        assert!(!plan.plan.reordered());
    }

    #[test]
    fn aligned_ranges_decide_the_kernel_statically() {
        let session = eager_session();
        let roi = Roi::new(0, 0, 32, 32).unwrap();
        let aligned = Query::filter_cp_gt(roi, PixelRange::new(0.5, 1.0).unwrap(), 10.0);
        let plan = plan_query(&session, &aligned, &[MaskId::new(0)]);
        assert_eq!(plan.plan.kernel.static_decision(), Some(true));
        let unaligned = Query::filter_cp_gt(roi, PixelRange::new(0.3, 0.7).unwrap(), 10.0);
        let plan = plan_query(&session, &unaligned, &[MaskId::new(0)]);
        assert_eq!(plan.plan.kernel.static_decision(), None);
    }

    #[test]
    fn fixed_plans_reproduce_the_forced_pipeline() {
        let fixed = ExecPlan::fixed(false);
        assert!(!fixed.load_first());
        assert!(fixed.term_order().is_empty());
        let mask = masksearch_core::TiledMask::from_mask(Mask::constant(8, 8, 0.4).unwrap());
        assert!(!fixed.kernel_on_for(&mask));
        assert!(ExecPlan::fixed(true).kernel_on_for(&mask));
    }

    #[test]
    fn per_mask_gap_fraction_reads_tile_summaries() {
        // A constant mask decides every tile from min/max; a noise mask
        // straddles the unaligned range everywhere.
        let smooth = TiledMask::from_mask(Mask::constant(64, 64, 0.9).unwrap());
        let noise = TiledMask::from_mask(Mask::from_fn(64, 64, |x, y| {
            ((x * 31 + y * 17) % 97) as f32 / 97.0
        }));
        // Force the grids to exist (the cache normally builds them on use).
        let _ = smooth.grid();
        let _ = noise.grid();
        let range = PixelRange::new(0.3, 0.7).unwrap();
        let smooth_gap = mask_gap_fraction(&smooth, &[range]).unwrap();
        let noise_gap = mask_gap_fraction(&noise, &[range]).unwrap();
        assert!(smooth_gap < 0.05, "constant mask: {smooth_gap}");
        assert!(noise_gap > 0.9, "noise mask: {noise_gap}");
        // No grid yet: no evidence.
        let lazy = TiledMask::from_mask(Mask::constant(8, 8, 0.5).unwrap());
        assert_eq!(mask_gap_fraction(&lazy, &[range]), None);
    }
}
