//! A lock-free log₂-bucket histogram for microsecond durations.
//!
//! Bucket `i` counts observations in `[2^i, 2^(i+1))` µs (bucket 0 also
//! holds sub-microsecond observations), mirroring the latency histogram the
//! service has always used so percentiles stay comparable across surfaces.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: covers up to 2^31 µs ≈ 36 minutes, far beyond any
/// query.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A concurrent histogram of microsecond durations with power-of-two
/// buckets.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    total_us: AtomicU64,
    count: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn bucket_of(micros: u64) -> usize {
        if micros == 0 {
            0
        } else {
            ((64 - micros.leading_zeros()) as usize - 1).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one observation of `micros` microseconds.
    pub fn record(&self, micros: u64) {
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in microseconds.
    pub fn total_us(&self) -> u64 {
        self.total_us.load(Ordering::Relaxed)
    }

    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us().checked_div(self.count()).unwrap_or(0)
    }

    /// Upper-bound estimate of the `p`-th percentile in microseconds: the
    /// exclusive upper edge of the bucket holding that rank (0 when empty).
    pub fn percentile_us(&self, p: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << HISTOGRAM_BUCKETS
    }

    /// Point-in-time bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Renders this histogram as Prometheus `histogram` sample lines with
    /// cumulative `_bucket{le=...}` counts (upper edges in **seconds**, per
    /// Prometheus convention), plus `_sum` and `_count`.
    pub fn render_prometheus(&self, name: &str, out: &mut String) {
        let counts = self.bucket_counts();
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cumulative += c;
            if c == 0 && i + 1 < HISTOGRAM_BUCKETS {
                // Keep the exposition compact: emit only occupied buckets
                // (cumulative counts make skipped empties recoverable).
                continue;
            }
            let le_seconds = (1u64 << (i + 1).min(63)) as f64 / 1e6;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{le_seconds}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", self.count()));
        out.push_str(&format!("{name}_sum {}\n", self.total_us() as f64 / 1e6));
        out.push_str(&format!("{name}_count {}\n", self.count()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 0);
        assert_eq!(LogHistogram::bucket_of(2), 1);
        assert_eq!(LogHistogram::bucket_of(3), 1);
        assert_eq!(LogHistogram::bucket_of(1024), 10);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn percentiles_and_mean() {
        let h = LogHistogram::new();
        for us in [1u64, 2, 4, 8, 1000] {
            h.record(us);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.total_us(), 1015);
        assert_eq!(h.mean_us(), 203);
        // p50 rank=3 lands in the bucket of 4 -> upper edge 8.
        assert_eq!(h.percentile_us(50.0), 8);
        assert!(h.percentile_us(99.0) >= 1024);
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        let h = LogHistogram::new();
        h.record(1);
        h.record(3);
        h.record(3);
        let mut out = String::new();
        h.render_prometheus("ms_test_seconds", &mut out);
        assert!(out.contains("ms_test_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("ms_test_seconds_count 3"));
        // The le="4" bucket (observations < 4 µs, i.e. all three) is
        // cumulative.
        assert!(out.contains("ms_test_seconds_bucket{le=\"0.000004\"} 3"));
    }
}
