//! A structured slow-query log: JSON lines for queries whose end-to-end
//! latency crosses a configurable threshold.
//!
//! Each entry is one line of JSON with the statement, its wall time, and
//! its counters — greppable, tailable, and parseable without a JSON
//! dependency on the write side (the values are numbers and one escaped
//! string).

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A threshold-gated JSON-lines query log.
///
/// The default sink is stderr; tests and embedders can substitute any
/// `Write + Send` sink. Writes are serialized by a mutex — slow queries
/// are rare by definition, so the lock is uncontended in practice.
pub struct SlowQueryLog {
    threshold_us: AtomicU64,
    sink: Mutex<Box<dyn Write + Send>>,
    logged: AtomicU64,
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowQueryLog")
            .field("threshold_us", &self.threshold_us.load(Ordering::Relaxed))
            .field("logged", &self.logged.load(Ordering::Relaxed))
            .finish()
    }
}

impl SlowQueryLog {
    /// A log writing to stderr with the given threshold; `None` disables
    /// logging.
    pub fn stderr(threshold: Option<Duration>) -> Self {
        Self::with_sink(threshold, Box::new(std::io::stderr()))
    }

    /// A log writing to an arbitrary sink.
    pub fn with_sink(threshold: Option<Duration>, sink: Box<dyn Write + Send>) -> Self {
        Self {
            threshold_us: AtomicU64::new(threshold_to_us(threshold)),
            sink: Mutex::new(sink),
            logged: AtomicU64::new(0),
        }
    }

    /// Reconfigures the threshold (`None` disables).
    pub fn set_threshold(&self, threshold: Option<Duration>) {
        self.threshold_us
            .store(threshold_to_us(threshold), Ordering::Relaxed);
    }

    /// Number of entries written so far.
    pub fn logged(&self) -> u64 {
        self.logged.load(Ordering::Relaxed)
    }

    /// Whether an entry with this wall time would be written. Lets callers
    /// skip assembling expensive entry fields (e.g. a plan signature) for
    /// the fast-query common case.
    pub fn would_log(&self, wall: Duration) -> bool {
        let threshold = self.threshold_us.load(Ordering::Relaxed);
        threshold != u64::MAX && wall.as_micros() as u64 >= threshold
    }

    /// Logs `statement` if `wall` crosses the threshold. `counters` are
    /// emitted as a nested object of integers. Returns `true` if an entry
    /// was written.
    pub fn observe(&self, statement: &str, wall: Duration, counters: &[(&str, u64)]) -> bool {
        self.observe_with_plan(statement, None, wall, counters)
    }

    /// [`SlowQueryLog::observe`] with an optional planner signature, emitted
    /// as a `"plan"` string field so operators can see which strategies the
    /// planner chose for the slow statement.
    pub fn observe_with_plan(
        &self,
        statement: &str,
        plan: Option<&str>,
        wall: Duration,
        counters: &[(&str, u64)],
    ) -> bool {
        let threshold = self.threshold_us.load(Ordering::Relaxed);
        let wall_us = wall.as_micros() as u64;
        if threshold == u64::MAX || wall_us < threshold {
            return false;
        }
        let mut line = format!(
            "{{\"slow_query\":true,\"wall_us\":{wall_us},\"threshold_us\":{threshold},\
             \"statement\":\"{}\",",
            escape_json(statement)
        );
        if let Some(plan) = plan {
            line.push_str(&format!("\"plan\":\"{}\",", escape_json(plan)));
        }
        line.push_str("\"counters\":{");
        for (i, (key, value)) in counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":{value}", escape_json(key)));
        }
        line.push_str("}}\n");
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if sink.write_all(line.as_bytes()).is_ok() {
            let _ = sink.flush();
            self.logged.fetch_add(1, Ordering::Relaxed);
            crate::counters::incr(&crate::counters::SLOW_QUERIES);
            true
        } else {
            false
        }
    }
}

fn threshold_to_us(threshold: Option<Duration>) -> u64 {
    match threshold {
        // `u64::MAX` sentinel = disabled (no real query waits 580k years).
        None => u64::MAX,
        Some(d) => (d.as_micros() as u64).min(u64::MAX - 1),
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A sink tests can read back.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn entries_are_json_lines_above_the_threshold() {
        let buf = SharedBuf::default();
        let log = SlowQueryLog::with_sink(Some(Duration::from_micros(100)), Box::new(buf.clone()));
        assert!(!log.observe("SELECT 1", Duration::from_micros(50), &[]));
        assert!(log.observe(
            "SELECT \"q\"",
            Duration::from_micros(150),
            &[("candidates", 10), ("loaded", 2)],
        ));
        assert_eq!(log.logged(), 1);
        let bytes = buf.0.lock().unwrap().clone();
        let line = String::from_utf8(bytes).unwrap();
        assert!(line.ends_with("}}\n"));
        assert!(line.contains("\"wall_us\":150"));
        assert!(line.contains("\"statement\":\"SELECT \\\"q\\\"\""));
        assert!(line.contains("\"candidates\":10,\"loaded\":2"));
    }

    #[test]
    fn disabled_log_never_writes() {
        let buf = SharedBuf::default();
        let log = SlowQueryLog::with_sink(None, Box::new(buf.clone()));
        assert!(!log.observe("SELECT 1", Duration::from_secs(10), &[]));
        assert!(buf.0.lock().unwrap().is_empty());
    }

    #[test]
    fn json_escaping_covers_control_characters() {
        assert_eq!(
            escape_json("a\"b\\c\nd\te\u{1}"),
            "a\\\"b\\\\c\\nd\\te\\u0001"
        );
    }
}
