//! Hierarchical spans on a thread-local stack.
//!
//! A *trace* is started explicitly (by the engine around one query, or by a
//! test); *spans* opened while a trace is active on the same thread nest
//! under it. When no trace is active, [`span`] returns an inert guard after
//! a single thread-local read — instrumentation points stay in the code
//! permanently and cost effectively nothing when nobody is looking.
//!
//! Counters attach to the innermost open span via [`add_counter`] /
//! [`set_counter`], so a stage can report how much work it did (masks
//! loaded, tiles pruned) next to how long it took.

use std::cell::RefCell;
use std::time::Instant;

/// One node of a finished trace: a named span with its wall time, counters,
/// and child spans in open order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (e.g. `query`, `filter.bounds`, `verify`).
    pub name: String,
    /// Wall-clock duration in microseconds.
    pub wall_us: u64,
    /// Typed counters recorded while the span was innermost, in first-set
    /// order.
    pub counters: Vec<(String, u64)>,
    /// Child spans, in the order they were opened.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            wall_us: 0,
            counters: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Finds the first descendant (depth-first, including `self`) with the
    /// given name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Renders the tree as indented text lines, two spaces per level:
    ///
    /// ```text
    /// query wall_us=1234 candidates=100
    ///   filter.bounds wall_us=200 pruned=90
    ///   verify wall_us=900 loaded=10
    /// ```
    pub fn render(&self) -> Vec<String> {
        let mut lines = Vec::new();
        self.render_into(0, &mut lines);
        lines
    }

    fn render_into(&self, depth: usize, lines: &mut Vec<String>) {
        let mut line = format!(
            "{}{} wall_us={}",
            "  ".repeat(depth),
            self.name,
            self.wall_us
        );
        for (k, v) in &self.counters {
            line.push_str(&format!(" {k}={v}"));
        }
        lines.push(line);
        for child in &self.children {
            child.render_into(depth + 1, lines);
        }
    }
}

/// One open span on the stack.
struct OpenSpan {
    node: SpanNode,
    started: Instant,
}

struct TraceState {
    /// Innermost-last stack of open spans; index 0 is the trace root.
    stack: Vec<OpenSpan>,
    /// The finished root, once the trace guard closes.
    finished: Option<SpanNode>,
}

thread_local! {
    static ACTIVE: RefCell<Option<TraceState>> = const { RefCell::new(None) };
}

/// Returns `true` if a trace is active on this thread (i.e. spans and
/// counters are being recorded).
pub fn trace_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Starts a trace rooted at a span named `name` on the current thread.
///
/// The returned guard ends the trace when dropped; call
/// [`TraceGuard::finish`] to take the completed span tree. Starting a trace
/// while one is already active returns an inert guard (the outer trace keeps
/// recording) — nested *traces* do not exist, only nested spans.
pub fn trace(name: &str) -> TraceGuard {
    ACTIVE.with(|a| {
        let mut active = a.borrow_mut();
        if active.is_some() {
            return TraceGuard { owned: false };
        }
        *active = Some(TraceState {
            stack: vec![OpenSpan {
                node: SpanNode::new(name),
                started: Instant::now(),
            }],
            finished: None,
        });
        TraceGuard { owned: true }
    })
}

/// Opens a span named `name` under the innermost open span, if a trace is
/// active on this thread; otherwise returns an inert guard. The span closes
/// (and records its wall time) when the guard drops.
pub fn span(name: &str) -> SpanGuard {
    ACTIVE.with(|a| {
        let mut active = a.borrow_mut();
        let Some(state) = active.as_mut() else {
            return SpanGuard { open: false };
        };
        state.stack.push(OpenSpan {
            node: SpanNode::new(name),
            started: Instant::now(),
        });
        SpanGuard { open: true }
    })
}

/// Adds `delta` to the counter `name` on the innermost open span. A no-op
/// when no trace is active.
pub fn add_counter(name: &str, delta: u64) {
    if delta == 0 {
        return;
    }
    with_innermost(|node| {
        if let Some(entry) = node.counters.iter_mut().find(|(k, _)| k == name) {
            entry.1 += delta;
        } else {
            node.counters.push((name.to_string(), delta));
        }
    });
}

/// Sets the counter `name` on the innermost open span to `value`
/// (overwriting any prior value). A no-op when no trace is active.
pub fn set_counter(name: &str, value: u64) {
    with_innermost(|node| {
        if let Some(entry) = node.counters.iter_mut().find(|(k, _)| k == name) {
            entry.1 = value;
        } else {
            node.counters.push((name.to_string(), value));
        }
    });
}

fn with_innermost(f: impl FnOnce(&mut SpanNode)) {
    ACTIVE.with(|a| {
        let mut active = a.borrow_mut();
        if let Some(state) = active.as_mut() {
            if let Some(open) = state.stack.last_mut() {
                f(&mut open.node);
            }
        }
    });
}

/// Guard for an open span; closes the span on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    open: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.open {
            return;
        }
        ACTIVE.with(|a| {
            let mut active = a.borrow_mut();
            let Some(state) = active.as_mut() else {
                return;
            };
            // The root (index 0) belongs to the trace guard; a span guard
            // never pops it even if drops are mismatched.
            if state.stack.len() <= 1 {
                return;
            }
            let mut done = state.stack.pop().expect("stack len checked above");
            done.node.wall_us = done.started.elapsed().as_micros() as u64;
            state
                .stack
                .last_mut()
                .expect("root remains")
                .node
                .children
                .push(done.node);
        });
    }
}

/// Guard for an active trace; ends the trace on drop.
#[must_use = "dropping the guard immediately ends the trace"]
pub struct TraceGuard {
    owned: bool,
}

impl TraceGuard {
    /// Ends the trace and returns the completed span tree. Returns `None`
    /// for an inert guard (a trace was already active when this one was
    /// requested).
    pub fn finish(mut self) -> Option<SpanNode> {
        if !self.owned {
            return None; // inert guard: the outer trace keeps its state
        }
        self.close();
        ACTIVE.with(|a| a.borrow_mut().take().and_then(|s| s.finished))
    }

    fn close(&mut self) {
        if !self.owned {
            return;
        }
        self.owned = false;
        ACTIVE.with(|a| {
            let mut active = a.borrow_mut();
            let Some(state) = active.as_mut() else {
                return;
            };
            // Close any spans left open (e.g. by an early return) inward-out.
            while state.stack.len() > 1 {
                let mut done = state.stack.pop().expect("len > 1");
                done.node.wall_us = done.started.elapsed().as_micros() as u64;
                state
                    .stack
                    .last_mut()
                    .expect("root remains")
                    .node
                    .children
                    .push(done.node);
            }
            let mut root = state.stack.pop().expect("trace root");
            root.node.wall_us = root.started.elapsed().as_micros() as u64;
            state.finished = Some(root.node);
        });
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.owned {
            self.close();
            ACTIVE.with(|a| {
                a.borrow_mut().take();
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_under_the_trace_root() {
        let t = trace("query");
        {
            let _bounds = span("filter.bounds");
            add_counter("pruned", 7);
            add_counter("pruned", 3);
        }
        {
            let _verify = span("verify");
            set_counter("loaded", 2);
            let _inner = span("mask.load");
        }
        let root = t.finish().expect("owned trace finishes");
        assert_eq!(root.name, "query");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "filter.bounds");
        assert_eq!(root.children[0].counter("pruned"), Some(10));
        assert_eq!(root.children[1].name, "verify");
        assert_eq!(root.children[1].counter("loaded"), Some(2));
        assert_eq!(root.children[1].children[0].name, "mask.load");
        assert!(root.find("mask.load").is_some());
    }

    #[test]
    fn spans_without_a_trace_are_inert() {
        assert!(!trace_active());
        {
            let _s = span("orphan");
            add_counter("ignored", 1);
        }
        assert!(!trace_active());
    }

    #[test]
    fn nested_traces_do_not_steal_the_stack() {
        let outer = trace("outer");
        let inner = trace("inner");
        assert!(inner.finish().is_none());
        // The outer trace is still active and finishes normally.
        assert!(trace_active());
        let root = outer.finish().expect("outer finishes");
        assert_eq!(root.name, "outer");
        assert!(!trace_active());
    }

    #[test]
    fn unbalanced_spans_are_closed_by_finish() {
        let t = trace("query");
        let _leak = span("left.open");
        let root = t.finish().expect("trace finishes");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "left.open");
        // `_leak` drops after the trace ended: must be a silent no-op.
    }

    #[test]
    fn render_produces_indented_lines() {
        let t = trace("query");
        {
            let _s = span("stage");
            add_counter("n", 5);
        }
        let root = t.finish().unwrap();
        let lines = root.render();
        assert!(lines[0].starts_with("query wall_us="));
        assert!(lines[1].starts_with("  stage wall_us="));
        assert!(lines[1].ends_with("n=5"));
    }

    #[test]
    fn drop_without_finish_clears_the_thread_state() {
        {
            let _t = trace("dropped");
            let _s = span("child");
        }
        assert!(!trace_active());
    }
}
