//! Windowed time-series metrics: fixed-width per-second buckets in bounded
//! rings over query completions and the global counter registry.
//!
//! Cumulative counters answer "how much since the server started"; they
//! cannot localize behaviour in time. This module keeps short histories in
//! bounded rings — by default one second of resolution for the last five
//! minutes and ten seconds of resolution for the last hour — so an operator
//! can ask "what was the p99 over the last 30 s" or "when did the catalog
//! lock waits spike" without any external scrape infrastructure.
//!
//! The rings are event-driven: buckets advance when observations arrive, so
//! there is no background thread. Each bucket lazily captures a snapshot of
//! the [`crate::counters`] registry at its first observation, which lets a
//! window report *deltas* of the global counters (lock waits, kernel calls,
//! WAL commits) over its span.

use crate::counters;
use crate::histogram::HISTOGRAM_BUCKETS;
use std::sync::Mutex;
use std::time::Instant;

/// Per-query stage counters carried into a time-series observation.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageCounts {
    /// Candidate masks considered by the filter stage.
    pub candidates: u64,
    /// Candidates pruned by CHI bounds without loading.
    pub pruned: u64,
    /// Candidates that required pixel-level verification.
    pub verified: u64,
    /// Masks loaded from the store.
    pub loaded: u64,
}

#[derive(Debug, Clone)]
struct Bucket {
    /// Bucket number since the epoch (`elapsed_secs / width_s`);
    /// `u64::MAX` marks a slot that has never been written.
    index: u64,
    queries: u64,
    failed: u64,
    total_us: u64,
    latency: [u64; HISTOGRAM_BUCKETS],
    stages: StageCounts,
    /// Global-counter values (declaration order) captured at the first
    /// observation that landed in this bucket.
    counters_at_start: Option<Vec<u64>>,
}

impl Bucket {
    fn empty() -> Self {
        Self {
            index: u64::MAX,
            queries: 0,
            failed: 0,
            total_us: 0,
            latency: [0; HISTOGRAM_BUCKETS],
            stages: StageCounts::default(),
            counters_at_start: None,
        }
    }

    fn reset(&mut self, index: u64) {
        *self = Self::empty();
        self.index = index;
    }
}

#[derive(Debug)]
struct Ring {
    width_s: u64,
    buckets: Vec<Bucket>,
}

impl Ring {
    fn span_s(&self) -> u64 {
        self.width_s * self.buckets.len() as u64
    }

    fn slot_for(&mut self, at_s: u64) -> &mut Bucket {
        let index = at_s / self.width_s;
        let slot = (index % self.buckets.len() as u64) as usize;
        let bucket = &mut self.buckets[slot];
        if bucket.index != index {
            bucket.reset(index);
        }
        bucket
    }
}

/// Summary of activity over one time window, produced by
/// [`TimeSeries::window`].
#[derive(Debug, Clone)]
pub struct WindowSummary {
    /// The window actually summarized in seconds (the request is clamped to
    /// the longest ring span).
    pub window_s: u64,
    /// Width of the ring buckets the summary was computed from.
    pub bucket_s: u64,
    /// Statements observed in the window.
    pub queries: u64,
    /// Statements that failed.
    pub failed: u64,
    /// Observed rate over the window (`queries / window_s`).
    pub qps: f64,
    /// Upper-bound p50 wall time in microseconds (log₂ bucket edge).
    pub p50_us: u64,
    /// Upper-bound p99 wall time in microseconds.
    pub p99_us: u64,
    /// Mean wall time in microseconds.
    pub mean_us: u64,
    /// Stage counters summed over the window.
    pub stages: StageCounts,
    /// Global-counter deltas over the window, in [`counters::snapshot`]
    /// order: current value minus the value captured at the start of the
    /// oldest populated bucket in the window.
    pub counter_deltas: Vec<(&'static str, u64)>,
}

impl WindowSummary {
    /// Delta of one global counter over the window (0 when absent).
    pub fn counter_delta(&self, name: &str) -> u64 {
        self.counter_deltas
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

/// Bounded rings of fixed-width time buckets over query completions.
#[derive(Debug)]
pub struct TimeSeries {
    epoch: Instant,
    rings: Mutex<Vec<Ring>>,
}

impl Default for TimeSeries {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSeries {
    /// Default geometry: 1 s × 300 buckets (5 minutes at second resolution)
    /// and 10 s × 360 buckets (one hour at coarse resolution).
    pub fn new() -> Self {
        Self::with_rings(&[(1, 300), (10, 360)])
    }

    /// A time series with explicit `(bucket_width_s, num_buckets)` rings.
    /// Rings must be sorted by increasing width; zero-width or empty rings
    /// are ignored.
    pub fn with_rings(rings: &[(u64, usize)]) -> Self {
        let rings = rings
            .iter()
            .filter(|(w, n)| *w > 0 && *n > 0)
            .map(|&(width_s, n)| Ring {
                width_s,
                buckets: vec![Bucket::empty(); n],
            })
            .collect();
        Self {
            epoch: Instant::now(),
            rings: Mutex::new(rings),
        }
    }

    /// Seconds elapsed since this series was created.
    pub fn elapsed_s(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Records one completed statement at the current time.
    pub fn observe(&self, wall_us: u64, ok: bool, stages: StageCounts) {
        self.observe_at(self.epoch.elapsed().as_micros() as u64, wall_us, ok, stages);
    }

    /// Records one completed statement at an explicit time offset from the
    /// epoch (used by tests for determinism).
    pub fn observe_at(&self, at_us: u64, wall_us: u64, ok: bool, stages: StageCounts) {
        let at_s = at_us / 1_000_000;
        let snap = counters::snapshot();
        let mut rings = self.rings.lock().unwrap();
        for ring in rings.iter_mut() {
            let bucket = ring.slot_for(at_s);
            if bucket.counters_at_start.is_none() {
                bucket.counters_at_start = Some(snap.iter().map(|(_, v)| *v).collect());
            }
            bucket.queries += 1;
            if !ok {
                bucket.failed += 1;
            }
            bucket.total_us += wall_us;
            bucket.latency[log2_bucket(wall_us)] += 1;
            bucket.stages.candidates += stages.candidates;
            bucket.stages.pruned += stages.pruned;
            bucket.stages.verified += stages.verified;
            bucket.stages.loaded += stages.loaded;
        }
    }

    /// Summarizes the last `secs` seconds ending now.
    pub fn window(&self, secs: u64) -> WindowSummary {
        self.window_at(self.epoch.elapsed().as_micros() as u64, secs)
    }

    /// Summarizes the last `secs` seconds ending at an explicit time offset
    /// from the epoch.
    pub fn window_at(&self, now_us: u64, secs: u64) -> WindowSummary {
        let now_s = now_us / 1_000_000;
        let rings = self.rings.lock().unwrap();
        // The finest ring whose span covers the request; fall back to the
        // coarsest ring (clamping the window to its span).
        let ring = rings
            .iter()
            .find(|r| r.span_s() >= secs)
            .or_else(|| rings.last())
            .expect("TimeSeries has at least one ring");
        let secs = secs.clamp(ring.width_s, ring.span_s());
        let newest = now_s / ring.width_s;
        let needed = secs.div_ceil(ring.width_s);
        let oldest = newest.saturating_sub(needed - 1);

        let mut queries = 0u64;
        let mut failed = 0u64;
        let mut total_us = 0u64;
        let mut latency = [0u64; HISTOGRAM_BUCKETS];
        let mut stages = StageCounts::default();
        let mut earliest: Option<(u64, &Vec<u64>)> = None;
        for bucket in &ring.buckets {
            if bucket.index < oldest || bucket.index > newest {
                continue;
            }
            queries += bucket.queries;
            failed += bucket.failed;
            total_us += bucket.total_us;
            for (acc, c) in latency.iter_mut().zip(bucket.latency.iter()) {
                *acc += c;
            }
            stages.candidates += bucket.stages.candidates;
            stages.pruned += bucket.stages.pruned;
            stages.verified += bucket.stages.verified;
            stages.loaded += bucket.stages.loaded;
            if let Some(start) = &bucket.counters_at_start {
                if earliest.is_none_or(|(i, _)| bucket.index < i) {
                    earliest = Some((bucket.index, start));
                }
            }
        }

        let current = counters::snapshot();
        let counter_deltas = match earliest {
            Some((_, start)) => current
                .iter()
                .enumerate()
                .map(|(i, (name, v))| (*name, v.saturating_sub(start.get(i).copied().unwrap_or(0))))
                .collect(),
            None => current.iter().map(|(name, _)| (*name, 0)).collect(),
        };

        WindowSummary {
            window_s: secs,
            bucket_s: ring.width_s,
            queries,
            failed,
            qps: queries as f64 / secs as f64,
            p50_us: percentile_from_buckets(&latency, 50.0),
            p99_us: percentile_from_buckets(&latency, 99.0),
            mean_us: total_us.checked_div(queries).unwrap_or(0),
            stages,
            counter_deltas,
        }
    }

    /// Renders window summaries for each requested span as Prometheus gauge
    /// samples labelled by `window_s`, appended to `out`. Emits one `# TYPE`
    /// header per metric family.
    pub fn render_prometheus(&self, windows: &[u64], out: &mut String) {
        let summaries: Vec<WindowSummary> = windows.iter().map(|&w| self.window(w)).collect();
        self.render_summaries(&summaries, out);
    }

    /// Renders pre-computed window summaries as Prometheus gauges (split out
    /// so tests can render deterministic `window_at` results).
    pub fn render_summaries(&self, summaries: &[WindowSummary], out: &mut String) {
        let gauge = |out: &mut String, name: &str, f: &dyn Fn(&WindowSummary) -> f64| {
            out.push_str(&format!("# TYPE masksearch_window_{name} gauge\n"));
            for s in summaries {
                out.push_str(&format!(
                    "masksearch_window_{name}{{window_s=\"{}\"}} {}\n",
                    s.window_s,
                    f(s)
                ));
            }
        };
        gauge(out, "queries", &|s| s.queries as f64);
        gauge(out, "failed", &|s| s.failed as f64);
        gauge(out, "qps", &|s| s.qps);
        gauge(out, "p50_us", &|s| s.p50_us as f64);
        gauge(out, "p99_us", &|s| s.p99_us as f64);
        gauge(out, "mean_us", &|s| s.mean_us as f64);
        gauge(out, "candidates", &|s| s.stages.candidates as f64);
        gauge(out, "pruned", &|s| s.stages.pruned as f64);
        gauge(out, "verified", &|s| s.stages.verified as f64);
        gauge(out, "loaded", &|s| s.stages.loaded as f64);
        out.push_str("# TYPE masksearch_window_counter_delta gauge\n");
        for s in summaries {
            for (name, delta) in &s.counter_deltas {
                out.push_str(&format!(
                    "masksearch_window_counter_delta{{window_s=\"{}\",counter=\"{name}\"}} {delta}\n",
                    s.window_s
                ));
            }
        }
    }
}

/// Log₂ bucket index for a microsecond value; mirrors
/// [`crate::LogHistogram`] so percentiles stay comparable across surfaces.
fn log2_bucket(micros: u64) -> usize {
    if micros == 0 {
        0
    } else {
        ((64 - micros.leading_zeros()) as usize - 1).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Upper-bound percentile (exclusive upper bucket edge) from raw log₂
/// bucket counts; 0 when empty.
fn percentile_from_buckets(counts: &[u64; HISTOGRAM_BUCKETS], p: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return 1u64 << (i + 1).min(63);
        }
    }
    1u64 << HISTOGRAM_BUCKETS
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000;

    fn stages(candidates: u64, loaded: u64) -> StageCounts {
        StageCounts {
            candidates,
            pruned: candidates.saturating_sub(loaded),
            verified: loaded,
            loaded,
        }
    }

    #[test]
    fn window_sums_only_buckets_in_range() {
        let ts = TimeSeries::with_rings(&[(1, 10)]);
        ts.observe_at(0, 100, true, stages(10, 2));
        ts.observe_at(S, 200, true, stages(10, 2));
        ts.observe_at(5 * S, 400, false, stages(4, 4));
        // Window of 2 s ending at t=5s covers buckets 4..=5: one query.
        let w = ts.window_at(5 * S, 2);
        assert_eq!(w.queries, 1);
        assert_eq!(w.failed, 1);
        assert_eq!(w.stages.loaded, 4);
        // Window of 10 s sees all three.
        let w = ts.window_at(5 * S, 10);
        assert_eq!(w.queries, 3);
        assert_eq!(w.failed, 1);
        assert_eq!(w.stages.candidates, 24);
        assert_eq!(w.mean_us, (100 + 200 + 400) / 3);
    }

    #[test]
    fn ring_wraps_and_forgets_old_buckets() {
        let ts = TimeSeries::with_rings(&[(1, 4)]);
        ts.observe_at(0, 100, true, StageCounts::default());
        // 6 s later the t=0 bucket has been overwritten (ring of 4).
        ts.observe_at(6 * S, 100, true, StageCounts::default());
        let w = ts.window_at(6 * S, 4);
        assert_eq!(w.queries, 1);
    }

    #[test]
    fn falls_back_to_coarse_ring_for_long_windows() {
        let ts = TimeSeries::with_rings(&[(1, 5), (10, 6)]);
        ts.observe_at(0, 100, true, StageCounts::default());
        ts.observe_at(30 * S, 100, true, StageCounts::default());
        // 60 s exceeds the fine ring's 5 s span; the 10 s ring serves it.
        let w = ts.window_at(30 * S, 60);
        assert_eq!(w.bucket_s, 10);
        assert_eq!(w.window_s, 60);
        assert_eq!(w.queries, 2);
        // 3 s is served by the fine ring and only sees the recent query.
        let w = ts.window_at(30 * S, 3);
        assert_eq!(w.bucket_s, 1);
        assert_eq!(w.queries, 1);
    }

    #[test]
    fn percentiles_use_log2_edges() {
        let ts = TimeSeries::with_rings(&[(1, 10)]);
        for wall in [1u64, 2, 4, 8, 1000] {
            ts.observe_at(0, wall, true, StageCounts::default());
        }
        let w = ts.window_at(0, 5);
        assert_eq!(w.p50_us, 8);
        assert!(w.p99_us >= 1024);
        assert_eq!(w.mean_us, 203);
    }

    #[test]
    fn counter_deltas_cover_the_window() {
        let ts = TimeSeries::with_rings(&[(1, 10)]);
        ts.observe_at(0, 100, true, StageCounts::default());
        crate::counters::add(&crate::counters::KERNEL_CALLS, 7);
        ts.observe_at(2 * S, 100, true, StageCounts::default());
        let w = ts.window_at(2 * S, 5);
        // Other tests in the process may bump the counter concurrently, so
        // assert a lower bound only.
        assert!(w.counter_delta("kernel_calls") >= 7);
        assert_eq!(w.counter_delta("no_such_counter"), 0);
    }

    #[test]
    fn prometheus_rendering_validates() {
        let ts = TimeSeries::new();
        ts.observe(123, true, stages(10, 3));
        let mut out = String::new();
        ts.render_prometheus(&[60, 300], &mut out);
        assert!(out.contains("masksearch_window_qps{window_s=\"60\"}"));
        assert!(out.contains("counter=\"catalog_write_wait_us\""));
        crate::prom::validate(&out).expect("window gauges validate");
    }
}
