//! The query flight recorder: bounded, checksummed capture of every
//! executed statement to a binary log that a replay harness can re-execute.
//!
//! The recording is the substrate for workload-faithful regression testing:
//! a perf PR replays a captured production mix and compares per-shape
//! latencies instead of trusting synthetic benchmarks. The format is
//! append-only and WAL-like — a text magic line, then length-prefixed
//! frames each guarded by an FNV-1a checksum. Readers stop at the first
//! frame that fails validation, so a torn tail (crash mid-write) loses at
//! most the last statement, never the recording.
//!
//! Recording is controlled over the wire (`RECORD START/STOP/STATUS`) or by
//! service configuration; when inactive the capture path is a single
//! relaxed atomic load.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// First line of every recording file; version-bumps on format changes.
pub const RECORDER_MAGIC: &str = "masksearch-flight v1\n";

/// Upper bound on a single frame's payload; anything larger is treated as
/// corruption by the reader.
const MAX_FRAME_BYTES: usize = 16 << 20;

/// FNV-1a 64-bit hash of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Streaming FNV-1a 64-bit hasher, used for both frame checksums and the
/// response digests stored in recordings.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// How a recorded statement entered the service, which tells the replay
/// harness how to re-issue it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// A plain SQL statement (`execute_statement` / the wire SQL path).
    Statement = 0,
    /// A token-wrapped mutation (`TOKEN <t> <sql>`); replay issues a fresh
    /// token so dedup does not swallow the re-execution.
    Tokened = 1,
    /// An early-termination query (`PARTIAL K=<k> <sql>`); `aux` holds `k`.
    Partial = 2,
}

impl RecordKind {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Self::Statement),
            1 => Some(Self::Tokened),
            2 => Some(Self::Partial),
            _ => None,
        }
    }
}

/// One captured statement execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedQuery {
    /// Microseconds since the engine started when the statement arrived.
    pub arrival_us: u64,
    /// Server-side wall time in microseconds.
    pub wall_us: u64,
    /// How the statement entered the service.
    pub kind: RecordKind,
    /// Whether execution succeeded.
    pub ok: bool,
    /// Result rows returned (0 for mutations and errors).
    pub rows: u64,
    /// Kind-specific extra value (`k` for [`RecordKind::Partial`]).
    pub aux: u64,
    /// Stage counters: candidates, pruned, verified, loaded, inserted,
    /// deleted.
    pub counters: [u64; 6],
    /// FNV-1a digest of the response frame with wall time excluded; replay
    /// compares this against the digest of the re-executed response.
    pub digest: u64,
    /// Query shape key (or a synthetic label such as `insert` / `error`).
    pub shape: String,
    /// The statement text as received.
    pub sql: String,
}

impl RecordedQuery {
    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(96 + self.shape.len() + self.sql.len());
        p.extend_from_slice(&self.arrival_us.to_le_bytes());
        p.extend_from_slice(&self.wall_us.to_le_bytes());
        p.extend_from_slice(&self.rows.to_le_bytes());
        p.extend_from_slice(&self.aux.to_le_bytes());
        p.extend_from_slice(&self.digest.to_le_bytes());
        for c in &self.counters {
            p.extend_from_slice(&c.to_le_bytes());
        }
        p.push(self.kind as u8);
        p.push(u8::from(self.ok));
        p.extend_from_slice(&(self.shape.len() as u32).to_le_bytes());
        p.extend_from_slice(self.shape.as_bytes());
        p.extend_from_slice(&(self.sql.len() as u32).to_le_bytes());
        p.extend_from_slice(self.sql.as_bytes());
        p
    }

    fn decode(payload: &[u8]) -> Option<Self> {
        let mut at = 0usize;
        let u64_at = |at: &mut usize| -> Option<u64> {
            let v = u64::from_le_bytes(payload.get(*at..*at + 8)?.try_into().ok()?);
            *at += 8;
            Some(v)
        };
        let arrival_us = u64_at(&mut at)?;
        let wall_us = u64_at(&mut at)?;
        let rows = u64_at(&mut at)?;
        let aux = u64_at(&mut at)?;
        let digest = u64_at(&mut at)?;
        let mut counters = [0u64; 6];
        for c in &mut counters {
            *c = u64_at(&mut at)?;
        }
        let kind = RecordKind::from_u8(*payload.get(at)?)?;
        let ok = match *payload.get(at + 1)? {
            0 => false,
            1 => true,
            _ => return None,
        };
        at += 2;
        let string_at = |at: &mut usize| -> Option<String> {
            let len = u32::from_le_bytes(payload.get(*at..*at + 4)?.try_into().ok()?) as usize;
            *at += 4;
            let s = String::from_utf8(payload.get(*at..*at + len)?.to_vec()).ok()?;
            *at += len;
            Some(s)
        };
        let shape = string_at(&mut at)?;
        let sql = string_at(&mut at)?;
        if at != payload.len() {
            return None;
        }
        Some(Self {
            arrival_us,
            wall_us,
            kind,
            ok,
            rows,
            aux,
            counters,
            digest,
            shape,
            sql,
        })
    }
}

/// Point-in-time recorder state, the payload of `RECORD STATUS`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderStatus {
    /// Whether a sink is currently attached.
    pub active: bool,
    /// Path of the current (or most recent) recording file.
    pub path: Option<PathBuf>,
    /// Frames written since this process last called `start`.
    pub records: u64,
    /// Total bytes in the recording file (including appended-to history).
    pub bytes: u64,
    /// Frames dropped because the byte budget was exhausted.
    pub dropped: u64,
}

#[derive(Debug)]
struct Inner {
    writer: Option<BufWriter<File>>,
    path: Option<PathBuf>,
    budget: u64,
}

/// A bounded flight recorder writing checksummed frames to a file.
///
/// `record` is safe to call from any thread; when recording is inactive it
/// is one relaxed atomic load.
#[derive(Debug)]
pub struct FlightRecorder {
    active: AtomicBool,
    records: AtomicU64,
    bytes: AtomicU64,
    dropped: AtomicU64,
    inner: Mutex<Inner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// An inactive recorder with no sink.
    pub fn new() -> Self {
        Self {
            active: AtomicBool::new(false),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                writer: None,
                path: None,
                budget: u64::MAX,
            }),
        }
    }

    /// Whether a sink is attached (the capture fast-path check).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Attaches a sink at `path` with a total byte budget. An existing
    /// recording is appended to (after its magic is verified), so a
    /// recording survives service restarts the way the shape-stats file
    /// does; a missing or empty file is initialized with the magic line.
    pub fn start(&self, path: &Path, budget: u64) -> io::Result<()> {
        let mut existing = 0u64;
        if let Ok(mut f) = File::open(path) {
            let mut head = vec![0u8; RECORDER_MAGIC.len()];
            match f.read_exact(&mut head) {
                Ok(()) if head == RECORDER_MAGIC.as_bytes() => {
                    existing = f.metadata()?.len();
                }
                Ok(()) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{} is not a masksearch recording", path.display()),
                    ));
                }
                // Shorter than the magic: treat as empty and rewrite.
                Err(_) => {}
            }
        }
        let mut inner = self.inner.lock().unwrap();
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if existing == 0 {
            file.set_len(0)?;
            file.write_all(RECORDER_MAGIC.as_bytes())?;
            existing = RECORDER_MAGIC.len() as u64;
        }
        inner.writer = Some(BufWriter::new(file));
        inner.path = Some(path.to_path_buf());
        inner.budget = budget;
        self.records.store(0, Ordering::Relaxed);
        self.bytes.store(existing, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        self.active.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Flushes and detaches the sink. Status counters and the path survive
    /// for a final `RECORD STATUS`.
    pub fn stop(&self) -> io::Result<()> {
        self.active.store(false, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        if let Some(mut w) = inner.writer.take() {
            w.flush()?;
        }
        Ok(())
    }

    /// Flushes buffered frames without detaching the sink.
    pub fn flush(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(w) = inner.writer.as_mut() {
            w.flush()?;
        }
        Ok(())
    }

    /// Current recorder state.
    pub fn status(&self) -> RecorderStatus {
        let inner = self.inner.lock().unwrap();
        RecorderStatus {
            active: self.active.load(Ordering::Relaxed),
            path: inner.path.clone(),
            records: self.records.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Captures one statement. No-op when inactive; frames past the byte
    /// budget are counted as dropped instead of growing the file.
    pub fn record(&self, query: &RecordedQuery) {
        if !self.is_active() {
            return;
        }
        let payload = query.encode();
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        let mut inner = self.inner.lock().unwrap();
        let budget = inner.budget;
        let Some(writer) = inner.writer.as_mut() else {
            return;
        };
        if self.bytes.load(Ordering::Relaxed) + frame.len() as u64 > budget {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if writer.write_all(&frame).is_ok() {
            self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
            self.records.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Reads a recording, validating the magic and every frame checksum.
/// Reading stops silently at the first torn or corrupt frame (WAL-style
/// tail tolerance); a missing or mislabeled file is an error.
pub fn read_recording(path: &Path) -> io::Result<Vec<RecordedQuery>> {
    let bytes = std::fs::read(path)?;
    let Some(body) = bytes.strip_prefix(RECORDER_MAGIC.as_bytes()) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} is not a masksearch recording", path.display()),
        ));
    };
    let mut records = Vec::new();
    let mut at = 0usize;
    while at + 12 <= body.len() {
        let len = u32::from_le_bytes(body[at..at + 4].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(body[at + 4..at + 12].try_into().unwrap());
        if len > MAX_FRAME_BYTES || at + 12 + len > body.len() {
            break;
        }
        let payload = &body[at + 12..at + 12 + len];
        if fnv1a(payload) != checksum {
            break;
        }
        let Some(record) = RecordedQuery::decode(payload) else {
            break;
        };
        records.push(record);
        at += 12 + len;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> RecordedQuery {
        RecordedQuery {
            arrival_us: i * 1000,
            wall_us: 42 + i,
            kind: RecordKind::Statement,
            ok: i.is_multiple_of(2),
            rows: i,
            aux: 0,
            counters: [i, i + 1, i + 2, i + 3, 0, 0],
            digest: 0xdead_beef ^ i,
            shape: format!("filter gt {i}"),
            sql: format!("SELECT mask_id FROM masks WHERE cp(mask) > {i}"),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ms-recorder-{tag}-{}.bin", std::process::id()))
    }

    #[test]
    fn round_trips_records() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let rec = FlightRecorder::new();
        assert!(!rec.is_active());
        rec.start(&path, u64::MAX).unwrap();
        for i in 0..5 {
            rec.record(&sample(i));
        }
        rec.stop().unwrap();
        let status = rec.status();
        assert!(!status.active);
        assert_eq!(status.records, 5);
        assert_eq!(status.dropped, 0);

        let back = read_recording(&path).unwrap();
        assert_eq!(back.len(), 5);
        for (i, r) in back.iter().enumerate() {
            assert_eq!(r, &sample(i as u64));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn restart_appends_to_existing_recording() {
        let path = temp_path("append");
        let _ = std::fs::remove_file(&path);
        let rec = FlightRecorder::new();
        rec.start(&path, u64::MAX).unwrap();
        rec.record(&sample(0));
        rec.stop().unwrap();

        let rec2 = FlightRecorder::new();
        rec2.start(&path, u64::MAX).unwrap();
        rec2.record(&sample(1));
        rec2.stop().unwrap();

        let back = read_recording(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1], sample(1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn byte_budget_drops_instead_of_growing() {
        let path = temp_path("budget");
        let _ = std::fs::remove_file(&path);
        let rec = FlightRecorder::new();
        // Room for the magic plus roughly one frame.
        rec.start(&path, 220).unwrap();
        rec.record(&sample(0));
        rec.record(&sample(1));
        rec.record(&sample(2));
        rec.stop().unwrap();
        let status = rec.status();
        assert!(status.records < 3);
        assert!(status.dropped >= 1);
        assert_eq!(read_recording(&path).unwrap().len() as u64, status.records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated_and_corrupt_frame_stops_reading() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let rec = FlightRecorder::new();
        rec.start(&path, u64::MAX).unwrap();
        rec.record(&sample(0));
        rec.record(&sample(1));
        rec.stop().unwrap();

        // Truncate mid-frame: only the first record survives.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert_eq!(read_recording(&path).unwrap().len(), 1);

        // Flip a payload byte of the first frame: reading stops at zero.
        let mut corrupt = bytes.clone();
        let at = RECORDER_MAGIC.len() + 20;
        corrupt[at] ^= 0xff;
        std::fs::write(&path, &corrupt).unwrap();
        assert_eq!(read_recording(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_file_is_rejected() {
        let path = temp_path("foreign");
        std::fs::write(
            &path,
            b"something else entirely, much longer than the magic",
        )
        .unwrap();
        assert!(read_recording(&path).is_err());
        let rec = FlightRecorder::new();
        assert!(rec.start(&path, u64::MAX).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
