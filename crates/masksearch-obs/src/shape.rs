//! Per-query-shape aggregate statistics.
//!
//! A query *shape* is a normalized description of a query's structure (kind,
//! number of CP terms, kernel on/off, ...) without its literal constants.
//! For each shape the registry accumulates the executor's observed counters
//! — how selective the predicate actually was, how decisive the CHI bounds
//! were, how the verification kernel's tiles classified — which is exactly
//! the substrate a cost-based planner needs: "for queries shaped like this,
//! bounds usually resolve 97% of candidates; don't bother reordering".
//!
//! The registry serializes to a versioned, line-oriented text format and is
//! persisted by the durable store at checkpoint, next to the CHI and tile
//! files, so the statistics survive restarts.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// The counters one executed query contributes to its shape's aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShapeObservation {
    /// Candidates considered by the filter stage.
    pub candidates: u64,
    /// Result rows produced.
    pub rows: u64,
    /// Candidates pruned by bounds alone.
    pub pruned: u64,
    /// Candidates accepted by bounds alone (no pixels loaded).
    pub accepted: u64,
    /// Candidates verified against pixels.
    pub verified: u64,
    /// Masks loaded from the store.
    pub masks_loaded: u64,
    /// Kernel tiles skipped entirely.
    pub tiles_pruned: u64,
    /// Kernel tiles answered from per-tile histograms.
    pub tiles_hist: u64,
    /// Kernel tiles scanned pixel-by-pixel.
    pub tiles_scanned: u64,
    /// Filter-stage wall time in microseconds.
    pub filter_wall_us: u64,
    /// Verification-stage wall time in microseconds.
    pub verify_wall_us: u64,
}

/// Accumulated statistics for one query shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShapeAggregate {
    /// Queries of this shape observed.
    pub queries: u64,
    /// Element-wise sums of every observation.
    pub sums: ShapeObservation,
}

impl ShapeAggregate {
    fn add(&mut self, o: &ShapeObservation) {
        self.queries += 1;
        let s = &mut self.sums;
        s.candidates += o.candidates;
        s.rows += o.rows;
        s.pruned += o.pruned;
        s.accepted += o.accepted;
        s.verified += o.verified;
        s.masks_loaded += o.masks_loaded;
        s.tiles_pruned += o.tiles_pruned;
        s.tiles_hist += o.tiles_hist;
        s.tiles_scanned += o.tiles_scanned;
        s.filter_wall_us += o.filter_wall_us;
        s.verify_wall_us += o.verify_wall_us;
    }

    /// Observed selectivity: result rows per candidate, in `[0, 1]`-ish
    /// (grouped queries can exceed 1 when groups outnumber candidates;
    /// callers treat this as a ratio, not a probability).
    pub fn observed_selectivity(&self) -> f64 {
        ratio(self.sums.rows, self.sums.candidates)
    }

    /// CHI decisiveness: fraction of candidates settled by bounds alone
    /// (pruned or accepted without loading pixels). This is the planner's
    /// "how often do the paper's bounds make the load unnecessary".
    pub fn chi_decisiveness(&self) -> f64 {
        ratio(self.sums.pruned + self.sums.accepted, self.sums.candidates)
    }

    /// Fraction of candidates that needed pixel verification.
    pub fn verified_fraction(&self) -> f64 {
        ratio(self.sums.verified, self.sums.candidates)
    }

    /// Fraction of kernel tiles resolved without a pixel scan (pruned or
    /// answered from tile histograms) — the kernel's observed speedup
    /// surface: 1.0 means no tile was ever scanned.
    pub fn kernel_tile_ratio(&self) -> f64 {
        let resolved = self.sums.tiles_pruned + self.sums.tiles_hist;
        ratio(resolved, resolved + self.sums.tiles_scanned)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Catalog-level planner statistics: which strategies the cost-based
/// planner chose across the whole catalog, and how far its selectivity
/// estimates landed from the observed outcomes. Persisted in the same
/// `masks.stats` file as the per-shape aggregates (the `catalog` line of
/// the v2 format), so the planner's decision history survives restarts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Queries that went through the planner.
    pub planned: u64,
    /// Verified masks routed through the tiled kernel.
    pub kernel_on: u64,
    /// Verified masks routed to the reference scan.
    pub kernel_off: u64,
    /// Pair candidates whose bounds pass was skipped (load-first).
    pub bounds_skipped: u64,
    /// Queries whose comparisons were evaluated off written order.
    pub reorders: u64,
    /// Cumulative |estimated - observed| selectivity error, in 1/1000ths
    /// (divide by `planned` for the mean estimation error; it shrinks as
    /// the feedback loop refines the estimates).
    pub est_error_milli: u64,
}

impl CatalogStats {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &CatalogStats) {
        self.planned += other.planned;
        self.kernel_on += other.kernel_on;
        self.kernel_off += other.kernel_off;
        self.bounds_skipped += other.bounds_skipped;
        self.reorders += other.reorders;
        self.est_error_milli += other.est_error_milli;
    }

    /// Mean absolute selectivity-estimation error over planned queries.
    pub fn mean_est_error(&self) -> f64 {
        ratio(self.est_error_milli, self.planned) / 1000.0
    }
}

const MAGIC_V1: &str = "masksearch-shape-stats v1";
const MAGIC: &str = "masksearch-shape-stats v2";
/// Key of the catalog-statistics line in the v2 format. Shape keys from
/// `shape_key()` always contain `/`, so the bare word cannot collide.
const CATALOG_KEY: &str = "catalog";
/// Shapes tracked before new (never-seen) shapes are dropped instead of
/// recorded. Query shapes are structural, so real workloads produce a few
/// dozen; the cap is a backstop against a key-construction bug consuming
/// unbounded memory.
const MAX_SHAPES: usize = 4096;

/// A concurrent registry of per-shape aggregates plus catalog-level
/// planner statistics.
#[derive(Debug, Default)]
pub struct ShapeStatsRegistry {
    shapes: Mutex<BTreeMap<String, ShapeAggregate>>,
    catalog: Mutex<CatalogStats>,
}

impl ShapeStatsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query's counters under `shape`. Whitespace in the key is
    /// replaced with `_` (the persisted format and the wire rendering are
    /// both line/space-delimited).
    pub fn record(&self, shape: &str, observation: &ShapeObservation) {
        let key = normalize_key(shape);
        let mut shapes = self.shapes.lock().unwrap_or_else(|e| e.into_inner());
        if shapes.len() >= MAX_SHAPES && !shapes.contains_key(&key) {
            return;
        }
        shapes.entry(key).or_default().add(observation);
    }

    /// Number of distinct shapes seen.
    pub fn len(&self) -> usize {
        self.shapes.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Returns `true` if no shape has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The aggregate for one shape, if recorded.
    pub fn get(&self, shape: &str) -> Option<ShapeAggregate> {
        self.shapes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&normalize_key(shape))
            .copied()
    }

    /// Folds one query's planner decisions into the catalog statistics.
    pub fn record_catalog(&self, delta: &CatalogStats) {
        self.catalog
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(delta);
    }

    /// The catalog-level planner statistics.
    pub fn catalog(&self) -> CatalogStats {
        *self.catalog.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Every shape and its aggregate, sorted by shape key.
    pub fn snapshot(&self) -> Vec<(String, ShapeAggregate)> {
        self.shapes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Serializes the registry to its persisted format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::from(MAGIC);
        out.push('\n');
        let c = self.catalog();
        out.push_str(&format!(
            "{CATALOG_KEY} {} {} {} {} {} {}\n",
            c.planned, c.kernel_on, c.kernel_off, c.bounds_skipped, c.reorders, c.est_error_milli,
        ));
        for (key, a) in self.snapshot() {
            let s = a.sums;
            out.push_str(&format!(
                "{key} {} {} {} {} {} {} {} {} {} {} {} {}\n",
                a.queries,
                s.candidates,
                s.rows,
                s.pruned,
                s.accepted,
                s.verified,
                s.masks_loaded,
                s.tiles_pruned,
                s.tiles_hist,
                s.tiles_scanned,
                s.filter_wall_us,
                s.verify_wall_us,
            ));
        }
        out.into_bytes()
    }

    /// Deserializes a registry from [`ShapeStatsRegistry::to_bytes`] output.
    /// Returns `None` on a magic/format mismatch (callers fall back to a
    /// fresh registry, exactly like a missing file).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut lines = text.lines();
        let magic = lines.next()?;
        // v1 files (written before the planner existed) carry no catalog
        // line; everything else about the row format is unchanged.
        if magic != MAGIC && magic != MAGIC_V1 {
            return None;
        }
        let mut shapes = BTreeMap::new();
        let mut catalog = CatalogStats::default();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_ascii_whitespace();
            let key = parts.next()?.to_string();
            let mut next = || parts.next().and_then(|v| v.parse::<u64>().ok());
            if key == CATALOG_KEY {
                catalog = CatalogStats {
                    planned: next()?,
                    kernel_on: next()?,
                    kernel_off: next()?,
                    bounds_skipped: next()?,
                    reorders: next()?,
                    est_error_milli: next()?,
                };
                continue;
            }
            let aggregate = ShapeAggregate {
                queries: next()?,
                sums: ShapeObservation {
                    candidates: next()?,
                    rows: next()?,
                    pruned: next()?,
                    accepted: next()?,
                    verified: next()?,
                    masks_loaded: next()?,
                    tiles_pruned: next()?,
                    tiles_hist: next()?,
                    tiles_scanned: next()?,
                    filter_wall_us: next()?,
                    verify_wall_us: next()?,
                },
            };
            shapes.insert(key, aggregate);
        }
        Some(Self {
            shapes: Mutex::new(shapes),
            catalog: Mutex::new(catalog),
        })
    }

    /// Renders the registry as human/wire-readable lines (one per shape)
    /// with the derived planner ratios.
    pub fn render(&self) -> Vec<String> {
        self.snapshot()
            .into_iter()
            .map(|(key, a)| {
                format!(
                    "shape {key} queries={} selectivity={:.4} chi_decisiveness={:.4} \
                     verified_fraction={:.4} kernel_tile_ratio={:.4} mean_filter_us={} \
                     mean_verify_us={}",
                    a.queries,
                    a.observed_selectivity(),
                    a.chi_decisiveness(),
                    a.verified_fraction(),
                    a.kernel_tile_ratio(),
                    a.sums.filter_wall_us / a.queries.max(1),
                    a.sums.verify_wall_us / a.queries.max(1),
                )
            })
            .collect()
    }
}

fn normalize_key(shape: &str) -> String {
    shape
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observation(candidates: u64, rows: u64) -> ShapeObservation {
        ShapeObservation {
            candidates,
            rows,
            pruned: candidates.saturating_sub(rows + 2),
            accepted: 1,
            verified: 1,
            masks_loaded: 1,
            tiles_pruned: 10,
            tiles_hist: 5,
            tiles_scanned: 5,
            filter_wall_us: 100,
            verify_wall_us: 300,
        }
    }

    #[test]
    fn aggregates_accumulate_and_derive_ratios() {
        let reg = ShapeStatsRegistry::new();
        reg.record("filter/cp=1", &observation(100, 10));
        reg.record("filter/cp=1", &observation(100, 30));
        reg.record("topk/cp=2", &observation(50, 5));
        assert_eq!(reg.len(), 2);
        let a = reg.get("filter/cp=1").unwrap();
        assert_eq!(a.queries, 2);
        assert_eq!(a.sums.candidates, 200);
        assert!((a.observed_selectivity() - 0.2).abs() < 1e-12);
        assert!(a.chi_decisiveness() > 0.5);
        assert!((a.kernel_tile_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn round_trips_through_bytes() {
        let reg = ShapeStatsRegistry::new();
        reg.record("filter/cp=1/kernel=on", &observation(100, 10));
        reg.record("pair top-k", &observation(40, 4)); // whitespace in key
        reg.record_catalog(&CatalogStats {
            planned: 7,
            kernel_on: 5,
            kernel_off: 2,
            bounds_skipped: 3,
            reorders: 1,
            est_error_milli: 450,
        });
        let bytes = reg.to_bytes();
        let back = ShapeStatsRegistry::from_bytes(&bytes).expect("parse back");
        assert_eq!(back.snapshot(), reg.snapshot());
        assert!(back.get("pair_top-k").is_some());
        assert_eq!(back.catalog(), reg.catalog());
        assert!((back.catalog().mean_est_error() - 0.45 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn v1_files_load_with_default_catalog_stats() {
        // A registry persisted before the planner existed: same row format
        // under the v1 magic, no catalog line.
        let text = "masksearch-shape-stats v1\n\
                    filter/cp=1 1 100 10 88 1 1 1 10 5 5 100 300\n";
        let back = ShapeStatsRegistry::from_bytes(text.as_bytes()).expect("v1 parses");
        assert_eq!(back.len(), 1);
        assert_eq!(back.catalog(), CatalogStats::default());
    }

    #[test]
    fn torn_catalog_lines_reject_the_file() {
        let text = format!("{MAGIC}\n{CATALOG_KEY} 1 2 3\n");
        assert!(ShapeStatsRegistry::from_bytes(text.as_bytes()).is_none());
    }

    #[test]
    fn rejects_foreign_bytes() {
        assert!(ShapeStatsRegistry::from_bytes(b"not stats").is_none());
        assert!(ShapeStatsRegistry::from_bytes(&[0xFF, 0xFE]).is_none());
        // Truncated rows are rejected, not half-parsed.
        let text = format!("{MAGIC}\nkey 1 2 3\n");
        assert!(ShapeStatsRegistry::from_bytes(text.as_bytes()).is_none());
    }

    #[test]
    fn render_lines_carry_planner_ratios() {
        let reg = ShapeStatsRegistry::new();
        reg.record("agg/cp=1", &observation(100, 10));
        let lines = reg.render();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("shape agg/cp=1 queries=1"));
        assert!(lines[0].contains("selectivity=0.1000"));
    }
}
