//! Process-global atomic counters for events the thread-local span stack
//! cannot follow.
//!
//! The query executors fan work out to scoped worker threads, and the cache
//! and catalog are hit from every connection thread; a per-trace span stack
//! sees none of that. These counters are global, lock-free, and always on —
//! they answer "how much lock waiting is happening on this server", which
//! is exactly the question behind the 1→2 worker QPS plateau, and they feed
//! the `METRICS` Prometheus exposition.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

macro_rules! global_counters {
    ($( $(#[$doc:meta])* ($name:ident, $text:expr) ),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub static $name: AtomicU64 = AtomicU64::new(0);
        )+

        /// Snapshot of every global counter as `(name, value)` pairs, in
        /// declaration order. Names are the Prometheus metric suffixes.
        pub fn snapshot() -> Vec<(&'static str, u64)> {
            vec![$( ($text, $name.load(Ordering::Relaxed)) ),+]
        }
    };
}

global_counters! {
    /// Microseconds spent waiting to acquire the session catalog lock for
    /// reading.
    (CATALOG_READ_WAIT_US, "catalog_read_wait_us"),
    /// Microseconds spent waiting to acquire the session catalog lock for
    /// writing.
    (CATALOG_WRITE_WAIT_US, "catalog_write_wait_us"),
    /// Catalog lock acquisitions (reads and writes).
    (CATALOG_LOCK_ACQUIRES, "catalog_lock_acquires"),
    /// Microseconds spent waiting on the mask-cache mutex.
    (CACHE_LOCK_WAIT_US, "cache_lock_wait_us"),
    /// Mask-cache mutex acquisitions.
    (CACHE_LOCK_ACQUIRES, "cache_lock_acquires"),
    /// Verification-kernel invocations (one per mask × predicate batch).
    (KERNEL_CALLS, "kernel_calls"),
    /// WAL commits.
    (WAL_COMMITS, "wal_commits"),
    /// Microseconds spent inside WAL commits (serialize + append + fsync).
    (WAL_COMMIT_US, "wal_commit_us"),
    /// Checkpoints taken.
    (DB_CHECKPOINTS, "db_checkpoints"),
    /// Microseconds spent inside checkpoints.
    (DB_CHECKPOINT_US, "db_checkpoint_us"),
    /// Pages read through the pager.
    (PAGER_READS, "pager_reads"),
    /// Pages written through the pager.
    (PAGER_WRITES, "pager_writes"),
    /// Shard requests issued by coordinator scatter rounds.
    (SCATTER_REQUESTS, "scatter_requests"),
    /// Microseconds spent in coordinator scatter round-trips (summed across
    /// shards; concurrent waits overlap in wall time).
    (SCATTER_WAIT_US, "scatter_wait_us"),
    /// Queries whose end-to-end latency exceeded the slow-query threshold.
    (SLOW_QUERIES, "slow_queries"),
    /// Candidate resolutions that walked the full catalog (no secondary
    /// index applied, or the planner estimated the scan cheaper).
    (CATALOG_SCANS, "catalog_scans"),
    /// Secondary-index point probes issued during candidate resolution.
    (META_INDEX_PROBES, "meta_index_probes"),
}

/// Adds `delta` to a counter. Thin wrapper so call sites read uniformly.
#[inline]
pub fn add(counter: &AtomicU64, delta: u64) {
    if delta > 0 {
        counter.fetch_add(delta, Ordering::Relaxed);
    }
}

/// Increments a counter by one.
#[inline]
pub fn incr(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Times the wait for a lock acquisition: runs `acquire`, adds the elapsed
/// microseconds to `wait_us`, and counts the acquisition in `acquires`.
///
/// The fast path (uncontended parking_lot locks) is tens of nanoseconds, so
/// the `Instant` pair is the dominant cost; it is two `clock_gettime`
/// vDSO calls and stays comfortably inside the tracing-overhead budget.
#[inline]
pub fn timed_acquire<T>(
    wait_us: &AtomicU64,
    acquires: &AtomicU64,
    acquire: impl FnOnce() -> T,
) -> T {
    let started = Instant::now();
    let guard = acquire();
    add(wait_us, started.elapsed().as_micros() as u64);
    incr(acquires);
    guard
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_lists_every_counter_once() {
        let snap = snapshot();
        assert!(snap.iter().any(|(k, _)| *k == "catalog_read_wait_us"));
        assert!(snap.iter().any(|(k, _)| *k == "scatter_requests"));
        let mut names: Vec<&str> = snap.iter().map(|(k, _)| *k).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), snap.len());
    }

    #[test]
    fn timed_acquire_counts_and_returns() {
        let wait = AtomicU64::new(0);
        let acquires = AtomicU64::new(0);
        let value = timed_acquire(&wait, &acquires, || 42);
        assert_eq!(value, 42);
        assert_eq!(acquires.load(Ordering::Relaxed), 1);
    }
}
