//! The shared metric-name registry.
//!
//! The per-shard `STATS` line, the coordinator's scatter-gather aggregation,
//! the `OK` frame summaries, the Prometheus exposition, and the span
//! counters all name the same quantities. Before this crate existed each
//! surface spelled the names independently — a rename in one silently broke
//! the others. Every name now lives here once, and the coordinator's
//! sum/max aggregation arrays are the very constants the `STATS` writer
//! uses, so the surfaces cannot drift.

/// Served queries per second since start.
pub const QPS: &str = "qps";
/// Queries completed.
pub const COMPLETED: &str = "completed";
/// Queries failed.
pub const FAILED: &str = "failed";
/// Queries rejected by admission control.
pub const REJECTED: &str = "rejected";
/// Queries abandoned because their deadline passed while queued.
pub const DEADLINE_EXPIRED: &str = "deadline_expired";
/// Write statements served.
pub const MUTATIONS: &str = "mutations";
/// Masks inserted.
pub const INSERTED: &str = "inserted";
/// Masks deleted.
pub const DELETED: &str = "deleted";
/// Masks updated in place.
pub const UPDATED: &str = "updated";
/// Mutations answered from the token-dedup registry.
pub const DEDUPED: &str = "deduped";
/// WAL bytes pending checkpoint.
pub const WAL_BYTES: &str = "wal_bytes";
/// Checkpoints taken.
pub const CHECKPOINTS: &str = "checkpoints";
/// WAL commits.
pub const COMMITS: &str = "commits";
/// Tiles skipped entirely by the verification kernel.
pub const TILES_PRUNED: &str = "tiles_pruned";
/// Tiles answered from per-tile histograms.
pub const TILES_HIST: &str = "tiles_hist";
/// Tiles scanned pixel-by-pixel.
pub const TILES_SCANNED: &str = "tiles_scanned";
/// Mask pairs resolved by composed bounds without loading both masks.
pub const PAIRS_BOUND: &str = "pairs_bound";
/// Verified masks the planner routed through the tiled kernel.
pub const PLANNER_KERNEL_ON: &str = "planner_kernel_on";
/// Verified masks the planner routed to the reference scan.
pub const PLANNER_KERNEL_OFF: &str = "planner_kernel_off";
/// Pair candidates whose bounds pass the planner skipped (load-first).
pub const PLANNER_BOUNDS_SKIPPED: &str = "planner_bounds_skipped";
/// Queries whose CP comparisons the planner evaluated off written order.
pub const PLANNER_REORDERS: &str = "planner_reorders";
/// Secondary-index point probes issued during candidate resolution.
pub const INDEX_PROBES: &str = "index_probes";
/// Mask ids returned by secondary-index probes (before re-verification).
pub const INDEX_ROWS: &str = "index_rows";
/// Metadata-constrained resolutions the planner routed through an index.
pub const PLANNER_INDEX_ON: &str = "planner_index_on";
/// Metadata-constrained resolutions the planner kept on the catalog scan.
pub const PLANNER_INDEX_OFF: &str = "planner_index_off";
/// Open client connections.
pub const ACTIVE_CONNECTIONS: &str = "active_connections";
/// Jobs waiting in the queue.
pub const QUEUE_DEPTH: &str = "queue_depth";
/// Median end-to-end latency in microseconds.
pub const P50_US: &str = "p50_us";
/// 99th-percentile end-to-end latency in microseconds.
pub const P99_US: &str = "p99_us";

/// Candidate masks considered by the filter stage (`OK` frame summaries and
/// span counters).
pub const CANDIDATES: &str = "candidates";
/// Candidates pruned by CHI bounds without loading.
pub const PRUNED: &str = "pruned";
/// Candidates accepted by bounds alone, without loading pixels.
pub const ACCEPTED: &str = "accepted";
/// Candidates that required pixel-level verification.
pub const VERIFIED: &str = "verified";
/// Masks loaded from the store.
pub const LOADED: &str = "loaded";
/// Bytes read from the store.
pub const BYTES_READ: &str = "bytes_read";
/// CHI indexes built on demand (incremental indexing).
pub const INDEXES_BUILT: &str = "indexes_built";
/// Server-side wall time in microseconds.
pub const WALL_US: &str = "wall_us";

/// `STATS` keys a cluster coordinator aggregates across shards by summing
/// (throughput and work counters: the cluster did the sum of its shards).
///
/// Both the shard-side `STATS` writer and the coordinator's merge draw from
/// this one array, so a key added or renamed here changes every surface at
/// once.
pub const STATS_SUM_KEYS: [&str; 27] = [
    QPS,
    COMPLETED,
    FAILED,
    REJECTED,
    DEADLINE_EXPIRED,
    MUTATIONS,
    INSERTED,
    DELETED,
    UPDATED,
    DEDUPED,
    WAL_BYTES,
    CHECKPOINTS,
    COMMITS,
    TILES_PRUNED,
    TILES_HIST,
    TILES_SCANNED,
    PAIRS_BOUND,
    PLANNER_KERNEL_ON,
    PLANNER_KERNEL_OFF,
    PLANNER_BOUNDS_SKIPPED,
    PLANNER_REORDERS,
    INDEX_PROBES,
    INDEX_ROWS,
    PLANNER_INDEX_ON,
    PLANNER_INDEX_OFF,
    ACTIVE_CONNECTIONS,
    QUEUE_DEPTH,
];

/// `STATS` keys a cluster coordinator aggregates by taking the maximum
/// (latency percentiles: the slowest shard bounds the cluster).
pub const STATS_MAX_KEYS: [&str; 2] = [P50_US, P99_US];

/// `STATS` keys streamed as deltas by the `MONITOR` subscription: the
/// monotonic counters, so that deltas summed over a subscription that
/// started at server-zero equal the cumulative `STATS` values. Gauges
/// (`queue_depth`, `active_connections`), rates (`qps`), percentiles, and
/// the non-monotonic `wal_bytes` (it shrinks at checkpoint) are excluded.
pub const MONITOR_DELTA_KEYS: [&str; 23] = [
    COMPLETED,
    FAILED,
    REJECTED,
    DEADLINE_EXPIRED,
    MUTATIONS,
    INSERTED,
    DELETED,
    UPDATED,
    DEDUPED,
    CHECKPOINTS,
    COMMITS,
    TILES_PRUNED,
    TILES_HIST,
    TILES_SCANNED,
    PAIRS_BOUND,
    PLANNER_KERNEL_ON,
    PLANNER_KERNEL_OFF,
    PLANNER_BOUNDS_SKIPPED,
    PLANNER_REORDERS,
    INDEX_PROBES,
    INDEX_ROWS,
    PLANNER_INDEX_ON,
    PLANNER_INDEX_OFF,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_keys_are_unique() {
        let mut all: Vec<&str> = STATS_SUM_KEYS.to_vec();
        all.extend_from_slice(&STATS_MAX_KEYS);
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len(), "duplicate key in registry");
    }

    #[test]
    fn monitor_keys_are_summed_stats_keys() {
        // Every monitored delta must also be a summed STATS key, or the
        // "deltas sum to the cumulative STATS counters" invariant (checked
        // end-to-end in the service tests) could not hold cluster-wide.
        for key in MONITOR_DELTA_KEYS {
            assert!(
                STATS_SUM_KEYS.contains(&key),
                "{key} monitored but not summed"
            );
        }
        let mut dedup = MONITOR_DELTA_KEYS.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), MONITOR_DELTA_KEYS.len());
    }
}
