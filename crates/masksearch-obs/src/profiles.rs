//! A bounded in-memory ring of recent query profiles.
//!
//! The engine pushes one [`QueryProfile`] per traced query; `STATS
//! PROFILES` reads the most recent ones back over the wire. The ring is
//! fixed-capacity, so a long-lived server's memory use is bounded no matter
//! how many queries it serves.

use crate::SpanNode;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One recorded query profile.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Monotonic sequence number (1-based, assigned by the ring).
    pub seq: u64,
    /// The statement as received.
    pub statement: String,
    /// End-to-end wall time in microseconds.
    pub wall_us: u64,
    /// The query's span tree.
    pub root: SpanNode,
}

impl QueryProfile {
    /// Renders this profile as wire lines: a header followed by the span
    /// tree indented one level under it.
    pub fn render(&self) -> Vec<String> {
        let mut lines = vec![format!(
            "profile seq={} wall_us={} statement={}",
            self.seq, self.wall_us, self.statement
        )];
        for line in self.root.render() {
            lines.push(format!("  {line}"));
        }
        lines
    }
}

/// A fixed-capacity ring of the most recent query profiles.
#[derive(Debug)]
pub struct ProfileRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

#[derive(Debug)]
struct RingInner {
    profiles: VecDeque<QueryProfile>,
    next_seq: u64,
}

impl ProfileRing {
    /// A ring holding at most `capacity` profiles (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(RingInner {
                profiles: VecDeque::new(),
                next_seq: 1,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Records a profile, evicting the oldest when full. Returns the
    /// assigned sequence number.
    pub fn record(&self, statement: &str, wall_us: u64, root: SpanNode) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.profiles.len() == self.capacity {
            inner.profiles.pop_front();
        }
        inner.profiles.push_back(QueryProfile {
            seq,
            statement: statement.to_string(),
            wall_us,
            root,
        });
        seq
    }

    /// The most recent `n` profiles, newest first.
    pub fn recent(&self, n: usize) -> Vec<QueryProfile> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.profiles.iter().rev().take(n).cloned().collect()
    }

    /// Total profiles ever recorded (not just retained).
    pub fn recorded(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.next_seq - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &str) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            wall_us: 5,
            counters: vec![("candidates".to_string(), 3)],
            children: Vec::new(),
        }
    }

    #[test]
    fn ring_is_bounded_and_newest_first() {
        let ring = ProfileRing::new(2);
        for i in 0..5 {
            ring.record(&format!("q{i}"), i, leaf("query"));
        }
        assert_eq!(ring.recorded(), 5);
        let recent = ring.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].statement, "q4");
        assert_eq!(recent[0].seq, 5);
        assert_eq!(recent[1].statement, "q3");
    }

    #[test]
    fn profiles_render_with_indented_span_tree() {
        let ring = ProfileRing::new(4);
        ring.record("SELECT 1", 42, leaf("query"));
        let lines = ring.recent(1)[0].render();
        assert_eq!(lines[0], "profile seq=1 wall_us=42 statement=SELECT 1");
        assert_eq!(lines[1], "  query wall_us=5 candidates=3");
    }
}
