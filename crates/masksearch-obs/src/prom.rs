//! A minimal Prometheus text-exposition (version 0.0.4) builder and
//! validator.
//!
//! The builder emits `# HELP` / `# TYPE` headers and sample lines; the
//! validator is what the protocol tests assert with, so "emits valid
//! Prometheus text" is a checked property rather than a hope.

use crate::LogHistogram;

/// Incrementally builds a Prometheus text exposition.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `counter` metric.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.header(name, help, "counter");
        self.out.push_str(&format!("{name} {value}\n"));
        self
    }

    /// Appends a `gauge` metric.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.header(name, help, "gauge");
        self.out.push_str(&format!("{name} {value}\n"));
        self
    }

    /// Appends a `histogram` metric from a [`LogHistogram`].
    pub fn histogram(&mut self, name: &str, help: &str, histogram: &LogHistogram) -> &mut Self {
        self.header(name, help, "histogram");
        histogram.render_prometheus(name, &mut self.out);
        self
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// The exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Validates Prometheus text-exposition syntax (the subset this crate
/// emits): every non-comment line is `name[{labels}] value`, metric names
/// match `[a-zA-Z_:][a-zA-Z0-9_:]*`, every sample's name is declared by a
/// preceding `# TYPE`, and values parse as floats.
///
/// Returns the number of sample lines, or a description of the first
/// offending line.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut declared: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: &str| Err(format!("line {}: {msg}: {line:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_ascii_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                return err("malformed TYPE comment");
            };
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                return err("unknown metric type");
            }
            declared.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment
        }
        let (name_part, value_part) = match line.rfind(' ') {
            Some(i) => (&line[..i], &line[i + 1..]),
            None => return err("sample line without a value"),
        };
        let name = name_part.split('{').next().unwrap_or("");
        if !is_metric_name(name) {
            return err("invalid metric name");
        }
        if name_part.contains('{') && !name_part.ends_with('}') {
            return err("unterminated label set");
        }
        if value_part.parse::<f64>().is_err() && !["+Inf", "-Inf", "NaN"].contains(&value_part) {
            return err("invalid sample value");
        }
        // A histogram declares `name` but samples `name_bucket` etc.
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !declared.iter().any(|d| d == name || d == base) {
            return err("sample not declared by a TYPE comment");
        }
        samples += 1;
    }
    Ok(samples)
}

fn is_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_output_validates() {
        let mut p = PromText::new();
        p.counter("masksearch_queries_total", "Queries served.", 17);
        p.gauge("masksearch_queue_depth", "Jobs waiting.", 2.0);
        let h = LogHistogram::new();
        h.record(150);
        h.record(9000);
        p.histogram("masksearch_latency_seconds", "End-to-end latency.", &h);
        let text = p.finish();
        let samples = validate(&text).expect("valid exposition");
        assert!(samples >= 6, "expected counter+gauge+histogram samples");
        assert!(text.contains("# TYPE masksearch_queries_total counter"));
        assert!(text.contains("masksearch_queries_total 17"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate("no_type_declared 1\n").is_err());
        assert!(validate("# TYPE x counter\n9bad_name 1\n").is_err());
        assert!(validate("# TYPE x counter\nx notanumber\n").is_err());
        assert!(validate("# TYPE x wat\nx 1\n").is_err());
        assert_eq!(validate("# TYPE x counter\nx 1\n"), Ok(1));
    }
}
