//! # masksearch-obs
//!
//! The observability layer of the MaskSearch reproduction: a zero-dependency
//! tracing and profiling substrate threaded through every other crate.
//!
//! The paper's claim is about *where query time goes* — CHI bounds turn a
//! scan of thousands of masks into a handful of loads — so the repo needs a
//! way to show that division of labour per query. This crate provides:
//!
//! - [`span`] / [`trace`]: lightweight hierarchical spans on a thread-local
//!   stack with monotonic timing and typed counters. When no trace is active
//!   every instrumentation point is a cheap no-op (one thread-local read),
//!   which is what keeps the tracing-on/off overhead within the CI gate.
//! - [`counters`]: process-global atomic counters for events that happen on
//!   worker threads a span stack cannot follow (cache lock waits, catalog
//!   lock waits, WAL commits, kernel invocations). Exposed via `METRICS`.
//! - [`keys`]: the shared metric-name registry used by the service `STATS`
//!   line and the cluster `SUM_KEYS` aggregation, so the two surfaces can
//!   never drift.
//! - [`prom`]: a tiny Prometheus text-exposition builder (and validator).
//! - [`LogHistogram`]: log₂-bucket latency histograms for per-stage walls.
//! - [`SlowQueryLog`]: a JSON-lines slow-query log with a configurable
//!   threshold.
//! - [`ProfileRing`]: a bounded ring of recent query profiles, queryable
//!   over the wire via `STATS PROFILES`.
//! - [`ShapeStatsRegistry`]: per-query-shape aggregate statistics (observed
//!   selectivity vs CHI decisiveness, kernel tile behaviour, verified
//!   fraction) that persist at checkpoint alongside the CHI/tiles files —
//!   the substrate the ROADMAP's cost-based planner will consume.
//! - [`TimeSeries`]: bounded rings of fixed-width time buckets over query
//!   completions and the global counters, so windows of recent behaviour
//!   (`METRICS WINDOW <secs>`) can be queried without external scraping.
//! - [`FlightRecorder`]: bounded, checksummed capture of every executed
//!   statement to a binary log that `masksearch-bench`'s replay bin can
//!   re-execute and compare against.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod counters;
pub mod keys;
pub mod prom;

mod histogram;
mod profiles;
mod recorder;
mod shape;
mod slowlog;
mod span;
mod timeseries;

pub use histogram::{LogHistogram, HISTOGRAM_BUCKETS};
pub use profiles::{ProfileRing, QueryProfile};
pub use recorder::{
    fnv1a, read_recording, FlightRecorder, Fnv64, RecordKind, RecordedQuery, RecorderStatus,
    RECORDER_MAGIC,
};
pub use shape::{CatalogStats, ShapeAggregate, ShapeObservation, ShapeStatsRegistry};
pub use slowlog::{escape_json, SlowQueryLog};
pub use span::{
    add_counter, set_counter, span, trace, trace_active, SpanGuard, SpanNode, TraceGuard,
};
pub use timeseries::{StageCounts, TimeSeries, WindowSummary};
