//! Randomized query generators (§4.3) and multi-query exploration workloads
//! (§4.5).

use masksearch_core::{MaskId, PixelRange, Roi};
use masksearch_query::{Expr, Order, Query, ScalarAgg, Selection};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// The three randomized query types of §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryType {
    /// `CP(mask, object_box, (lv, uv)) > T` filter queries.
    Filter,
    /// Top-k queries ranked by `CP` over a random constant ROI.
    TopK,
    /// Top-k image queries ranked by the mean `CP` of each image's masks.
    Aggregation,
}

/// Generates queries with randomized parameters following §4.3:
///
/// * **Filter**: the ROI is the per-mask object box; `lv`/`uv` are drawn from
///   `{0.1, …, 0.9}` with `uv > lv`; the threshold `T` is uniform over
///   `[0, mask pixels]`.
/// * **Top-K**: the ROI is a random rectangle (constant across masks), `k`
///   defaults to 25, and the order is random.
/// * **Aggregation**: images ranked by the mean `CP` of their masks, with
///   random ROI, range, and order.
pub struct RandomQueryGenerator {
    rng: ChaCha8Rng,
    mask_width: u32,
    mask_height: u32,
    /// `k` used by ranked query types (the paper uses 25).
    pub k: usize,
}

impl RandomQueryGenerator {
    /// Creates a generator for masks of the given shape.
    pub fn new(seed: u64, mask_width: u32, mask_height: u32) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
            mask_width,
            mask_height,
            k: 25,
        }
    }

    /// Random pixel-value range with bounds in `{0.1, …, 0.9}` and `uv > lv`.
    pub fn random_range(&mut self) -> PixelRange {
        loop {
            let lv = self.rng.gen_range(1..=8) as f32 / 10.0;
            let uv = self.rng.gen_range(2..=9) as f32 / 10.0;
            if uv > lv {
                return PixelRange::new(lv, uv).expect("valid range");
            }
        }
    }

    /// Random rectangle fully inside the mask.
    pub fn random_roi(&mut self) -> Roi {
        let x0 = self.rng.gen_range(0..self.mask_width - 1);
        let y0 = self.rng.gen_range(0..self.mask_height - 1);
        let x1 = self.rng.gen_range(x0 + 1..=self.mask_width);
        let y1 = self.rng.gen_range(y0 + 1..=self.mask_height);
        Roi::new(x0, y0, x1, y1).expect("valid roi")
    }

    /// Random count threshold in `[0, mask pixels]`.
    pub fn random_threshold(&mut self) -> f64 {
        let total = (self.mask_width as u64) * (self.mask_height as u64);
        self.rng.gen_range(0..=total) as f64
    }

    /// Random result ordering.
    pub fn random_order(&mut self) -> Order {
        if self.rng.gen_bool(0.5) {
            Order::Desc
        } else {
            Order::Asc
        }
    }

    /// A randomized Filter query (§4.3).
    pub fn filter_query(&mut self) -> Query {
        let range = self.random_range();
        let threshold = self.random_threshold();
        Query::filter_object_cp_gt(range, threshold)
    }

    /// A randomized Top-K query (§4.3).
    pub fn topk_query(&mut self) -> Query {
        let roi = self.random_roi();
        let range = self.random_range();
        let order = self.random_order();
        Query::top_k_cp(roi, range, self.k, order)
    }

    /// A randomized Aggregation query (§4.3).
    pub fn aggregation_query(&mut self) -> Query {
        let range = self.random_range();
        let order = self.random_order();
        Query::aggregate(Expr::cp_object(range), ScalarAgg::Avg).with_group_top_k(self.k, order)
    }

    /// A randomized query of the given type.
    pub fn query_of(&mut self, query_type: QueryType) -> Query {
        match query_type {
            QueryType::Filter => self.filter_query(),
            QueryType::TopK => self.topk_query(),
            QueryType::Aggregation => self.aggregation_query(),
        }
    }
}

/// One query of a multi-query workload: the randomized query plus the subset
/// of masks it targets.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// The query, already restricted (via its selection) to the target set.
    pub query: Query,
    /// The targeted mask ids.
    pub target: Vec<MaskId>,
    /// How many of the targeted masks had been targeted by earlier queries
    /// of the same workload.
    pub seen_in_target: usize,
}

/// The multi-query exploration workloads of §4.5.
///
/// Each workload consists of `num_queries` Filter queries. Query *i* targets
/// `n` masks, with `n` drawn from `{0.1, 0.2, 0.3} · N`; a fraction `p_seen`
/// of the targeted masks is sampled from masks already targeted by earlier
/// queries and the rest from unseen masks (when too few unseen masks remain,
/// all of them are included and the remainder is drawn from seen masks, as
/// in the paper).
#[derive(Debug, Clone)]
pub struct ExplorationWorkload {
    /// Label used in experiment output (the paper's Workload 1–4).
    pub name: String,
    /// Probability mass of re-targeting already-seen masks.
    pub p_seen: f64,
    /// The generated query sequence.
    pub queries: Vec<WorkloadQuery>,
}

impl ExplorationWorkload {
    /// Generates a workload over the given mask population.
    pub fn generate(
        name: impl Into<String>,
        all_masks: &[MaskId],
        num_queries: usize,
        p_seen: f64,
        generator: &mut RandomQueryGenerator,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n_total = all_masks.len();
        let mut seen: Vec<MaskId> = Vec::new();
        let mut seen_set: HashSet<MaskId> = HashSet::new();
        let mut unseen: Vec<MaskId> = all_masks.to_vec();
        unseen.shuffle(&mut rng);

        let mut queries = Vec::with_capacity(num_queries);
        for _ in 0..num_queries {
            let fraction = [0.1, 0.2, 0.3][rng.gen_range(0..3)];
            let n = ((n_total as f64 * fraction) as usize).max(1).min(n_total);
            let want_seen = ((n as f64) * p_seen).round() as usize;
            let want_unseen = n - want_seen;

            let mut target: Vec<MaskId> = Vec::with_capacity(n);
            // Unseen portion (or as much of it as remains).
            let take_unseen = want_unseen.min(unseen.len());
            for _ in 0..take_unseen {
                let id = unseen.pop().expect("checked length");
                target.push(id);
            }
            // Seen portion plus any shortfall from the unseen pool.
            let take_seen = (n - target.len()).min(seen.len());
            let sampled_seen: Vec<MaskId> =
                seen.choose_multiple(&mut rng, take_seen).copied().collect();
            let seen_in_target = sampled_seen.len();
            target.extend(sampled_seen);
            target.sort_unstable();
            target.dedup();

            for &id in &target {
                if seen_set.insert(id) {
                    seen.push(id);
                }
            }

            let mut query = generator.filter_query();
            query = query.with_selection(Selection::all().with_mask_ids(target.clone()));
            queries.push(WorkloadQuery {
                query,
                target,
                seen_in_target,
            });
        }
        Self {
            name: name.into(),
            p_seen,
            queries,
        }
    }

    /// Total number of distinct masks targeted across the whole workload.
    pub fn distinct_targets(&self) -> usize {
        let mut set = HashSet::new();
        for q in &self.queries {
            set.extend(q.target.iter().copied());
        }
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_query::QueryKind;

    fn mask_ids(n: u64) -> Vec<MaskId> {
        (0..n).map(MaskId::new).collect()
    }

    #[test]
    fn random_parameters_are_within_spec() {
        let mut gen = RandomQueryGenerator::new(1, 64, 64);
        for _ in 0..100 {
            let range = gen.random_range();
            assert!(range.lo() >= 0.1 - 1e-6 && range.hi() <= 0.9 + 1e-6);
            assert!(range.hi() > range.lo());
            let roi = gen.random_roi();
            assert!(roi.x1() <= 64 && roi.y1() <= 64);
            let t = gen.random_threshold();
            assert!((0.0..=4096.0).contains(&t));
        }
    }

    #[test]
    fn query_types_produce_expected_shapes() {
        let mut gen = RandomQueryGenerator::new(2, 64, 64);
        assert!(matches!(
            gen.query_of(QueryType::Filter).kind,
            QueryKind::Filter { .. }
        ));
        assert!(matches!(
            gen.query_of(QueryType::TopK).kind,
            QueryKind::TopK { k: 25, .. }
        ));
        assert!(matches!(
            gen.query_of(QueryType::Aggregation).kind,
            QueryKind::Aggregate {
                top_k: Some((25, _)),
                ..
            }
        ));
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = RandomQueryGenerator::new(9, 64, 64);
        let mut b = RandomQueryGenerator::new(9, 64, 64);
        for _ in 0..10 {
            assert_eq!(a.filter_query(), b.filter_query());
            assert_eq!(a.topk_query(), b.topk_query());
        }
    }

    #[test]
    fn workload_targets_respect_population_and_sizes() {
        let ids = mask_ids(1000);
        let mut gen = RandomQueryGenerator::new(3, 64, 64);
        let workload = ExplorationWorkload::generate("w2", &ids, 50, 0.5, &mut gen, 77);
        assert_eq!(workload.queries.len(), 50);
        for q in &workload.queries {
            assert!(!q.target.is_empty());
            assert!(q.target.len() <= 300 + 1);
            // The query's selection actually restricts to the target.
            match &q.query.selection.mask_ids {
                Some(ids) => assert_eq!(ids.len(), q.target.len()),
                None => panic!("workload queries must carry an explicit target"),
            }
        }
        assert!(workload.distinct_targets() <= 1000);
    }

    #[test]
    fn p_seen_controls_exploration_rate() {
        let ids = mask_ids(2000);
        let mut gen_low = RandomQueryGenerator::new(4, 64, 64);
        let explore = ExplorationWorkload::generate("w1", &ids, 30, 0.2, &mut gen_low, 5);
        let mut gen_high = RandomQueryGenerator::new(4, 64, 64);
        let revisit = ExplorationWorkload::generate("w4", &ids, 30, 1.0, &mut gen_high, 5);
        // Low p_seen explores far more distinct masks than p_seen = 1.0.
        assert!(explore.distinct_targets() > revisit.distinct_targets());
        // With p_seen = 1.0 only the first query's target is ever new.
        assert_eq!(revisit.distinct_targets(), revisit.queries[0].target.len());
    }

    #[test]
    fn workload_is_deterministic_for_a_seed() {
        let ids = mask_ids(500);
        let mut g1 = RandomQueryGenerator::new(6, 32, 32);
        let mut g2 = RandomQueryGenerator::new(6, 32, 32);
        let w1 = ExplorationWorkload::generate("w", &ids, 20, 0.5, &mut g1, 11);
        let w2 = ExplorationWorkload::generate("w", &ids, 20, 0.5, &mut g2, 11);
        for (a, b) in w1.queries.iter().zip(&w2.queries) {
            assert_eq!(a.target, b.target);
            assert_eq!(a.query, b.query);
        }
    }
}
