//! Dataset specifications and generation.
//!
//! A [`DatasetSpec`] describes a synthetic analogue of the paper's evaluation
//! datasets: how many images, how many models per image (the paper uses two
//! ResNet-50 checkpoints), the mask resolution, and the saliency-map
//! generator parameters. [`DatasetSpec::generate_into`] writes the masks into
//! any [`MaskStore`] and returns the metadata [`Catalog`] (including
//! per-image object boxes and predicted/true labels so exploration workloads
//! can target class subsets, §4.5).

use crate::saliency::SaliencyGenerator;
use masksearch_core::{ImageId, Label, MaskId, MaskRecord, MaskType, ModelId};
use masksearch_storage::{Catalog, MaskStore, StorageResult};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Specification of a synthetic mask dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Human-readable dataset name (used in experiment output).
    pub name: String,
    /// Number of images.
    pub num_images: u64,
    /// Number of models producing one mask each per image.
    pub models: u64,
    /// Mask width in pixels.
    pub mask_width: u32,
    /// Mask height in pixels.
    pub mask_height: u32,
    /// Number of distinct class labels.
    pub num_classes: u64,
    /// RNG seed so datasets are reproducible.
    pub seed: u64,
    /// Probability that a model focuses on the foreground object.
    pub focus_probability: f64,
}

impl DatasetSpec {
    /// A tiny dataset for unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            name: "tiny".to_string(),
            num_images: 16,
            models: 2,
            mask_width: 32,
            mask_height: 32,
            num_classes: 4,
            seed: 7,
            focus_probability: 0.7,
        }
    }

    /// A scaled-down analogue of the paper's WILDS dataset (22,275 images of
    /// 448×448 masks, two models). `scale` in `(0, 1]` controls the number
    /// of images; the default experiment scale is `scale = 0.1` with masks
    /// downscaled 4× so the experiments run on a laptop. The full-scale
    /// configuration is `DatasetSpec::wilds_like(1.0).full_resolution()`.
    pub fn wilds_like(scale: f64) -> Self {
        let scale = scale.clamp(1e-4, 1.0);
        Self {
            name: format!("wilds-sim (scale {scale})"),
            num_images: ((22_275.0 * scale) as u64).max(8),
            models: 2,
            mask_width: 112,
            mask_height: 112,
            num_classes: 182,
            seed: 42,
            focus_probability: 0.65,
        }
    }

    /// A scaled-down analogue of the paper's ImageNet dataset (1,331,167
    /// images of 224×224 masks, two models).
    pub fn imagenet_like(scale: f64) -> Self {
        let scale = scale.clamp(1e-6, 1.0);
        Self {
            name: format!("imagenet-sim (scale {scale})"),
            num_images: ((1_331_167.0 * scale) as u64).max(8),
            models: 2,
            mask_width: 64,
            mask_height: 64,
            num_classes: 1000,
            seed: 43,
            focus_probability: 0.7,
        }
    }

    /// Restores the paper's full mask resolution (448×448 for WILDS-like,
    /// 224×224 for ImageNet-like, inferred from the current resolution).
    pub fn full_resolution(mut self) -> Self {
        if self.name.starts_with("wilds") {
            self.mask_width = 448;
            self.mask_height = 448;
        } else {
            self.mask_width = 224;
            self.mask_height = 224;
        }
        self
    }

    /// Total number of masks (`images × models`).
    pub fn num_masks(&self) -> u64 {
        self.num_images * self.models
    }

    /// Uncompressed dataset size in bytes (4 bytes per pixel).
    pub fn uncompressed_bytes(&self) -> u64 {
        self.num_masks() * self.mask_width as u64 * self.mask_height as u64 * 4
    }

    /// Generates the dataset into `store`, returning the generated metadata.
    pub fn generate_into(&self, store: &dyn MaskStore) -> StorageResult<GeneratedDataset> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let generator = SaliencyGenerator::new(self.mask_width, self.mask_height)
            .focus_probability(self.focus_probability);
        let mut catalog = Catalog::new();
        let mut focused_flags = Vec::with_capacity(self.num_masks() as usize);
        let mut mask_id = 0u64;
        for image in 0..self.num_images {
            let object_box = generator.object_box(&mut rng);
            let true_label = Label::new(rng.gen_range(0..self.num_classes));
            for model in 0..self.models {
                let (mask, focused) = generator.generate(&object_box, &mut rng);
                // Unfocused (spurious) models misclassify more often.
                let correct_probability = if focused { 0.9 } else { 0.5 };
                let predicted = if rng.gen_bool(correct_probability) {
                    true_label
                } else {
                    Label::new(rng.gen_range(0..self.num_classes))
                };
                let id = MaskId::new(mask_id);
                store.put(id, &mask)?;
                catalog.insert(
                    MaskRecord::builder(id)
                        .image_id(ImageId::new(image))
                        .model_id(ModelId::new(model + 1))
                        .mask_type(MaskType::SaliencyMap)
                        .shape(self.mask_width, self.mask_height)
                        .true_label(true_label)
                        .predicted_label(predicted)
                        .object_box(object_box)
                        .build(),
                );
                focused_flags.push((id, focused));
                mask_id += 1;
            }
        }
        Ok(GeneratedDataset {
            spec: self.clone(),
            catalog,
            focused_flags,
        })
    }
}

/// The result of generating a dataset: the catalog plus ground-truth
/// information about which masks came from object-focused models (useful for
/// validating that queries retrieve the intended examples).
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The specification the dataset was generated from.
    pub spec: DatasetSpec,
    /// Metadata catalog for every generated mask.
    pub catalog: Catalog,
    /// `(mask_id, focused_on_object)` for every generated mask.
    pub focused_flags: Vec<(MaskId, bool)>,
}

impl GeneratedDataset {
    /// Mask ids whose generating model focused on the foreground object.
    pub fn focused_mask_ids(&self) -> Vec<MaskId> {
        self.focused_flags
            .iter()
            .filter(|(_, f)| *f)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Mask ids whose generating model focused on a spurious background
    /// location.
    pub fn spurious_mask_ids(&self) -> Vec<MaskId> {
        self.focused_flags
            .iter()
            .filter(|(_, f)| !*f)
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_storage::MemoryMaskStore;

    #[test]
    fn tiny_dataset_generates_consistent_catalog_and_store() {
        let spec = DatasetSpec::tiny();
        let store = MemoryMaskStore::for_tests();
        let dataset = spec.generate_into(&store).unwrap();
        assert_eq!(store.len() as u64, spec.num_masks());
        assert_eq!(dataset.catalog.len() as u64, spec.num_masks());
        assert_eq!(dataset.catalog.image_ids().len() as u64, spec.num_images);
        // Every record has an object box and labels.
        for record in dataset.catalog.records() {
            assert!(record.object_box.is_some());
            assert!(record.true_label.is_some());
            assert!(record.predicted_label.is_some());
            assert_eq!((record.width, record.height), (32, 32));
        }
        assert_eq!(
            dataset.focused_mask_ids().len() + dataset.spurious_mask_ids().len(),
            spec.num_masks() as usize
        );
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let spec = DatasetSpec::tiny();
        let store_a = MemoryMaskStore::for_tests();
        let store_b = MemoryMaskStore::for_tests();
        let a = spec.generate_into(&store_a).unwrap();
        let b = spec.generate_into(&store_b).unwrap();
        assert_eq!(a.focused_flags, b.focused_flags);
        for id in a.catalog.mask_ids() {
            assert_eq!(store_a.get(id).unwrap(), store_b.get(id).unwrap());
            assert_eq!(a.catalog.get(id), b.catalog.get(id));
        }
    }

    #[test]
    fn preset_specs_scale_sensibly() {
        let wilds = DatasetSpec::wilds_like(0.01);
        assert_eq!(wilds.num_images, 222);
        assert_eq!(wilds.models, 2);
        assert_eq!(wilds.num_masks(), 444);
        let imagenet = DatasetSpec::imagenet_like(0.001);
        assert_eq!(imagenet.num_images, 1331);
        let full = DatasetSpec::wilds_like(1.0).full_resolution();
        assert_eq!((full.mask_width, full.mask_height), (448, 448));
        assert_eq!(full.uncompressed_bytes(), 2 * 22_275 * 448 * 448 * 4);
    }

    #[test]
    fn two_masks_per_image_share_the_object_box() {
        let spec = DatasetSpec::tiny();
        let store = MemoryMaskStore::for_tests();
        let dataset = spec.generate_into(&store).unwrap();
        for image in dataset.catalog.image_ids() {
            let masks = dataset.catalog.masks_of_image(image);
            assert_eq!(masks.len(), 2);
            let boxes: Vec<_> = masks
                .iter()
                .map(|id| dataset.catalog.get(*id).unwrap().object_box)
                .collect();
            assert_eq!(boxes[0], boxes[1]);
        }
    }
}
