//! Synthetic saliency-map generation.
//!
//! A saliency map is modelled as a mixture of Gaussian blobs over a noisy
//! background:
//!
//! * a **primary blob** centred on the image's foreground object (for a
//!   "good" model) or at a random background location (for a "spurious"
//!   model — the behaviour Figure 2 of the paper illustrates),
//! * optional **secondary blobs** of lower amplitude, and
//! * low-amplitude background noise.
//!
//! This reproduces the statistical structure the CHI exploits: most pixels
//! are low-valued, high values are spatially concentrated, and the fraction
//! of salient pixels inside the object box varies widely across masks.

use masksearch_core::{Mask, Roi};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of the synthetic saliency-map generator.
#[derive(Debug, Clone)]
pub struct SaliencyGenerator {
    /// Mask width in pixels.
    pub width: u32,
    /// Mask height in pixels.
    pub height: u32,
    /// Probability that a model focuses on the foreground object rather than
    /// a spurious background location.
    pub focus_probability: f64,
    /// Peak amplitude of the primary blob.
    pub peak: f32,
    /// Standard deviation of the primary blob, as a fraction of the mask
    /// width.
    pub sigma_fraction: f32,
    /// Number of low-amplitude secondary blobs.
    pub secondary_blobs: u32,
    /// Amplitude of the uniform background noise.
    pub noise: f32,
}

impl SaliencyGenerator {
    /// A generator with reasonable defaults for `width × height` masks.
    pub fn new(width: u32, height: u32) -> Self {
        Self {
            width,
            height,
            focus_probability: 0.7,
            peak: 0.95,
            sigma_fraction: 0.12,
            secondary_blobs: 2,
            noise: 0.08,
        }
    }

    /// Sets the probability that the saliency blob lands on the object box.
    pub fn focus_probability(mut self, p: f64) -> Self {
        self.focus_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the background-noise amplitude.
    pub fn noise(mut self, noise: f32) -> Self {
        self.noise = noise.clamp(0.0, 0.5);
        self
    }

    /// Generates a random foreground-object bounding box for an image,
    /// covering roughly 15–45 % of each dimension.
    pub fn object_box(&self, rng: &mut impl Rng) -> Roi {
        let bw = rng
            .gen_range(self.width * 15 / 100..=self.width * 45 / 100)
            .max(1);
        let bh = rng
            .gen_range(self.height * 15 / 100..=self.height * 45 / 100)
            .max(1);
        let x0 = rng.gen_range(0..=self.width - bw);
        let y0 = rng.gen_range(0..=self.height - bh);
        Roi::new(x0, y0, x0 + bw, y0 + bh).expect("non-degenerate box")
    }

    /// Generates one saliency map for an image whose foreground object is at
    /// `object_box`. Returns the mask and whether the model focused on the
    /// object (useful for labelling "spurious" examples in tests and
    /// examples).
    pub fn generate(&self, object_box: &Roi, rng: &mut impl Rng) -> (Mask, bool) {
        let focused = rng.gen_bool(self.focus_probability);
        let (cx, cy) = if focused {
            (
                (object_box.x0() + object_box.x1()) as f32 / 2.0 + rng.gen_range(-2.0..2.0),
                (object_box.y0() + object_box.y1()) as f32 / 2.0 + rng.gen_range(-2.0..2.0),
            )
        } else {
            (
                rng.gen_range(0.0..self.width as f32),
                rng.gen_range(0.0..self.height as f32),
            )
        };
        let sigma = (self.width as f32 * self.sigma_fraction).max(1.0);

        // Secondary blobs at random locations with lower amplitude.
        let mut blobs = vec![(cx, cy, sigma, self.peak)];
        for _ in 0..self.secondary_blobs {
            blobs.push((
                rng.gen_range(0.0..self.width as f32),
                rng.gen_range(0.0..self.height as f32),
                sigma * rng.gen_range(0.5..1.2),
                self.peak * rng.gen_range(0.2..0.55),
            ));
        }

        let noise = self.noise;
        let noise_seed: u64 = rng.gen();
        let mut noise_rng = ChaCha8Rng::seed_from_u64(noise_seed);
        let mut noise_row: Vec<f32> = Vec::new();

        let mask = Mask::from_fn(self.width, self.height, |x, y| {
            if x == 0 {
                noise_row = (0..self.width)
                    .map(|_| {
                        if noise > 0.0 {
                            noise_rng.gen_range(0.0..noise)
                        } else {
                            0.0
                        }
                    })
                    .collect();
                let _ = y;
            }
            let mut v = noise_row[x as usize];
            for &(bx, by, s, amp) in &blobs {
                let dx = x as f32 - bx;
                let dy = y as f32 - by;
                v += amp * (-(dx * dx + dy * dy) / (2.0 * s * s)).exp();
            }
            v.min(0.999)
        });
        (mask, focused)
    }

    /// Generates a deterministic saliency map from an explicit seed.
    pub fn generate_seeded(&self, object_box: &Roi, seed: u64) -> (Mask, bool) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        self.generate(object_box, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{cp, PixelRange};

    #[test]
    fn generated_masks_are_valid_and_deterministic() {
        let gen = SaliencyGenerator::new(64, 64);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let object_box = gen.object_box(&mut rng);
        let (a, _) = gen.generate_seeded(&object_box, 42);
        let (b, _) = gen.generate_seeded(&object_box, 42);
        assert_eq!(a, b);
        assert_eq!(a.shape(), (64, 64));
        let (lo, hi) = a.value_bounds();
        assert!(lo >= 0.0 && hi < 1.0);
    }

    #[test]
    fn object_boxes_are_inside_the_mask() {
        let gen = SaliencyGenerator::new(96, 48);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..50 {
            let b = gen.object_box(&mut rng);
            assert!(b.x1() <= 96 && b.y1() <= 48);
            assert!(b.area() > 0);
        }
    }

    #[test]
    fn focused_masks_concentrate_salient_pixels_in_the_object_box() {
        let gen = SaliencyGenerator::new(64, 64).focus_probability(1.0);
        let spurious = SaliencyGenerator::new(64, 64).focus_probability(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let range = PixelRange::new(0.6, 1.0).unwrap();
        let mut focused_better = 0;
        for i in 0..20u64 {
            let object_box = gen.object_box(&mut rng);
            let (good, was_focused) = gen.generate_seeded(&object_box, 100 + i);
            assert!(was_focused);
            let (bad, was_focused) = spurious.generate_seeded(&object_box, 200 + i);
            assert!(!was_focused);
            let good_in = cp(&good, &object_box, &range) as f64 / object_box.area() as f64;
            let bad_in = cp(&bad, &object_box, &range) as f64 / object_box.area() as f64;
            if good_in >= bad_in {
                focused_better += 1;
            }
        }
        // Focused models concentrate salient pixels on the object in the
        // overwhelming majority of cases (spurious blobs occasionally land on
        // the object by chance).
        assert!(focused_better >= 16, "only {focused_better}/20");
    }

    #[test]
    fn noise_parameter_controls_background_level() {
        let quiet = SaliencyGenerator::new(32, 32).noise(0.0);
        let noisy = SaliencyGenerator::new(32, 32).noise(0.4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let object_box = quiet.object_box(&mut rng);
        let (q, _) = quiet.generate_seeded(&object_box, 1);
        let (n, _) = noisy.generate_seeded(&object_box, 1);
        assert!(n.mean() > q.mean());
    }
}
