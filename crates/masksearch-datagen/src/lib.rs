//! # masksearch-datagen
//!
//! Synthetic datasets and workloads for the MaskSearch evaluation.
//!
//! The paper evaluates on GradCAM saliency maps for WILDS/iWildCam (22,275
//! images, 448×448 masks, two ResNet-50 models) and ImageNet (1,331,167
//! images, 224×224 masks, two models), with YOLOv5 foreground-object boxes
//! providing the mask-specific ROIs. Neither the images, the models, nor a
//! GPU are available (or needed) here: the query-processing behaviour only
//! depends on the *pixel-value distribution* of the masks relative to the
//! ROIs. This crate synthesises masks with exactly that structure:
//!
//! * [`saliency`] — Gaussian-blob saliency maps centred on (or off) a
//!   per-image foreground object, with background noise; "good" models focus
//!   on the object, "spurious" models focus elsewhere (reproducing the
//!   motivation of Figure 2).
//! * [`dataset`] — dataset specifications ([`DatasetSpec`]) including
//!   scaled-down WILDS-like and ImageNet-like presets, generated straight
//!   into any [`MaskStore`](masksearch_storage::MaskStore) together with the
//!   metadata [`Catalog`](masksearch_storage::Catalog).
//! * [`workload`] — the randomized query generators of §4.3 (Filter, Top-K,
//!   Aggregation, with randomized ROIs, pixel ranges, and thresholds) and
//!   the multi-query exploration workloads of §4.5 (parameterised by
//!   `p_seen`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod saliency;
pub mod workload;

pub use dataset::{DatasetSpec, GeneratedDataset};
pub use saliency::SaliencyGenerator;
pub use workload::{ExplorationWorkload, QueryType, RandomQueryGenerator, WorkloadQuery};
