//! Criterion benchmarks of MaskSearch query execution: small-scale versions
//! of the paper's Q1–Q5 (Figure 7 / Table 2) running end to end against an
//! eagerly indexed session.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use masksearch_bench::{BenchDataset, PaperQueries};
use masksearch_query::IndexingMode;

fn bench_paper_queries(c: &mut Criterion) {
    let bench = BenchDataset::wilds(0.002).expect("generate dataset");
    let queries = PaperQueries::for_dataset(&bench);
    let session = bench.session(IndexingMode::Eager);
    // Pre-build the aggregated-mask index Q5 relies on (§3.4).
    if let masksearch_query::QueryKind::MaskAggregate { agg, .. } = &queries.q5.kind {
        session
            .build_aggregate_index(agg, &queries.q5.selection)
            .expect("aggregate index");
    }

    let mut group = c.benchmark_group("masksearch_paper_queries");
    for (label, query) in queries.labelled() {
        group.bench_function(label, |b| {
            b.iter(|| session.execute(black_box(query)).expect("query"))
        });
    }
    group.finish();
}

fn bench_randomized_queries(c: &mut Criterion) {
    let bench = BenchDataset::wilds(0.002).expect("generate dataset");
    let session = bench.session(IndexingMode::Eager);
    let mut generator = masksearch_datagen::RandomQueryGenerator::new(
        11,
        bench.spec.mask_width,
        bench.spec.mask_height,
    );
    let filter = generator.filter_query();
    let topk = generator.topk_query();
    let agg = generator.aggregation_query();

    let mut group = c.benchmark_group("masksearch_randomized_queries");
    group.bench_function("filter", |b| {
        b.iter(|| session.execute(black_box(&filter)).expect("query"))
    });
    group.bench_function("topk", |b| {
        b.iter(|| session.execute(black_box(&topk)).expect("query"))
    });
    group.bench_function("aggregation", |b| {
        b.iter(|| session.execute(black_box(&agg)).expect("query"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_paper_queries, bench_randomized_queries
}
criterion_main!(benches);
