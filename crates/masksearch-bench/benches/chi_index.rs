//! Criterion micro-benchmarks of the Cumulative Histogram Index itself:
//! index construction (paper §3.1's O(w·h) build), available-region lookups
//! (Eq. 2), and bound computation (Eqs. 3–4).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use masksearch_core::{Mask, PixelRange, Roi};
use masksearch_index::{Chi, ChiConfig};

fn saliency_like_mask(side: u32) -> Mask {
    Mask::from_fn(side, side, |x, y| {
        let dx = x as f32 - side as f32 * 0.4;
        let dy = y as f32 - side as f32 * 0.6;
        let sigma = side as f32 * 0.15;
        (0.95 * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp() + 0.03).min(0.999)
    })
}

fn bench_chi_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("chi_build");
    for side in [64u32, 224, 448] {
        let mask = saliency_like_mask(side);
        let config = if side >= 448 {
            ChiConfig::paper_wilds()
        } else if side >= 224 {
            ChiConfig::paper_imagenet()
        } else {
            ChiConfig::new(8, 8, 16).unwrap()
        };
        group.bench_function(format!("{side}x{side}"), |b| {
            b.iter(|| Chi::build(black_box(&mask), black_box(&config)))
        });
    }
    group.finish();
}

fn bench_chi_bounds(c: &mut Criterion) {
    let mask = saliency_like_mask(224);
    let chi = Chi::build(&mask, &ChiConfig::paper_imagenet());
    let roi = Roi::new(37, 51, 190, 201).unwrap();
    let range = PixelRange::new(0.6, 1.0).unwrap();
    c.bench_function("chi_bounds/224x224_unaligned_roi", |b| {
        b.iter(|| chi.cp_bounds(black_box(&roi), black_box(&range)))
    });
    c.bench_function("chi_region_hist/224x224", |b| {
        b.iter(|| chi.region_hist(black_box(1), black_box(1), black_box(7), black_box(7)))
    });
    // The exact CP computation the bounds let MaskSearch avoid.
    c.bench_function("exact_cp/224x224", |b| {
        b.iter(|| masksearch_core::cp(black_box(&mask), black_box(&roi), black_box(&range)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_chi_build, bench_chi_bounds
}
criterion_main!(benches);
