//! Criterion benchmarks comparing MaskSearch against the baseline engines on
//! the same (small) dataset and query — the micro-scale analogue of Figure 7.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use masksearch_baselines::QueryEngine;
use masksearch_bench::{BenchDataset, PaperQueries};
use masksearch_query::IndexingMode;

fn bench_engines_on_paper_queries(c: &mut Criterion) {
    let bench = BenchDataset::wilds(0.002).expect("generate dataset");
    let queries = PaperQueries::for_dataset(&bench);

    let masksearch = bench.masksearch_engine(IndexingMode::Eager);
    let numpy = bench.numpy_engine();
    let tiledb = bench.tiledb_engine().expect("tiledb ingest");
    let postgres = bench.postgres_engine().expect("postgres ingest");

    let mut group = c.benchmark_group("engines_q1_filter");
    group.bench_function("MaskSearch", |b| {
        b.iter(|| masksearch.execute(black_box(&queries.q1)).expect("query"))
    });
    group.bench_function("NumPy", |b| {
        b.iter(|| numpy.execute(black_box(&queries.q1)).expect("query"))
    });
    group.bench_function("TileDB", |b| {
        b.iter(|| tiledb.execute(black_box(&queries.q1)).expect("query"))
    });
    group.bench_function("PostgreSQL", |b| {
        b.iter(|| postgres.execute(black_box(&queries.q1)).expect("query"))
    });
    group.finish();

    let mut group = c.benchmark_group("engines_q2_object_roi");
    group.bench_function("MaskSearch", |b| {
        b.iter(|| masksearch.execute(black_box(&queries.q2)).expect("query"))
    });
    group.bench_function("TileDB", |b| {
        b.iter(|| tiledb.execute(black_box(&queries.q2)).expect("query"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_engines_on_paper_queries
}
criterion_main!(benches);
