//! Criterion benchmark of a short multi-query exploration workload under the
//! two MaskSearch indexing modes — the micro-scale analogue of Figure 11.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use masksearch_bench::BenchDataset;
use masksearch_datagen::{ExplorationWorkload, RandomQueryGenerator};
use masksearch_query::IndexingMode;

fn bench_workload(c: &mut Criterion) {
    let bench = BenchDataset::wilds(0.001).expect("generate dataset");
    let all_masks = bench.dataset.catalog.mask_ids();
    let mut generator = RandomQueryGenerator::new(5, bench.spec.mask_width, bench.spec.mask_height);
    let workload = ExplorationWorkload::generate("bench", &all_masks, 10, 0.5, &mut generator, 17);

    let mut group = c.benchmark_group("workload_10_queries");
    group.sample_size(10);
    group.bench_function("MS_eager_index", |b| {
        b.iter(|| {
            let session = bench.session(IndexingMode::Eager);
            for wq in &workload.queries {
                session.execute(black_box(&wq.query)).expect("query");
            }
        })
    });
    group.bench_function("MS_II_incremental", |b| {
        b.iter(|| {
            let session = bench.session(IndexingMode::Incremental);
            for wq in &workload.queries {
                session.execute(black_box(&wq.query)).expect("query");
            }
        })
    });
    group.bench_function("no_index_full_scan", |b| {
        b.iter(|| {
            let session = bench.session(IndexingMode::Disabled);
            for wq in &workload.queries {
                session.execute(black_box(&wq.query)).expect("query");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
