//! The evaluation queries Q1–Q5 (paper Table 1), adapted to a dataset's mask
//! resolution.
//!
//! The paper's literal parameters assume 224×224 (ImageNet) or 448×448
//! (WILDS) masks. Benchmark datasets may be scaled down, so ROIs are
//! expressed as fractions of the mask side and count thresholds as fractions
//! of the relevant area; at full resolution these reduce to the paper's
//! numbers (e.g. Q1's `roi = ((50, 50), (200, 200))` ≈ 22 %–89 % of a
//! 224-pixel side and `T = 5000` ≈ 10 % of the mask area).

use crate::setup::BenchDataset;
use masksearch_core::{MaskAgg, ModelId, PixelRange, Roi};
use masksearch_query::{CpTerm, Expr, Order, Query, ScalarAgg, Selection};

/// The five evaluation queries for one dataset.
#[derive(Debug, Clone)]
pub struct PaperQueries {
    /// Q1: filter on `CP` with a constant ROI, model 1.
    pub q1: Query,
    /// Q2: filter on `CP` with the per-mask object-box ROI, model 1.
    pub q2: Query,
    /// Q3: top-25 masks by `CP` with a constant ROI, model 1.
    pub q3: Query,
    /// Q4: top-25 images by mean `CP` over the two models' masks.
    pub q4: Query,
    /// Q5: top-25 images by `CP` of the intersected (thresholded) masks.
    pub q5: Query,
}

impl PaperQueries {
    /// Builds the query suite for a benchmark dataset.
    pub fn for_dataset(bench: &BenchDataset) -> Self {
        let w = bench.spec.mask_width;
        let h = bench.spec.mask_height;
        let area = (w as f64) * (h as f64);

        // Q1 ROI: the paper's ((50,50),(200,200)) box on a 224-pixel mask,
        // i.e. ~22%..~89% of each side.
        let q1_roi = Roi::new(
            (w as f64 * 0.22) as u32,
            (h as f64 * 0.22) as u32,
            (w as f64 * 0.89) as u32,
            (h as f64 * 0.89) as u32,
        )
        .expect("valid Q1 roi");
        // Q1 threshold: 5000 of 224*224 pixels ≈ 10% of the mask area.
        let q1 = Query::filter_cp_gt(q1_roi, PixelRange::new(0.6, 1.0).unwrap(), area * 0.10)
            .with_selection(Selection::all().with_model(ModelId::new(1)));

        // Q2 threshold: the paper's 15,000 of 224*224 ≈ 30% of the mask area
        // evaluates against the object box; the synthetic object boxes cover
        // ~9% of the image on average, so the equivalent selectivity is
        // obtained at ~2.5% of the mask area.
        let q2 = Query::filter_object_cp_gt(PixelRange::new(0.8, 1.0).unwrap(), area * 0.025)
            .with_selection(Selection::all().with_model(ModelId::new(1)));

        let q3 = Query::top_k_cp(q1_roi, PixelRange::new(0.8, 1.0).unwrap(), 25, Order::Desc)
            .with_selection(Selection::all().with_model(ModelId::new(1)));

        let q4 = Query::aggregate(
            Expr::cp_object(PixelRange::new(0.8, 1.0).unwrap()),
            ScalarAgg::Avg,
        )
        .with_group_top_k(25, Order::Desc);

        let q5 = Query::mask_aggregate(
            MaskAgg::IntersectThreshold { threshold: 0.8 },
            CpTerm::object_roi(PixelRange::new(0.8, 1.0).unwrap()),
        )
        .with_group_top_k(25, Order::Desc);

        Self { q1, q2, q3, q4, q5 }
    }

    /// `(label, query)` pairs in paper order.
    pub fn labelled(&self) -> Vec<(&'static str, &Query)> {
        vec![
            ("Q1", &self.q1),
            ("Q2", &self.q2),
            ("Q3", &self.q3),
            ("Q4", &self.q4),
            ("Q5", &self.q5),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_query::QueryKind;

    #[test]
    fn query_suite_has_paper_shapes() {
        let bench = BenchDataset::wilds(0.001).unwrap();
        let queries = PaperQueries::for_dataset(&bench);
        assert!(matches!(queries.q1.kind, QueryKind::Filter { .. }));
        assert!(matches!(queries.q2.kind, QueryKind::Filter { .. }));
        assert!(matches!(queries.q3.kind, QueryKind::TopK { k: 25, .. }));
        assert!(matches!(
            queries.q4.kind,
            QueryKind::Aggregate {
                top_k: Some((25, Order::Desc)),
                ..
            }
        ));
        assert!(matches!(queries.q5.kind, QueryKind::MaskAggregate { .. }));
        assert_eq!(queries.labelled().len(), 5);
        // Q1/Q2/Q3 target one model's masks only.
        assert_eq!(queries.q1.selection.model_id, Some(ModelId::new(1)));
    }
}
