//! Cluster scaling experiment: served QPS and latency percentiles as a
//! function of shard count, plus the distributed top-k round structure.
//!
//! For each shard count the dataset is partitioned with the `ShardMap`
//! (image-id hashing), each shard gets its own engine + TCP server, and a
//! fleet of client threads fires a mixed filter / top-k / aggregation SQL
//! workload at a `CoordinatorServer` front end. Reported per point: QPS,
//! p50/p99 end-to-end latency, mean top-k scatter rounds, and refinement
//! re-queries; appended to `BENCH_cluster.json`.
//!
//! ```text
//! cargo run --release --bin cluster_scaling -- \
//!     --scale 0.002 --clients 4 --queries 30
//! ```

use masksearch_bench::report::{percentile, Table};
use masksearch_bench::{scale_from_args, usize_from_args, BenchDataset};
use masksearch_cluster::{ClusterConfig, Coordinator, CoordinatorServer, ReplicaShard, ShardMap};
use masksearch_db::{DbConfig, MaskDb};
use masksearch_query::{IndexingMode, Session, SessionConfig};
use masksearch_service::{Client, Engine, Server, ServerHandle, ServiceConfig};
use masksearch_storage::{Catalog, DiskProfile, MaskEncoding, MaskStore, MemoryMaskStore};
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct ShardPoint {
    shards: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_topk_rounds: f64,
    refined_requests: u64,
}

/// Partitions the benchmark dataset by the shard map and serves each
/// partition from its own engine.
///
/// Shards run **storage-bound**: cloud-object-class read latency is emulated
/// with real waits ([`MemoryMaskStore::emulate_latency`]), modelling the
/// catalog-larger-than-RAM deployment that motivates sharding in the first
/// place. That keeps the scaling curve about what the cluster layer does —
/// overlapping per-shard waits via the pipelined fan-out — rather than about
/// how many cores the benchmark host happens to have.
fn shard_servers(bench: &BenchDataset, shards: usize) -> Vec<ServerHandle> {
    let map = ShardMap::new(shards).expect("shard map");
    let stores: Vec<Arc<MemoryMaskStore>> = (0..shards)
        .map(|_| {
            Arc::new(
                MemoryMaskStore::new(MaskEncoding::Raw, DiskProfile::cloud_object())
                    .emulate_latency(true),
            )
        })
        .collect();
    let mut catalogs = vec![Catalog::new(); shards];
    for record in bench.dataset.catalog.records() {
        let shard = map.shard_for_record(record);
        let mask = bench.store.get(record.mask_id).expect("mask");
        stores[shard].put(record.mask_id, &mask).expect("put");
        catalogs[shard].insert(record.clone());
    }
    stores
        .into_iter()
        .zip(catalogs)
        .map(|(store, catalog)| {
            store.io_stats().reset();
            let session = Session::new(
                store as Arc<dyn MaskStore>,
                catalog,
                SessionConfig::new(bench.chi_config).indexing_mode(IndexingMode::Eager),
            )
            .expect("shard session");
            let engine = Engine::new(session, ServiceConfig::new(2));
            Server::bind("127.0.0.1:0", engine)
                .expect("bind shard")
                .spawn()
        })
        .collect()
}

/// A deterministic mixed SQL workload (filter / mask top-k / grouped top-k).
fn workload_sql(client: u64, i: usize, width: u32, height: u32) -> String {
    let mut state = (client + 1)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i as u64);
    let mut next = move |modulo: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % modulo
    };
    let x0 = next(u64::from(width) / 2) as u32;
    let y0 = next(u64::from(height) / 2) as u32;
    let x1 = x0 + 1 + next(u64::from(width - x0 - 1).max(1)) as u32;
    let y1 = y0 + 1 + next(u64::from(height - y0 - 1).max(1)) as u32;
    let lo = 0.4 + next(40) as f64 / 100.0;
    match i % 3 {
        0 => {
            let area = u64::from(x1 - x0) * u64::from(y1 - y0);
            format!(
                "SELECT mask_id FROM masks WHERE CP(mask, ({x0}, {y0}, {x1}, {y1}), ({lo}, 1.0)) > {}",
                area / 4
            )
        }
        1 => format!(
            "SELECT mask_id, CP(mask, ({x0}, {y0}, {x1}, {y1}), ({lo}, 1.0)) AS s \
             FROM masks ORDER BY s DESC LIMIT 25"
        ),
        _ => format!(
            "SELECT image_id, AVG(CP(mask, full, ({lo}, 1.0))) AS s \
             FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 25"
        ),
    }
}

fn run_point(bench: &BenchDataset, shards: usize, clients: usize, queries: usize) -> ShardPoint {
    let servers = shard_servers(bench, shards);
    let coordinator = Coordinator::connect(ClusterConfig::new(
        servers.iter().map(|s| s.local_addr().to_string()).collect(),
    ))
    .expect("coordinator");
    let front = CoordinatorServer::bind("127.0.0.1:0", coordinator.clone())
        .expect("bind front end")
        .spawn();
    let addr = front.local_addr();
    let (width, height) = (bench.spec.mask_width, bench.spec.mask_height);

    let start = Instant::now();
    let latencies_ms: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut connection = Client::connect(addr).expect("connect");
                    let mut latencies = Vec::with_capacity(queries);
                    for i in 0..queries {
                        let sql = workload_sql(client as u64, i, width, height);
                        let issued = Instant::now();
                        connection.query(&sql).expect("served query");
                        latencies.push(issued.elapsed().as_secs_f64() * 1e3);
                    }
                    connection.quit().ok();
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = start.elapsed();
    let metrics = coordinator.metrics();
    front.shutdown();
    drop(servers);

    ShardPoint {
        shards,
        qps: latencies_ms.len() as f64 / wall.as_secs_f64(),
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
        mean_topk_rounds: metrics.mean_topk_rounds(),
        refined_requests: metrics.topk_refined_requests,
    }
}

/// Measurements from the replicated run: read QPS with one replica per
/// shard, then a primary killed under load with every read still served.
struct ReplicaPoint {
    shards: usize,
    read_qps: f64,
    replica_reads: u64,
    scatter_requests: u64,
    queries_after_kill: u64,
    failovers: u64,
}

fn run_replica_point(
    bench: &BenchDataset,
    shards: usize,
    clients: usize,
    queries: usize,
) -> ReplicaPoint {
    let base = std::env::temp_dir().join(format!(
        "masksearch-bench-replicas-{}-{shards}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&base);
    // Primaries must keep their WAL growing for replicas to tail it.
    let db_config = || {
        DbConfig::default()
            .chi_config(bench.chi_config)
            .checkpoint_wal_bytes(0)
    };

    let map = ShardMap::new(shards).expect("shard map");
    let mut batches: Vec<Vec<_>> = vec![Vec::new(); shards];
    for record in bench.dataset.catalog.records() {
        let mask = bench.store.get(record.mask_id).expect("mask");
        batches[map.shard_for_record(record)].push((record.clone(), mask));
    }
    let dbs: Vec<MaskDb> = (0..shards)
        .map(|i| {
            let db =
                MaskDb::open(base.join(format!("primary-{i}")), db_config()).expect("open primary");
            db.insert_masks(&batches[i]).expect("load shard");
            db
        })
        .collect();
    let mut primaries: Vec<ServerHandle> = dbs
        .iter()
        .map(|db| {
            let session = Session::with_store_maintained_index(
                db.mask_store(),
                db.catalog(),
                SessionConfig::new(bench.chi_config),
                db.chi_store(),
            );
            let engine = Engine::new(session, ServiceConfig::new(2));
            Server::bind("127.0.0.1:0", engine)
                .expect("bind primary")
                .spawn()
        })
        .collect();
    let replicas: Vec<ReplicaShard> = (0..shards)
        .map(|i| {
            let replica = ReplicaShard::start(
                base.join(format!("primary-{i}")),
                base.join(format!("replica-{i}")),
                db_config(),
                SessionConfig::new(bench.chi_config),
                ServiceConfig::new(2),
            )
            .expect("start replica");
            assert!(
                replica.wait_applied(dbs[i].store().wal_bytes(), Duration::from_secs(60)),
                "replica {i} failed to catch up: {:?}",
                replica.tailer_error()
            );
            replica
        })
        .collect();

    let coordinator = Coordinator::connect(
        ClusterConfig::new(
            primaries
                .iter()
                .map(|s| s.local_addr().to_string())
                .collect(),
        )
        .replicas(
            replicas
                .iter()
                .map(|r| vec![r.addr().to_string()])
                .collect(),
        ),
    )
    .expect("coordinator");
    let front = CoordinatorServer::bind("127.0.0.1:0", coordinator.clone())
        .expect("bind front end")
        .spawn();
    let addr = front.local_addr();
    let (width, height) = (bench.spec.mask_width, bench.spec.mask_height);

    let fire = |queries: usize| -> usize {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|client| {
                    scope.spawn(move || {
                        let mut connection = Client::connect(addr).expect("connect");
                        for i in 0..queries {
                            let sql = workload_sql(client as u64, i, width, height);
                            connection.query(&sql).expect("served query");
                        }
                        connection.quit().ok();
                        queries
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client")).sum()
        })
    };

    let start = Instant::now();
    let served = fire(queries);
    let wall = start.elapsed();
    let healthy = coordinator.metrics();

    // Kill one primary and fire the read workload again: every query must
    // still be answered, now via the surviving replica.
    primaries.remove(0).kill();
    let after_kill = fire(queries.div_ceil(2));
    let killed = coordinator.metrics();

    front.shutdown();
    drop(primaries);
    drop(replicas);
    drop(dbs);
    let _ = std::fs::remove_dir_all(&base);

    ReplicaPoint {
        shards,
        read_qps: served as f64 / wall.as_secs_f64(),
        replica_reads: healthy.replica_reads,
        scatter_requests: healthy.shard_requests,
        queries_after_kill: after_kill as u64,
        failovers: killed.failovers,
    }
}

fn main() {
    let scale = scale_from_args(0.002);
    let clients = usize_from_args("clients", 4);
    let queries = usize_from_args("queries", 30);
    let check = std::env::args().any(|a| a == "--check");

    println!("== masksearch-cluster throughput vs. shard count ==");
    println!("dataset: WILDS-like at scale {scale}, {clients} clients x {queries} queries\n");
    let bench = BenchDataset::wilds(scale).expect("generate dataset");

    let points: Vec<ShardPoint> = [1usize, 2, 4]
        .iter()
        .map(|&shards| run_point(&bench, shards, clients, queries))
        .collect();

    let mut table = Table::new(&[
        "shards",
        "QPS",
        "p50 (ms)",
        "p99 (ms)",
        "topk rounds (mean)",
        "refined requests",
    ]);
    for p in &points {
        table.add_row(vec![
            p.shards.to_string(),
            format!("{:.1}", p.qps),
            format!("{:.3}", p.p50_ms),
            format!("{:.3}", p.p99_ms),
            format!("{:.3}", p.mean_topk_rounds),
            p.refined_requests.to_string(),
        ]);
    }
    table.print();

    println!("\n== replicated cluster: replica reads and primary-kill failover ==");
    let replica_point = run_replica_point(&bench, 2, clients, queries);
    println!(
        "2 shards + 1 replica each: {:.1} read QPS, {} of {} shard requests \
         served by replicas; after killing a primary: {} reads served, {} failovers",
        replica_point.read_qps,
        replica_point.replica_reads,
        replica_point.scatter_requests,
        replica_point.queries_after_kill,
        replica_point.failovers,
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"cluster_scaling\",\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"queries_per_client\": {queries},\n"));
    json.push_str(&format!("  \"num_masks\": {},\n", bench.num_masks()));
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"qps\": {:.3}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"mean_topk_rounds\": {:.4}, \"refined_requests\": {}}}{}\n",
            p.shards,
            p.qps,
            p.p50_ms,
            p.p99_ms,
            p.mean_topk_rounds,
            p.refined_requests,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"replica_reads\": {{\"shards\": {}, \"replicas_per_shard\": 1, \
         \"read_qps\": {:.3}, \"replica_reads\": {}, \"shard_requests\": {}}},\n",
        replica_point.shards,
        replica_point.read_qps,
        replica_point.replica_reads,
        replica_point.scatter_requests,
    ));
    json.push_str(&format!(
        "  \"failover\": {{\"killed_primaries\": 1, \"reads_after_kill\": {}, \
         \"failovers\": {}, \"read_errors_after_kill\": 0}}\n",
        replica_point.queries_after_kill, replica_point.failovers,
    ));
    json.push_str("}\n");
    let path = "BENCH_cluster.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_cluster.json");
    println!("\nwrote {path}");

    if check {
        let qps_1 = points.iter().find(|p| p.shards == 1).expect("1-shard").qps;
        let qps_4 = points.iter().find(|p| p.shards == 4).expect("4-shard").qps;
        let speedup = qps_4 / qps_1;
        println!("check: 4-shard speedup {speedup:.2}x over 1 shard (gate: >= 2.5x)");
        if speedup < 2.5 {
            eprintln!(
                "FAIL: pipelined fan-out regression — 4 shards served only \
                 {speedup:.2}x the 1-shard QPS (required >= 2.5x)"
            );
            std::process::exit(1);
        }
        if replica_point.replica_reads == 0 || replica_point.failovers == 0 {
            eprintln!(
                "FAIL: replication gate — expected replica reads (got {}) and \
                 failovers (got {}) to both be nonzero",
                replica_point.replica_reads, replica_point.failovers
            );
            std::process::exit(1);
        }
        println!("check: replica reads and failover exercised — gate passed");
    }
}
