//! Deterministic replay of a flight recording against a live server.
//!
//! Reads a recording produced by the service's flight recorder (`RECORD
//! START` over the wire or `ServiceConfig::record_to`), re-executes every
//! captured statement against a TCP server in the recorded arrival order,
//! and reports a per-shape regression summary: recorded vs. replayed
//! p50/p99 wall time, filter rate, and response-digest agreement. Because
//! the recorder stores an order-insensitive FNV-1a digest of each response
//! frame (wall time excluded), a replay against an equivalent store must
//! reproduce every digest bit-for-bit — any divergence is a real behaviour
//! change, not timing noise.
//!
//! ```text
//! cargo run --release --bin replay -- --input flight.bin --addr 127.0.0.1:7878
//!     [--timing]   # preserve recorded inter-arrival gaps
//!     [--check]    # exit non-zero if any digest diverges
//! cargo run --release --bin replay -- --smoke [--scale 0.001]
//! ```
//!
//! `--smoke` is the self-contained CI cycle: generate a small dataset,
//! serve it, capture a mixed workload over TCP (`RECORD START/STOP`),
//! replay the recording against the same server, and fail on any digest
//! mismatch.

use masksearch_bench::report::{percentile, Table};
use masksearch_bench::{scale_from_args, BenchDataset};
use masksearch_obs::{read_recording, RecordKind, RecordedQuery};
use masksearch_query::IndexingMode;
use masksearch_service::protocol::{self, Frame};
use masksearch_service::{Client, Engine, Server, ServiceConfig, ServiceError};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Parses a string argument of the form `--<name> <value>`.
fn string_from_args(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

/// What replaying one recorded statement produced.
struct Replayed {
    wall_us: u64,
    digest: Option<u64>,
    counters: [u64; 6],
}

/// The request line that re-issues a recorded statement. Tokened mutations
/// get a *fresh* token: the recorded one may still sit in the server's
/// dedup registry, and a replay must re-execute, not be answered from it.
fn request_line(record: &RecordedQuery, fresh_token: u64) -> String {
    match record.kind {
        RecordKind::Statement => record.sql.clone(),
        RecordKind::Tokened => format!("TOKEN {fresh_token} {}", record.sql),
        RecordKind::Partial => format!("PARTIAL K={} {}", record.aux, record.sql),
    }
}

/// Digest of a replayed response, mirroring what the server-side recorder
/// computed for the original. `Remote` carries the peer's wire message
/// verbatim, which is exactly what the server digested for an error.
fn replay_digest(result: &Result<Frame, ServiceError>) -> Option<u64> {
    match result {
        Ok(Frame::Rows(wire)) => Some(protocol::digest_wire_response(wire)),
        Ok(Frame::Plan(lines)) => Some(protocol::digest_plan_lines(lines)),
        Ok(_) => None,
        Err(ServiceError::Remote(msg)) => Some(protocol::digest_error_message(msg)),
        Err(_) => None,
    }
}

/// Replays `records` (already sorted by arrival) against `addr` on one
/// connection — sequential issue order is what makes the replay
/// deterministic. Returns the per-record outcomes.
fn replay(records: &[RecordedQuery], addr: SocketAddr, timing: bool) -> Vec<Replayed> {
    let mut client = Client::connect(addr).expect("connect to replay target");
    // A fresh token base far from the capturing client's counter-based ones.
    let token_base = 0x5EED_0000_0000_0000u64 ^ u64::from(std::process::id()) << 20;
    let started = Instant::now();
    let first_arrival = records.first().map(|r| r.arrival_us).unwrap_or(0);
    records
        .iter()
        .enumerate()
        .map(|(i, record)| {
            if timing {
                let due = Duration::from_micros(record.arrival_us - first_arrival);
                let elapsed = started.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
            }
            let line = request_line(record, token_base + i as u64);
            let issued = Instant::now();
            let result = client.round_trip_raw(&line);
            let wall_us = issued.elapsed().as_micros() as u64;
            let counters = match &result {
                Ok(Frame::Rows(wire)) => [
                    wire.summary.candidates,
                    wire.summary.pruned,
                    wire.summary.verified,
                    wire.summary.loaded,
                    wire.summary.inserted,
                    wire.summary.deleted,
                ],
                _ => [0; 6],
            };
            Replayed {
                wall_us,
                digest: replay_digest(&result),
                counters,
            }
        })
        .collect()
}

/// Per-shape accumulation of recorded vs. replayed behaviour.
#[derive(Default)]
struct ShapeReport {
    recorded_us: Vec<f64>,
    replayed_us: Vec<f64>,
    recorded_counters: [u64; 6],
    replayed_counters: [u64; 6],
    mismatches: u64,
}

/// `1 - loaded/candidates`, the share of candidates the index answered
/// without loading pixels.
fn filter_rate(counters: &[u64; 6]) -> f64 {
    let (candidates, loaded) = (counters[0], counters[3]);
    if candidates == 0 {
        0.0
    } else {
        1.0 - loaded as f64 / candidates as f64
    }
}

/// Builds and prints the regression report; returns the total number of
/// digest mismatches.
fn report(records: &[RecordedQuery], replayed: &[Replayed]) -> u64 {
    let mut shapes: BTreeMap<&str, ShapeReport> = BTreeMap::new();
    for (record, replay) in records.iter().zip(replayed) {
        let entry = shapes.entry(record.shape.as_str()).or_default();
        entry.recorded_us.push(record.wall_us as f64);
        entry.replayed_us.push(replay.wall_us as f64);
        for (slot, v) in entry.recorded_counters.iter_mut().zip(record.counters) {
            *slot += v;
        }
        for (slot, v) in entry.replayed_counters.iter_mut().zip(replay.counters) {
            *slot += v;
        }
        if replay.digest != Some(record.digest) {
            entry.mismatches += 1;
        }
    }
    let mut table = Table::new(&[
        "shape",
        "n",
        "rec p50 (us)",
        "rep p50 (us)",
        "rec p99 (us)",
        "rep p99 (us)",
        "rec filter",
        "rep filter",
        "digest mismatches",
    ]);
    let mut mismatches = 0;
    for (shape, r) in &shapes {
        mismatches += r.mismatches;
        table.add_row(vec![
            shape.to_string(),
            r.recorded_us.len().to_string(),
            format!("{:.0}", percentile(&r.recorded_us, 50.0)),
            format!("{:.0}", percentile(&r.replayed_us, 50.0)),
            format!("{:.0}", percentile(&r.recorded_us, 99.0)),
            format!("{:.0}", percentile(&r.replayed_us, 99.0)),
            format!("{:.3}", filter_rate(&r.recorded_counters)),
            format!("{:.3}", filter_rate(&r.replayed_counters)),
            r.mismatches.to_string(),
        ]);
    }
    table.print();
    mismatches
}

/// The mixed smoke workload: every query shape the service serves (filter,
/// top-k, aggregation, pair), a plan, a plan-with-execution, a write pair,
/// and a statement that fails — errors are part of the recorded contract.
fn smoke_workload() -> Vec<String> {
    let filter = "SELECT image_id FROM masks \
                  WHERE CP(mask, (16, 16, 96, 96), (0.85, 1.0)) < 50 AND model_id = 1";
    let topk = "SELECT mask_id, CP(mask, full, (0.85, 1.0)) AS c \
                FROM masks ORDER BY c DESC LIMIT 5";
    let agg = "SELECT image_id, AVG(CP(mask, object, (0.8, 1.0))) AS s \
               FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 5";
    let pair = "SELECT image_id, CP(INTERSECT(mask > 0.7), full, (0.7, 1.0)) AS s \
                FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 5";
    let pixels: Vec<String> = (0..16).map(|i| format!("{}", i as f32 / 16.0)).collect();
    let insert = format!(
        "INSERT INTO masks VALUES (999983, 424242, 4, 4, ({}))",
        pixels.join(", ")
    );
    let delete = "DELETE FROM masks WHERE mask_id IN (999983)";
    vec![
        filter.to_string(),
        topk.to_string(),
        agg.to_string(),
        pair.to_string(),
        format!("EXPLAIN {filter}"),
        format!("EXPLAIN ANALYZE {topk}"),
        insert,
        delete.to_string(),
        "SELECT bogus FROM masks".to_string(), // deterministic ERR frame
    ]
}

/// The self-contained capture→replay→compare cycle CI runs.
fn smoke(scale: f64) -> i32 {
    println!("== flight-recorder smoke: capture, replay, compare ==");
    let bench = BenchDataset::wilds(scale).expect("generate dataset");
    let engine = Engine::new(bench.session(IndexingMode::Eager), ServiceConfig::new(2));
    let server = Server::bind("127.0.0.1:0", engine)
        .expect("bind server")
        .spawn();
    let path = std::env::temp_dir().join(format!(
        "masksearch-replay-smoke-{}.flight",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .record_start(Some(path.to_str().expect("utf-8 temp path")))
        .expect("RECORD START");
    for sql in smoke_workload() {
        // Errors are expected for the deliberately-bad statement.
        let _ = client.round_trip_raw(&sql);
    }
    let status = client.record_stop().expect("RECORD STOP");
    println!("captured: {status}");

    let records = read_recording(&path).expect("read recording");
    assert_eq!(
        records.len(),
        smoke_workload().len(),
        "every statement must be captured"
    );
    let replayed = replay(&records, server.local_addr(), false);
    let mismatches = report(&records, &replayed);
    std::fs::remove_file(&path).ok();
    server.shutdown();
    if mismatches == 0 {
        println!("\nsmoke passed: all {} digests reproduced", records.len());
        0
    } else {
        eprintln!("\nsmoke FAILED: {mismatches} digest mismatches");
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke(scale_from_args(0.001)));
    }
    let input = string_from_args("input")
        .expect("usage: replay --input <recording> --addr <host:port> [--timing] [--check]");
    let addr: SocketAddr = string_from_args("addr")
        .expect("usage: replay --input <recording> --addr <host:port>")
        .parse()
        .expect("parse --addr");
    let timing = args.iter().any(|a| a == "--timing");
    let check = args.iter().any(|a| a == "--check");

    let mut records = read_recording(std::path::Path::new(&input)).expect("read recording");
    records.sort_by_key(|r| r.arrival_us);
    println!(
        "== replaying {} recorded statements from {input} against {addr} ==",
        records.len()
    );
    let replayed = replay(&records, addr, timing);
    let mismatches = report(&records, &replayed);
    if mismatches == 0 {
        println!("\nall {} response digests reproduced", records.len());
    } else {
        eprintln!("\n{mismatches} response digests diverged from the recording");
        if check {
            std::process::exit(1);
        }
    }
}
