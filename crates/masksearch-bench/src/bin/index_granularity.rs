//! §4.1 / §4.4: index size accounting and the index-granularity trade-off —
//! larger (finer) indexes give tighter bounds and lower FML at the cost of
//! more memory.
//!
//! Usage: `cargo run --release -p masksearch-bench --bin index_granularity -- [--scale 0.01]`

use masksearch_bench::experiments::run_granularity_sweep;
use masksearch_bench::report::{fmt_bytes, Table};
use masksearch_bench::{scale_from_args, BenchDataset};
use masksearch_index::ChiConfig;

fn main() {
    let scale = scale_from_args(0.01);
    println!("== Index size and granularity (paper §4.1 configuration and §4.4 analysis) ==\n");

    for bench in [
        BenchDataset::wilds(scale).expect("generate WILDS-like dataset"),
        BenchDataset::imagenet(scale / 10.0).expect("generate ImageNet-like dataset"),
    ] {
        println!("--- {} ---", bench.name);
        let size = bench.index_size_report();
        println!(
            "dataset: {} uncompressed, ~{} compressed; default index {} ({:.1}% of compressed)",
            fmt_bytes(size.uncompressed_bytes),
            fmt_bytes(size.compressed_bytes),
            fmt_bytes(size.index_bytes),
            size.index_to_compressed_ratio() * 100.0
        );

        let side = bench.spec.mask_width;
        let configs = [
            ChiConfig::new((side / 2).max(1), (side / 2).max(1), 8).unwrap(),
            ChiConfig::new((side / 4).max(1), (side / 4).max(1), 16).unwrap(),
            bench.chi_config,
            ChiConfig::new(
                (bench.chi_config.cell_width() / 2).max(1),
                (bench.chi_config.cell_height() / 2).max(1),
                32,
            )
            .unwrap(),
        ];
        let rows = run_granularity_sweep(&bench, &configs, 15, 99).expect("experiment run");
        let mut table = Table::new(&[
            "cell",
            "bins",
            "total index",
            "% of compressed",
            "mean bound gap",
            "mean FML",
        ]);
        for row in rows {
            table.add_row(vec![
                format!("{}x{}", row.config.cell_width(), row.config.cell_height()),
                row.config.bins().to_string(),
                fmt_bytes(row.index_bytes),
                format!("{:.1}%", row.ratio_to_compressed * 100.0),
                format!("{:.4}", row.mean_relative_gap),
                format!("{:.4}", row.mean_fml),
            ]);
        }
        table.print();
        println!();
    }
}
