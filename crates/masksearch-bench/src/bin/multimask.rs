//! Multi-mask (pair) query benchmark: composed-bound pruning vs. loading
//! both masks of every image.
//!
//! The dataset is a model-regression-audit workload: every image carries a
//! model-v1 and a model-v2 saliency mask; most images agree (v2 is a small
//! perturbation of v1) and a few drifted. The measured queries are the
//! flagship multi-mask shapes — `CP(DIFF(a, b)) > T` disagreement filters at
//! several selectivities and the `IOU` top-k — executed two ways on the same
//! store:
//!
//! * **pruned** — eager CHI indexing + the composed tile kernel: the filter
//!   stage composes the two per-mask CHIs algebraically and loads pixels
//!   only for undecidable images;
//! * **load-both** — indexing disabled: every candidate image loads *both*
//!   masks and runs the fused reference scan (the only plan available
//!   before the mask algebra existed).
//!
//! Every measured query asserts byte-identical rows between the two plans.
//! The reported time is the harness's standard metric — wall clock plus the
//! disk cost model's virtual I/O charge (`QueryStats::modeled_total`, cold
//! cache, EBS-gp3 profile) — because what the mask algebra saves is exactly
//! the *loads*. Results go to `BENCH_multimask.json`; with `--check` the
//! process exits non-zero unless composed-bound pruning beats load-both by
//! ≥ 5× on every *selective* predicate (fraction of pairs verified ≤ 25%)
//! — the CI regression gate required of this workload.
//!
//! ```text
//! cargo run --release --bin multimask -- --images 300 --side 128 --iters 5
//! cargo run --release --bin multimask -- --images 120 --side 96 --iters 3 --check
//! ```

use masksearch_bench::report::Table;
use masksearch_bench::usize_from_args;
use masksearch_core::{ImageId, Mask, MaskId, MaskOp, MaskRecord, ModelId, PixelRange};
use masksearch_index::ChiConfig;
use masksearch_query::{
    Expr, IndexingMode, MaskJoin, Order, Predicate, Query, QueryOutput, RoiSpec, Selection,
    Session, SessionConfig,
};
use masksearch_storage::{Catalog, DiskProfile, MaskEncoding, MaskStore, MemoryMaskStore};
use std::sync::Arc;

struct Point {
    name: String,
    selectivity: f64,
    pruned_ms: f64,
    load_both_ms: f64,
    speedup: f64,
    masks_loaded: u64,
    pairs: u64,
}

/// v1: a saliency blob; v2: the same blob nudged — drastically for every
/// 16th image (the regressions the audit must surface). Most images have
/// focused (sparse) saliency, every 11th a diffuse map — the realistic
/// mixture a disagreement audit runs over, and the one where composed
/// bounds shine: a sparse agreeing pair can be pruned from its two small
/// per-cell tails alone.
fn build_db(images: u64, side: u32) -> (Arc<MemoryMaskStore>, Catalog) {
    // Raw encoding behind the EBS-gp3 cost model: every mask load charges
    // realistic virtual I/O time, the quantity pruning is supposed to save.
    let store = Arc::new(MemoryMaskStore::new(
        MaskEncoding::Raw,
        DiskProfile::ebs_gp3(),
    ));
    let mut catalog = Catalog::new();
    for i in 0..images {
        let sigma = if i % 11 == 0 {
            side as f32 / 5.0 // diffuse saliency: must be verified
        } else {
            side as f32 / 14.0 // focused saliency: prunable
        };
        let blob = move |cx: f32, cy: f32| {
            Mask::from_fn(side, side, move |x, y| {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                (0.95 * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp()).min(0.999)
            })
        };
        let c = side as f32 / 2.0;
        let spread = (i % 13) as f32 / 13.0 - 0.5;
        let v1 = blob(
            c + spread * side as f32 * 0.5,
            c - spread * side as f32 * 0.4,
        );
        let drift = if i % 16 == 0 {
            side as f32 / 3.0 // a regression: saliency moved
        } else {
            (i % 5) as f32 * 0.3 // agreement up to a small jitter
        };
        let v2 = blob(
            c + spread * side as f32 * 0.5 + drift,
            c - spread * side as f32 * 0.4 - drift * 0.5,
        );
        for (slot, (mask, model)) in [(v1, 1u64), (v2, 2u64)].into_iter().enumerate() {
            let id = MaskId::new(i * 2 + slot as u64);
            store.put(id, &mask).unwrap();
            catalog.insert(
                MaskRecord::builder(id)
                    .image_id(ImageId::new(i))
                    .model_id(ModelId::new(model))
                    .shape(side, side)
                    .build(),
            );
        }
    }
    (store, catalog)
}

fn join() -> MaskJoin {
    MaskJoin::new(
        Selection::all().with_model(ModelId::new(1)),
        Selection::all().with_model(ModelId::new(2)),
    )
}

fn time_query(session: &Session, query: &Query, iters: usize) -> (f64, QueryOutput) {
    let output = session.execute(query).expect("warm-up execution");
    let mut best = f64::INFINITY;
    let mut last = output;
    for _ in 0..iters {
        last = session.execute(query).expect("measured execution");
        best = best.min(last.stats.modeled_total().as_secs_f64());
    }
    (best * 1e3, last)
}

fn main() {
    let images = usize_from_args("images", 300) as u64;
    let side = usize_from_args("side", 128) as u32;
    let iters = usize_from_args("iters", 5).max(1);
    let check = std::env::args().any(|a| a == "--check");

    println!("== multi-mask queries: composed-bound pruning vs load-both-masks ==\n");
    let (store, catalog) = build_db(images, side);
    let chi = ChiConfig::new((side / 8).max(1), (side / 8).max(1), 16).unwrap();
    // Cold cache (the paper's setting): every load pays the cost model.
    let pruned = Session::new(
        Arc::clone(&store) as Arc<dyn MaskStore>,
        catalog.clone(),
        SessionConfig::new(chi)
            .threads(4)
            .indexing_mode(IndexingMode::Eager),
    )
    .unwrap();
    let load_both = Session::new(
        Arc::clone(&store) as Arc<dyn MaskStore>,
        catalog,
        SessionConfig::new(chi)
            .threads(4)
            .indexing_mode(IndexingMode::Disabled)
            .tiled_kernel(false),
    )
    .unwrap();

    let range = PixelRange::new(0.5, 1.0).unwrap();
    let area = f64::from(side) * f64::from(side);
    let queries: Vec<(String, Query)> = vec![
        (
            "diff > 8% of pixels (regressions only)".to_string(),
            Query::pair_filter(
                join(),
                Predicate::gt(
                    Expr::cp_composed(MaskOp::Diff, RoiSpec::FullMask, range),
                    area * 0.08,
                ),
            ),
        ),
        (
            "diff > 2% of pixels".to_string(),
            Query::pair_filter(
                join(),
                Predicate::gt(
                    Expr::cp_composed(MaskOp::Diff, RoiSpec::FullMask, range),
                    area * 0.02,
                ),
            ),
        ),
        (
            "intersect < 0.5% (no common saliency)".to_string(),
            Query::pair_filter(
                join(),
                Predicate::lt(
                    Expr::cp_composed(MaskOp::Intersect, RoiSpec::FullMask, range),
                    area * 0.005,
                ),
            ),
        ),
        (
            "iou top-20 asc (worst agreement)".to_string(),
            Query::pair_top_k(join(), Expr::iou(RoiSpec::FullMask, range), 20, Order::Asc),
        ),
        (
            "union > 0 (accept-all from bounds)".to_string(),
            Query::pair_filter(
                join(),
                Predicate::gt(
                    Expr::cp_composed(MaskOp::Union, RoiSpec::FullMask, range),
                    0.0,
                ),
            ),
        ),
    ];

    let mut points = Vec::new();
    for (name, query) in &queries {
        let (pruned_ms, out_pruned) = time_query(&pruned, query, iters);
        let (load_both_ms, out_load) = time_query(&load_both, query, iters);
        assert_eq!(
            out_pruned.rows, out_load.rows,
            "plans diverged on `{name}` — correctness before speed"
        );
        let pairs = out_pruned.stats.pairs_bound.max(1);
        points.push(Point {
            name: name.clone(),
            selectivity: out_pruned.stats.verified as f64 / pairs as f64,
            pruned_ms,
            load_both_ms,
            speedup: load_both_ms / pruned_ms.max(1e-9),
            masks_loaded: out_pruned.stats.masks_loaded,
            pairs,
        });
    }

    let mut table = Table::new(&[
        "query",
        "pairs",
        "verified frac",
        "pruned ms (modeled)",
        "load-both ms (modeled)",
        "speedup",
        "masks loaded",
    ]);
    for p in &points {
        table.add_row(vec![
            p.name.clone(),
            p.pairs.to_string(),
            format!("{:.3}", p.selectivity),
            format!("{:.2}", p.pruned_ms),
            format!("{:.2}", p.load_both_ms),
            format!("{:.2}x", p.speedup),
            p.masks_loaded.to_string(),
        ]);
    }
    table.print();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"multimask\",\n");
    json.push_str(&format!("  \"images\": {images},\n"));
    json.push_str(&format!("  \"side\": {side},\n"));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"pairs\": {}, \"verified_fraction\": {:.6}, \
             \"pruned_ms\": {:.3}, \"load_both_ms\": {:.3}, \"speedup\": {:.3}, \
             \"masks_loaded\": {}}}{}\n",
            p.name,
            p.pairs,
            p.selectivity,
            p.pruned_ms,
            p.load_both_ms,
            p.speedup,
            p.masks_loaded,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_multimask.json", &json).expect("write BENCH_multimask.json");
    println!("\nwrote BENCH_multimask.json");

    // Regression gate: composed-bound pruning must beat load-both by ≥ 5× on
    // every selective predicate (≤ 25% of pairs verified).
    let selective: Vec<&Point> = points.iter().filter(|p| p.selectivity <= 0.25).collect();
    assert!(
        !selective.is_empty(),
        "benchmark produced no selective case to gate"
    );
    let mut ok = true;
    for p in &selective {
        if p.speedup < 5.0 {
            eprintln!(
                "REGRESSION: composed pruning only {:.2}x vs load-both on `{}` \
                 (verified fraction {:.3})",
                p.speedup, p.name, p.selectivity
            );
            ok = false;
        }
    }
    if check && !ok {
        std::process::exit(1);
    }
    if check {
        println!("check passed: composed-bound pruning ≥ 5x on all selective predicates");
    }
}
