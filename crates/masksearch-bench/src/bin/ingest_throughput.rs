//! Ingestion throughput of the durable mask database: masks per second and
//! commit-latency percentiles as a function of batch size, with and without
//! fsync-per-commit.
//!
//! Each configuration opens a fresh database directory, streams the same
//! total number of masks through `insert_masks` in batches of the given
//! size, and reports masks/sec, p50/p99 commit latency, WAL traffic, and
//! checkpoint count. Results are appended to `BENCH_db.json`.
//!
//! ```text
//! cargo run --release --bin ingest_throughput -- --masks 512
//! ```

use masksearch_bench::report::{percentile, Table};
use masksearch_bench::usize_from_args;
use masksearch_core::{ImageId, Mask, MaskId, MaskRecord};
use masksearch_db::{DbConfig, MaskDb};
use masksearch_index::ChiConfig;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

const MASK_SIDE: u32 = 64;

struct IngestPoint {
    batch_size: usize,
    fsync: bool,
    masks_per_sec: f64,
    commit_p50_ms: f64,
    commit_p99_ms: f64,
    wal_mib: f64,
    checkpoints: u64,
}

fn bench_mask(seed: u64) -> Mask {
    Mask::from_fn(MASK_SIDE, MASK_SIDE, move |x, y| {
        ((x * 31 + y * 17 + seed as u32 * 7) % 251) as f32 / 251.0
    })
}

fn bench_record(id: u64) -> MaskRecord {
    MaskRecord::builder(MaskId::new(id))
        .image_id(ImageId::new(id / 4))
        .shape(MASK_SIDE, MASK_SIDE)
        .build()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "masksearch-ingest-bench-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_point(total_masks: usize, batch_size: usize, fsync: bool) -> IngestPoint {
    let dir = scratch_dir(&format!("b{batch_size}-f{fsync}"));
    let db = MaskDb::open(
        &dir,
        DbConfig::default()
            .chi_config(ChiConfig::new(16, 16, 8).unwrap())
            .fsync(fsync),
    )
    .expect("open bench database");

    let mut commit_ms = Vec::with_capacity(total_masks / batch_size + 1);
    let start = Instant::now();
    let mut next_id = 0u64;
    while (next_id as usize) < total_masks {
        let batch: Vec<(MaskRecord, Mask)> = (0..batch_size)
            .map(|i| {
                let id = next_id + i as u64;
                (bench_record(id), bench_mask(id))
            })
            .collect();
        let issued = Instant::now();
        db.insert_masks(&batch).expect("insert batch");
        commit_ms.push(issued.elapsed().as_secs_f64() * 1e3);
        next_id += batch_size as u64;
    }
    let wall = start.elapsed();
    let stats = db.ingest_stats();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);

    IngestPoint {
        batch_size,
        fsync,
        masks_per_sec: next_id as f64 / wall.as_secs_f64(),
        commit_p50_ms: percentile(&commit_ms, 50.0),
        commit_p99_ms: percentile(&commit_ms, 99.0),
        wal_mib: stats.wal_bytes as f64 / (1024.0 * 1024.0),
        checkpoints: stats.checkpoints,
    }
}

fn main() {
    let total_masks = usize_from_args("masks", 384);
    let batch_sizes = [1usize, 8, 32];

    println!("== masksearch-db ingestion throughput ==");
    println!(
        "{total_masks} masks of {MASK_SIDE}x{MASK_SIDE} f32 per configuration; \
         batch sizes {batch_sizes:?}, fsync on/off\n"
    );

    let mut points = Vec::new();
    for &fsync in &[true, false] {
        for &batch_size in &batch_sizes {
            points.push(run_point(total_masks, batch_size, fsync));
        }
    }

    let mut table = Table::new(&[
        "batch",
        "fsync",
        "masks/s",
        "commit p50 (ms)",
        "commit p99 (ms)",
        "WAL (MiB)",
        "checkpoints",
    ]);
    for p in &points {
        table.add_row(vec![
            p.batch_size.to_string(),
            p.fsync.to_string(),
            format!("{:.0}", p.masks_per_sec),
            format!("{:.3}", p.commit_p50_ms),
            format!("{:.3}", p.commit_p99_ms),
            format!("{:.2}", p.wal_mib),
            p.checkpoints.to_string(),
        ]);
    }
    table.print();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"db_ingest_throughput\",\n");
    json.push_str(&format!("  \"masks_per_point\": {total_masks},\n"));
    json.push_str(&format!(
        "  \"mask_bytes\": {},\n",
        MASK_SIDE * MASK_SIDE * 4
    ));
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"batch_size\": {}, \"fsync\": {}, \"masks_per_sec\": {:.1}, \
             \"commit_p50_ms\": {:.4}, \"commit_p99_ms\": {:.4}, \"wal_mib\": {:.3}, \
             \"checkpoints\": {}}}{}\n",
            p.batch_size,
            p.fsync,
            p.masks_per_sec,
            p.commit_p50_ms,
            p.commit_p99_ms,
            p.wal_mib,
            p.checkpoints,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_db.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_db.json");
    println!("\nwrote {path}");
}
