//! Figure 8: distribution of MaskSearch query time across randomized Filter,
//! Top-K, and Aggregation queries.
//!
//! Usage: `cargo run --release -p masksearch-bench --bin fig8_query_types -- [--scale 0.01] [--queries 100]`

use masksearch_bench::experiments::run_query_type_distributions;
use masksearch_bench::report::{five_number_summary, Table};
use masksearch_bench::{scale_from_args, usize_from_args, BenchDataset};

fn main() {
    let scale = scale_from_args(0.01);
    let per_type = usize_from_args("queries", 60);
    println!("== Figure 8: MaskSearch query time by query type ==");
    println!(
        "({per_type} randomized queries per type; paper uses 500; times are modelled end-to-end)\n"
    );

    for bench in [
        BenchDataset::wilds(scale).expect("generate WILDS-like dataset"),
        BenchDataset::imagenet(scale / 10.0).expect("generate ImageNet-like dataset"),
    ] {
        println!("--- {} ---", bench.name);
        let distributions =
            run_query_type_distributions(&bench, per_type, 1234).expect("experiment run");
        let mut table = Table::new(&[
            "query type",
            "min",
            "p25",
            "median",
            "p75",
            "max",
            "median FML",
        ]);
        for (query_type, measurements) in distributions {
            let times: Vec<f64> = measurements.iter().map(|m| m.time_secs).collect();
            let fmls: Vec<f64> = measurements.iter().map(|m| m.fml).collect();
            let (min, p25, median, p75, max) = five_number_summary(&times);
            table.add_row(vec![
                format!("{query_type:?}"),
                format!("{min:.3}s"),
                format!("{p25:.3}s"),
                format!("{median:.3}s"),
                format!("{p75:.3}s"),
                format!("{max:.3}s"),
                format!("{:.4}", masksearch_bench::report::percentile(&fmls, 50.0)),
            ]);
        }
        table.print();
        println!();
    }
}
