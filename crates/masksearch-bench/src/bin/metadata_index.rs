//! Secondary-index microbenchmark: metadata-filtered queries answered by a
//! posting-list probe vs the full catalog scan, on a catalog large enough
//! that candidate *resolution* — not verification — is the cost that moves.
//!
//! The headline shape is a 1%-selective metadata equality filter whose CP
//! predicate every CHI decides from bounds alone (no mask is ever loaded),
//! so the two access paths differ **only** in how they resolve candidates:
//! the scan walks every catalog record, the probe touches one posting list.
//! Two more shapes show where the gain shrinks: a rarer two-column
//! conjunction (the planner picks the cheaper posting list) and a ranked
//! top-k whose verification work is shared by both paths.
//!
//! Every shape asserts byte-identical rows between the indexed and the
//! scanning session before anything is timed, and the indexed session must
//! *prove* it probed (`index_probes` > 0) while the scanning one must not.
//!
//! Two more sections measure the write side of the subsystem: in-place
//! re-masking (metadata `UPDATE`) throughput with and without posting lists
//! to maintain, and cluster `DELETE` latency through a coordinator whose
//! owner index knows the masks (zero `LOOKUP` broadcasts) vs one that must
//! broadcast a `LOOKUP` per statement to locate them.
//!
//! Results go to `BENCH_metaindex.json`; with `--check` the process exits
//! non-zero unless the indexed 1%-selective filter is at least **10×**
//! faster than the scan.
//!
//! ```text
//! cargo run --release --bin metadata_index -- --masks 60000 --iters 9
//! cargo run --release --bin metadata_index -- --masks 40000 --iters 9 --check
//! ```

use masksearch_bench::report::Table;
use masksearch_bench::usize_from_args;
use masksearch_cluster::{ClusterConfig, Coordinator};
use masksearch_core::{ImageId, Label, Mask, MaskId, MaskRecord, ModelId};
use masksearch_index::ChiConfig;
use masksearch_query::{IndexingMode, QueryOutput, Session, SessionConfig};
use masksearch_service::{Engine, Server, ServerHandle, ServiceConfig};
use masksearch_sql::{compile, compile_statement, Statement};
use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};
use std::sync::Arc;
use std::time::Instant;

const W: u32 = 8;
const H: u32 = 8;
/// Distinct predicted labels: an equality filter selects exactly 1%.
const LABELS: u64 = 100;
/// Distinct models. Coprime with `LABELS` so the two-column conjunction
/// below really intersects (1% ∩ 1/7 ≈ 0.14%) instead of one column
/// implying the other.
const MODELS: u64 = 7;

fn mask_for(id: u64) -> Mask {
    let mut state = id.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    Mask::from_fn(W, H, move |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 40) as f32) / (1u64 << 24) as f32
    })
}

fn session_over(store: &Arc<MemoryMaskStore>, catalog: Catalog, indexed: bool) -> Session {
    let session = Session::new(
        Arc::clone(store) as Arc<dyn MaskStore>,
        catalog,
        SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap())
            .threads(1)
            .indexing_mode(IndexingMode::Eager),
    )
    .expect("bench session");
    if indexed {
        for sql in [
            "CREATE INDEX by_label ON masks (predicted_label)",
            "CREATE INDEX by_model ON masks (model_id)",
        ] {
            match masksearch_sql::compile_statement(sql).expect("compile DDL") {
                Statement::Mutation(m) => {
                    session.apply(&m).expect("create index");
                }
                _ => unreachable!(),
            }
        }
    }
    session
}

/// Best-of-N on the modeled metric, after warm-ups that build the CHIs and
/// mature the shape statistics.
fn time_query(session: &Session, sql: &str, iters: usize) -> (f64, QueryOutput) {
    let query = compile(sql).expect("compile bench query");
    let mut last = session.execute(&query).expect("warm-up execution");
    for _ in 0..2 {
        last = session.execute(&query).expect("warm-up execution");
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        last = session.execute(&query).expect("measured execution");
        best = best.min(last.stats.modeled_total().as_secs_f64());
    }
    (best * 1e3, last)
}

/// Applies one mutation statement to a session.
fn apply(session: &Session, sql: &str) {
    match compile_statement(sql).expect("compile mutation") {
        Statement::Mutation(m) => {
            session.apply(&m).expect("apply mutation");
        }
        _ => unreachable!("not a mutation: {sql}"),
    }
}

/// In-place re-masking throughput: `ops` metadata `UPDATE`s against one
/// session, in statements-per-second. On the indexed session every update
/// also maintains the affected posting lists.
fn update_throughput(session: &Session, masks: u64, ops: u64) -> f64 {
    let start = Instant::now();
    for i in 0..ops {
        let id = (i * 97) % masks;
        apply(
            session,
            &format!(
                "UPDATE masks SET model_id = {}, predicted_label = {} WHERE mask_id = {id}",
                (id + i) % MODELS + 1,
                (id + i) % LABELS,
            ),
        );
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// One memory-backed shard server for the cluster section.
fn memory_shard() -> ServerHandle {
    let store = Arc::new(MemoryMaskStore::for_tests());
    let session = Session::new(
        store as Arc<dyn MaskStore>,
        Catalog::new(),
        SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap())
            .threads(1)
            .indexing_mode(IndexingMode::Eager),
    )
    .expect("shard session");
    Server::bind("127.0.0.1:0", Engine::new(session, ServiceConfig::new(2)))
        .expect("bind shard")
        .spawn()
}

/// An `INSERT` tuple for mask `id` (no metadata; the cluster section only
/// deletes).
fn tuple_for(id: u64) -> String {
    let mask = mask_for(id);
    let pixels: Vec<String> = mask.data().iter().map(|v| format!("{v}")).collect();
    format!("({id}, {}, {W}, {H}, ({}))", id / 2, pixels.join(", "))
}

/// Cluster `DELETE` latency, owner index vs `LOOKUP` broadcast: ingests `n`
/// masks into a two-shard cluster through one coordinator (whose owner
/// index therefore knows every id), then deletes half the ids through it
/// (zero broadcasts) and the other half through a coordinator connected
/// *before* ingest (one `LOOKUP` broadcast per statement). Returns
/// `((warm ops/s, warm broadcasts), (cold ops/s, cold broadcasts))`.
fn cluster_delete_section(n: u64) -> ((f64, u64), (f64, u64)) {
    let shards: Vec<ServerHandle> = (0..2).map(|_| memory_shard()).collect();
    let addrs: Vec<String> = shards.iter().map(|s| s.local_addr().to_string()).collect();
    let cold = Coordinator::connect(ClusterConfig::new(addrs.clone())).expect("cold coordinator");
    let warm = Coordinator::connect(ClusterConfig::new(addrs)).expect("warm coordinator");
    let ids: Vec<u64> = (0..n).collect();
    for batch in ids.chunks(64) {
        let tuples: Vec<String> = batch.iter().map(|&id| tuple_for(id)).collect();
        warm.execute_sql(&format!("INSERT INTO masks VALUES {}", tuples.join(", ")))
            .expect("cluster insert");
    }
    let timed = |coordinator: &Coordinator, ids: std::iter::StepBy<std::ops::Range<u64>>| {
        let before = coordinator.metrics().lookup_broadcasts;
        let start = Instant::now();
        let mut ops = 0u64;
        for id in ids {
            coordinator
                .execute_sql(&format!("DELETE FROM masks WHERE mask_id IN ({id})"))
                .expect("cluster delete");
            ops += 1;
        }
        (
            ops as f64 / start.elapsed().as_secs_f64(),
            coordinator.metrics().lookup_broadcasts - before,
        )
    };
    let warm_result = timed(&warm, (0..n).step_by(2));
    let cold_result = timed(&cold, (1..n).step_by(2));
    for shard in shards {
        shard.shutdown();
    }
    (warm_result, cold_result)
}

fn main() {
    let masks = usize_from_args("masks", 60_000) as u64;
    let iters = usize_from_args("iters", 9).max(1);
    let check = std::env::args().any(|a| a == "--check");

    println!("== secondary metadata indexes: posting-list probe vs catalog scan ==\n");
    let store = Arc::new(MemoryMaskStore::for_tests());
    let mut catalog = Catalog::new();
    for id in 0..masks {
        store.put(MaskId::new(id), &mask_for(id)).expect("ingest");
        catalog.insert(
            MaskRecord::builder(MaskId::new(id))
                .image_id(ImageId::new(id / 2))
                .model_id(ModelId::new(id % MODELS + 1))
                .predicted_label(Label::new(id % LABELS))
                .shape(W, H)
                .build(),
        );
    }
    let indexed = session_over(&store, catalog.clone(), true);
    let scan = session_over(&store, catalog, false);

    // `(0.0, 1.0)` covers the whole value domain, so every CHI decides the
    // predicate from bounds alone: the headline shape never loads a mask
    // and its cost is purely candidate resolution.
    let shapes: [(&str, &str, String); 3] = [
        (
            "1% equality filter (bounds-decided)",
            "1.00%",
            "SELECT mask_id FROM masks WHERE CP(mask, full, (0.0, 1.0)) > 0 \
             AND predicted_label = 7"
                .to_string(),
        ),
        (
            "0.14% conjunction (cheapest posting list)",
            "0.14%",
            "SELECT mask_id FROM masks WHERE CP(mask, full, (0.0, 1.0)) > 0 \
             AND model_id = 3 AND predicted_label = 42"
                .to_string(),
        ),
        (
            "1% filter + verified top-10",
            "1.00%",
            "SELECT mask_id, CP(mask, full, (0.5, 1.0)) AS s FROM masks \
             WHERE predicted_label = 7 ORDER BY s DESC LIMIT 10"
                .to_string(),
        ),
    ];

    let mut table = Table::new(&["shape", "selectivity", "scan ms", "index ms", "speedup"]);
    let mut results = Vec::new();
    for (shape, selectivity, sql) in &shapes {
        let (index_ms, via_index) = time_query(&indexed, sql, iters);
        let (scan_ms, via_scan) = time_query(&scan, sql, iters);
        assert_eq!(
            via_index.rows, via_scan.rows,
            "index and scan diverged on `{shape}` — correctness before speed"
        );
        assert!(
            via_index.stats.index_probes > 0 && via_index.stats.planner_index_on > 0,
            "indexed session never probed on `{shape}`"
        );
        assert_eq!(
            via_scan.stats.index_probes, 0,
            "scanning session probed an index on `{shape}`"
        );
        let speedup = scan_ms / index_ms.max(1e-9);
        eprintln!(
            "  [{shape}] rows={} probes={} probe_rows={} loaded=({},{}) \
             filter=({:?},{:?}) verify=({:?},{:?}) total=({:?},{:?})",
            via_index.rows.len(),
            via_index.stats.index_probes,
            via_index.stats.index_rows,
            via_index.stats.masks_loaded,
            via_scan.stats.masks_loaded,
            via_index.stats.filter_wall,
            via_scan.stats.filter_wall,
            via_index.stats.verify_wall,
            via_scan.stats.verify_wall,
            via_index.stats.total_wall,
            via_scan.stats.total_wall,
        );
        table.add_row(vec![
            shape.to_string(),
            selectivity.to_string(),
            format!("{scan_ms:.3}"),
            format!("{index_ms:.3}"),
            format!("{speedup:.1}x"),
        ]);
        results.push((shape, selectivity, scan_ms, index_ms, speedup));
    }
    table.print();

    // ---- In-place re-masking (UPDATE) throughput --------------------------
    let ops = (masks / 10).clamp(500, 5_000);
    let updates_indexed = update_throughput(&indexed, masks, ops);
    let updates_plain = update_throughput(&scan, masks, ops);
    println!(
        "\nmetadata UPDATE throughput ({ops} statements): \
         {updates_indexed:.0}/s maintaining posting lists, {updates_plain:.0}/s without"
    );

    // ---- Cluster DELETE: owner index vs LOOKUP broadcast ------------------
    let cluster_masks = 1_000u64;
    let ((warm_ops, warm_broadcasts), (cold_ops, cold_broadcasts)) =
        cluster_delete_section(cluster_masks);
    assert_eq!(
        warm_broadcasts, 0,
        "the ingesting coordinator's owner index must answer every DELETE"
    );
    assert_eq!(
        cold_broadcasts,
        cluster_masks / 2,
        "a cold coordinator must broadcast one LOOKUP per DELETE"
    );
    println!(
        "cluster DELETE ({} statements each): {warm_ops:.0}/s via owner index \
         ({warm_broadcasts} broadcasts), {cold_ops:.0}/s resolving by LOOKUP \
         broadcast ({cold_broadcasts} broadcasts)",
        cluster_masks / 2
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"metadata_index\",\n");
    json.push_str(&format!("  \"masks\": {masks},\n"));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str("  \"results\": [\n");
    for (i, (shape, selectivity, scan_ms, index_ms, speedup)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shape\": \"{shape}\", \"selectivity\": \"{selectivity}\", \
             \"scan_ms\": {scan_ms:.4}, \"index_ms\": {index_ms:.4}, \
             \"speedup\": {speedup:.2}}}{}\n",
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"update_throughput\": {{\"statements\": {ops}, \
         \"indexed_per_s\": {updates_indexed:.0}, \"plain_per_s\": {updates_plain:.0}}},\n"
    ));
    json.push_str(&format!(
        "  \"cluster_delete\": {{\"statements_each\": {}, \
         \"owner_index_per_s\": {warm_ops:.0}, \"owner_index_broadcasts\": {warm_broadcasts}, \
         \"lookup_broadcast_per_s\": {cold_ops:.0}, \"lookup_broadcasts\": {cold_broadcasts}}}\n",
        cluster_masks / 2
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_metaindex.json", &json).expect("write BENCH_metaindex.json");
    println!("\nwrote BENCH_metaindex.json");

    // Gate: the 1%-selective equality filter must be ≥ 10× faster through
    // the index than through the scan.
    let headline = results[0].4;
    if check && headline < 10.0 {
        eprintln!(
            "REGRESSION: indexed 1%-selective filter only {headline:.1}x the scan (gate: 10x)"
        );
        std::process::exit(1);
    }
    if check {
        println!("check passed: indexed 1%-selective filter {headline:.1}x the scan");
    }
}
