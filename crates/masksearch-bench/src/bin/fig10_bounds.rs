//! Figure 10: distribution of the CP bounds computed by MaskSearch and the
//! induced FML as a function of the count threshold, for combinations of
//! (dataset, index size, pixel-value range).
//!
//! Usage: `cargo run --release -p masksearch-bench --bin fig10_bounds -- [--scale 0.01] [--sample 500]`

use masksearch_bench::experiments::run_bounds_distribution;
use masksearch_bench::report::{fmt_bytes, Table};
use masksearch_bench::{scale_from_args, usize_from_args, BenchDataset};
use masksearch_core::PixelRange;
use masksearch_index::ChiConfig;

fn main() {
    let scale = scale_from_args(0.01);
    let sample = usize_from_args("sample", 500);
    println!("== Figure 10: distribution of CP bounds and FML vs. threshold ==");
    println!("(bounds computed for {sample} sampled masks; ROI = per-mask object box)\n");

    for bench in [
        BenchDataset::wilds(scale).expect("generate WILDS-like dataset"),
        BenchDataset::imagenet(scale / 10.0).expect("generate ImageNet-like dataset"),
    ] {
        println!("--- {} ---", bench.name);
        // The dataset's default configuration (≈5% index) and a 4x finer one
        // (the paper's "larger index" variant).
        let default_cfg = bench.chi_config;
        let finer = ChiConfig::new(
            (default_cfg.cell_width() / 2).max(1),
            (default_cfg.cell_height() / 2).max(1),
            default_cfg.bins() * 2,
        )
        .unwrap();
        let ranges = [
            PixelRange::new(0.6, 1.0).unwrap(),
            PixelRange::new(0.8, 1.0).unwrap(),
        ];
        let distributions = run_bounds_distribution(&bench, &[default_cfg, finer], &ranges, sample)
            .expect("experiment run");
        let mut table = Table::new(&[
            "index/mask",
            "range",
            "mean bound gap (frac of ROI)",
            "FML @T=2%",
            "FML @T=5%",
            "FML @T=10%",
            "FML @T=20%",
            "FML @T=40%",
        ]);
        for dist in distributions {
            let mut cells = vec![
                fmt_bytes(dist.index_bytes_per_mask),
                format!("({}, {})", dist.range.lo(), dist.range.hi()),
                format!("{:.4}", dist.mean_relative_gap),
            ];
            for (_, fml) in &dist.fml_at_threshold {
                cells.push(format!("{fml:.3}"));
            }
            table.add_row(cells);
        }
        table.print();
        println!();
    }
}
