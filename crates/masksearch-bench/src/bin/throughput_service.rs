//! Service-layer throughput experiment: served QPS and latency percentiles
//! as a function of worker-pool size, plus the tracing-overhead gate.
//!
//! A fleet of client threads fires a mixed filter / top-k / aggregation
//! workload at one [`Engine`] (the multi-client scenario of the MaskSearch
//! demonstration). For each worker count the experiment reports completed
//! queries per second, p50/p99 end-to-end latency, the server-wide filter
//! rate, and the lock-wait time the observability counters attribute to the
//! session catalog and mask cache (the diagnosis instruments for the
//! 1→2-worker QPS plateau), and appends the results to
//! `BENCH_service.json`.
//!
//! ```text
//! cargo run --release --bin throughput_service -- \
//!     --scale 0.002 --clients 8 --queries 40 [--check]
//! ```
//!
//! With `--check` the experiment additionally interleaves tracing-enabled
//! and tracing-disabled runs at a fixed worker count and exits non-zero if
//! tracing costs more than 3% of p50 latency — the observability layer's
//! overhead budget, enforced in CI. The same interleaved methodology gates
//! the flight recorder: a recorder-on engine must stay within 3% of an
//! uncontended recorder-off p50.

use masksearch_bench::report::{percentile, Table};
use masksearch_bench::{scale_from_args, usize_from_args, BenchDataset};
use masksearch_datagen::RandomQueryGenerator;
use masksearch_obs::counters;
use masksearch_query::{IndexingMode, Query};
use masksearch_service::{Engine, ServiceConfig};
use masksearch_storage::MaskStore;
use std::io::Write;
use std::time::Instant;

/// Allowed tracing overhead on p50 latency, as a fraction.
const TRACING_BUDGET: f64 = 0.03;
/// Allowed flight-recorder overhead on p50 latency, as a fraction.
const RECORDER_BUDGET: f64 = 0.03;
/// Alternation rounds for the `--check` gate.
const CHECK_ROUNDS: usize = 16;
/// Queries per engine per alternation round.
const CHECK_BATCH: usize = 20;

struct WorkerPoint {
    workers: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    filter_rate: f64,
    catalog_wait_ms: f64,
    catalog_acquires: u64,
    cache_wait_ms: f64,
}

fn mixed_workload(client: u64, queries: usize, width: u32, height: u32) -> Vec<Query> {
    let mut generator = RandomQueryGenerator::new(9000 + client, width, height);
    (0..queries)
        .map(|i| match i % 3 {
            0 => generator.filter_query(),
            1 => generator.topk_query(),
            _ => generator.aggregation_query(),
        })
        .collect()
}

/// Value of one named counter in a [`counters::snapshot`].
fn counter_value(snapshot: &[(&'static str, u64)], name: &str) -> u64 {
    snapshot
        .iter()
        .find(|(k, _)| *k == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn run_point(
    bench: &BenchDataset,
    workers: usize,
    clients: usize,
    queries: usize,
    tracing: bool,
) -> WorkerPoint {
    let session = bench.session(IndexingMode::Eager);
    bench.store.io_stats().reset();
    let engine = Engine::new(session, ServiceConfig::new(workers).tracing(tracing));
    let before = counters::snapshot();

    let start = Instant::now();
    let mut handles = Vec::new();
    for client in 0..clients {
        let engine = engine.clone();
        let workload = mixed_workload(
            client as u64,
            queries,
            bench.spec.mask_width,
            bench.spec.mask_height,
        );
        handles.push(std::thread::spawn(move || {
            let mut latencies_ms = Vec::with_capacity(workload.len());
            for query in &workload {
                let issued = Instant::now();
                engine.execute(query).expect("served query");
                latencies_ms.push(issued.elapsed().as_secs_f64() * 1e3);
            }
            latencies_ms
        }));
    }
    let latencies_ms: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = start.elapsed();
    let metrics = engine.metrics();
    let after = counters::snapshot();
    engine.shutdown();

    let delta = |name: &str| {
        (counter_value(&after, name).saturating_sub(counter_value(&before, name))) as f64 / 1e3
    };
    WorkerPoint {
        workers,
        qps: latencies_ms.len() as f64 / wall.as_secs_f64(),
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
        mean_ms: latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64,
        filter_rate: metrics.filter_rate,
        catalog_wait_ms: delta("catalog_read_wait_us") + delta("catalog_write_wait_us"),
        catalog_acquires: counter_value(&after, "catalog_lock_acquires")
            .saturating_sub(counter_value(&before, "catalog_lock_acquires")),
        cache_wait_ms: delta("cache_lock_wait_us"),
    }
}

/// The tracing-overhead gate. Two long-lived engines over the same warmed
/// dataset — one tracing, one not — served by a single client alternating
/// `CHECK_BATCH`-query batches between them for `CHECK_ROUNDS` rounds.
/// Separate whole-run comparisons cannot resolve a 3% budget: the machine's
/// baseline p50 drifts by far more than that between runs. Fine-grained
/// alternation makes the drift common-mode, so the p50 difference between
/// the two latency populations is the per-query cost of span recording
/// itself. Single client + single worker keep queueing noise out entirely.
/// Returns `(p50_off_ms, p50_on_ms, paired_delta_ms, passed)`.
fn tracing_overhead(bench: &BenchDataset) -> (f64, f64, f64, bool) {
    let engine_off = Engine::new(
        bench.session(IndexingMode::Eager),
        ServiceConfig::new(1).tracing(false),
    );
    let engine_on = Engine::new(
        bench.session(IndexingMode::Eager),
        ServiceConfig::new(1).tracing(true),
    );
    let workload = mixed_workload(
        77,
        CHECK_BATCH,
        bench.spec.mask_width,
        bench.spec.mask_height,
    );
    let batch = |engine: &Engine, sink: &mut Vec<f64>| {
        for query in &workload {
            let issued = Instant::now();
            engine.execute(query).expect("served query");
            sink.push(issued.elapsed().as_secs_f64() * 1e3);
        }
    };
    let (mut off_ms, mut on_ms) = (Vec::new(), Vec::new());
    // Warm both engines (cache fills, lazy allocations) before measuring.
    batch(&engine_off, &mut Vec::new());
    batch(&engine_on, &mut Vec::new());
    // Alternate which engine goes first each round: clock drift within a
    // round (turbo/thermal ramps) would otherwise systematically favour
    // whichever engine always ran earlier.
    for round in 0..CHECK_ROUNDS {
        if round % 2 == 0 {
            batch(&engine_off, &mut off_ms);
            batch(&engine_on, &mut on_ms);
        } else {
            batch(&engine_on, &mut on_ms);
            batch(&engine_off, &mut off_ms);
        }
    }
    engine_off.shutdown();
    engine_on.shutdown();
    let (p50_off, p50_on) = (percentile(&off_ms, 50.0), percentile(&on_ms, 50.0));
    let delta = paired_delta_ms(&off_ms, &on_ms);
    (p50_off, p50_on, delta, delta <= p50_off * TRACING_BUDGET)
}

/// The flight-recorder overhead gate: the same interleaved-batch
/// methodology as [`tracing_overhead`], but the workload goes through the
/// SQL entry points the recorder wraps — one engine capturing every
/// statement to a temp file, one not. Returns
/// `(p50_off_ms, p50_on_ms, paired_delta_ms, passed)`.
fn recorder_overhead(bench: &BenchDataset) -> (f64, f64, f64, bool) {
    let record_path = std::env::temp_dir().join(format!(
        "masksearch-recorder-overhead-{}.flight",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&record_path);
    let engine_off = Engine::new(bench.session(IndexingMode::Eager), ServiceConfig::new(1));
    let engine_on = Engine::new(
        bench.session(IndexingMode::Eager),
        ServiceConfig::new(1).record_to(&record_path),
    );
    let statements = [
        "SELECT image_id FROM masks \
         WHERE CP(mask, (8, 8, 56, 56), (0.85, 1.0)) < 50 AND model_id = 1",
        "SELECT mask_id, CP(mask, full, (0.85, 1.0)) AS c \
         FROM masks ORDER BY c DESC LIMIT 5",
        "SELECT image_id, AVG(CP(mask, object, (0.8, 1.0))) AS s \
         FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 5",
    ];
    let batch = |engine: &Engine, sink: &mut Vec<f64>| {
        for i in 0..CHECK_BATCH {
            let sql = statements[i % statements.len()];
            let issued = Instant::now();
            engine.execute_statement(sql).expect("served statement");
            sink.push(issued.elapsed().as_secs_f64() * 1e3);
        }
    };
    let (mut off_ms, mut on_ms) = (Vec::new(), Vec::new());
    batch(&engine_off, &mut Vec::new());
    batch(&engine_on, &mut Vec::new());
    // Alternating order per round, as in `tracing_overhead`.
    for round in 0..CHECK_ROUNDS {
        if round % 2 == 0 {
            batch(&engine_off, &mut off_ms);
            batch(&engine_on, &mut on_ms);
        } else {
            batch(&engine_on, &mut on_ms);
            batch(&engine_off, &mut off_ms);
        }
    }
    engine_off.shutdown();
    engine_on.shutdown();
    std::fs::remove_file(&record_path).ok();
    let (p50_off, p50_on) = (percentile(&off_ms, 50.0), percentile(&on_ms, 50.0));
    let delta = paired_delta_ms(&off_ms, &on_ms);
    (p50_off, p50_on, delta, delta <= p50_off * RECORDER_BUDGET)
}

/// The gate statistic: both engines served the identical statement sequence,
/// so `off` and `on` are paired sample-by-sample. The median of the paired
/// differences cancels the workload's latency multimodality (a whole-
/// population p50 sits on a mode boundary and flaps run to run), leaving
/// only the per-query cost of the instrument under test; the gates require
/// it to stay within their budget fraction of the baseline p50.
fn paired_delta_ms(off_ms: &[f64], on_ms: &[f64]) -> f64 {
    let diffs: Vec<f64> = off_ms.iter().zip(on_ms).map(|(o, n)| n - o).collect();
    percentile(&diffs, 50.0)
}

fn main() {
    let scale = scale_from_args(0.002);
    let clients = usize_from_args("clients", 8);
    let queries = usize_from_args("queries", 40);
    let check = std::env::args().any(|a| a == "--check");
    let max_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);

    println!("== masksearch-service throughput vs. worker count ==");
    println!("dataset: WILDS-like at scale {scale}, {clients} clients x {queries} queries\n");
    let bench = BenchDataset::wilds(scale).expect("generate dataset");

    let mut worker_counts = vec![1usize, 2, 4, 8];
    worker_counts.retain(|&w| w <= max_workers.max(1) * 2);
    let points: Vec<WorkerPoint> = worker_counts
        .iter()
        .map(|&workers| run_point(&bench, workers, clients, queries, true))
        .collect();

    let mut table = Table::new(&[
        "workers",
        "QPS",
        "p50 (ms)",
        "p99 (ms)",
        "mean (ms)",
        "filter rate",
        "catalog wait (ms)",
        "catalog acquires",
        "cache wait (ms)",
    ]);
    for p in &points {
        table.add_row(vec![
            p.workers.to_string(),
            format!("{:.1}", p.qps),
            format!("{:.3}", p.p50_ms),
            format!("{:.3}", p.p99_ms),
            format!("{:.3}", p.mean_ms),
            format!("{:.3}", p.filter_rate),
            format!("{:.1}", p.catalog_wait_ms),
            p.catalog_acquires.to_string(),
            format!("{:.1}", p.cache_wait_ms),
        ]);
    }
    table.print();

    let overhead = check.then(|| {
        let (off_ms, on_ms, delta_ms, passed) = tracing_overhead(&bench);
        let pct = delta_ms / off_ms * 100.0;
        println!(
            "\ntracing overhead: p50 off={off_ms:.3} ms on={on_ms:.3} ms \
             paired median delta={delta_ms:+.4} ms ({pct:+.2}% of p50, budget {:.0}%)",
            TRACING_BUDGET * 100.0
        );
        (off_ms, on_ms, delta_ms, passed)
    });
    let rec_overhead = check.then(|| {
        let (off_ms, on_ms, delta_ms, passed) = recorder_overhead(&bench);
        let pct = delta_ms / off_ms * 100.0;
        println!(
            "recorder overhead: p50 off={off_ms:.3} ms on={on_ms:.3} ms \
             paired median delta={delta_ms:+.4} ms ({pct:+.2}% of p50, budget {:.0}%)",
            RECORDER_BUDGET * 100.0
        );
        (off_ms, on_ms, delta_ms, passed)
    });

    // Machine-readable output.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"service_throughput\",\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"queries_per_client\": {queries},\n"));
    json.push_str(&format!("  \"num_masks\": {},\n", bench.num_masks()));
    if let Some((off_ms, on_ms, delta_ms, passed)) = overhead {
        json.push_str(&format!(
            "  \"tracing_overhead\": {{\"p50_off_ms\": {off_ms:.4}, \"p50_on_ms\": {on_ms:.4}, \
             \"paired_delta_ms\": {delta_ms:.4}, \"budget\": {TRACING_BUDGET}, \
             \"passed\": {passed}}},\n"
        ));
    }
    if let Some((off_ms, on_ms, delta_ms, passed)) = rec_overhead {
        json.push_str(&format!(
            "  \"recorder_overhead\": {{\"p50_off_ms\": {off_ms:.4}, \"p50_on_ms\": {on_ms:.4}, \
             \"paired_delta_ms\": {delta_ms:.4}, \"budget\": {RECORDER_BUDGET}, \
             \"passed\": {passed}}},\n"
        ));
    }
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"qps\": {:.3}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"mean_ms\": {:.4}, \"filter_rate\": {:.4}, \"catalog_wait_ms\": {:.2}, \
             \"catalog_acquires\": {}, \"cache_wait_ms\": {:.2}}}{}\n",
            p.workers,
            p.qps,
            p.p50_ms,
            p.p99_ms,
            p.mean_ms,
            p.filter_rate,
            p.catalog_wait_ms,
            p.catalog_acquires,
            p.cache_wait_ms,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_service.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_service.json");
    println!("\nwrote {path}");

    let mut failed = false;
    if let Some((_, _, _, passed)) = overhead {
        if passed {
            println!("check passed: tracing overhead within the p50 budget");
        } else {
            eprintln!("check FAILED: tracing overhead exceeds the p50 budget");
            failed = true;
        }
    }
    if let Some((_, _, _, passed)) = rec_overhead {
        if passed {
            println!("check passed: recorder overhead within the p50 budget");
        } else {
            eprintln!("check FAILED: recorder overhead exceeds the p50 budget");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
