//! Service-layer throughput experiment: served QPS and latency percentiles
//! as a function of worker-pool size.
//!
//! A fleet of client threads fires a mixed filter / top-k / aggregation
//! workload at one [`Engine`] (the multi-client scenario of the MaskSearch
//! demonstration). For each worker count the experiment reports completed
//! queries per second, p50/p99 end-to-end latency, and the server-wide
//! filter rate, and appends the results to `BENCH_service.json`.
//!
//! ```text
//! cargo run --release --bin throughput_service -- \
//!     --scale 0.002 --clients 8 --queries 40
//! ```

use masksearch_bench::report::{percentile, Table};
use masksearch_bench::{scale_from_args, usize_from_args, BenchDataset};
use masksearch_datagen::RandomQueryGenerator;
use masksearch_query::{IndexingMode, Query};
use masksearch_service::{Engine, ServiceConfig};
use masksearch_storage::MaskStore;
use std::io::Write;
use std::time::Instant;

struct WorkerPoint {
    workers: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    filter_rate: f64,
}

fn mixed_workload(client: u64, queries: usize, width: u32, height: u32) -> Vec<Query> {
    let mut generator = RandomQueryGenerator::new(9000 + client, width, height);
    (0..queries)
        .map(|i| match i % 3 {
            0 => generator.filter_query(),
            1 => generator.topk_query(),
            _ => generator.aggregation_query(),
        })
        .collect()
}

fn run_point(bench: &BenchDataset, workers: usize, clients: usize, queries: usize) -> WorkerPoint {
    let session = bench.session(IndexingMode::Eager);
    bench.store.io_stats().reset();
    let engine = Engine::new(session, ServiceConfig::new(workers));

    let start = Instant::now();
    let mut handles = Vec::new();
    for client in 0..clients {
        let engine = engine.clone();
        let workload = mixed_workload(
            client as u64,
            queries,
            bench.spec.mask_width,
            bench.spec.mask_height,
        );
        handles.push(std::thread::spawn(move || {
            let mut latencies_ms = Vec::with_capacity(workload.len());
            for query in &workload {
                let issued = Instant::now();
                engine.execute(query).expect("served query");
                latencies_ms.push(issued.elapsed().as_secs_f64() * 1e3);
            }
            latencies_ms
        }));
    }
    let latencies_ms: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = start.elapsed();
    let metrics = engine.metrics();
    engine.shutdown();

    WorkerPoint {
        workers,
        qps: latencies_ms.len() as f64 / wall.as_secs_f64(),
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
        mean_ms: latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64,
        filter_rate: metrics.filter_rate,
    }
}

fn main() {
    let scale = scale_from_args(0.002);
    let clients = usize_from_args("clients", 8);
    let queries = usize_from_args("queries", 40);
    let max_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);

    println!("== masksearch-service throughput vs. worker count ==");
    println!("dataset: WILDS-like at scale {scale}, {clients} clients x {queries} queries\n");
    let bench = BenchDataset::wilds(scale).expect("generate dataset");

    let mut worker_counts = vec![1usize, 2, 4, 8];
    worker_counts.retain(|&w| w <= max_workers.max(1) * 2);
    let points: Vec<WorkerPoint> = worker_counts
        .iter()
        .map(|&workers| run_point(&bench, workers, clients, queries))
        .collect();

    let mut table = Table::new(&[
        "workers",
        "QPS",
        "p50 (ms)",
        "p99 (ms)",
        "mean (ms)",
        "filter rate",
    ]);
    for p in &points {
        table.add_row(vec![
            p.workers.to_string(),
            format!("{:.1}", p.qps),
            format!("{:.3}", p.p50_ms),
            format!("{:.3}", p.p99_ms),
            format!("{:.3}", p.mean_ms),
            format!("{:.3}", p.filter_rate),
        ]);
    }
    table.print();

    // Machine-readable output.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"service_throughput\",\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"queries_per_client\": {queries},\n"));
    json.push_str(&format!("  \"num_masks\": {},\n", bench.num_masks()));
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"qps\": {:.3}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"mean_ms\": {:.4}, \"filter_rate\": {:.4}}}{}\n",
            p.workers,
            p.qps,
            p.p50_ms,
            p.p99_ms,
            p.mean_ms,
            p.filter_rate,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_service.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_service.json");
    println!("\nwrote {path}");
}
