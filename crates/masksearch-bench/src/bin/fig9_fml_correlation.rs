//! Figure 9: relationship between MaskSearch query time and the fraction of
//! masks loaded (FML), including Pearson's r.
//!
//! Usage: `cargo run --release -p masksearch-bench --bin fig9_fml_correlation -- [--scale 0.01] [--queries 200]`

use masksearch_bench::experiments::run_fml_correlation;
use masksearch_bench::report::{percentile, Table};
use masksearch_bench::{scale_from_args, usize_from_args, BenchDataset};

fn main() {
    let scale = scale_from_args(0.01);
    let queries = usize_from_args("queries", 150);
    println!("== Figure 9: query time vs. fraction of masks loaded (FML) ==");
    println!("({queries} randomized Filter queries per dataset; paper uses 1500)\n");

    for bench in [
        BenchDataset::wilds(scale).expect("generate WILDS-like dataset"),
        BenchDataset::imagenet(scale / 10.0).expect("generate ImageNet-like dataset"),
    ] {
        let (measurements, r) = run_fml_correlation(&bench, queries, 777).expect("experiment run");
        println!("--- {} ---", bench.name);
        println!("Pearson's r between FML and modelled query time: {r:.3}");
        // Bucket the scatter plot into FML deciles for a textual summary.
        let mut table = Table::new(&["FML bucket", "queries", "mean time"]);
        let fmls: Vec<f64> = measurements.iter().map(|m| m.fml).collect();
        let max_fml = percentile(&fmls, 100.0).max(1e-9);
        let buckets = 5usize;
        for b in 0..buckets {
            let lo = max_fml * b as f64 / buckets as f64;
            let hi = max_fml * (b + 1) as f64 / buckets as f64;
            let in_bucket: Vec<&_> = measurements
                .iter()
                .filter(|m| m.fml >= lo && (m.fml < hi || b == buckets - 1))
                .collect();
            let mean_time = if in_bucket.is_empty() {
                0.0
            } else {
                in_bucket.iter().map(|m| m.time_secs).sum::<f64>() / in_bucket.len() as f64
            };
            table.add_row(vec![
                format!("[{lo:.3}, {hi:.3})"),
                in_bucket.len().to_string(),
                format!("{mean_time:.3}s"),
            ]);
        }
        table.print();
        println!();
    }
}
