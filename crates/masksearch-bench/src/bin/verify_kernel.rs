//! Verification-kernel benchmark: exact `CP` throughput of the tiled kernel
//! vs. the reference pixel scan, across range selectivities, on a smooth
//! (spatially coherent, the common saliency-map case) and a noise (adversarial)
//! mask. Every measured count is asserted byte-identical between the two
//! paths. Results are written to `BENCH_kernel.json`.
//!
//! ```text
//! cargo run --release --bin verify_kernel -- --side 1024 --iters 10
//! cargo run --release --bin verify_kernel -- --side 256 --iters 25 --check
//! ```
//!
//! With `--check` the process exits non-zero if the kernel is slower than
//! the reference scan on the selective-range (≤ 10% selectivity) cases on
//! the smooth mask — the CI regression guard for the kernel fast paths.

use masksearch_bench::report::Table;
use masksearch_bench::usize_from_args;
use masksearch_core::{cp, Mask, PixelRange, TileGrid, TileStats};
use std::time::Instant;

struct Point {
    mask: &'static str,
    range: PixelRange,
    selectivity: f64,
    ref_mpix_s: f64,
    tiled_mpix_s: f64,
    speedup: f64,
    tiles: TileStats,
}

fn smooth_mask(side: u32) -> Mask {
    // A radial saliency blob: spatially coherent values, the layout the
    // paper's saliency/segmentation masks exhibit and the kernel's min/max
    // pruning exploits.
    let sigma = side as f32 / 6.0;
    Mask::from_fn(side, side, move |x, y| {
        let dx = x as f32 - side as f32 / 2.0;
        let dy = y as f32 - side as f32 / 2.0;
        0.97 * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp()
    })
}

fn noise_mask(side: u32) -> Mask {
    // Hash noise: every tile spans the full value domain, so min/max can
    // never prune — the kernel's worst case (reported, not gated).
    Mask::from_fn(side, side, move |x, y| {
        let mut h = (u64::from(x) << 32 | u64::from(y)).wrapping_mul(0x9E3779B97F4A7C15);
        h ^= h >> 33;
        (h >> 40) as f32 / (1u64 << 24) as f32
    })
}

fn time_pixels_per_sec(iters: usize, pixels: u64, mut body: impl FnMut() -> u64) -> (f64, u64) {
    // One warm-up evaluation (also the count used for equality checks).
    let count = body();
    // Best-of-N: the minimum per-iteration time is robust to scheduler
    // preemptions on shared CI runners (a preempted iteration inflates one
    // sample, not the minimum), so the `--check` regression gate cannot be
    // flipped by a single noisy quantum.
    let mut best = f64::INFINITY;
    let mut sink = 0u64;
    for _ in 0..iters {
        let start = Instant::now();
        sink = sink.wrapping_add(body());
        best = best.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box(sink);
    (pixels as f64 / best.max(1e-9) / 1e6, count)
}

fn bench_mask(name: &'static str, mask: &Mask, iters: usize, points: &mut Vec<Point>) {
    let roi = mask.full_roi();
    let pixels = roi.area();
    let build_start = Instant::now();
    let grid = TileGrid::build(mask);
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    println!(
        "{name}: {}x{} pixels, {} tiles, grid built in {build_ms:.2} ms",
        mask.width(),
        mask.height(),
        grid.len()
    );

    let ranges = [
        PixelRange::new(0.9, 1.0).unwrap(),  // highly selective, unaligned
        PixelRange::new(0.75, 1.0).unwrap(), // selective, bin-aligned
        PixelRange::new(0.5, 1.0).unwrap(),  // bin-aligned
        PixelRange::new(0.25, 0.75).unwrap(),
        PixelRange::new(0.33, 0.77).unwrap(), // straddling, unaligned
        PixelRange::full(),
    ];
    for range in ranges {
        let (ref_mpix_s, ref_count) = time_pixels_per_sec(iters, pixels, || cp(mask, &roi, &range));
        let mut tiles = TileStats::default();
        let (tiled_mpix_s, tiled_count) = time_pixels_per_sec(iters, pixels, || {
            tiles = TileStats::default();
            grid.cp(mask, &roi, &range, &mut tiles)
        });
        assert_eq!(
            tiled_count, ref_count,
            "kernel diverged from reference on {name} {range}"
        );
        points.push(Point {
            mask: name,
            range,
            selectivity: ref_count as f64 / pixels as f64,
            ref_mpix_s,
            tiled_mpix_s,
            speedup: tiled_mpix_s / ref_mpix_s,
            tiles,
        });
    }
}

fn main() {
    let side = usize_from_args("side", 1024) as u32;
    let iters = usize_from_args("iters", 10).max(1);
    let check = std::env::args().any(|a| a == "--check");

    println!("== tiled verification kernel: CP throughput vs. selectivity ==\n");
    let mut points = Vec::new();
    bench_mask("smooth", &smooth_mask(side), iters, &mut points);
    bench_mask("noise", &noise_mask(side), iters, &mut points);

    let mut table = Table::new(&[
        "mask",
        "range",
        "selectivity",
        "ref Mpix/s",
        "tiled Mpix/s",
        "speedup",
        "pruned",
        "hist",
        "scanned",
    ]);
    for p in &points {
        table.add_row(vec![
            p.mask.to_string(),
            p.range.to_string(),
            format!("{:.4}", p.selectivity),
            format!("{:.0}", p.ref_mpix_s),
            format!("{:.0}", p.tiled_mpix_s),
            format!("{:.2}x", p.speedup),
            p.tiles.tiles_pruned.to_string(),
            p.tiles.tiles_hist.to_string(),
            p.tiles.tiles_scanned.to_string(),
        ]);
    }
    table.print();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"verify_kernel\",\n");
    json.push_str(&format!("  \"side\": {side},\n"));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str("  \"tile\": 64,\n");
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mask\": \"{}\", \"range\": \"{}\", \"selectivity\": {:.6}, \
             \"ref_mpix_per_sec\": {:.1}, \"tiled_mpix_per_sec\": {:.1}, \"speedup\": {:.3}, \
             \"tiles_pruned\": {}, \"tiles_hist\": {}, \"tiles_scanned\": {}}}{}\n",
            p.mask,
            p.range,
            p.selectivity,
            p.ref_mpix_s,
            p.tiled_mpix_s,
            p.speedup,
            p.tiles.tiles_pruned,
            p.tiles.tiles_hist,
            p.tiles.tiles_scanned,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("\nwrote BENCH_kernel.json");

    // Regression guard: on the smooth mask the kernel must beat the
    // reference scan wherever the range is selective (≤ 10% of pixels).
    let selective: Vec<&Point> = points
        .iter()
        .filter(|p| p.mask == "smooth" && p.selectivity <= 0.10)
        .collect();
    assert!(
        !selective.is_empty(),
        "benchmark produced no selective-range case to guard"
    );
    let mut ok = true;
    for p in &selective {
        let required = 1.0;
        if p.speedup <= required {
            eprintln!(
                "REGRESSION: kernel {:.2}x vs reference on smooth {} (selectivity {:.3})",
                p.speedup, p.range, p.selectivity
            );
            ok = false;
        }
    }
    if check && !ok {
        std::process::exit(1);
    }
    if check {
        println!("check passed: kernel faster than reference on all selective ranges");
    }
}
