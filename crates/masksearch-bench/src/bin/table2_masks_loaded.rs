//! Table 2: number of masks loaded from storage during query execution,
//! per query (Q1–Q5) and per system.
//!
//! Usage: `cargo run --release -p masksearch-bench --bin table2_masks_loaded -- [--scale 0.01]`

use masksearch_bench::experiments::run_individual_queries;
use masksearch_bench::report::Table;
use masksearch_bench::{scale_from_args, BenchDataset};

fn main() {
    let scale = scale_from_args(0.01);
    println!("== Table 2: number of masks loaded during query execution ==");
    println!(
        "(synthetic datasets at scale {scale}; PG/TileDB/NumPy always load every targeted mask)\n"
    );

    for bench in [
        BenchDataset::wilds(scale).expect("generate WILDS-like dataset"),
        BenchDataset::imagenet(scale / 10.0).expect("generate ImageNet-like dataset"),
    ] {
        println!(
            "--- {} ({} masks in the dataset) ---",
            bench.name,
            bench.num_masks()
        );
        let rows = run_individual_queries(&bench, true).expect("experiment run");
        let engines: Vec<String> = {
            let mut names: Vec<String> = rows.iter().map(|r| r.engine.clone()).collect();
            names.dedup();
            names.truncate(4);
            names
        };
        let mut table = Table::new(
            &std::iter::once("engine")
                .chain(["Q1", "Q2", "Q3", "Q4", "Q5"])
                .collect::<Vec<_>>(),
        );
        for engine in &engines {
            let mut cells = vec![engine.clone()];
            for label in ["Q1", "Q2", "Q3", "Q4", "Q5"] {
                let loaded = rows
                    .iter()
                    .find(|r| &r.engine == engine && r.query == label)
                    .map(|r| r.masks_loaded)
                    .unwrap_or(0);
                cells.push(loaded.to_string());
            }
            table.add_row(cells);
        }
        table.print();
        println!();
    }
}
