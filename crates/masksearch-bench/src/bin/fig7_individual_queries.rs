//! Figure 7: end-to-end individual query execution time (Q1–Q5) for
//! MaskSearch, PostgreSQL, TileDB, and NumPy on both datasets.
//!
//! Usage: `cargo run --release -p masksearch-bench --bin fig7_individual_queries -- [--scale 0.01]`

use masksearch_bench::experiments::run_individual_queries;
use masksearch_bench::report::{fmt_duration, Table};
use masksearch_bench::{scale_from_args, BenchDataset};

fn main() {
    let scale = scale_from_args(0.01);
    println!("== Figure 7: individual query execution time ==");
    println!(
        "(synthetic datasets at scale {scale} of the paper's image counts; EBS gp3 disk cost model;\n\
         modelled time = wall-clock CPU + virtual I/O + per-tuple UDF overhead)\n"
    );

    for bench in [
        BenchDataset::wilds(scale).expect("generate WILDS-like dataset"),
        BenchDataset::imagenet(scale / 10.0).expect("generate ImageNet-like dataset"),
    ] {
        println!(
            "--- {} ({} masks of {}x{}) ---",
            bench.name,
            bench.num_masks(),
            bench.spec.mask_width,
            bench.spec.mask_height
        );
        let size = bench.index_size_report();
        println!(
            "index size: {} ({:.1}% of the compressed dataset)",
            masksearch_bench::report::fmt_bytes(size.index_bytes),
            size.index_to_compressed_ratio() * 100.0
        );
        let rows = run_individual_queries(&bench, true).expect("experiment run");
        let mut table = Table::new(&[
            "query",
            "engine",
            "modelled time",
            "speedup vs NumPy",
            "agrees",
        ]);
        for label in ["Q1", "Q2", "Q3", "Q4", "Q5"] {
            let numpy_time = rows
                .iter()
                .find(|r| r.query == label && r.engine == "NumPy")
                .map(|r| r.modeled_time.as_secs_f64())
                .unwrap_or(0.0);
            for row in rows.iter().filter(|r| r.query == label) {
                let speedup = if row.modeled_time.as_secs_f64() > 0.0 {
                    numpy_time / row.modeled_time.as_secs_f64()
                } else {
                    f64::INFINITY
                };
                table.add_row(vec![
                    row.query.clone(),
                    row.engine.clone(),
                    fmt_duration(row.modeled_time),
                    format!("{speedup:.1}x"),
                    if row.matches_reference { "yes" } else { "NO" }.to_string(),
                ]);
            }
        }
        table.print();
        println!();
    }
}
