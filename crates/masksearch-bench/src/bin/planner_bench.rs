//! Query-planner benchmark: the cost-based planner (kernel routing, pair
//! bounds-vs-load, term ordering — all `Auto`) against every fixed strategy
//! on a mixed workload designed so that **each** fixed strategy loses on at
//! least one shape:
//!
//! * two filters and a top-k on tile-bin-aligned ranges (smooth and noise
//!   masks), where the tiled kernel answers interior tiles straight from
//!   their cumulative histograms and a forced scan pays full price;
//! * a model-drift pair filter where composed bounds prune half the pairs,
//!   so forcing load-first loads both masks of every image;
//! * two noise-pair filters (intersect and union) whose bounds never
//!   decide, where the planner's feedback loop learns the verified
//!   fraction is ~1.0 and skips classification to go load-first.
//!
//! The mixed workload runs against the durable database — loads seed the
//! *persisted* tile-summary grids from the checkpoint, and time is the
//! harness's standard metric (`QueryStats::modeled_total`: wall clock plus
//! the local-NVMe cost model's virtual I/O charge), best-of-N per strategy.
//!
//! A second section replays the kernel's documented noise worst case
//! (`BENCH_kernel.json`: ≈ 0.85× the reference scan at side 1024 on a
//! straddling unaligned range) on the serving path — no persisted tile
//! summaries, cold cache — where a forced kernel re-builds the tile grid
//! on every query and the planner's sampled bound-gap feature routes the
//! masks to the scan without ever touching the grid.
//!
//! Every shape asserts identical rows between the planner and all fixed
//! strategies before anything is timed — plan choice is a performance
//! decision, never a semantic one. Results go to `BENCH_planner.json`;
//! with `--check` the process exits non-zero unless
//!
//! 1. the planner is within 10% of the best fixed strategy on every shape,
//! 2. the planner strictly beats *every* fixed strategy on the mixed
//!    aggregate (no fixed choice is safe across the whole workload), and
//! 3. on the noise worst case the planner is at least as fast as the forced
//!    kernel — the 0.85× regression lifted to ≥ 1×.
//!
//! ```text
//! cargo run --release --bin planner_bench -- --images 180 --side 192 --iters 5
//! cargo run --release --bin planner_bench -- --images 72 --side 128 --iters 5 --check
//! ```

use masksearch_bench::report::Table;
use masksearch_bench::usize_from_args;
use masksearch_core::{ImageId, Mask, MaskId, MaskOp, MaskRecord, ModelId, PixelRange, Roi};
use masksearch_db::{DbConfig, MaskDb};
use masksearch_index::ChiConfig;
use masksearch_query::{
    Expr, IndexingMode, KernelMode, MaskJoin, Order, PairMode, Predicate, Query, QueryOutput,
    RoiSpec, Selection, Session, SessionConfig,
};
use masksearch_storage::{Catalog, DiskProfile, MaskEncoding, MaskStore, MemoryMaskStore};
use std::path::PathBuf;
use std::sync::Arc;

/// Model ids of the four masks every image carries.
const SMOOTH_V1: u64 = 1;
const NOISE_A: u64 = 2;
const SMOOTH_V2: u64 = 3;
const NOISE_B: u64 = 4;

struct Strategy {
    name: &'static str,
    kernel: KernelMode,
    pair: PairMode,
}

struct Point {
    shape: String,
    plan: String,
    planner_ms: f64,
    fixed_ms: Vec<f64>,
    best_fixed: &'static str,
    best_fixed_ms: f64,
}

fn smooth_mask(side: u32, i: u64, drift: f32) -> Mask {
    // A radial saliency blob; radius and centre vary per image so the
    // workload's answers (and the CHI bounds' decisiveness) vary too.
    let sigma = side as f32 / (6 + (i % 5)) as f32;
    let c = side as f32 / 2.0;
    let spread = (i % 13) as f32 / 13.0 - 0.5;
    let (cx, cy) = (
        c + spread * side as f32 * 0.4 + drift,
        c - spread * side as f32 * 0.3 - drift * 0.5,
    );
    Mask::from_fn(side, side, move |x, y| {
        let dx = x as f32 - cx;
        let dy = y as f32 - cy;
        0.97 * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp()
    })
}

fn noise_mask(side: u32, seed: u64) -> Mask {
    // Hash noise: every tile spans the full value domain, so tile min/max
    // can never prune — the kernel's worst case, which the planner must
    // route to the reference scan.
    Mask::from_fn(side, side, move |x, y| {
        let mut h = (u64::from(x) << 32 | u64::from(y))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seed.wrapping_mul(0xD135_3467_9E37_79B9));
        h ^= h >> 33;
        (h >> 40) as f32 / (1u64 << 24) as f32
    })
}

/// Four masks per image: smooth v1, its drifted v2 sibling (drastic drift
/// every 16th image — the regressions a drift audit surfaces), and two
/// independent noise masks (the pair whose bounds never decide).
///
/// The masks live in the durable database so loads seed the *persisted*
/// tile-summary grids — the serving setting in which the kernel decision is
/// a pure routing choice (no lazy grid build on the query path). The local
/// NVMe cost model keeps I/O and verification CPU on comparable scales, so
/// both the kernel routing and the pair-mode choice move the total.
fn build_db(dir: &PathBuf, images: u64, side: u32) -> MaskDb {
    let chi = chi_config(side);
    let db = MaskDb::open(
        dir,
        DbConfig::default()
            .chi_config(chi)
            .encoding(MaskEncoding::Raw)
            .profile(DiskProfile::local_nvme()),
    )
    .expect("open benchmark database");
    let mut batch = Vec::new();
    for i in 0..images {
        let drift = if i % 16 == 0 {
            side as f32 / 3.0
        } else {
            (i % 5) as f32 * 0.3
        };
        let masks: [(Mask, u64); 4] = [
            (smooth_mask(side, i, 0.0), SMOOTH_V1),
            (noise_mask(side, i * 2), NOISE_A),
            (smooth_mask(side, i, drift), SMOOTH_V2),
            (noise_mask(side, i * 2 + 1), NOISE_B),
        ];
        for (slot, (mask, model)) in masks.into_iter().enumerate() {
            let id = MaskId::new(i * 4 + slot as u64);
            batch.push((
                MaskRecord::builder(id)
                    .image_id(ImageId::new(i))
                    .model_id(ModelId::new(model))
                    .shape(side, side)
                    .build(),
                mask,
            ));
        }
    }
    db.insert_masks(&batch).expect("ingest benchmark masks");
    // Persist CHI + tile summaries (+ the shape-stats catalog): the steady
    // serving state every strategy starts from.
    db.checkpoint().expect("checkpoint benchmark database");
    db
}

fn chi_config(side: u32) -> ChiConfig {
    ChiConfig::new((side / 16).max(1), (side / 16).max(1), 8).unwrap()
}

fn session(db: &MaskDb, side: u32, kernel: KernelMode, pair: PairMode) -> Session {
    Session::with_store_maintained_index(
        db.mask_store(),
        db.catalog(),
        SessionConfig::new(chi_config(side))
            .threads(4)
            .kernel_mode(kernel)
            .pair_mode(pair),
        db.chi_store(),
    )
}

fn model(id: u64) -> Selection {
    Selection::all().with_model(ModelId::new(id))
}

/// Best-of-N on the modeled metric. The warm-up runs double as the
/// planner's feedback window: by the time timing starts, the `Auto`
/// session has observed enough queries of the shape to have converged on
/// its plan, exactly as a production session would after its first few
/// queries.
fn time_query(session: &Session, query: &Query, iters: usize) -> (f64, QueryOutput) {
    let mut last = session.execute(query).expect("warm-up execution");
    for _ in 0..3 {
        last = session.execute(query).expect("warm-up execution");
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        last = session.execute(query).expect("measured execution");
        best = best.min(last.stats.modeled_total().as_secs_f64());
    }
    (best * 1e3, last)
}

fn main() {
    let images = usize_from_args("images", 180) as u64;
    let side = usize_from_args("side", 192) as u32;
    let iters = usize_from_args("iters", 5).max(1);
    let check = std::env::args().any(|a| a == "--check");

    println!("== query planner: cost-based plan choice vs every fixed strategy ==\n");
    let dir = std::env::temp_dir().join(format!("masksearch-planner-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = build_db(&dir, images, side);

    let fixed = [
        Strategy {
            name: "kernel-on/bounds",
            kernel: KernelMode::ForceOn,
            pair: PairMode::ForceBounds,
        },
        Strategy {
            name: "kernel-on/load",
            kernel: KernelMode::ForceOn,
            pair: PairMode::ForceLoad,
        },
        Strategy {
            name: "kernel-off/bounds",
            kernel: KernelMode::ForceOff,
            pair: PairMode::ForceBounds,
        },
        Strategy {
            name: "kernel-off/load",
            kernel: KernelMode::ForceOff,
            pair: PairMode::ForceLoad,
        },
    ];
    let planner = session(&db, side, KernelMode::Auto, PairMode::Auto);
    let fixed_sessions: Vec<Session> = fixed
        .iter()
        .map(|s| session(&db, side, s.kernel, s.pair))
        .collect();

    let area = f64::from(side) * f64::from(side);
    let full = Roi::new(0, 0, side, side).unwrap();
    // 0.5625 = 9/16 and 0.3125 = 5/16 are tile-bin aligned (interior tiles
    // answer from their cumulative histograms exactly, mask content
    // regardless) but not CHI-bin aligned (the 8-bin CHI sits on multiples
    // of 0.125), so the filter bounds stay loose enough to leave real
    // verification work for the kernel decision to move.
    let aligned_high = PixelRange::new(0.5625, 1.0).unwrap();
    let aligned_mid = PixelRange::new(0.3125, 0.75).unwrap();

    let shapes: Vec<(String, Query)> = vec![
        (
            "filter smooth, aligned range (kernel favours)".to_string(),
            Query::filter_cp_gt(full, aligned_high, area * 0.06).with_selection(model(SMOOTH_V1)),
        ),
        (
            "filter noise, aligned range (kernel favours)".to_string(),
            Query::filter_cp_gt(full, aligned_mid, area * 0.4375).with_selection(model(NOISE_A)),
        ),
        (
            "top-12 smooth, aligned range".to_string(),
            Query::top_k_cp(full, aligned_high, 12, Order::Desc).with_selection(model(SMOOTH_V1)),
        ),
        (
            "pair drift > 8% (bounds favour)".to_string(),
            Query::pair_filter(
                MaskJoin::new(model(SMOOTH_V1), model(SMOOTH_V2)),
                Predicate::gt(
                    Expr::cp_composed(
                        MaskOp::Diff,
                        RoiSpec::FullMask,
                        PixelRange::new(0.5, 1.0).unwrap(),
                    ),
                    area * 0.08,
                ),
            ),
        ),
        // The noise pairs audit a constant ROI (covering the whole mask, so
        // results match a full-mask audit) rather than `RoiSpec::FullMask`:
        // the shape-statistics key distinguishes ROI specs, and these two
        // workloads — whose bounds never decide — must not share a feedback
        // aggregate with the drift audit above, where bounds prune half the
        // pairs. A production workload mixing both shapes gets the same
        // separation for free.
        (
            "pair noise intersect (load favours)".to_string(),
            Query::pair_filter(
                MaskJoin::new(model(NOISE_A), model(NOISE_B)),
                Predicate::gt(
                    Expr::cp_composed(
                        MaskOp::Intersect,
                        RoiSpec::Constant(full),
                        PixelRange::new(0.3, 0.7).unwrap(),
                    ),
                    area * 0.16,
                ),
            ),
        ),
        (
            "pair noise union (load favours)".to_string(),
            Query::pair_filter(
                MaskJoin::new(model(NOISE_A), model(NOISE_B)),
                Predicate::gt(
                    Expr::cp_composed(
                        MaskOp::Union,
                        RoiSpec::Constant(full),
                        PixelRange::new(0.3, 0.7).unwrap(),
                    ),
                    area * 0.40,
                ),
            ),
        ),
    ];

    let mut points = Vec::new();
    for (shape, query) in &shapes {
        let (planner_ms, planner_out) = time_query(&planner, query, iters);
        let plan = planner.plan_signature(query);
        eprintln!(
            "  [{shape}] plan=\"{plan}\" loaded={} verified={} bounds_skipped={} kernel=({},{})",
            planner_out.stats.masks_loaded,
            planner_out.stats.verified,
            planner_out.stats.planner_bounds_skipped,
            planner_out.stats.planner_kernel_on,
            planner_out.stats.planner_kernel_off,
        );
        let mut fixed_ms = Vec::new();
        for (strategy, sess) in fixed.iter().zip(&fixed_sessions) {
            let (ms, out) = time_query(sess, query, iters);
            assert_eq!(
                planner_out.rows, out.rows,
                "planner diverged from `{}` on `{shape}` — correctness before speed",
                strategy.name
            );
            fixed_ms.push(ms);
        }
        let (best_idx, &best_fixed_ms) = fixed_ms
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        points.push(Point {
            shape: shape.clone(),
            plan,
            planner_ms,
            fixed_ms,
            best_fixed: fixed[best_idx].name,
            best_fixed_ms,
        });
    }

    let mut table = Table::new(&[
        "shape",
        "planner ms",
        "on/bounds",
        "on/load",
        "off/bounds",
        "off/load",
        "best fixed",
        "planner/best",
    ]);
    for p in &points {
        let mut row = vec![p.shape.clone(), format!("{:.2}", p.planner_ms)];
        row.extend(p.fixed_ms.iter().map(|ms| format!("{ms:.2}")));
        row.push(p.best_fixed.to_string());
        row.push(format!("{:.2}x", p.planner_ms / p.best_fixed_ms.max(1e-9)));
        table.add_row(row);
    }
    table.print();

    let planner_total: f64 = points.iter().map(|p| p.planner_ms).sum();
    let fixed_totals: Vec<f64> = (0..fixed.len())
        .map(|i| points.iter().map(|p| p.fixed_ms[i]).sum())
        .collect();
    println!("\nmixed aggregate: planner {planner_total:.2} ms");
    for (strategy, total) in fixed.iter().zip(&fixed_totals) {
        println!(
            "                 {:<17} {total:.2} ms ({:.2}x planner)",
            strategy.name,
            total / planner_total.max(1e-9)
        );
    }

    // ---- The kernel's documented noise worst case, lifted ----
    //
    // BENCH_kernel.json records the tiled kernel at ≈ 0.85× the reference
    // scan on a side-1024 noise mask with a straddling unaligned range:
    // every tile spans the full value domain, so classification buys
    // nothing and its overhead is pure loss. On the serving path the same
    // workload is even worse for a forced kernel: these masks come from a
    // store without persisted tile summaries and a cold cache, so every
    // query re-builds the tile grid (several times the cost of one scan)
    // only to then scan every tile anyway. The planner's sampled bound-gap
    // feature recognises the noise profile and routes these masks to the
    // scan, never touching the grid.
    let worst_side = usize_from_args("worst-side", 1024) as u32;
    let worst_masks = 6u64;
    let wstore = Arc::new(MemoryMaskStore::for_tests());
    let mut wcatalog = Catalog::new();
    for i in 0..worst_masks {
        wstore
            .put(MaskId::new(i), &noise_mask(worst_side, i))
            .unwrap();
        wcatalog.insert(
            MaskRecord::builder(MaskId::new(i))
                .image_id(ImageId::new(i))
                .model_id(ModelId::new(1))
                .shape(worst_side, worst_side)
                .build(),
        );
    }
    let worst_session = |kernel: KernelMode| {
        Session::new(
            Arc::clone(&wstore) as Arc<dyn MaskStore>,
            wcatalog.clone(),
            SessionConfig::new(
                ChiConfig::new((worst_side / 16).max(1), (worst_side / 16).max(1), 8).unwrap(),
            )
            .threads(1)
            .indexing_mode(IndexingMode::Eager)
            .kernel_mode(kernel),
        )
        .unwrap()
    };
    let worst_area = f64::from(worst_side) * f64::from(worst_side);
    let worst_query = Query::filter_cp_gt(
        Roi::new(0, 0, worst_side, worst_side).unwrap(),
        PixelRange::new(0.33, 0.77).unwrap(),
        worst_area * 0.44,
    );
    let (worst_planner_ms, worst_planner_out) =
        time_query(&worst_session(KernelMode::Auto), &worst_query, iters);
    let (worst_on_ms, worst_on_out) =
        time_query(&worst_session(KernelMode::ForceOn), &worst_query, iters);
    let (worst_off_ms, worst_off_out) =
        time_query(&worst_session(KernelMode::ForceOff), &worst_query, iters);
    assert_eq!(worst_planner_out.rows, worst_on_out.rows);
    assert_eq!(worst_planner_out.rows, worst_off_out.rows);
    let worst_lift = worst_on_ms / worst_planner_ms.max(1e-9);
    println!(
        "\nnoise worst case (side {worst_side}, straddling range, CPU-bound): \
         planner {worst_planner_ms:.2} ms, forced kernel {worst_on_ms:.2} ms, \
         forced scan {worst_off_ms:.2} ms — planner {worst_lift:.2}x the forced kernel"
    );
    for (name, out) in [
        ("planner", &worst_planner_out),
        ("forced-kernel", &worst_on_out),
        ("forced-scan", &worst_off_out),
    ] {
        let s = &out.stats;
        eprintln!(
            "  [{name}] loaded={} verified={} filter={:?} verify={:?} total={:?} io={:?} \
             kernel_on={} kernel_off={} tiles=({},{},{})",
            s.masks_loaded,
            s.verified,
            s.filter_wall,
            s.verify_wall,
            s.total_wall,
            s.io_virtual,
            s.planner_kernel_on,
            s.planner_kernel_off,
            s.tiles_pruned,
            s.tiles_hist,
            s.tiles_scanned
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"planner\",\n");
    json.push_str(&format!("  \"images\": {images},\n"));
    json.push_str(&format!("  \"side\": {side},\n"));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shape\": \"{}\", \"plan\": \"{}\", \"planner_ms\": {:.3}, ",
            p.shape, p.plan, p.planner_ms
        ));
        for (strategy, ms) in fixed.iter().zip(&p.fixed_ms) {
            json.push_str(&format!(
                "\"{}_ms\": {ms:.3}, ",
                strategy.name.replace('/', "_")
            ));
        }
        json.push_str(&format!(
            "\"best_fixed\": \"{}\", \"planner_over_best\": {:.4}}}{}\n",
            p.best_fixed,
            p.planner_ms / p.best_fixed_ms.max(1e-9),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"aggregate\": {\n");
    json.push_str(&format!("    \"planner_ms\": {planner_total:.3},\n"));
    for (strategy, total) in fixed.iter().zip(&fixed_totals) {
        json.push_str(&format!(
            "    \"{}_ms\": {total:.3},\n",
            strategy.name.replace('/', "_"),
        ));
    }
    json.push_str(&format!(
        "    \"planner_over_best\": {:.4}\n",
        planner_total
            / fixed_totals
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
                .max(1e-9)
    ));
    json.push_str("  },\n");
    json.push_str("  \"noise_worst_case\": {\n");
    json.push_str(&format!("    \"side\": {worst_side},\n"));
    json.push_str(&format!("    \"planner_ms\": {worst_planner_ms:.3},\n"));
    json.push_str(&format!("    \"forced_kernel_ms\": {worst_on_ms:.3},\n"));
    json.push_str(&format!("    \"forced_scan_ms\": {worst_off_ms:.3},\n"));
    json.push_str(&format!(
        "    \"planner_vs_forced_kernel\": {worst_lift:.4}\n"
    ));
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_planner.json", &json).expect("write BENCH_planner.json");
    println!("\nwrote BENCH_planner.json");

    // Gate 1: within 10% of the best fixed strategy on every shape.
    let mut ok = true;
    for p in &points {
        if p.planner_ms > p.best_fixed_ms * 1.10 {
            eprintln!(
                "REGRESSION: planner {:.2}x the best fixed strategy ({}) on `{}`",
                p.planner_ms / p.best_fixed_ms.max(1e-9),
                p.best_fixed,
                p.shape
            );
            ok = false;
        }
    }
    // Gate 2: strictly beats every fixed strategy on the mixed aggregate.
    for (strategy, total) in fixed.iter().zip(&fixed_totals) {
        if planner_total >= *total {
            eprintln!(
                "REGRESSION: fixed `{}` matched the planner on the mixed aggregate \
                 ({total:.2} ms vs {planner_total:.2} ms)",
                strategy.name
            );
            ok = false;
        }
    }
    // Gate 3: the kernel's noise worst case is lifted to >= 1x by routing
    // those masks to the scan.
    if worst_planner_ms > worst_on_ms {
        eprintln!(
            "REGRESSION: planner did not lift the kernel's noise worst case \
             ({worst_planner_ms:.2} ms vs forced-kernel {worst_on_ms:.2} ms)"
        );
        ok = false;
    }
    drop((planner, fixed_sessions, db));
    let _ = std::fs::remove_dir_all(&dir);
    if check && !ok {
        std::process::exit(1);
    }
    if check {
        println!(
            "check passed: planner within 10% of best fixed per shape, beats every fixed \
             strategy on the mixed aggregate, noise worst case lifted to >= 1x"
        );
    }
}
