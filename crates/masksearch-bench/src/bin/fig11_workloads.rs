//! Figure 11: cumulative total time (index building + query execution) on
//! multi-query exploration workloads, for MaskSearch with pre-built indexes
//! (MS), MaskSearch with incremental indexing (MS-II), and NumPy; plus the
//! MS-II / MS cumulative-time ratio for Workloads 1–4.
//!
//! Usage: `cargo run --release -p masksearch-bench --bin fig11_workloads -- [--scale 0.005] [--queries 60]`

use masksearch_bench::experiments::run_workloads;
use masksearch_bench::report::Table;
use masksearch_bench::{scale_from_args, usize_from_args, BenchDataset};

fn main() {
    let scale = scale_from_args(0.005);
    let num_queries = usize_from_args("queries", 60);
    println!("== Figure 11: multi-query workload cumulative time ==");
    println!(
        "({num_queries} Filter queries per workload; paper uses 200; p_seen = 0.2 / 0.5 / 0.8 / 1.0)\n"
    );

    for bench in [
        BenchDataset::wilds(scale).expect("generate WILDS-like dataset"),
        BenchDataset::imagenet(scale / 10.0).expect("generate ImageNet-like dataset"),
    ] {
        println!("--- {} ---", bench.name);
        let series = run_workloads(&bench, num_queries, &[0.2, 0.5, 0.8, 1.0], 4242)
            .expect("experiment run");

        // Panels (a)/(b): cumulative time for Workload 2 at checkpoints.
        let w2 = &series[1];
        println!("Workload 2 cumulative modelled time (index build counted as query 0 for MS):");
        let mut table = Table::new(&["after query", "MS", "MS-II", "NumPy"]);
        let checkpoints = [0usize, 1, 5, 10, 20, num_queries / 2, num_queries];
        for &q in checkpoints.iter().filter(|&&q| q < w2.ms_cumulative.len()) {
            table.add_row(vec![
                q.to_string(),
                format!("{:.2}s", w2.ms_cumulative[q]),
                format!("{:.2}s", w2.ms_ii_cumulative[q]),
                format!("{:.2}s", w2.numpy_cumulative[q]),
            ]);
        }
        table.print();

        // Panels (c)/(d): ratio of MS-II to MS cumulative time per workload.
        println!("\nMS-II / MS cumulative-time ratio:");
        let mut ratio_table = Table::new(&[
            "after query",
            "W1 (0.2)",
            "W2 (0.5)",
            "W3 (0.8)",
            "W4 (1.0)",
        ]);
        let ratios: Vec<Vec<f64>> = series.iter().map(|s| s.ratio_ms_ii_to_ms()).collect();
        for &q in checkpoints
            .iter()
            .filter(|&&q| q > 0 && q < ratios[0].len())
        {
            ratio_table.add_row(vec![
                q.to_string(),
                format!("{:.2}", ratios[0][q]),
                format!("{:.2}", ratios[1][q]),
                format!("{:.2}", ratios[2][q]),
                format!("{:.2}", ratios[3][q]),
            ]);
        }
        ratio_table.print();
        println!();
    }
}
