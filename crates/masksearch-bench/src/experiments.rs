//! Reusable experiment drivers shared by the per-figure binaries and the
//! Criterion benches.

use crate::queries::PaperQueries;
use crate::report::pearson;
use crate::setup::BenchDataset;
use masksearch_baselines::QueryEngine;
use masksearch_core::{MaskId, PixelRange};
use masksearch_datagen::{ExplorationWorkload, QueryType, RandomQueryGenerator};
use masksearch_index::{Chi, ChiConfig};
use masksearch_query::{eval, CpTerm, IndexingMode, Query, QueryError, QueryKind, Session};
use masksearch_storage::MaskStore;
use std::time::{Duration, Instant};

/// One (query, engine) measurement of the individual-query experiment
/// (Figure 7 and Table 2).
#[derive(Debug, Clone)]
pub struct IndividualQueryRow {
    /// Query label (Q1–Q5).
    pub query: String,
    /// Engine name.
    pub engine: String,
    /// Modelled end-to-end time (wall + virtual I/O + modelled CPU).
    pub modeled_time: Duration,
    /// Number of masks loaded from storage.
    pub masks_loaded: u64,
    /// Number of result rows.
    pub result_rows: usize,
    /// Whether this engine's result set matches the reference (NumPy) result.
    pub matches_reference: bool,
}

/// Runs Q1–Q5 on MaskSearch and the baselines (Figure 7 / Table 2).
///
/// `include_heavy_baselines` also runs the PostgreSQL- and TileDB-like
/// engines (which require copying the dataset into their storage layouts).
pub fn run_individual_queries(
    bench: &BenchDataset,
    include_heavy_baselines: bool,
) -> Result<Vec<IndividualQueryRow>, QueryError> {
    let queries = PaperQueries::for_dataset(bench);

    // MaskSearch with a pre-built index (§4.2: "we build the CHI for all
    // masks prior to executing the benchmark queries"), including the
    // aggregated-mask index used by Q5 (§3.4).
    let ms = bench.masksearch_engine(IndexingMode::Eager);
    if let QueryKind::MaskAggregate { agg, .. } = &queries.q5.kind {
        ms.session()
            .build_aggregate_index(agg, &queries.q5.selection)?;
    }
    bench.store.io_stats().reset();

    let numpy = bench.numpy_engine();
    let postgres = if include_heavy_baselines {
        Some(bench.postgres_engine()?)
    } else {
        None
    };
    let tiledb = if include_heavy_baselines {
        Some(bench.tiledb_engine()?)
    } else {
        None
    };

    let mut rows = Vec::new();
    for (label, query) in queries.labelled() {
        // NumPy is the reference result.
        let reference = numpy.execute(query)?;
        let reference_keys: Vec<_> = reference.output.rows.iter().map(|r| r.key).collect();

        let mut engines: Vec<&dyn QueryEngine> = vec![&ms, &numpy];
        if let Some(pg) = &postgres {
            engines.push(pg);
        }
        if let Some(tdb) = &tiledb {
            engines.push(tdb);
        }
        for engine in engines {
            let report = if engine.name() == "NumPy" {
                reference.clone()
            } else {
                engine.execute(query)?
            };
            let keys: Vec<_> = report.output.rows.iter().map(|r| r.key).collect();
            rows.push(IndividualQueryRow {
                query: label.to_string(),
                engine: engine.name().to_string(),
                modeled_time: report.modeled_total(),
                masks_loaded: report.stats().masks_loaded,
                result_rows: report.output.rows.len(),
                matches_reference: keys == reference_keys,
            });
        }
    }
    Ok(rows)
}

/// One randomized-query measurement (Figures 8 and 9).
#[derive(Debug, Clone, Copy)]
pub struct RandomQueryMeasurement {
    /// Modelled end-to-end time in seconds.
    pub time_secs: f64,
    /// Virtual I/O time in seconds (the deterministic component of the
    /// modelled time).
    pub io_secs: f64,
    /// Fraction of targeted masks loaded.
    pub fml: f64,
}

/// Runs `per_type` randomized queries of each type on an eagerly-indexed
/// MaskSearch session (Figure 8).
pub fn run_query_type_distributions(
    bench: &BenchDataset,
    per_type: usize,
    seed: u64,
) -> Result<Vec<(QueryType, Vec<RandomQueryMeasurement>)>, QueryError> {
    let session = bench.session(IndexingMode::Eager);
    bench.store.io_stats().reset();
    let mut out = Vec::new();
    for query_type in [QueryType::Filter, QueryType::TopK, QueryType::Aggregation] {
        let mut generator = RandomQueryGenerator::new(
            seed ^ query_type as u64,
            bench.spec.mask_width,
            bench.spec.mask_height,
        );
        let mut measurements = Vec::with_capacity(per_type);
        for _ in 0..per_type {
            let query = generator.query_of(query_type);
            let output = session.execute(&query)?;
            measurements.push(RandomQueryMeasurement {
                time_secs: output.stats.modeled_total().as_secs_f64(),
                io_secs: output.stats.io_virtual.as_secs_f64(),
                fml: output.stats.fml(),
            });
        }
        out.push((query_type, measurements));
    }
    Ok(out)
}

/// Runs randomized Filter queries and reports the (FML, time) pairs plus
/// their Pearson correlation (Figure 9).
pub fn run_fml_correlation(
    bench: &BenchDataset,
    num_queries: usize,
    seed: u64,
) -> Result<(Vec<RandomQueryMeasurement>, f64), QueryError> {
    let session = bench.session(IndexingMode::Eager);
    bench.store.io_stats().reset();
    let mut generator =
        RandomQueryGenerator::new(seed, bench.spec.mask_width, bench.spec.mask_height);
    let mut measurements = Vec::with_capacity(num_queries);
    for _ in 0..num_queries {
        let query = generator.filter_query();
        let output = session.execute(&query)?;
        measurements.push(RandomQueryMeasurement {
            time_secs: output.stats.modeled_total().as_secs_f64(),
            io_secs: output.stats.io_virtual.as_secs_f64(),
            fml: output.stats.fml(),
        });
    }
    let fmls: Vec<f64> = measurements.iter().map(|m| m.fml).collect();
    let times: Vec<f64> = measurements.iter().map(|m| m.time_secs).collect();
    let r = pearson(&fmls, &times);
    Ok((measurements, r))
}

/// Bound-distribution statistics for one (CHI configuration, pixel range)
/// combination (Figure 10).
#[derive(Debug, Clone)]
pub struct BoundsDistribution {
    /// CHI configuration label.
    pub config: ChiConfig,
    /// Index size per mask under this configuration, in bytes.
    pub index_bytes_per_mask: u64,
    /// Pixel-value range of the probed `CP` term.
    pub range: PixelRange,
    /// Mean width of the `[lower, upper]` interval, as a fraction of the ROI
    /// area.
    pub mean_relative_gap: f64,
    /// `(threshold as a fraction of the ROI area, FML)` pairs: the fraction
    /// of sampled masks whose bounds straddle the threshold.
    pub fml_at_threshold: Vec<(f64, f64)>,
}

/// Computes bound distributions over sampled masks for several index
/// granularities and pixel ranges (Figure 10 and the §4.4 analysis).
pub fn run_bounds_distribution(
    bench: &BenchDataset,
    configs: &[ChiConfig],
    ranges: &[PixelRange],
    sample_size: usize,
) -> Result<Vec<BoundsDistribution>, QueryError> {
    let ids = bench.dataset.catalog.mask_ids();
    let step = (ids.len() / sample_size.max(1)).max(1);
    let sample: Vec<MaskId> = ids.into_iter().step_by(step).take(sample_size).collect();
    let thresholds: Vec<f64> = vec![0.02, 0.05, 0.1, 0.2, 0.4];

    let mut out = Vec::new();
    for config in configs {
        // Build the CHI of every sampled mask under this configuration.
        let mut chis = Vec::with_capacity(sample.len());
        for &id in &sample {
            let mask = bench.store.get(id)?;
            chis.push((id, Chi::build(&mask, config)));
        }
        for range in ranges {
            let mut gaps = Vec::new();
            let mut straddle_counts = vec![0usize; thresholds.len()];
            for (id, chi) in &chis {
                let record = bench
                    .dataset
                    .catalog
                    .get(*id)
                    .ok_or(QueryError::UnknownMask(*id))?;
                let term = CpTerm::object_roi(*range);
                let roi = eval::resolve_roi(&term, record, true)?;
                let bounds = chi.cp_bounds(&roi, range);
                let area = bounds.roi_area.max(1) as f64;
                gaps.push(bounds.gap() as f64 / area);
                for (i, t) in thresholds.iter().enumerate() {
                    let t_count = t * area;
                    if (bounds.lower as f64) <= t_count && t_count < bounds.upper as f64 {
                        straddle_counts[i] += 1;
                    }
                }
            }
            let mean_relative_gap = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
            let fml_at_threshold = thresholds
                .iter()
                .zip(&straddle_counts)
                .map(|(t, c)| (*t, *c as f64 / sample.len().max(1) as f64))
                .collect();
            out.push(BoundsDistribution {
                config: *config,
                index_bytes_per_mask: config
                    .index_bytes(bench.spec.mask_width, bench.spec.mask_height),
                range: *range,
                mean_relative_gap,
                fml_at_threshold,
            });
        }
    }
    bench.store.io_stats().reset();
    Ok(out)
}

/// Cumulative-time series for one multi-query workload (Figure 11).
#[derive(Debug, Clone)]
pub struct WorkloadSeries {
    /// Workload label (Workload 1–4).
    pub name: String,
    /// Probability of re-targeting already-seen masks.
    pub p_seen: f64,
    /// Cumulative modelled time after each query for MaskSearch with
    /// pre-built indexes (the index build cost is the 0-th entry).
    pub ms_cumulative: Vec<f64>,
    /// Cumulative modelled time for MaskSearch with incremental indexing.
    pub ms_ii_cumulative: Vec<f64>,
    /// Cumulative modelled time for the NumPy baseline.
    pub numpy_cumulative: Vec<f64>,
}

impl WorkloadSeries {
    /// Ratio of MS-II to MS cumulative time after each query (Figure 11 c/d).
    pub fn ratio_ms_ii_to_ms(&self) -> Vec<f64> {
        self.ms_ii_cumulative
            .iter()
            .zip(&self.ms_cumulative)
            .map(|(ii, ms)| if *ms > 0.0 { ii / ms } else { 0.0 })
            .collect()
    }
}

/// Runs the §4.5 exploration workloads for the given `p_seen` values.
pub fn run_workloads(
    bench: &BenchDataset,
    num_queries: usize,
    p_seens: &[f64],
    seed: u64,
) -> Result<Vec<WorkloadSeries>, QueryError> {
    let all_masks = bench.dataset.catalog.mask_ids();
    let mut out = Vec::new();
    for (i, &p_seen) in p_seens.iter().enumerate() {
        let mut generator = RandomQueryGenerator::new(
            seed + i as u64,
            bench.spec.mask_width,
            bench.spec.mask_height,
        );
        let workload = ExplorationWorkload::generate(
            format!("Workload {}", i + 1),
            &all_masks,
            num_queries,
            p_seen,
            &mut generator,
            seed * 31 + i as u64,
        );

        // MS: eager index built up front; its cost is the 0-th sample.
        bench.store.io_stats().reset();
        let build_start = Instant::now();
        let ms_session = bench.session(IndexingMode::Eager);
        let build_io = bench.store.io_stats().virtual_io_time();
        let build_cost = build_start.elapsed() + build_io;
        bench.store.io_stats().reset();
        let ms_cumulative = run_workload_on_session(&ms_session, &workload, build_cost)?;

        // MS-II: incremental indexing, no up-front cost.
        let ms_ii_session = bench.session(IndexingMode::Incremental);
        bench.store.io_stats().reset();
        let ms_ii_cumulative = run_workload_on_session(&ms_ii_session, &workload, Duration::ZERO)?;

        // NumPy: loads every targeted mask for every query.
        let numpy = bench.numpy_engine();
        bench.store.io_stats().reset();
        let mut numpy_cumulative = vec![0.0];
        let mut acc = Duration::ZERO;
        for wq in &workload.queries {
            let report = numpy.execute(&wq.query)?;
            acc += report.modeled_total();
            numpy_cumulative.push(acc.as_secs_f64());
        }

        out.push(WorkloadSeries {
            name: workload.name.clone(),
            p_seen,
            ms_cumulative,
            ms_ii_cumulative,
            numpy_cumulative,
        });
    }
    Ok(out)
}

fn run_workload_on_session(
    session: &Session,
    workload: &ExplorationWorkload,
    initial_cost: Duration,
) -> Result<Vec<f64>, QueryError> {
    let mut acc = initial_cost;
    let mut series = vec![acc.as_secs_f64()];
    for wq in &workload.queries {
        let output = session.execute(&wq.query)?;
        acc += output.stats.modeled_total();
        series.push(acc.as_secs_f64());
    }
    Ok(series)
}

/// One row of the index-granularity experiment (§4.4).
#[derive(Debug, Clone)]
pub struct GranularityRow {
    /// The CHI configuration evaluated.
    pub config: ChiConfig,
    /// Total index size over the dataset.
    pub index_bytes: u64,
    /// Index size relative to the (estimated) compressed dataset size.
    pub ratio_to_compressed: f64,
    /// Mean relative bound gap over sampled masks (tightness proxy).
    pub mean_relative_gap: f64,
    /// Mean FML over a fixed set of randomized filter queries executed with
    /// this index granularity.
    pub mean_fml: f64,
}

/// Sweeps index granularities, reporting size vs. bound tightness vs. FML.
pub fn run_granularity_sweep(
    bench: &BenchDataset,
    configs: &[ChiConfig],
    probe_queries: usize,
    seed: u64,
) -> Result<Vec<GranularityRow>, QueryError> {
    let size_report = bench.index_size_report();
    let range = PixelRange::new(0.6, 1.0).unwrap();
    let mut out = Vec::new();
    for config in configs {
        // Bound tightness from the Figure-10 machinery.
        let dist = run_bounds_distribution(bench, &[*config], &[range], 200)?;
        let mean_relative_gap = dist[0].mean_relative_gap;

        // FML from actual query execution with this configuration.
        let session = Session::new(
            std::sync::Arc::clone(&bench.store)
                as std::sync::Arc<dyn masksearch_storage::MaskStore>,
            bench.dataset.catalog.clone(),
            masksearch_query::SessionConfig::new(*config).indexing_mode(IndexingMode::Eager),
        )?;
        bench.store.io_stats().reset();
        let mut generator =
            RandomQueryGenerator::new(seed, bench.spec.mask_width, bench.spec.mask_height);
        let mut fml_sum = 0.0;
        for _ in 0..probe_queries {
            let query: Query = generator.filter_query();
            let output = session.execute(&query)?;
            fml_sum += output.stats.fml();
        }
        let index_bytes =
            config.index_bytes(bench.spec.mask_width, bench.spec.mask_height) * bench.num_masks();
        out.push(GranularityRow {
            config: *config,
            index_bytes,
            ratio_to_compressed: index_bytes as f64 / size_report.compressed_bytes.max(1) as f64,
            mean_relative_gap,
            mean_fml: fml_sum / probe_queries.max(1) as f64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench() -> BenchDataset {
        BenchDataset::wilds(0.0015).unwrap()
    }

    #[test]
    fn individual_queries_run_and_agree_across_engines() {
        let bench = tiny_bench();
        let rows = run_individual_queries(&bench, true).unwrap();
        // 5 queries x 4 engines.
        assert_eq!(rows.len(), 20);
        for row in &rows {
            assert!(
                row.matches_reference,
                "{} on {} diverged",
                row.query, row.engine
            );
        }
        // MaskSearch loads fewer masks than NumPy on every query.
        for label in ["Q1", "Q2", "Q3", "Q4", "Q5"] {
            let ms = rows
                .iter()
                .find(|r| r.query == label && r.engine == "MaskSearch")
                .unwrap();
            let np = rows
                .iter()
                .find(|r| r.query == label && r.engine == "NumPy")
                .unwrap();
            assert!(
                ms.masks_loaded <= np.masks_loaded,
                "{label}: MS loaded {} vs NumPy {}",
                ms.masks_loaded,
                np.masks_loaded
            );
        }
    }

    #[test]
    fn fml_correlation_is_strongly_positive() {
        let bench = tiny_bench();
        let (measurements, r) = run_fml_correlation(&bench, 30, 9).unwrap();
        assert_eq!(measurements.len(), 30);
        // The deterministic (I/O-model) component correlates almost perfectly
        // with FML; the end-to-end figure also includes wall-clock CPU time,
        // which is noisy under test-runner load, so only a loose bound is
        // asserted on it.
        let fmls: Vec<f64> = measurements.iter().map(|m| m.fml).collect();
        let ios: Vec<f64> = measurements.iter().map(|m| m.io_secs).collect();
        assert!(pearson(&fmls, &ios) > 0.95, "io correlation too weak");
        assert!(r > 0.2, "Pearson r over modelled time was {r}");
    }

    #[test]
    fn workload_series_have_expected_shape() {
        let bench = tiny_bench();
        let series = run_workloads(&bench, 15, &[0.5], 3).unwrap();
        assert_eq!(series.len(), 1);
        let s = &series[0];
        assert_eq!(s.ms_cumulative.len(), 16);
        assert_eq!(s.ms_ii_cumulative.len(), 16);
        assert_eq!(s.numpy_cumulative.len(), 16);
        // MS starts with the index-build cost, MS-II and NumPy start at zero.
        assert!(s.ms_cumulative[0] > 0.0);
        assert_eq!(s.ms_ii_cumulative[0], 0.0);
        // Cumulative series are non-decreasing.
        for w in s.numpy_cumulative.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // By the end of the workload NumPy has fallen behind both MaskSearch
        // configurations (the paper observes the crossover after ~10 queries).
        assert!(s.numpy_cumulative.last().unwrap() > s.ms_cumulative.last().unwrap());
        assert!(s.numpy_cumulative.last().unwrap() >= s.ms_ii_cumulative.last().unwrap());
    }

    #[test]
    fn granularity_sweep_shows_size_tightness_tradeoff() {
        let bench = tiny_bench();
        let coarse = ChiConfig::new(56, 56, 4).unwrap();
        let fine = ChiConfig::new(8, 8, 16).unwrap();
        let rows = run_granularity_sweep(&bench, &[coarse, fine], 5, 7).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[1].index_bytes > rows[0].index_bytes);
        assert!(rows[1].mean_relative_gap <= rows[0].mean_relative_gap);
    }
}
