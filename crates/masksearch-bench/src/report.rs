//! Small reporting utilities shared by the experiment binaries: fixed-width
//! tables, duration formatting, and summary statistics.

use std::time::Duration;

/// Formats a duration as seconds with three significant decimals.
pub fn fmt_duration(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Formats a byte count with a binary unit suffix.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

/// A fixed-width text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (extra cells are dropped, missing cells blank).
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = (0..columns)
                .map(|i| {
                    format!(
                        "{:width$}",
                        row.get(i).cloned().unwrap_or_default(),
                        width = widths[i]
                    )
                })
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Pearson correlation coefficient of paired samples.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mean_x = xs.iter().sum::<f64>() / n as f64;
    let mean_y = ys.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

/// Percentile (0–100) of a sample, by linear interpolation on sorted data.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Five-number summary (min, 25th, median, 75th, max) of a sample.
pub fn five_number_summary(values: &[f64]) -> (f64, f64, f64, f64, f64) {
    (
        percentile(values, 0.0),
        percentile(values, 25.0),
        percentile(values, 50.0),
        percentile(values, 75.0),
        percentile(values, 100.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.500s");
        assert_eq!(fmt_bytes(512), "512.00 B");
        assert_eq!(fmt_bytes(6 * 1024 * 1024), "6.00 MiB");
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["query", "time"]);
        t.add_row(vec!["Q1".to_string(), "1.2s".to_string()]);
        t.add_row(vec!["Q10".to_string(), "0.5s".to_string()]);
        let rendered = t.render();
        assert!(rendered.contains("query"));
        assert!(rendered.lines().count() >= 4);
    }

    #[test]
    fn pearson_detects_perfect_and_no_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let anti = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &anti) + 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&xs, &flat), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn percentiles_and_summary() {
        let values = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&values, 0.0), 1.0);
        assert_eq!(percentile(&values, 100.0), 4.0);
        assert_eq!(percentile(&values, 50.0), 2.5);
        let (min, q1, med, q3, max) = five_number_summary(&values);
        assert_eq!(min, 1.0);
        assert!(q1 < med && med < q3);
        assert_eq!(max, 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
