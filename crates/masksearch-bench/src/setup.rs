//! Benchmark dataset setup: generate a synthetic dataset once, expose it
//! through every engine the evaluation compares.

use masksearch_baselines::{
    copy_to_array_store, copy_to_row_store, MaskSearchEngine, NumpyEngine, PostgresEngine,
    TileDbEngine,
};
use masksearch_datagen::{DatasetSpec, GeneratedDataset};
use masksearch_index::ChiConfig;
use masksearch_query::{IndexingMode, Session, SessionConfig};
use masksearch_storage::{DiskProfile, MaskEncoding, MaskStore, MemoryMaskStore, StorageResult};
use std::path::PathBuf;
use std::sync::Arc;

/// A fully prepared benchmark dataset: masks in the object store, metadata
/// catalog, and the CHI configuration matching the paper's ≈5 % index-size
/// budget for that dataset.
pub struct BenchDataset {
    /// Human-readable name (includes the scale factor).
    pub name: String,
    /// The generating specification.
    pub spec: DatasetSpec,
    /// Object store holding the masks, charged against the EBS gp3 cost
    /// model the paper's testbed used.
    pub store: Arc<MemoryMaskStore>,
    /// Generated metadata (catalog + ground-truth focus flags).
    pub dataset: GeneratedDataset,
    /// CHI configuration used by MaskSearch sessions over this dataset.
    pub chi_config: ChiConfig,
}

impl BenchDataset {
    /// Generates a dataset from a spec and CHI configuration.
    pub fn generate(spec: DatasetSpec, chi_config: ChiConfig) -> StorageResult<Self> {
        let store = Arc::new(MemoryMaskStore::new(
            MaskEncoding::Raw,
            DiskProfile::ebs_gp3(),
        ));
        let dataset = spec.generate_into(store.as_ref())?;
        // Dataset generation I/O must not be charged to any experiment.
        store.io_stats().reset();
        Ok(Self {
            name: spec.name.clone(),
            spec,
            store,
            dataset,
            chi_config,
        })
    }

    /// The WILDS-like dataset at the given scale. The paper uses 64×64 cells
    /// on 448×448 masks; the scaled dataset keeps the same cell-to-mask ratio
    /// (1/7 of the mask side) so the index/dataset size ratio matches.
    pub fn wilds(scale: f64) -> StorageResult<Self> {
        let spec = DatasetSpec::wilds_like(scale);
        let cell = (spec.mask_width / 7).max(1);
        let chi = ChiConfig::new(cell, cell, 16).expect("non-zero cell");
        Self::generate(spec, chi)
    }

    /// The ImageNet-like dataset at the given scale (cell = 1/8 of the mask
    /// side, matching the paper's 28-pixel cells on 224×224 masks).
    pub fn imagenet(scale: f64) -> StorageResult<Self> {
        let spec = DatasetSpec::imagenet_like(scale);
        let cell = (spec.mask_width / 8).max(1);
        let chi = ChiConfig::new(cell, cell, 16).expect("non-zero cell");
        Self::generate(spec, chi)
    }

    /// Number of masks in the dataset.
    pub fn num_masks(&self) -> u64 {
        self.spec.num_masks()
    }

    /// Creates a MaskSearch session over the dataset.
    pub fn session(&self, mode: IndexingMode) -> Session {
        Session::new(
            Arc::clone(&self.store) as Arc<dyn MaskStore>,
            self.dataset.catalog.clone(),
            SessionConfig::new(self.chi_config).indexing_mode(mode),
        )
        .expect("session construction over a generated dataset cannot fail")
    }

    /// MaskSearch behind the common engine interface (index pre-built, as in
    /// the paper's individual-query experiments).
    pub fn masksearch_engine(&self, mode: IndexingMode) -> MaskSearchEngine {
        let session = self.session(mode);
        // Index construction is part of setup for §4.2; reset so queries are
        // measured from a clean slate.
        self.store.io_stats().reset();
        MaskSearchEngine::new(session)
    }

    /// The NumPy-like baseline over the same store and catalog.
    pub fn numpy_engine(&self) -> NumpyEngine {
        NumpyEngine::new(
            Arc::clone(&self.store) as Arc<dyn MaskStore>,
            self.dataset.catalog.clone(),
        )
    }

    /// The PostgreSQL-like baseline (copies the dataset into a heap file
    /// under the system temp directory).
    pub fn postgres_engine(&self) -> StorageResult<PostgresEngine> {
        let path = self.scratch_path("heap");
        let heap = copy_to_row_store(self.store.as_ref(), &path, DiskProfile::ebs_gp3())?;
        self.store.io_stats().reset();
        Ok(PostgresEngine::new(heap, self.dataset.catalog.clone()))
    }

    /// The TileDB-like baseline (copies the dataset into a dense array file
    /// under the system temp directory).
    pub fn tiledb_engine(&self) -> StorageResult<TileDbEngine> {
        let path = self.scratch_path("array");
        let array = copy_to_array_store(self.store.as_ref(), &path, DiskProfile::ebs_gp3())?;
        self.store.io_stats().reset();
        Ok(TileDbEngine::new(array, self.dataset.catalog.clone()))
    }

    fn scratch_path(&self, kind: &str) -> PathBuf {
        let sanitized: String = self
            .name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        std::env::temp_dir().join(format!(
            "masksearch-bench-{}-{}-{}.bin",
            sanitized,
            kind,
            std::process::id()
        ))
    }

    /// Index-size accounting (§4.1): uncompressed dataset bytes, compressed
    /// dataset bytes (sampled), and index bytes under the dataset's CHI
    /// configuration.
    pub fn index_size_report(&self) -> IndexSizeReport {
        let uncompressed = self.spec.uncompressed_bytes();
        // Estimate the compressed size from a sample of masks.
        let ids = self.store.ids();
        let sample: Vec<_> = ids.iter().step_by((ids.len() / 64).max(1)).collect();
        let mut sampled_ratio = 0.0;
        for id in &sample {
            let mask = self.store.get(**id).expect("sampled mask exists");
            sampled_ratio += masksearch_storage::compression::compression_ratio(mask.data());
        }
        let ratio = sampled_ratio / sample.len().max(1) as f64;
        let compressed = (uncompressed as f64 / ratio) as u64;
        let index = self
            .chi_config
            .index_bytes(self.spec.mask_width, self.spec.mask_height)
            * self.num_masks();
        self.store.io_stats().reset();
        IndexSizeReport {
            uncompressed_bytes: uncompressed,
            compressed_bytes: compressed,
            index_bytes: index,
        }
    }
}

/// Dataset/index size accounting used by the §4.1/§4.4 experiments.
#[derive(Debug, Clone, Copy)]
pub struct IndexSizeReport {
    /// Raw dataset size (4 bytes per pixel).
    pub uncompressed_bytes: u64,
    /// Estimated losslessly-compressed dataset size.
    pub compressed_bytes: u64,
    /// Total CHI size for every mask.
    pub index_bytes: u64,
}

impl IndexSizeReport {
    /// Index size as a fraction of the compressed dataset size (the paper's
    /// "≈5 %" figure).
    pub fn index_to_compressed_ratio(&self) -> f64 {
        self.index_bytes as f64 / self.compressed_bytes.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilds_setup_produces_consistent_engines() {
        let bench = BenchDataset::wilds(0.002).unwrap();
        assert_eq!(bench.num_masks(), bench.dataset.catalog.len() as u64);
        let report = bench.index_size_report();
        assert!(report.index_bytes > 0);
        assert!(report.index_to_compressed_ratio() < 0.2);
        let engine = bench.masksearch_engine(IndexingMode::Eager);
        assert_eq!(engine.session().indexed_masks() as u64, bench.num_masks());
    }
}
