//! # masksearch-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§4) on the synthetic substrate described in
//! `DESIGN.md`. Each experiment has a binary under `src/bin/`:
//!
//! | Paper artefact | Binary |
//! |---|---|
//! | Table 1 / §4.2 query definitions | shared module [`queries`] |
//! | Figure 7 (individual query time) | `fig7_individual_queries` |
//! | Table 2 (masks loaded)           | `table2_masks_loaded` |
//! | Figure 8 (query-type distributions) | `fig8_query_types` |
//! | Figure 9 (time vs. FML)          | `fig9_fml_correlation` |
//! | Figure 10 (bound distributions)  | `fig10_bounds` |
//! | Figure 11 (multi-query workloads) | `fig11_workloads` |
//! | §4.1 / §4.4 index sizing & granularity | `index_granularity` |
//!
//! Every binary accepts a `--scale <f64>` argument (or the
//! `MASKSEARCH_SCALE` environment variable) controlling the number of images
//! relative to the paper's datasets, and prints the scale and substitutions
//! in its header so recorded numbers are reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod queries;
pub mod report;
pub mod setup;

pub use queries::PaperQueries;
pub use setup::BenchDataset;

/// Parses the dataset scale from `--scale <f>` command-line arguments or the
/// `MASKSEARCH_SCALE` environment variable, falling back to `default_scale`.
pub fn scale_from_args(default_scale: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    for window in args.windows(2) {
        if window[0] == "--scale" {
            if let Ok(v) = window[1].parse::<f64>() {
                return v;
            }
        }
    }
    if let Ok(v) = std::env::var("MASKSEARCH_SCALE") {
        if let Ok(v) = v.parse::<f64>() {
            return v;
        }
    }
    default_scale
}

/// Parses an integer argument of the form `--<name> <value>` with a default.
pub fn usize_from_args(name: &str, default: usize) -> usize {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    for window in args.windows(2) {
        if window[0] == flag {
            if let Ok(v) = window[1].parse::<usize>() {
                return v;
            }
        }
    }
    default
}
