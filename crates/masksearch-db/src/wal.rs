//! The write-ahead log: commit durability and crash recovery.
//!
//! Every write transaction appends one *page frame* per modified page (the
//! full after-image) followed by a *commit frame*, then optionally fsyncs.
//! A transaction is durable exactly when its commit frame is fully on disk:
//!
//! ```text
//! wal file  = header , frame*
//! header    = "MSWL" , version u16 , reserved u16 , page_size u32
//! page frame   = 0x01 , txn_id u64 , page_no u64 , len u32 , checksum u64 , payload
//! commit frame = 0x02 , txn_id u64 , frame_count u32 , checksum u64
//! ```
//!
//! All checksums are FNV-1a over the frame's header fields and payload.
//! Recovery scans the log from the start and replays only transactions whose
//! every frame (including the commit frame) is intact; the first torn,
//! checksum-mismatched, or unknown record ends the scan, and the file is
//! truncated back to the last committed boundary so later appends can never
//! hide behind garbage.

use crate::page::{checksum64, PageNo};
use masksearch_storage::{StorageError, StorageResult};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes identifying a WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"MSWL";
/// WAL format version.
pub const WAL_VERSION: u16 = 1;
/// Byte length of the WAL file header.
pub const WAL_HEADER_LEN: u64 = 12;

const FRAME_PAGE: u8 = 1;
const FRAME_COMMIT: u8 = 2;

/// One committed transaction recovered from the log, in commit order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTxn {
    /// Transaction id recorded in the frames.
    pub txn_id: u64,
    /// Page after-images, in append order.
    pub pages: Vec<(PageNo, Vec<u8>)>,
}

/// An open write-ahead log positioned for appending.
pub struct Wal {
    file: File,
    path: PathBuf,
    page_size: u32,
    len: u64,
}

impl Wal {
    /// Opens (creating if needed) the WAL at `path`, recovers every committed
    /// transaction, truncates any torn tail, and returns the log positioned
    /// for appending together with the recovered transactions.
    pub fn open(
        path: impl Into<PathBuf>,
        page_size: u32,
    ) -> StorageResult<(Self, Vec<CommittedTxn>)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| StorageError::io(format!("opening wal {}", path.display()), e))?;
        let file_len = file
            .metadata()
            .map_err(|e| StorageError::io("reading wal metadata", e))?
            .len();

        let (committed, valid_len) = if file_len < WAL_HEADER_LEN {
            // Empty or torn-before-header: start fresh.
            write_header(&mut file, page_size, &path)?;
            (Vec::new(), WAL_HEADER_LEN)
        } else {
            let mut bytes = Vec::with_capacity(file_len as usize);
            file.seek(SeekFrom::Start(0))
                .and_then(|_| file.read_to_end(&mut bytes))
                .map_err(|e| StorageError::io(format!("reading wal {}", path.display()), e))?;
            verify_header(&bytes, page_size)?;
            scan_committed(&bytes, page_size, WAL_HEADER_LEN)
        };

        // Drop the torn tail so future appends are reachable by recovery.
        if valid_len < file_len {
            file.set_len(valid_len)
                .map_err(|e| StorageError::io("truncating torn wal tail", e))?;
            file.sync_all()
                .map_err(|e| StorageError::io("syncing wal after tail truncation", e))?;
        }
        file.seek(SeekFrom::Start(valid_len))
            .map_err(|e| StorageError::io("seeking wal append position", e))?;

        Ok((
            Self {
                file,
                path,
                page_size,
                len: valid_len,
            },
            committed,
        ))
    }

    /// Bytes currently in the log (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER_LEN
    }

    /// Appends one transaction (page after-images plus the commit frame) and,
    /// when `fsync` is set, makes it durable before returning. Returns the
    /// number of bytes appended.
    pub fn append_txn(
        &mut self,
        txn_id: u64,
        pages: &[(PageNo, Vec<u8>)],
        fsync: bool,
    ) -> StorageResult<u64> {
        let mut buf = Vec::with_capacity(pages.len() * (29 + self.page_size as usize) + 21);
        for (page_no, image) in pages {
            debug_assert_eq!(image.len(), self.page_size as usize);
            let mut header = Vec::with_capacity(21);
            header.push(FRAME_PAGE);
            header.extend_from_slice(&txn_id.to_le_bytes());
            header.extend_from_slice(&page_no.to_le_bytes());
            header.extend_from_slice(&(image.len() as u32).to_le_bytes());
            let checksum = checksum64(&[&header, image]);
            buf.extend_from_slice(&header);
            buf.extend_from_slice(&checksum.to_le_bytes());
            buf.extend_from_slice(image);
        }
        let mut commit = Vec::with_capacity(13);
        commit.push(FRAME_COMMIT);
        commit.extend_from_slice(&txn_id.to_le_bytes());
        commit.extend_from_slice(&(pages.len() as u32).to_le_bytes());
        let checksum = checksum64(&[&commit]);
        buf.extend_from_slice(&commit);
        buf.extend_from_slice(&checksum.to_le_bytes());

        self.file
            .write_all(&buf)
            .map_err(|e| StorageError::io("appending wal transaction", e))?;
        if fsync {
            self.file
                .sync_data()
                .map_err(|e| StorageError::io("fsyncing wal commit", e))?;
        }
        self.len += buf.len() as u64;
        Ok(buf.len() as u64)
    }

    /// Forces every appended frame to disk. Used by the checkpoint before
    /// any page reaches the database file, so the log-ahead rule holds even
    /// for commits that ran with fsync off.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.file
            .sync_data()
            .map_err(|e| StorageError::io("fsyncing wal", e))
    }

    /// Empties the log back to a bare header (the checkpoint step). The
    /// caller must have made the database file durable first.
    pub fn reset(&mut self) -> StorageResult<()> {
        self.file
            .set_len(0)
            .map_err(|e| StorageError::io("truncating wal at checkpoint", e))?;
        write_header(&mut self.file, self.page_size, &self.path)?;
        self.len = WAL_HEADER_LEN;
        Ok(())
    }
}

fn write_header(file: &mut File, page_size: u32, path: &Path) -> StorageResult<()> {
    file.seek(SeekFrom::Start(0))
        .map_err(|e| StorageError::io("seeking wal header", e))?;
    let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
    header.extend_from_slice(&WAL_MAGIC);
    header.extend_from_slice(&WAL_VERSION.to_le_bytes());
    header.extend_from_slice(&0u16.to_le_bytes());
    header.extend_from_slice(&page_size.to_le_bytes());
    file.write_all(&header)
        .and_then(|_| file.sync_data())
        .map_err(|e| StorageError::io(format!("writing wal header {}", path.display()), e))
}

/// Validates the header of a WAL byte image and returns the page size it
/// was written with. Used by replication tailers to check a primary's log
/// before applying anything from it.
pub fn header_page_size(bytes: &[u8]) -> StorageResult<u32> {
    if bytes.len() < WAL_HEADER_LEN as usize {
        return Err(StorageError::corrupt(
            "wal shorter than its header".to_string(),
        ));
    }
    if bytes[0..4] != WAL_MAGIC {
        return Err(StorageError::BadMagic {
            path: "<wal>".to_string(),
            found: [bytes[0], bytes[1], bytes[2], bytes[3]],
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version > WAL_VERSION {
        return Err(StorageError::UnsupportedVersion {
            found: version,
            supported: WAL_VERSION,
        });
    }
    Ok(u32::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11],
    ]))
}

fn verify_header(bytes: &[u8], page_size: u32) -> StorageResult<()> {
    if bytes[0..4] != WAL_MAGIC {
        return Err(StorageError::BadMagic {
            path: "<wal>".to_string(),
            found: [bytes[0], bytes[1], bytes[2], bytes[3]],
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version > WAL_VERSION {
        return Err(StorageError::UnsupportedVersion {
            found: version,
            supported: WAL_VERSION,
        });
    }
    let stored = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if stored != page_size {
        return Err(StorageError::corrupt(format!(
            "wal was written with page size {stored}, opened with {page_size}"
        )));
    }
    Ok(())
}

/// Scans a WAL byte image for committed transactions starting at byte
/// `start` (a frame boundary; [`WAL_HEADER_LEN`] scans the whole body),
/// returning them in commit order together with the offset just past the
/// last committed frame. Anything after that offset — an unfinished
/// transaction, a torn record, random garbage — is ignored, so a crash at
/// *any* byte boundary recovers to a committed prefix. Recovery scans the
/// whole log this way; replication tailers resume from their applied
/// watermark.
pub fn scan_committed(bytes: &[u8], page_size: u32, start: u64) -> (Vec<CommittedTxn>, u64) {
    let mut committed = Vec::new();
    let mut pos = start as usize;
    let mut valid_len = pos as u64;
    let mut pending: Vec<(PageNo, Vec<u8>)> = Vec::new();
    let mut pending_txn: Option<u64> = None;

    while let Some(&frame_type) = bytes.get(pos) {
        match frame_type {
            FRAME_PAGE => {
                let header_end = pos + 21;
                let Some(header) = bytes.get(pos..header_end) else {
                    break;
                };
                let txn_id = u64::from_le_bytes(header[1..9].try_into().unwrap());
                let page_no = u64::from_le_bytes(header[9..17].try_into().unwrap());
                let len = u32::from_le_bytes(header[17..21].try_into().unwrap());
                if len != page_size {
                    break;
                }
                let Some(stored) = bytes.get(header_end..header_end + 8) else {
                    break;
                };
                let stored = u64::from_le_bytes(stored.try_into().unwrap());
                let payload_end = header_end + 8 + len as usize;
                let Some(payload) = bytes.get(header_end + 8..payload_end) else {
                    break;
                };
                if checksum64(&[header, payload]) != stored {
                    break;
                }
                if pending_txn.is_some_and(|t| t != txn_id) {
                    // A new transaction started without the previous one
                    // committing: the writer never interleaves, so this is
                    // corruption — stop.
                    break;
                }
                pending_txn = Some(txn_id);
                pending.push((page_no, payload.to_vec()));
                pos = payload_end;
            }
            FRAME_COMMIT => {
                let header_end = pos + 13;
                let Some(header) = bytes.get(pos..header_end) else {
                    break;
                };
                let txn_id = u64::from_le_bytes(header[1..9].try_into().unwrap());
                let frame_count = u32::from_le_bytes(header[9..13].try_into().unwrap());
                let Some(stored) = bytes.get(header_end..header_end + 8) else {
                    break;
                };
                let stored = u64::from_le_bytes(stored.try_into().unwrap());
                if checksum64(&[header]) != stored {
                    break;
                }
                if pending_txn != Some(txn_id) || pending.len() as u32 != frame_count {
                    break;
                }
                committed.push(CommittedTxn {
                    txn_id,
                    pages: std::mem::take(&mut pending),
                });
                pending_txn = None;
                pos = header_end + 8;
                valid_len = pos as u64;
            }
            _ => break,
        }
    }
    (committed, valid_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "masksearch-wal-test-{}-{}.wal",
            name,
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn page(fill: u8, size: usize) -> Vec<u8> {
        vec![fill; size]
    }

    #[test]
    fn append_and_recover_round_trip() {
        let path = temp_wal("roundtrip");
        {
            let (mut wal, committed) = Wal::open(&path, 64).unwrap();
            assert!(committed.is_empty());
            assert!(wal.is_empty());
            wal.append_txn(1, &[(0, page(0xaa, 64)), (3, page(0xbb, 64))], true)
                .unwrap();
            wal.append_txn(2, &[(3, page(0xcc, 64))], true).unwrap();
        }
        let (wal, committed) = Wal::open(&path, 64).unwrap();
        assert!(!wal.is_empty());
        assert_eq!(committed.len(), 2);
        assert_eq!(committed[0].txn_id, 1);
        assert_eq!(committed[0].pages.len(), 2);
        assert_eq!(committed[1].pages, vec![(3, page(0xcc, 64))]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_truncation_point_recovers_a_committed_prefix() {
        let path = temp_wal("prefix");
        {
            let (mut wal, _) = Wal::open(&path, 32).unwrap();
            wal.append_txn(1, &[(0, page(1, 32))], true).unwrap();
            wal.append_txn(2, &[(1, page(2, 32)), (2, page(3, 32))], true)
                .unwrap();
            wal.append_txn(3, &[(0, page(4, 32))], true).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let mut seen_counts = std::collections::BTreeSet::new();
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, committed) = Wal::open(&path, 32).unwrap();
            // The recovered history is always a prefix of [txn 1, 2, 3].
            let ids: Vec<u64> = committed.iter().map(|t| t.txn_id).collect();
            assert_eq!(ids, (1..=committed.len() as u64).collect::<Vec<_>>());
            seen_counts.insert(committed.len());
        }
        // Every prefix length is reachable, including none and all.
        assert_eq!(seen_counts, (0..=3).collect());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_tail_bytes_are_discarded() {
        let path = temp_wal("corrupt");
        {
            let (mut wal, _) = Wal::open(&path, 32).unwrap();
            wal.append_txn(1, &[(0, page(1, 32))], true).unwrap();
            wal.append_txn(2, &[(1, page(2, 32))], true).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte in the second transaction.
        let second_txn_start = WAL_HEADER_LEN as usize + 29 + 32 + 21;
        let idx = second_txn_start + 40;
        bytes[idx] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, committed) = Wal::open(&path, 32).unwrap();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].txn_id, 1);
        // The torn tail was truncated: reopening again sees the same prefix.
        let (_, committed) = Wal::open(&path, 32).unwrap();
        assert_eq!(committed.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appends_after_tail_truncation_are_recoverable() {
        let path = temp_wal("append-after-trunc");
        {
            let (mut wal, _) = Wal::open(&path, 32).unwrap();
            wal.append_txn(1, &[(0, page(1, 32))], true).unwrap();
            wal.append_txn(2, &[(1, page(2, 32))], true).unwrap();
        }
        // Tear the second transaction's tail, reopen, append a third.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        {
            let (mut wal, committed) = Wal::open(&path, 32).unwrap();
            assert_eq!(committed.len(), 1);
            wal.append_txn(2, &[(7, page(9, 32))], true).unwrap();
        }
        let (_, committed) = Wal::open(&path, 32).unwrap();
        assert_eq!(committed.len(), 2);
        assert_eq!(committed[1].pages, vec![(7, page(9, 32))]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp_wal("reset");
        let (mut wal, _) = Wal::open(&path, 32).unwrap();
        wal.append_txn(1, &[(0, page(1, 32))], true).unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty());
        assert_eq!(wal.len(), WAL_HEADER_LEN);
        drop(wal);
        let (_, committed) = Wal::open(&path, 32).unwrap();
        assert!(committed.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_page_size_is_rejected() {
        let path = temp_wal("pagesize");
        drop(Wal::open(&path, 32).unwrap());
        assert!(matches!(
            Wal::open(&path, 64),
            Err(StorageError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
