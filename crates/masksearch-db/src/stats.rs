//! Atomic ingestion counters shared between the durable store and the
//! serving layer.

use masksearch_storage::IngestSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters for the write path. Snapshot as
/// [`IngestSnapshot`] through [`IngestStats::snapshot`].
#[derive(Debug, Default)]
pub struct IngestStats {
    masks_inserted: AtomicU64,
    masks_deleted: AtomicU64,
    commits: AtomicU64,
    wal_bytes: AtomicU64,
    checkpoints: AtomicU64,
}

impl IngestStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one committed transaction that inserted `inserted` and
    /// deleted `deleted` masks, appending `wal_bytes` to the log.
    pub fn record_commit(&self, inserted: u64, deleted: u64, wal_bytes: u64) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.masks_inserted.fetch_add(inserted, Ordering::Relaxed);
        self.masks_deleted.fetch_add(deleted, Ordering::Relaxed);
        self.wal_bytes.fetch_add(wal_bytes, Ordering::Relaxed);
    }

    /// Records a completed checkpoint.
    pub fn record_checkpoint(&self) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> IngestSnapshot {
        IngestSnapshot {
            masks_inserted: self.masks_inserted.load(Ordering::Relaxed),
            masks_deleted: self.masks_deleted.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = IngestStats::new();
        stats.record_commit(3, 0, 1000);
        stats.record_commit(0, 2, 500);
        stats.record_checkpoint();
        let snap = stats.snapshot();
        assert_eq!(snap.masks_inserted, 3);
        assert_eq!(snap.masks_deleted, 2);
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.wal_bytes, 1500);
        assert_eq!(snap.checkpoints, 1);
    }
}
