//! Page-level constants, the meta page, and the checksum used to detect torn
//! WAL records.

use masksearch_storage::codec::{Reader, Writer};
use masksearch_storage::{StorageError, StorageResult};

/// A page number. Page 0 is the meta page.
pub type PageNo = u64;

/// The page holding the database header.
pub const META_PAGE: PageNo = 0;

/// Magic bytes identifying a mask database file.
pub const DB_MAGIC: [u8; 4] = *b"MSDB";

/// Database file format version.
pub const DB_FORMAT_VERSION: u16 = 1;

/// Smallest supported page size. The meta page must fit in one page, and
/// pages this small keep the kill-at-every-byte recovery tests fast.
pub const MIN_PAGE_SIZE: u32 = 128;

/// 64-bit FNV-1a over a sequence of byte slices.
///
/// Every WAL frame carries this checksum over its header and payload; a
/// record whose checksum does not match is treated as a torn tail and
/// discarded during recovery.
pub fn checksum64(parts: &[&[u8]]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &byte in *part {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// The decoded meta page: everything needed to locate the rest of the
/// database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Page size the file was written with.
    pub page_size: u32,
    /// Number of pages the database logically spans (the file may be shorter
    /// when recent pages live only in the WAL).
    pub page_count: u64,
    /// Next transaction id to assign.
    pub next_txn_id: u64,
    /// First page of the directory extent.
    pub dir_start: PageNo,
    /// Number of pages in the directory extent.
    pub dir_pages: u32,
    /// Meaningful byte length of the directory payload.
    pub dir_bytes: u64,
}

impl Meta {
    /// Serialises the meta block into a full zero-padded page image.
    pub fn encode_page(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.page_size as usize);
        w.write_bytes(&DB_MAGIC);
        w.write_u16(DB_FORMAT_VERSION);
        w.write_u16(0);
        w.write_u32(self.page_size);
        w.write_u64(self.page_count);
        w.write_u64(self.next_txn_id);
        w.write_u64(self.dir_start);
        w.write_u32(self.dir_pages);
        w.write_u64(self.dir_bytes);
        let mut page = w.into_bytes();
        page.resize(self.page_size as usize, 0);
        page
    }

    /// Decodes a meta page, validating magic, version, and page size.
    pub fn decode_page(bytes: &[u8], expected_page_size: u32) -> StorageResult<Self> {
        let mut r = Reader::new(bytes, "mask database meta page");
        let magic = r.read_magic()?;
        if magic != DB_MAGIC {
            return Err(StorageError::BadMagic {
                path: "<mask database>".to_string(),
                found: magic,
            });
        }
        let version = r.read_u16()?;
        if version > DB_FORMAT_VERSION {
            return Err(StorageError::UnsupportedVersion {
                found: version,
                supported: DB_FORMAT_VERSION,
            });
        }
        let _reserved = r.read_u16()?;
        let page_size = r.read_u32()?;
        if page_size != expected_page_size {
            return Err(StorageError::corrupt(format!(
                "database was written with page size {page_size}, opened with {expected_page_size}"
            )));
        }
        Ok(Meta {
            page_size,
            page_count: r.read_u64()?,
            next_txn_id: r.read_u64()?,
            dir_start: r.read_u64()?,
            dir_pages: r.read_u32()?,
            dir_bytes: r.read_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips_through_a_page_image() {
        let meta = Meta {
            page_size: 256,
            page_count: 17,
            next_txn_id: 9,
            dir_start: 3,
            dir_pages: 2,
            dir_bytes: 301,
        };
        let page = meta.encode_page();
        assert_eq!(page.len(), 256);
        assert_eq!(Meta::decode_page(&page, 256).unwrap(), meta);
    }

    #[test]
    fn meta_rejects_bad_magic_and_mismatched_page_size() {
        let meta = Meta {
            page_size: 256,
            page_count: 1,
            next_txn_id: 1,
            dir_start: 0,
            dir_pages: 0,
            dir_bytes: 0,
        };
        let mut page = meta.encode_page();
        assert!(matches!(
            Meta::decode_page(&page, 512),
            Err(StorageError::Corrupt { .. })
        ));
        page[0] = b'Z';
        assert!(matches!(
            Meta::decode_page(&page, 256),
            Err(StorageError::BadMagic { .. })
        ));
    }

    #[test]
    fn checksum_differs_on_any_flipped_byte() {
        let base = checksum64(&[b"hello", b"world"]);
        assert_eq!(base, checksum64(&[b"hello", b"world"]));
        assert_ne!(base, checksum64(&[b"hellO", b"world"]));
        assert_ne!(base, checksum64(&[b"hello", b"worlD"]));
        // Part boundaries do not matter: the checksum streams over the
        // concatenation, so header/payload splits can change freely.
        assert_eq!(base, checksum64(&[b"helloworld"]));
    }
}
