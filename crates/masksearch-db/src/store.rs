//! The durable mask store: atomic multi-page commits over the pager + WAL,
//! with live CHI maintenance.
//!
//! ## Commit protocol
//!
//! A write transaction (a batch of inserts and/or deletes) is planned
//! entirely off to the side — new blob extents, a rewritten directory
//! extent, and an updated meta page — then:
//!
//! 1. all page after-images plus a commit record are appended to the WAL
//!    (fsynced when [`DbConfig::fsync`] is set): *this* is the commit point;
//! 2. the images are installed in the buffer pool and the in-memory
//!    directory is swapped **under the state write lock**, so readers see
//!    either none or all of the batch;
//! 3. the CHI store is updated (inserted masks indexed, deleted masks
//!    already evicted before step 1), preserving the invariant that no index
//!    entry ever refers to a mask that is not durably present. Tile-summary
//!    grids for the verification kernel are maintained the same way, except
//!    their insertion happens *inside* step 2's write lock so pixels and
//!    summaries publish together.
//!
//! A checkpoint writes all dirty pages to the database file, fsyncs it,
//! atomically rewrites the CHI and tile-summary files via temp + rename, and
//! then truncates the WAL. Recovery replays committed WAL transactions over
//! the database file, discards any torn tail (see [`crate::wal`]), and drops
//! persisted index entries for masks whose pages the replay rewrote (their
//! checkpointed summaries may predate the replayed commits).

use crate::dir::{BlobEntry, Directory};
use crate::page::{Meta, PageNo, MIN_PAGE_SIZE};
use crate::pager::Pager;
use crate::stats::IngestStats;
use crate::wal::{CommittedTxn, Wal};
use masksearch_core::{Mask, MaskId, MaskRecord, TileGrid, TiledMask};
use masksearch_index::{ChiConfig, ChiStore, TileStore};
use masksearch_obs::counters as obs_counters;
use masksearch_obs::ShapeStatsRegistry;
use masksearch_storage::format;
use masksearch_storage::meta_index::{self, MetaColumn, MetaIndexRegistry};
use masksearch_storage::store::IngestSnapshot;
use masksearch_storage::{
    DiskProfile, IoStats, MaskEncoding, MaskStore, StorageError, StorageResult,
};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the page file inside a database directory.
pub const DB_FILE: &str = "masks.db";
/// File name of the write-ahead log.
pub const WAL_FILE: &str = "masks.wal";
/// File name of the persisted CHI store.
pub const CHI_FILE: &str = "masks.chi";
/// File name of the persisted tile-summary store (verification kernel).
pub const TILES_FILE: &str = "masks.tiles";
/// File name of the persisted per-query-shape statistics.
pub const SHAPE_STATS_FILE: &str = "masks.stats";
/// File-name prefix of persisted secondary metadata indexes; the full name
/// is `masks.idx.<column>` (e.g. `masks.idx.model_id`).
pub const META_INDEX_FILE_PREFIX: &str = "masks.idx.";

/// The snapshot file name of a secondary index over `column`.
pub fn meta_index_file(column: MetaColumn) -> String {
    format!("{}{}", META_INDEX_FILE_PREFIX, column.name())
}

/// Configuration of a durable mask database.
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Page size in bytes (clamped to at least [`MIN_PAGE_SIZE`]).
    pub page_size: u32,
    /// Buffer-pool capacity in pages.
    pub pool_pages: usize,
    /// Whether commits fsync the WAL before returning. Turning this off
    /// trades crash durability of the most recent commits for throughput
    /// (atomicity is unaffected: recovery still lands on a committed prefix).
    pub fsync: bool,
    /// WAL size that triggers an automatic checkpoint after a commit;
    /// `0` disables automatic checkpoints.
    pub checkpoint_wal_bytes: u64,
    /// CHI configuration for the maintained index.
    pub chi_config: ChiConfig,
    /// Encoding of stored mask blobs.
    pub encoding: MaskEncoding,
    /// Disk cost model charged for blob reads and writes.
    pub profile: DiskProfile,
}

impl Default for DbConfig {
    fn default() -> Self {
        Self {
            page_size: 4096,
            pool_pages: 1024,
            fsync: true,
            checkpoint_wal_bytes: 8 * 1024 * 1024,
            chi_config: ChiConfig::default(),
            encoding: MaskEncoding::Raw,
            profile: DiskProfile::unthrottled(),
        }
    }
}

impl DbConfig {
    /// Sets the page size.
    pub fn page_size(mut self, bytes: u32) -> Self {
        self.page_size = bytes.max(MIN_PAGE_SIZE);
        self
    }

    /// Sets the buffer-pool capacity in pages.
    pub fn pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = pages;
        self
    }

    /// Sets whether commits fsync the WAL.
    pub fn fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }

    /// Sets the automatic-checkpoint WAL threshold (0 disables).
    pub fn checkpoint_wal_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_wal_bytes = bytes;
        self
    }

    /// Sets the CHI configuration.
    pub fn chi_config(mut self, config: ChiConfig) -> Self {
        self.chi_config = config;
        self
    }

    /// Sets the blob encoding.
    pub fn encoding(mut self, encoding: MaskEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Sets the disk cost model.
    pub fn profile(mut self, profile: DiskProfile) -> Self {
        self.profile = profile;
        self
    }
}

/// Mutable state guarded by one `RwLock`: readers resolve a mask's location
/// and read its pages under a single read guard, so a concurrent commit
/// (which applies under the write guard) can never tear a read.
struct State {
    pager: Mutex<Pager>,
    dir: Directory,
    free: BTreeSet<PageNo>,
    page_count: u64,
    next_txn: u64,
    dir_start: PageNo,
    dir_pages: u32,
}

/// A durable, mutable mask store over a pager, WAL, and maintained CHI.
pub struct DurableMaskStore {
    config: DbConfig,
    chi_path: PathBuf,
    tiles_path: PathBuf,
    state: RwLock<State>,
    wal: Mutex<Wal>,
    /// Serialises commits and checkpoints; reads never take it.
    writer: Mutex<()>,
    chi: Arc<ChiStore>,
    /// Tile-summary grids for the verification kernel, maintained like the
    /// CHI: evicted before the commit point for deletes/overwrites and
    /// (re)inserted when the batch publishes. Insertions happen **under the
    /// state write lock**, so a reader holding the state read guard that
    /// finds a grid here knows it was built from exactly the pixels the
    /// directory currently points at (see [`MaskStore::get_tiled`]).
    tiles: Arc<TileStore>,
    /// Per-query-shape statistics recorded by sessions over this store
    /// (shared via [`MaskStore::shape_stats`]) and persisted at checkpoint
    /// next to the CHI and tile files, so the observed
    /// selectivity/decisiveness profile of a workload survives restarts.
    shape_stats: Arc<ShapeStatsRegistry>,
    shape_stats_path: PathBuf,
    /// Secondary metadata index definitions, shared with query sessions via
    /// [`MaskStore::meta_indexes`] and snapshotted to one `masks.idx.<col>`
    /// file per definition (on DDL and at checkpoint). Posting lists live in
    /// the catalog's secondary maps — maintained inside every commit — so a
    /// snapshot is rebuilt from the recovered catalog whenever it is stale,
    /// torn, or foreign.
    meta_indexes: Arc<MetaIndexRegistry>,
    db_dir: PathBuf,
    ingest: IngestStats,
    io: Arc<IoStats>,
    /// Error of a failed *automatic* checkpoint. The triggering commit was
    /// already durable, so the error is parked here instead of failing it;
    /// see [`DurableMaskStore::take_checkpoint_error`].
    checkpoint_error: Mutex<Option<StorageError>>,
}

impl DurableMaskStore {
    /// Opens (creating or recovering) a database in `dir`.
    pub fn open(dir: impl AsRef<Path>, config: DbConfig) -> StorageResult<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(|e| {
            StorageError::io(format!("creating database directory {}", dir.display()), e)
        })?;
        let config = DbConfig {
            page_size: config.page_size.max(MIN_PAGE_SIZE),
            ..config
        };
        let db_path = dir.join(DB_FILE);
        let wal_path = dir.join(WAL_FILE);
        let chi_path = dir.join(CHI_FILE);
        let tiles_path = dir.join(TILES_FILE);
        let shape_stats_path = dir.join(SHAPE_STATS_FILE);

        let mut pager = Pager::open(&db_path, config.page_size, config.pool_pages)?;
        let (mut wal, committed) = Wal::open(&wal_path, config.page_size)?;
        let fresh = pager.file_pages() == 0 && committed.is_empty();
        // Pages rewritten by WAL replay: any mask whose extent intersects
        // this set got its current content from a post-checkpoint commit, so
        // index entries for it in the persisted CHI/tile files (written at
        // the last checkpoint) may be stale and must be rebuilt from pixels.
        let mut replayed_pages: BTreeSet<PageNo> = BTreeSet::new();
        for txn in &committed {
            for (page_no, image) in &txn.pages {
                replayed_pages.insert(*page_no);
                pager.write_page(*page_no, image.clone())?;
            }
        }

        let (meta, directory) = if fresh {
            // Bootstrap through the WAL so a crash at any point during
            // initialisation recovers to either "no database" or "empty
            // database", never a torn meta page.
            let directory = Directory::new();
            let dir_blob = directory.encode();
            let meta = Meta {
                page_size: config.page_size,
                page_count: 2,
                next_txn_id: 1,
                dir_start: 1,
                dir_pages: 1,
                dir_bytes: dir_blob.len() as u64,
            };
            let pages = vec![
                (0, meta.encode_page()),
                (1, pad_page(dir_blob, config.page_size)),
            ];
            wal.append_txn(0, &pages, config.fsync)?;
            for (page_no, image) in pages {
                pager.write_page(page_no, image)?;
            }
            (meta, directory)
        } else {
            let meta_page = pager.read_page(0)?;
            let meta = Meta::decode_page(&meta_page, config.page_size)?;
            let mut dir_blob =
                Vec::with_capacity((meta.dir_pages as usize) * config.page_size as usize);
            for page_no in meta.dir_start..meta.dir_start + meta.dir_pages as u64 {
                dir_blob.extend_from_slice(&pager.read_page(page_no)?);
            }
            if (dir_blob.len() as u64) < meta.dir_bytes {
                return Err(StorageError::corrupt(
                    "directory extent is shorter than the meta page claims",
                ));
            }
            dir_blob.truncate(meta.dir_bytes as usize);
            (meta, Directory::decode(&dir_blob)?)
        };

        let free = derive_free_set(&meta, &directory)?;
        let (chi, tiles) =
            reconcile_indexes(&chi_path, &tiles_path, &config, &directory, &mut pager, {
                |entry: &BlobEntry| {
                    (entry.start..entry.start + entry.pages as u64)
                        .any(|p| replayed_pages.contains(&p))
                }
            })?;

        // A missing or foreign-format statistics file simply starts fresh;
        // shape statistics are advisory, never load-bearing.
        let shape_stats = fs::read(&shape_stats_path)
            .ok()
            .and_then(|bytes| ShapeStatsRegistry::from_bytes(&bytes))
            .unwrap_or_default();

        // Recover secondary index definitions from their snapshot files.
        // Posting lists are served from the catalog's live secondary maps,
        // so only the *definition* is load-bearing here; postings that went
        // stale since the last snapshot are rewritten from the recovered
        // catalog, and torn or foreign files are discarded (snapshots are
        // written via temp + rename, so a torn file means external damage
        // — the directory remains the source of truth, like the CHI).
        let meta_indexes = Arc::new(MetaIndexRegistry::new());
        {
            let mut catalog = masksearch_storage::Catalog::new();
            for entry in directory.entries.values() {
                catalog.insert(entry.record.clone());
            }
            for column in MetaColumn::ALL {
                let path = dir.join(meta_index_file(column));
                let Ok(bytes) = fs::read(&path) else { continue };
                match meta_index::decode_snapshot(&bytes) {
                    Ok((def, map))
                        if def.column == column
                            && meta_indexes.create(&def.name, def.column, true).is_ok() =>
                    {
                        if map != meta_index::postings(&catalog, column) {
                            write_atomic(
                                &path,
                                &meta_index::snapshot_bytes(&def, &catalog),
                                "metadata index rebuild",
                            )?;
                        }
                    }
                    _ => {
                        let _ = fs::remove_file(&path);
                    }
                }
            }
        }

        let store = Self {
            chi: Arc::new(chi),
            tiles: Arc::new(tiles),
            shape_stats: Arc::new(shape_stats),
            shape_stats_path,
            meta_indexes,
            db_dir: dir.to_path_buf(),
            config,
            chi_path,
            tiles_path,
            state: RwLock::new(State {
                pager: Mutex::new(pager),
                dir: directory,
                free,
                page_count: meta.page_count,
                next_txn: meta.next_txn_id,
                dir_start: meta.dir_start,
                dir_pages: meta.dir_pages,
            }),
            wal: Mutex::new(wal),
            writer: Mutex::new(()),
            ingest: IngestStats::new(),
            io: IoStats::new_shared(),
            checkpoint_error: Mutex::new(None),
        };
        Ok(store)
    }

    /// The store's configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// The CHI store maintained on every commit. Share it with a query
    /// session (`Session::with_shared_index`) so the filter stage always
    /// reflects exactly the durably-present masks.
    pub fn chi_store(&self) -> &Arc<ChiStore> {
        &self.chi
    }

    /// The tile-summary store maintained on every commit (the verification
    /// kernel's within-mask index).
    pub fn tile_store(&self) -> &Arc<TileStore> {
        &self.tiles
    }

    /// Invariant check used by the ingest-path and crash-recovery tests:
    /// every durably-present mask must have a tile grid, and every grid must
    /// equal one freshly rebuilt from the mask's pixels. Returns the number
    /// of masks checked.
    pub fn verify_tile_summaries(&self) -> StorageResult<usize> {
        let ids = self.ids();
        for &mask_id in &ids {
            let mask = self.get(mask_id)?;
            let grid = self.tiles.get(mask_id).ok_or_else(|| {
                StorageError::corrupt(format!("mask {mask_id} has no tile summaries"))
            })?;
            if !grid.verify(&mask) {
                return Err(StorageError::corrupt(format!(
                    "tile summaries of mask {mask_id} do not match its pixels"
                )));
            }
        }
        Ok(ids.len())
    }

    /// Current WAL size in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.lock().len()
    }

    /// Takes the error of a failed automatic checkpoint, if one occurred
    /// since the last call. Commits never fail for checkpoint reasons (the
    /// data is durable in the WAL either way); callers that care about
    /// checkpoint health poll this or call [`DurableMaskStore::checkpoint`]
    /// explicitly.
    pub fn take_checkpoint_error(&self) -> Option<StorageError> {
        self.checkpoint_error.lock().take()
    }

    /// Rebuilds a metadata catalog from the persisted directory records.
    pub fn catalog(&self) -> masksearch_storage::Catalog {
        let state = self.state.read();
        let mut catalog = masksearch_storage::Catalog::new();
        for entry in state.dir.entries.values() {
            catalog.insert(entry.record.clone());
        }
        catalog
    }

    /// Atomically inserts (or overwrites) a batch of masks with their
    /// records: after this returns, either every mask in the batch is
    /// durable or (on error / crash) none of them are visible.
    pub fn insert_masks(&self, batch: &[(MaskRecord, Mask)]) -> StorageResult<()> {
        self.commit(batch, &[])
    }

    /// Atomically deletes a batch of masks. Fails without side effects if
    /// any of the ids is unknown.
    pub fn delete_masks(&self, mask_ids: &[MaskId]) -> StorageResult<()> {
        self.commit(&[], mask_ids)
    }

    /// Writes all committed pages to the database file, fsyncs it, truncates
    /// the WAL, and rewrites the CHI file.
    pub fn checkpoint(&self) -> StorageResult<()> {
        let _writer = self.writer.lock();
        self.checkpoint_locked()
    }

    fn checkpoint_locked(&self) -> StorageResult<()> {
        let checkpoint_start = std::time::Instant::now();
        // Log-ahead: every commit must be durable in the WAL before its
        // pages can touch the database file — otherwise a crash mid-flush
        // with an unsynced log (fsync off) could leave a page mix that no
        // committed prefix explains.
        self.wal.lock().sync()?;
        {
            let state = self.state.read();
            state.pager.lock().flush()?;
        }
        // CHI and tile-summary rewrites via temp + rename: a crash leaves
        // either the old or the new index file, and recovery reconciles
        // either against the directory. The rewrites happen *before* the WAL
        // truncation below: recovery treats masks touched by replayed WAL
        // transactions as possibly-stale in these files, so as long as the
        // WAL still names every post-file-write commit, an old file is safe.
        // (Truncating first would open a window where the files are stale
        // and the WAL no longer says which masks they are stale for.)
        write_atomic(&self.chi_path, &self.chi.to_bytes(), "chi checkpoint")?;
        write_atomic(
            &self.tiles_path,
            &self.tiles.to_bytes(),
            "tile summary checkpoint",
        )?;
        // Shape statistics ride along: they describe the workload, not the
        // data, so staleness after a crash is harmless.
        write_atomic(
            &self.shape_stats_path,
            &self.shape_stats.to_bytes(),
            "shape statistics checkpoint",
        )?;
        // Secondary index snapshots too: definitions were already durable
        // (persisted at DDL time), and postings are recomputed from the
        // recovered catalog at open, so a stale snapshot is harmless.
        self.persist_meta_indexes_locked()?;
        // The database and index files are durable; the log can be dropped.
        self.wal.lock().reset()?;
        self.ingest.record_checkpoint();
        obs_counters::incr(&obs_counters::DB_CHECKPOINTS);
        obs_counters::add(
            &obs_counters::DB_CHECKPOINT_US,
            checkpoint_start.elapsed().as_micros() as u64,
        );
        Ok(())
    }

    fn commit(&self, inserts: &[(MaskRecord, Mask)], deletes: &[MaskId]) -> StorageResult<()> {
        if inserts.is_empty() && deletes.is_empty() {
            return Ok(());
        }
        let _writer = self.writer.lock();

        // Plan the transaction against a copy of the allocation state. The
        // writer mutex guarantees nobody else mutates it concurrently.
        let (mut dir, mut free, mut page_count, txn_id, old_dir_start, old_dir_pages) = {
            let state = self.state.read();
            (
                state.dir.clone(),
                state.free.clone(),
                state.page_count,
                state.next_txn,
                state.dir_start,
                state.dir_pages,
            )
        };
        let page_size = self.config.page_size as usize;
        let mut pages: Vec<(PageNo, Vec<u8>)> = Vec::new();

        let mut deleted_ids: BTreeSet<MaskId> = BTreeSet::new();
        for &mask_id in deletes {
            match dir.entries.remove(&mask_id) {
                Some(entry) => {
                    free_extent(&mut free, entry.start, entry.pages);
                    deleted_ids.insert(mask_id);
                }
                // A duplicate id in one batch is one delete, not an error.
                None if deleted_ids.contains(&mask_id) => {}
                None => return Err(StorageError::MaskNotFound(mask_id)),
            }
        }

        let mut blob_bytes = 0u64;
        let mut overwritten: Vec<MaskId> = Vec::new();
        for (record, mask) in inserts {
            if record.width != mask.width() || record.height != mask.height() {
                return Err(StorageError::corrupt(format!(
                    "record for mask {} declares shape {}x{} but the mask is {}x{}",
                    record.mask_id,
                    record.width,
                    record.height,
                    mask.width(),
                    mask.height()
                )));
            }
            let blob = format::encode_mask(record.mask_id, mask, self.config.encoding);
            if let Some(old) = dir.entries.remove(&record.mask_id) {
                free_extent(&mut free, old.start, old.pages);
                overwritten.push(record.mask_id);
            }
            let extent_pages = blob.len().div_ceil(page_size).max(1) as u32;
            let start = alloc_run(&mut free, &mut page_count, extent_pages);
            for (i, chunk) in blob.chunks(page_size).enumerate() {
                pages.push((
                    start + i as u64,
                    pad_page(chunk.to_vec(), self.config.page_size),
                ));
            }
            blob_bytes += blob.len() as u64;
            dir.entries.insert(
                record.mask_id,
                BlobEntry {
                    start,
                    pages: extent_pages,
                    bytes: blob.len() as u64,
                    record: record.clone(),
                },
            );
        }

        // Rewrite the directory extent and the meta page.
        free_extent(&mut free, old_dir_start, old_dir_pages);
        let dir_blob = dir.encode();
        let dir_pages = dir_blob.len().div_ceil(page_size).max(1) as u32;
        let dir_start = alloc_run(&mut free, &mut page_count, dir_pages);
        for (i, chunk) in dir_blob.chunks(page_size).enumerate() {
            pages.push((
                dir_start + i as u64,
                pad_page(chunk.to_vec(), self.config.page_size),
            ));
        }
        let dir_bytes = dir_blob.len() as u64;
        let meta = Meta {
            page_size: self.config.page_size,
            page_count,
            next_txn_id: txn_id + 1,
            dir_start,
            dir_pages,
            dir_bytes,
        };
        pages.push((0, meta.encode_page()));

        // Build the tile grids of the incoming masks while nothing is
        // locked: their insertion must happen inside the publish critical
        // section below (so grids are never observable ahead of or behind
        // the pixels they summarise), but the O(pixels) build work should
        // not extend it.
        let grids: Vec<(MaskId, Arc<TileGrid>)> = inserts
            .iter()
            .map(|(record, mask)| (record.mask_id, Arc::new(TileGrid::build(mask))))
            .collect();

        // Deleted masks leave the indexes before the commit point so the
        // filter stage never holds bounds for a mask that may vanish.
        // Overwritten masks are evicted too: between the publish below and
        // the re-index after it, a query must fall back to verification by
        // loading — stale bounds over the new pixels could accept or prune
        // without ever loading the mask.
        for &mask_id in &deleted_ids {
            self.chi.remove(mask_id);
            self.tiles.remove(mask_id);
        }
        for &mask_id in &overwritten {
            self.chi.remove(mask_id);
            self.tiles.remove(mask_id);
        }

        // Commit point: the WAL append (+ optional fsync).
        let commit_start = std::time::Instant::now();
        let wal_bytes = self
            .wal
            .lock()
            .append_txn(txn_id, &pages, self.config.fsync)?;
        obs_counters::incr(&obs_counters::WAL_COMMITS);
        obs_counters::add(
            &obs_counters::WAL_COMMIT_US,
            commit_start.elapsed().as_micros() as u64,
        );

        // Publish the batch atomically with respect to readers.
        {
            let mut state = self.state.write();
            {
                let mut pager = state.pager.lock();
                for (page_no, image) in pages {
                    pager.write_page(page_no, image)?;
                }
            }
            state.dir = dir;
            state.free = free;
            state.page_count = page_count;
            state.next_txn = txn_id + 1;
            state.dir_start = dir_start;
            state.dir_pages = dir_pages;
            // Tile grids publish atomically with the pixels they summarise:
            // still under the state write lock, so a reader's state read
            // guard pins a consistent (pixels, grid) pair.
            for (mask_id, grid) in grids {
                self.tiles.insert(mask_id, grid);
            }
        }

        // Inserted masks enter the index only now that they are durable.
        for (record, mask) in inserts {
            self.chi.index_mask(record.mask_id, mask);
        }

        self.io.record_write(
            blob_bytes,
            self.config
                .profile
                .write_cost(blob_bytes, inserts.len() as u64),
        );
        self.ingest
            .record_commit(inserts.len() as u64, deleted_ids.len() as u64, wal_bytes);

        if self.config.checkpoint_wal_bytes > 0
            && self.wal.lock().len() >= self.config.checkpoint_wal_bytes
        {
            // The transaction above is already durable and published; a
            // checkpoint failure here must not make the commit look failed.
            // It is deferred for the caller to observe (and the next
            // threshold crossing or explicit checkpoint retries anyway).
            if let Err(e) = self.checkpoint_locked() {
                *self.checkpoint_error.lock() = Some(e);
            }
        }
        Ok(())
    }

    /// Applies one committed transaction shipped from another database's
    /// WAL — the apply half of primary → replica replication (the tailing
    /// half lives in `masksearch-cluster`). Returns the ids of every mask
    /// the transaction inserted, overwrote, or deleted, so the serving
    /// layer can invalidate caches.
    ///
    /// The transaction is first appended to the replica's *own* WAL, so a
    /// replica crash-recovers exactly like a primary. Applying relies on
    /// the commit protocol's invariant that every transaction rewrites the
    /// entire directory extent plus the meta page: the after-images in the
    /// transaction fully describe the new catalog state, and any mask whose
    /// entry changed has its complete new extent among the transaction's
    /// pages. Re-applying a transaction the replica already holds is
    /// idempotent (same images to the same pages, same directory).
    pub fn apply_replicated(&self, txn: &CommittedTxn) -> StorageResult<Vec<MaskId>> {
        let _writer = self.writer.lock();

        let page_size = self.config.page_size as usize;
        let meta_image = txn
            .pages
            .iter()
            .rev()
            .find(|(page_no, _)| *page_no == 0)
            .map(|(_, image)| image)
            .ok_or_else(|| {
                StorageError::corrupt("replicated transaction has no meta page".to_string())
            })?;
        let meta = Meta::decode_page(meta_image, self.config.page_size)?;
        let mut dir_blob = Vec::with_capacity(meta.dir_pages as usize * page_size);
        for page_no in meta.dir_start..meta.dir_start + meta.dir_pages as u64 {
            let image = txn
                .pages
                .iter()
                .rev()
                .find(|(p, _)| *p == page_no)
                .map(|(_, image)| image)
                .ok_or_else(|| {
                    StorageError::corrupt(format!(
                        "replicated transaction misses directory page {page_no}"
                    ))
                })?;
            dir_blob.extend_from_slice(image);
        }
        if (dir_blob.len() as u64) < meta.dir_bytes {
            return Err(StorageError::corrupt(
                "replicated directory extent is shorter than its meta page claims",
            ));
        }
        dir_blob.truncate(meta.dir_bytes as usize);
        let dir = Directory::decode(&dir_blob)?;
        let free = derive_free_set(&meta, &dir)?;

        // Which masks does this transaction touch? An entry present only on
        // one side was inserted/deleted; an entry on both sides changed iff
        // any of its pages is among the after-images (live extents are never
        // reallocated to anything else, so intersection means rewrite).
        let txn_pages: BTreeSet<PageNo> = txn.pages.iter().map(|(p, _)| *p).collect();
        let old_entries = {
            let state = self.state.read();
            state.dir.entries.clone()
        };
        let mut removed: Vec<MaskId> = Vec::new();
        let mut reindex: Vec<MaskId> = Vec::new();
        for (mask_id, old) in &old_entries {
            match dir.entries.get(mask_id) {
                None => removed.push(*mask_id),
                Some(new) => {
                    let rewritten = new != old
                        || (new.start..new.start + new.pages as u64)
                            .any(|p| txn_pages.contains(&p));
                    if rewritten {
                        reindex.push(*mask_id);
                    }
                }
            }
        }
        for (mask_id, entry) in &dir.entries {
            if !old_entries.contains_key(mask_id) {
                debug_assert!(
                    (entry.start..entry.start + entry.pages as u64).all(|p| txn_pages.contains(&p)),
                    "inserted mask extent must be in its transaction"
                );
                reindex.push(*mask_id);
            }
        }

        // Durability first (the replica's own log), then eviction before
        // publish, then the atomic swap — the same order as a local commit.
        let wal_bytes = self
            .wal
            .lock()
            .append_txn(txn.txn_id, &txn.pages, self.config.fsync)?;
        for &mask_id in removed.iter().chain(reindex.iter()) {
            self.chi.remove(mask_id);
            self.tiles.remove(mask_id);
        }
        let mut masks: Vec<(MaskId, Mask)> = Vec::with_capacity(reindex.len());
        {
            let mut state = self.state.write();
            {
                let mut pager = state.pager.lock();
                for (page_no, image) in &txn.pages {
                    pager.write_page(*page_no, image.clone())?;
                }
            }
            state.dir = dir;
            state.free = free;
            state.page_count = meta.page_count;
            state.next_txn = meta.next_txn_id;
            state.dir_start = meta.dir_start;
            state.dir_pages = meta.dir_pages;
            // Rebuild tile grids under the same write guard that published
            // the pixels (the primary does this too); decode each touched
            // mask once and reuse it for the CHI below.
            for &mask_id in &reindex {
                let entry = state.dir.entries.get(&mask_id).cloned().ok_or_else(|| {
                    StorageError::corrupt(format!("reindexed mask {mask_id} vanished"))
                })?;
                let blob = self.read_blob(&entry, &state)?;
                let (_, mask) = format::decode_mask(&blob)?;
                self.tiles.insert(mask_id, Arc::new(TileGrid::build(&mask)));
                masks.push((mask_id, mask));
            }
        }
        for (mask_id, mask) in &masks {
            self.chi.index_mask(*mask_id, mask);
        }
        self.ingest
            .record_commit(reindex.len() as u64, removed.len() as u64, wal_bytes);

        if self.config.checkpoint_wal_bytes > 0
            && self.wal.lock().len() >= self.config.checkpoint_wal_bytes
        {
            // Checkpointing here only touches the replica's own files.
            if let Err(e) = self.checkpoint_locked() {
                *self.checkpoint_error.lock() = Some(e);
            }
        }
        let mut changed = removed;
        changed.extend(reindex);
        changed.sort_unstable();
        changed.dedup();
        Ok(changed)
    }

    /// Snapshots every defined secondary index to its `masks.idx.<col>` file
    /// and removes the files of dropped definitions. Caller holds the writer
    /// mutex (directly or via a checkpoint).
    fn persist_meta_indexes_locked(&self) -> StorageResult<()> {
        let catalog = self.catalog();
        for column in MetaColumn::ALL {
            let path = self.db_dir.join(meta_index_file(column));
            match self.meta_indexes.on(column) {
                Some(def) => write_atomic(
                    &path,
                    &meta_index::snapshot_bytes(&def, &catalog),
                    "metadata index snapshot",
                )?,
                None => {
                    if path.exists() {
                        fs::remove_file(&path).map_err(|e| {
                            StorageError::io(
                                format!("removing dropped metadata index {}", path.display()),
                                e,
                            )
                        })?;
                    }
                }
            }
        }
        Ok(())
    }

    fn read_blob(&self, entry: &BlobEntry, state: &State) -> StorageResult<Vec<u8>> {
        let mut pager = state.pager.lock();
        let page_size = self.config.page_size as usize;
        let mut blob = Vec::with_capacity(entry.pages as usize * page_size);
        for page_no in entry.start..entry.start + entry.pages as u64 {
            blob.extend_from_slice(&pager.read_page(page_no)?);
        }
        blob.truncate(entry.bytes as usize);
        Ok(blob)
    }
}

impl MaskStore for DurableMaskStore {
    fn put(&self, mask_id: MaskId, mask: &Mask) -> StorageResult<()> {
        // Preserve an existing record's metadata on overwrite; synthesise a
        // minimal record otherwise. Metadata-rich inserts go through
        // `insert_batch` / `insert_masks`.
        let record = {
            let state = self.state.read();
            match state.dir.entries.get(&mask_id) {
                Some(entry)
                    if entry.record.width == mask.width()
                        && entry.record.height == mask.height() =>
                {
                    entry.record.clone()
                }
                _ => MaskRecord::builder(mask_id)
                    .shape(mask.width(), mask.height())
                    .build(),
            }
        };
        self.commit(&[(record, mask.clone())], &[])
    }

    fn delete(&self, mask_id: MaskId) -> StorageResult<()> {
        self.delete_masks(&[mask_id])
    }

    fn insert_batch(&self, batch: &[(MaskRecord, Mask)]) -> StorageResult<()> {
        self.insert_masks(batch)
    }

    fn delete_batch(&self, mask_ids: &[MaskId]) -> StorageResult<()> {
        self.delete_masks(mask_ids)
    }

    fn apply_batch(&self, inserts: &[(MaskRecord, Mask)], deletes: &[MaskId]) -> StorageResult<()> {
        // One WAL commit frame for the whole batch: a transaction spanning
        // inserts, updates (overwrites), and deletes is all-or-nothing at
        // every crash point, unlike the default delete-then-insert split.
        self.commit(inserts, deletes)
    }

    fn meta_indexes(&self) -> Option<Arc<MetaIndexRegistry>> {
        Some(Arc::clone(&self.meta_indexes))
    }

    fn persist_meta_indexes(&self) -> StorageResult<()> {
        let _writer = self.writer.lock();
        self.persist_meta_indexes_locked()
    }

    fn ingest_stats(&self) -> Option<IngestSnapshot> {
        Some(self.ingest.snapshot())
    }

    fn shape_stats(&self) -> Option<Arc<ShapeStatsRegistry>> {
        Some(Arc::clone(&self.shape_stats))
    }

    fn get(&self, mask_id: MaskId) -> StorageResult<Mask> {
        let (blob, bytes) = {
            let state = self.state.read();
            let entry = state
                .dir
                .entries
                .get(&mask_id)
                .cloned()
                .ok_or(StorageError::MaskNotFound(mask_id))?;
            (self.read_blob(&entry, &state)?, entry.bytes)
        };
        self.io
            .record_read(bytes, self.config.profile.read_cost(bytes, 1));
        self.io.record_mask_loaded();
        let (_, mask) = format::decode_mask(&blob)?;
        Ok(mask)
    }

    fn get_tiled(&self, mask_id: MaskId) -> StorageResult<TiledMask> {
        // Blob read and grid lookup happen under one state read guard:
        // commits publish pages and grids under the state write lock, and
        // evictions (which precede any republish) only ever *remove* grids,
        // so a grid observed here summarises exactly the pixels read here.
        let (blob, bytes, grid) = {
            let state = self.state.read();
            let entry = state
                .dir
                .entries
                .get(&mask_id)
                .cloned()
                .ok_or(StorageError::MaskNotFound(mask_id))?;
            let blob = self.read_blob(&entry, &state)?;
            (blob, entry.bytes, self.tiles.get(mask_id))
        };
        self.io
            .record_read(bytes, self.config.profile.read_cost(bytes, 1));
        self.io.record_mask_loaded();
        let (_, mask) = format::decode_mask(&blob)?;
        let mask = Arc::new(mask);
        Ok(match grid {
            Some(grid) => TiledMask::with_grid(mask, grid),
            None => TiledMask::new(mask),
        })
    }

    fn contains(&self, mask_id: MaskId) -> bool {
        self.state.read().dir.entries.contains_key(&mask_id)
    }

    fn ids(&self) -> Vec<MaskId> {
        self.state.read().dir.entries.keys().copied().collect()
    }

    fn len(&self) -> usize {
        self.state.read().dir.entries.len()
    }

    fn stored_bytes(&self, mask_id: MaskId) -> StorageResult<u64> {
        self.state
            .read()
            .dir
            .entries
            .get(&mask_id)
            .map(|e| e.bytes)
            .ok_or(StorageError::MaskNotFound(mask_id))
    }

    fn total_bytes(&self) -> u64 {
        self.state.read().dir.total_bytes()
    }

    fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.io)
    }

    fn disk_profile(&self) -> DiskProfile {
        self.config.profile
    }
}

/// Atomically replaces `path` with `bytes` via a temp file + rename, so a
/// crash leaves either the old file or the new one, never a torn mix.
fn write_atomic(path: &Path, bytes: &[u8], what: &str) -> StorageResult<()> {
    // `masks.chi` -> `masks.chi.tmp` (keep the original extension so two
    // different index files never share a temp name).
    let tmp = match path.extension() {
        Some(ext) => path.with_extension(format!("{}.tmp", ext.to_string_lossy())),
        None => path.with_extension("tmp"),
    };
    fs::write(&tmp, bytes).map_err(|e| StorageError::io(format!("writing {what} file"), e))?;
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        StorageError::io(format!("renaming {what} file"), e)
    })?;
    Ok(())
}

/// Zero-pads a partial page image up to the page size.
fn pad_page(mut bytes: Vec<u8>, page_size: u32) -> Vec<u8> {
    bytes.resize(page_size as usize, 0);
    bytes
}

/// Returns an extent's pages to the free set.
fn free_extent(free: &mut BTreeSet<PageNo>, start: PageNo, pages: u32) {
    for page_no in start..start + pages as u64 {
        free.insert(page_no);
    }
}

/// Takes `n` contiguous pages from the free set, extending the database by
/// fresh pages when no free run is long enough.
fn alloc_run(free: &mut BTreeSet<PageNo>, page_count: &mut u64, n: u32) -> PageNo {
    let n = n as u64;
    let mut run_start: PageNo = 0;
    let mut run_len: u64 = 0;
    let mut found: Option<PageNo> = None;
    for &page_no in free.iter() {
        if run_len > 0 && page_no == run_start + run_len {
            run_len += 1;
        } else {
            run_start = page_no;
            run_len = 1;
        }
        if run_len == n {
            found = Some(run_start);
            break;
        }
    }
    match found {
        Some(start) => {
            for page_no in start..start + n {
                free.remove(&page_no);
            }
            start
        }
        None => {
            let start = *page_count;
            *page_count += n;
            start
        }
    }
}

/// Builds the free-page set from the meta page and directory, validating
/// that no extent escapes the database or overlaps another.
fn derive_free_set(meta: &Meta, dir: &Directory) -> StorageResult<BTreeSet<PageNo>> {
    let mut used: BTreeSet<PageNo> = BTreeSet::new();
    used.insert(0);
    let mut claim = |start: PageNo, pages: u32| -> StorageResult<()> {
        for page_no in start..start + pages as u64 {
            if page_no == 0 || page_no >= meta.page_count {
                return Err(StorageError::corrupt(format!(
                    "extent page {page_no} escapes the database ({} pages)",
                    meta.page_count
                )));
            }
            if !used.insert(page_no) {
                return Err(StorageError::corrupt(format!(
                    "page {page_no} is claimed by two extents"
                )));
            }
        }
        Ok(())
    };
    claim(meta.dir_start, meta.dir_pages)?;
    for entry in dir.entries.values() {
        claim(entry.start, entry.pages)?;
    }
    Ok((0..meta.page_count).filter(|p| !used.contains(p)).collect())
}

/// Loads the persisted CHI and tile-summary files (if any) and reconciles
/// them with the recovered directory:
///
/// * entries for masks missing from the directory are dropped;
/// * entries for masks whose extent was rewritten by WAL replay
///   (`touched_by_replay`) are dropped too — the persisted files date from
///   the last checkpoint, so they may describe *pre-overwrite* pixels, and a
///   stale index over new pixels could mis-prune or mis-accept;
/// * masks left without an entry are re-indexed from their recovered pixels
///   (decoded once, shared by both indexes).
fn reconcile_indexes(
    chi_path: &Path,
    tiles_path: &Path,
    config: &DbConfig,
    dir: &Directory,
    pager: &mut Pager,
    touched_by_replay: impl Fn(&BlobEntry) -> bool,
) -> StorageResult<(ChiStore, TileStore)> {
    let chi = match ChiStore::load(chi_path) {
        Ok(store) if *store.config() == config.chi_config => store,
        // Missing, corrupt, or differently-configured index files are
        // discarded; the directory is the source of truth.
        _ => ChiStore::new(config.chi_config),
    };
    let tiles = match TileStore::load(tiles_path) {
        Ok(store) if store.tile() == masksearch_core::DEFAULT_TILE_SIZE => store,
        _ => TileStore::default(),
    };
    for mask_id in chi.ids() {
        match dir.entries.get(&mask_id) {
            Some(entry) if !touched_by_replay(entry) => {}
            _ => {
                chi.remove(mask_id);
            }
        }
    }
    for mask_id in tiles.ids() {
        match dir.entries.get(&mask_id) {
            Some(entry) if !touched_by_replay(entry) => {}
            _ => {
                tiles.remove(mask_id);
            }
        }
    }
    let page_size = config.page_size as usize;
    for (mask_id, entry) in &dir.entries {
        let need_chi = !chi.contains(*mask_id);
        let need_tiles = !tiles.contains(*mask_id);
        if !need_chi && !need_tiles {
            continue;
        }
        let mut blob = Vec::with_capacity(entry.pages as usize * page_size);
        for page_no in entry.start..entry.start + entry.pages as u64 {
            blob.extend_from_slice(&pager.read_page(page_no)?);
        }
        blob.truncate(entry.bytes as usize);
        let (_, mask) = format::decode_mask(&blob)?;
        if need_chi {
            chi.index_mask(*mask_id, &mask);
        }
        if need_tiles {
            tiles.index_mask(*mask_id, &mask);
        }
    }
    Ok((chi, tiles))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "masksearch-db-store-test-{}-{}",
            name,
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_config() -> DbConfig {
        DbConfig::default()
            .page_size(256)
            .pool_pages(32)
            .chi_config(ChiConfig::new(4, 4, 4).unwrap())
            .checkpoint_wal_bytes(0)
    }

    fn mask(seed: u32) -> Mask {
        Mask::from_fn(8, 8, move |x, y| ((x + y * 3 + seed) % 7) as f32 / 7.0)
    }

    fn record(id: u64) -> MaskRecord {
        MaskRecord::builder(MaskId::new(id))
            .image_id(masksearch_core::ImageId::new(id / 2))
            .shape(8, 8)
            .build()
    }

    fn batch(ids: std::ops::Range<u64>) -> Vec<(MaskRecord, Mask)> {
        ids.map(|i| (record(i), mask(i as u32))).collect()
    }

    #[test]
    fn insert_get_delete_round_trip() {
        let dir = temp_dir("crud");
        let store = DurableMaskStore::open(&dir, small_config()).unwrap();
        assert!(store.is_empty());
        store.insert_masks(&batch(0..5)).unwrap();
        assert_eq!(store.len(), 5);
        assert_eq!(store.get(MaskId::new(3)).unwrap(), mask(3));
        assert_eq!(store.chi_store().len(), 5);
        assert!(store.stored_bytes(MaskId::new(0)).unwrap() > 0);

        store
            .delete_masks(&[MaskId::new(1), MaskId::new(3)])
            .unwrap();
        assert_eq!(store.len(), 3);
        assert!(!store.contains(MaskId::new(3)));
        assert_eq!(store.chi_store().len(), 3);
        assert!(matches!(
            store.get(MaskId::new(3)),
            Err(StorageError::MaskNotFound(_))
        ));
        // Deleting an unknown id fails without side effects.
        assert!(store
            .delete_masks(&[MaskId::new(0), MaskId::new(99)])
            .is_err());
        assert_eq!(store.len(), 3);
        // A duplicated id in one batch is a single delete, not an error.
        store
            .delete_masks(&[MaskId::new(0), MaskId::new(0)])
            .unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.ingest_stats().unwrap().masks_deleted, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_recovers_masks_records_and_chi_without_checkpoint() {
        let dir = temp_dir("reopen");
        {
            let store = DurableMaskStore::open(&dir, small_config()).unwrap();
            store.insert_masks(&batch(0..4)).unwrap();
            store.delete_masks(&[MaskId::new(2)]).unwrap();
            // No checkpoint: everything lives in the WAL.
        }
        let store = DurableMaskStore::open(&dir, small_config()).unwrap();
        assert_eq!(
            store.ids(),
            vec![MaskId::new(0), MaskId::new(1), MaskId::new(3)]
        );
        assert_eq!(store.get(MaskId::new(3)).unwrap(), mask(3));
        assert_eq!(store.chi_store().len(), 3);
        let catalog = store.catalog();
        assert_eq!(catalog.len(), 3);
        assert_eq!(
            catalog.get(MaskId::new(3)).unwrap().image_id,
            masksearch_core::ImageId::new(1)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_persists_chi() {
        let dir = temp_dir("checkpoint");
        {
            let store = DurableMaskStore::open(&dir, small_config()).unwrap();
            store.insert_masks(&batch(0..3)).unwrap();
            let wal_before = store.wal_bytes();
            store.checkpoint().unwrap();
            assert!(store.wal_bytes() < wal_before);
            assert_eq!(store.ingest_stats().unwrap().checkpoints, 1);
        }
        assert!(dir.join(CHI_FILE).exists());
        let chi = ChiStore::load(dir.join(CHI_FILE)).unwrap();
        assert_eq!(chi.len(), 3);
        // Reopening after a checkpoint reads pages from the db file.
        let store = DurableMaskStore::open(&dir, small_config()).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.get(MaskId::new(1)).unwrap(), mask(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrites_free_and_reuse_pages() {
        let dir = temp_dir("reuse");
        let store = DurableMaskStore::open(&dir, small_config()).unwrap();
        store.insert_masks(&batch(0..4)).unwrap();
        let pages_after_first = store.state.read().page_count;
        // Overwrite the same ids many times; the file must not grow without
        // bound because freed extents are reused.
        for round in 0..20u32 {
            let rewrite: Vec<(MaskRecord, Mask)> = (0..4)
                .map(|i| (record(i), mask(i as u32 + round)))
                .collect();
            store.insert_masks(&rewrite).unwrap();
        }
        let pages_after_rewrites = store.state.read().page_count;
        assert!(
            pages_after_rewrites <= pages_after_first + 8,
            "pages grew from {pages_after_first} to {pages_after_rewrites}"
        );
        assert_eq!(store.get(MaskId::new(2)).unwrap(), mask(2 + 19));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn automatic_checkpoint_fires_on_wal_threshold() {
        let dir = temp_dir("auto-ckpt");
        let store =
            DurableMaskStore::open(&dir, small_config().checkpoint_wal_bytes(4096)).unwrap();
        for i in 0..40u64 {
            store.insert_masks(&batch(i..i + 1)).unwrap();
        }
        assert!(store.ingest_stats().unwrap().checkpoints > 0);
        assert!(store.wal_bytes() < 4096 + 4096);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_preserves_existing_record_metadata() {
        let dir = temp_dir("put-record");
        let store = DurableMaskStore::open(&dir, small_config()).unwrap();
        let rich = MaskRecord::builder(MaskId::new(1))
            .image_id(masksearch_core::ImageId::new(42))
            .shape(8, 8)
            .build();
        store.insert_masks(&[(rich, mask(1))]).unwrap();
        store.put(MaskId::new(1), &mask(9)).unwrap();
        let catalog = store.catalog();
        assert_eq!(
            catalog.get(MaskId::new(1)).unwrap().image_id,
            masksearch_core::ImageId::new(42)
        );
        assert_eq!(store.get(MaskId::new(1)).unwrap(), mask(9));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shape_mismatched_record_is_rejected() {
        let dir = temp_dir("shape");
        let store = DurableMaskStore::open(&dir, small_config()).unwrap();
        let wrong = MaskRecord::builder(MaskId::new(1)).shape(16, 16).build();
        assert!(store.insert_masks(&[(wrong, mask(1))]).is_err());
        assert!(store.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn meta_index_definitions_survive_reopen_and_torn_files_are_discarded() {
        let dir = temp_dir("meta-idx");
        {
            let store = DurableMaskStore::open(&dir, small_config()).unwrap();
            store.insert_masks(&batch(0..6)).unwrap();
            let registry = store.meta_indexes().unwrap();
            registry
                .create("by_image", MetaColumn::ImageId, false)
                .unwrap();
            registry
                .create("by_model", MetaColumn::ModelId, false)
                .unwrap();
            store.persist_meta_indexes().unwrap();
            registry.drop_index("by_model", false).unwrap();
            store.persist_meta_indexes().unwrap();
        }
        assert!(dir.join(meta_index_file(MetaColumn::ImageId)).exists());
        assert!(!dir.join(meta_index_file(MetaColumn::ModelId)).exists());
        {
            let store = DurableMaskStore::open(&dir, small_config()).unwrap();
            let registry = store.meta_indexes().unwrap();
            assert_eq!(
                registry.by_name("by_image").unwrap().column,
                MetaColumn::ImageId
            );
            assert!(registry.by_name("by_model").is_none());
            // Mutate without re-persisting: the snapshot goes stale, and the
            // next open must rebuild it from the recovered catalog.
            store.delete_masks(&[MaskId::new(0)]).unwrap();
        }
        {
            let store = DurableMaskStore::open(&dir, small_config()).unwrap();
            let registry = store.meta_indexes().unwrap();
            assert_eq!(registry.len(), 1);
            let bytes = fs::read(dir.join(meta_index_file(MetaColumn::ImageId))).unwrap();
            let (_, map) = meta_index::decode_snapshot(&bytes).unwrap();
            assert_eq!(
                map,
                meta_index::postings(&store.catalog(), MetaColumn::ImageId)
            );
        }
        // A torn snapshot (external damage — writes go through temp+rename)
        // is discarded on open; the definition it held is gone, loudly absent.
        let idx_path = dir.join(meta_index_file(MetaColumn::ImageId));
        let full = fs::read(&idx_path).unwrap();
        fs::write(&idx_path, &full[..full.len() / 2]).unwrap();
        {
            let store = DurableMaskStore::open(&dir, small_config()).unwrap();
            assert!(store.meta_indexes().unwrap().is_empty());
        }
        assert!(!idx_path.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn apply_batch_commits_inserts_and_deletes_in_one_frame() {
        let dir = temp_dir("apply-batch");
        let store = DurableMaskStore::open(&dir, small_config()).unwrap();
        store.insert_masks(&batch(0..4)).unwrap();
        let commits_before = store.ingest_stats().unwrap().commits;
        store
            .apply_batch(&batch(4..6), &[MaskId::new(0), MaskId::new(1)])
            .unwrap();
        assert_eq!(store.ingest_stats().unwrap().commits, commits_before + 1);
        assert_eq!(store.len(), 4);
        assert!(!store.contains(MaskId::new(0)));
        assert_eq!(store.get(MaskId::new(5)).unwrap(), mask(5));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn alloc_run_prefers_free_runs_and_extends_otherwise() {
        let mut free: BTreeSet<PageNo> = [1, 2, 4, 5, 6].into_iter().collect();
        let mut page_count = 7u64;
        assert_eq!(alloc_run(&mut free, &mut page_count, 3), 4);
        assert_eq!(free, [1, 2].into_iter().collect());
        assert_eq!(alloc_run(&mut free, &mut page_count, 2), 1);
        assert!(free.is_empty());
        assert_eq!(alloc_run(&mut free, &mut page_count, 2), 7);
        assert_eq!(page_count, 9);
    }
}
