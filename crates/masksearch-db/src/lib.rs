//! # masksearch-db
//!
//! A durable, mutable mask database: the subsystem that takes the workspace
//! from "bulk-build a static dataset once" (the paper's setting, §3.2/§3.6)
//! to the continuously-ingesting ML workflows of the MaskSearch
//! demonstration (arXiv 2404.06563), where every training iteration and
//! model version produces new masks that must be queryable immediately —
//! and still be there, uncorrupted, after a crash.
//!
//! ## Architecture
//!
//! ```text
//!  insert_masks / delete_masks                    queries (MaskStore::get)
//!            │                                              │
//!            ▼                                              ▼
//!  ┌──────────────────┐   page after-images   ┌───────────────────────────┐
//!  │ commit planner    │ ───────────────────▶ │ WAL  masks.wal            │
//!  │ (blob extents,    │   + commit record,   │ (checksummed frames;      │
//!  │  directory, meta) │   fsync              │  torn tails discarded)    │
//!  └────────┬─────────┘                       └────────────┬──────────────┘
//!           │ apply under write lock                       │ checkpoint:
//!           ▼                                              ▼ copy back + truncate
//!  ┌──────────────────┐     flush dirty       ┌───────────────────────────┐
//!  │ pager + LRU pool  │ ───────────────────▶ │ page file  masks.db       │
//!  └────────┬─────────┘                       └───────────────────────────┘
//!           │ on commit: index inserted /                  │ checkpoint:
//!           ▼ evict deleted                                ▼ temp + rename
//!  ┌──────────────────┐                       ┌───────────────────────────┐
//!  │ ChiStore (shared  │ ───────────────────▶ │ CHI file  masks.chi       │
//!  │ with the Session) │                      └───────────────────────────┘
//!  └──────────────────┘
//! ```
//!
//! * [`pager`] — fixed-size-page file I/O with an LRU buffer pool.
//! * [`wal`] — the write-ahead log: page after-images + commit records,
//!   checksummed so recovery can cut a torn tail at any byte boundary.
//! * [`dir`] — the mask directory (blob extents + full catalog records),
//!   itself stored in WAL-protected pages.
//! * [`store`] — [`DurableMaskStore`]: atomic multi-page commits, snapshot
//!   batch visibility for concurrent readers, live CHI maintenance,
//!   checkpointing.
//! * [`db`] — [`MaskDb`], the directory-level handle.
//!
//! ## Guarantees
//!
//! * **Atomicity** — a batch of inserts/deletes becomes visible (and
//!   durable) all at once; after a crash at *any* byte of the write path the
//!   reopened database equals a committed prefix of the write history.
//! * **Index consistency** — the maintained [`ChiStore`](masksearch_index::ChiStore)
//!   never holds an entry for a mask that is not durably present: inserts
//!   are indexed only after their WAL commit, deletes are evicted before it,
//!   and recovery reconciles the persisted CHI file against the directory.
//! * **Read stability** — readers resolve a mask's pages under the same
//!   lock generation as its directory entry, so a concurrent commit can
//!   never tear a single read, and a reader that started before a commit
//!   never observes half a batch.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod db;
pub mod dir;
pub mod page;
pub mod pager;
pub mod stats;
pub mod store;
pub mod wal;

pub use db::MaskDb;
pub use dir::{BlobEntry, Directory};
pub use page::{Meta, PageNo};
pub use pager::Pager;
pub use stats::IngestStats;
pub use store::{
    DbConfig, DurableMaskStore, CHI_FILE, DB_FILE, SHAPE_STATS_FILE, TILES_FILE, WAL_FILE,
};
pub use wal::{CommittedTxn, Wal};
