//! Fixed-size-page file I/O with an LRU buffer pool.
//!
//! The pager sits between the durable store and the database file. Reads go
//! through the pool; writes enter the pool as dirty pages and reach the file
//! only at checkpoint, when [`Pager::flush`] writes all dirty pages and
//! fsyncs. Dirty pages are **pinned**: eviction only ever drops clean
//! frames, and when every frame is dirty the pool temporarily grows past
//! its configured capacity instead. This is the log-ahead rule — the
//! database file must never see a page whose WAL record might not be
//! durable (commits may run with `fsync` off), so nothing reaches the file
//! until the checkpoint has synced the log first. The store bounds pool
//! growth by checkpointing on a WAL-size threshold.
//!
//! Reading past the end of the file yields a zero page — that is what a
//! freshly allocated, never-checkpointed page looks like.

use crate::page::PageNo;
use masksearch_storage::{StorageError, StorageResult};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

/// Fewest pool frames a pager will run with; below this, a single mask
/// spanning a few pages would thrash.
pub const MIN_POOL_PAGES: usize = 8;

struct Frame {
    data: Arc<Vec<u8>>,
    dirty: bool,
    last_used: u64,
}

/// A page file with an LRU buffer pool and dirty-page tracking.
pub struct Pager {
    file: File,
    path: PathBuf,
    page_size: usize,
    pool: HashMap<PageNo, Frame>,
    max_frames: usize,
    clock: u64,
    /// Pages currently backed by the file (its length / page size).
    file_pages: u64,
}

impl Pager {
    /// Opens (creating if needed) the page file at `path`.
    pub fn open(
        path: impl Into<PathBuf>,
        page_size: u32,
        max_frames: usize,
    ) -> StorageResult<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| StorageError::io(format!("opening page file {}", path.display()), e))?;
        let len = file
            .metadata()
            .map_err(|e| StorageError::io("reading page file metadata", e))?
            .len();
        Ok(Self {
            file,
            path,
            page_size: page_size as usize,
            pool: HashMap::new(),
            max_frames: max_frames.max(MIN_POOL_PAGES),
            clock: 0,
            file_pages: len / page_size as u64,
        })
    }

    /// Number of pages currently backed by the file.
    pub fn file_pages(&self) -> u64 {
        self.file_pages
    }

    /// Reads a page through the pool.
    pub fn read_page(&mut self, page_no: PageNo) -> StorageResult<Arc<Vec<u8>>> {
        masksearch_obs::counters::incr(&masksearch_obs::counters::PAGER_READS);
        self.clock += 1;
        let clock = self.clock;
        if let Some(frame) = self.pool.get_mut(&page_no) {
            frame.last_used = clock;
            return Ok(Arc::clone(&frame.data));
        }
        let data = Arc::new(self.read_from_file(page_no)?);
        self.evict_to_fit()?;
        self.pool.insert(
            page_no,
            Frame {
                data: Arc::clone(&data),
                dirty: false,
                last_used: clock,
            },
        );
        Ok(data)
    }

    /// Installs a full page image in the pool as dirty. The image reaches
    /// the database file only at the next [`Pager::flush`] (after the
    /// caller has synced the WAL) — never earlier; dirty pages are pinned
    /// against eviction to uphold the log-ahead rule.
    pub fn write_page(&mut self, page_no: PageNo, data: Vec<u8>) -> StorageResult<()> {
        masksearch_obs::counters::incr(&masksearch_obs::counters::PAGER_WRITES);
        debug_assert_eq!(data.len(), self.page_size);
        self.clock += 1;
        let clock = self.clock;
        if let Some(frame) = self.pool.get_mut(&page_no) {
            frame.data = Arc::new(data);
            frame.dirty = true;
            frame.last_used = clock;
            return Ok(());
        }
        self.evict_to_fit()?;
        self.pool.insert(
            page_no,
            Frame {
                data: Arc::new(data),
                dirty: true,
                last_used: clock,
            },
        );
        Ok(())
    }

    /// Writes every dirty page to the file and fsyncs (the checkpoint step).
    pub fn flush(&mut self) -> StorageResult<()> {
        let mut dirty: Vec<PageNo> = self
            .pool
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&p, _)| p)
            .collect();
        dirty.sort_unstable();
        for page_no in dirty {
            let data = Arc::clone(&self.pool[&page_no].data);
            self.write_to_file(page_no, &data)?;
            self.pool
                .get_mut(&page_no)
                .expect("flushed page is in the pool")
                .dirty = false;
        }
        self.file
            .sync_all()
            .map_err(|e| StorageError::io("fsyncing page file", e))
    }

    /// Number of dirty pages waiting for a checkpoint.
    pub fn dirty_pages(&self) -> usize {
        self.pool.values().filter(|f| f.dirty).count()
    }

    fn read_from_file(&mut self, page_no: PageNo) -> StorageResult<Vec<u8>> {
        if page_no >= self.file_pages {
            return Ok(vec![0; self.page_size]);
        }
        let mut buf = vec![0; self.page_size];
        self.file
            .seek(SeekFrom::Start(page_no * self.page_size as u64))
            .and_then(|_| self.file.read_exact(&mut buf))
            .map_err(|e| {
                StorageError::io(
                    format!("reading page {page_no} of {}", self.path.display()),
                    e,
                )
            })?;
        Ok(buf)
    }

    fn write_to_file(&mut self, page_no: PageNo, data: &[u8]) -> StorageResult<()> {
        self.file
            .seek(SeekFrom::Start(page_no * self.page_size as u64))
            .and_then(|_| self.file.write_all(data))
            .map_err(|e| {
                StorageError::io(
                    format!("writing page {page_no} of {}", self.path.display()),
                    e,
                )
            })?;
        self.file_pages = self.file_pages.max(page_no + 1);
        Ok(())
    }

    /// Evicts least-recently-used *clean* frames until one slot is free.
    /// Dirty frames are pinned until [`Pager::flush`]; when nothing is
    /// evictable the pool grows past its capacity instead — writing a dirty
    /// page to the file here would break the log-ahead rule whenever the
    /// covering WAL commit has not been fsynced.
    fn evict_to_fit(&mut self) -> StorageResult<()> {
        while self.pool.len() >= self.max_frames {
            let victim = self
                .pool
                .iter()
                .filter(|(_, f)| !f.dirty)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(&p, _)| p);
            match victim {
                Some(page_no) => {
                    self.pool.remove(&page_no);
                }
                None => break,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_db(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "masksearch-pager-test-{}-{}.db",
            name,
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn pages_round_trip_through_pool_and_file() {
        let path = temp_db("roundtrip");
        {
            let mut pager = Pager::open(&path, 64, 8).unwrap();
            pager.write_page(0, vec![1; 64]).unwrap();
            pager.write_page(5, vec![5; 64]).unwrap();
            assert_eq!(pager.dirty_pages(), 2);
            assert_eq!(*pager.read_page(5).unwrap(), vec![5; 64]);
            // Unwritten page within a sparse file reads as zeros.
            assert_eq!(*pager.read_page(3).unwrap(), vec![0; 64]);
            pager.flush().unwrap();
            assert_eq!(pager.dirty_pages(), 0);
        }
        let mut pager = Pager::open(&path, 64, 8).unwrap();
        assert_eq!(pager.file_pages(), 6);
        assert_eq!(*pager.read_page(0).unwrap(), vec![1; 64]);
        assert_eq!(*pager.read_page(5).unwrap(), vec![5; 64]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reads_past_eof_are_zero_pages() {
        let path = temp_db("eof");
        let mut pager = Pager::open(&path, 32, 8).unwrap();
        assert_eq!(*pager.read_page(100).unwrap(), vec![0; 32]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dirty_pages_are_pinned_until_flush() {
        let path = temp_db("evict");
        let mut pager = Pager::open(&path, 32, MIN_POOL_PAGES).unwrap();
        // Write more dirty pages than the pool holds: the pool must grow
        // (dirty frames are pinned) and the file must stay untouched — the
        // log-ahead rule forbids writing pages before the WAL is synced.
        for i in 0..(MIN_POOL_PAGES as u64 * 3) {
            pager.write_page(i, vec![i as u8; 32]).unwrap();
        }
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        for i in 0..(MIN_POOL_PAGES as u64 * 3) {
            assert_eq!(*pager.read_page(i).unwrap(), vec![i as u8; 32], "page {i}");
        }
        // After a flush the frames are clean and evictable again: the next
        // miss shrinks the pool back to its capacity.
        pager.flush().unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() > 0);
        pager.read_page(1000).unwrap();
        assert!(pager.pool.len() <= MIN_POOL_PAGES);
        // Evicted pages re-read correctly from the flushed file.
        for i in 0..(MIN_POOL_PAGES as u64 * 3) {
            assert_eq!(*pager.read_page(i).unwrap(), vec![i as u8; 32], "page {i}");
        }
        std::fs::remove_file(&path).unwrap();
    }
}
