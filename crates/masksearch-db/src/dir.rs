//! The mask directory: where each mask's pages live, plus its catalog
//! record.
//!
//! The directory is the database's only piece of variable-size metadata. It
//! is serialised into its own page extent (pointed to by the meta page) and
//! rewritten through the WAL on every commit, so a mask's pixels and its
//! metadata can never be separated by a crash. Embedding the full
//! [`MaskRecord`] also lets [`crate::MaskDb::catalog`] rebuild the query
//! layer's catalog after recovery.

use crate::page::PageNo;
use masksearch_core::{MaskId, MaskRecord};
use masksearch_storage::catalog::{read_record, write_record};
use masksearch_storage::codec::{Reader, Writer};
use masksearch_storage::{StorageError, StorageResult};
use std::collections::BTreeMap;

/// Magic bytes prefixing a serialised directory.
pub const DIR_MAGIC: [u8; 4] = *b"MSDE";

/// Location and metadata of one stored mask.
#[derive(Debug, Clone, PartialEq)]
pub struct BlobEntry {
    /// First page of the blob extent.
    pub start: PageNo,
    /// Number of contiguous pages in the extent.
    pub pages: u32,
    /// Meaningful byte length of the encoded mask blob.
    pub bytes: u64,
    /// The mask's catalog record.
    pub record: MaskRecord,
}

/// Map from mask id to blob location, serialisable into the directory
/// extent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Directory {
    /// All stored masks, keyed by id.
    pub entries: BTreeMap<MaskId, BlobEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialises the directory.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.write_bytes(&DIR_MAGIC);
        w.write_u64(self.entries.len() as u64);
        for (id, entry) in &self.entries {
            debug_assert_eq!(*id, entry.record.mask_id);
            w.write_u64(entry.start);
            w.write_u32(entry.pages);
            w.write_u64(entry.bytes);
            write_record(&mut w, &entry.record);
        }
        w.into_bytes()
    }

    /// Deserialises a directory written by [`Directory::encode`].
    pub fn decode(bytes: &[u8]) -> StorageResult<Self> {
        let mut r = Reader::new(bytes, "mask database directory");
        let magic = r.read_magic()?;
        if magic != DIR_MAGIC {
            return Err(StorageError::BadMagic {
                path: "<mask database directory>".to_string(),
                found: magic,
            });
        }
        let count = r.read_u64()?;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let start = r.read_u64()?;
            let pages = r.read_u32()?;
            let bytes = r.read_u64()?;
            let record = read_record(&mut r)?;
            entries.insert(
                record.mask_id,
                BlobEntry {
                    start,
                    pages,
                    bytes,
                    record,
                },
            );
        }
        Ok(Self { entries })
    }

    /// Total bytes of all stored blobs.
    pub fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{ImageId, Roi};

    fn entry(id: u64, start: PageNo, pages: u32, bytes: u64) -> BlobEntry {
        BlobEntry {
            start,
            pages,
            bytes,
            record: MaskRecord::builder(MaskId::new(id))
                .image_id(ImageId::new(id / 2))
                .shape(16, 16)
                .object_box(Roi::new(1, 1, 9, 9).unwrap())
                .build(),
        }
    }

    #[test]
    fn directory_round_trips() {
        let mut dir = Directory::new();
        dir.entries.insert(MaskId::new(3), entry(3, 1, 2, 500));
        dir.entries.insert(MaskId::new(7), entry(7, 3, 1, 96));
        let decoded = Directory::decode(&dir.encode()).unwrap();
        assert_eq!(decoded, dir);
        assert_eq!(decoded.total_bytes(), 596);
    }

    #[test]
    fn empty_directory_round_trips() {
        let dir = Directory::new();
        assert_eq!(Directory::decode(&dir.encode()).unwrap(), dir);
    }

    #[test]
    fn corrupt_directory_is_rejected() {
        let mut dir = Directory::new();
        dir.entries.insert(MaskId::new(1), entry(1, 1, 1, 10));
        let mut bytes = dir.encode();
        bytes[0] = b'Z';
        assert!(matches!(
            Directory::decode(&bytes),
            Err(StorageError::BadMagic { .. })
        ));
        let bytes = dir.encode();
        assert!(Directory::decode(&bytes[..bytes.len() - 3]).is_err());
    }
}
