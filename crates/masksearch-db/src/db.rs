//! [`MaskDb`]: the single-directory database handle.
//!
//! A `MaskDb` is a cheap-to-clone handle over one [`DurableMaskStore`]. It
//! exists to make the common wiring one-liners: open a directory, hand the
//! store to a query `Session`, share the maintained CHI, rebuild the catalog
//! after recovery, checkpoint on demand.

use crate::store::{DbConfig, DurableMaskStore};
use masksearch_core::{Mask, MaskId, MaskRecord};
use masksearch_index::{ChiStore, TileStore};
use masksearch_storage::store::IngestSnapshot;
use masksearch_storage::{Catalog, MaskStore, StorageResult};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A durable mask database living in one directory
/// (`masks.db` + `masks.wal` + `masks.chi` + `masks.tiles`).
///
/// Note on sessions: a query `Session` keeps its own catalog, initialised
/// from [`MaskDb::catalog`]. Writes that should become visible to an
/// already-running session must flow *through that session* (or its serving
/// engine) — direct [`MaskDb::insert_masks`] calls are durable and maintain
/// the shared CHI, but an existing session's catalog only learns about them
/// when it is rebuilt.
#[derive(Clone)]
pub struct MaskDb {
    dir: PathBuf,
    store: Arc<DurableMaskStore>,
}

impl MaskDb {
    /// Opens (creating or crash-recovering) the database in `dir`.
    pub fn open(dir: impl AsRef<Path>, config: DbConfig) -> StorageResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        let store = Arc::new(DurableMaskStore::open(&dir, config)?);
        Ok(Self { dir, store })
    }

    /// The directory the database lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The underlying durable store.
    pub fn store(&self) -> &Arc<DurableMaskStore> {
        &self.store
    }

    /// The store as a trait object, ready for a query session.
    pub fn mask_store(&self) -> Arc<dyn MaskStore> {
        Arc::clone(&self.store) as Arc<dyn MaskStore>
    }

    /// The CHI store maintained on every commit.
    pub fn chi_store(&self) -> Arc<ChiStore> {
        Arc::clone(self.store.chi_store())
    }

    /// The tile-summary store maintained on every commit (the verification
    /// kernel's within-mask index).
    pub fn tile_store(&self) -> Arc<TileStore> {
        Arc::clone(self.store.tile_store())
    }

    /// Checks that every mask's tile summaries match its pixels; returns the
    /// number of masks checked. See
    /// [`DurableMaskStore::verify_tile_summaries`].
    pub fn verify_tile_summaries(&self) -> StorageResult<usize> {
        self.store.verify_tile_summaries()
    }

    /// Rebuilds the metadata catalog from the persisted directory records.
    pub fn catalog(&self) -> Catalog {
        self.store.catalog()
    }

    /// Atomically inserts a batch of masks with their records.
    pub fn insert_masks(&self, batch: &[(MaskRecord, Mask)]) -> StorageResult<()> {
        self.store.insert_masks(batch)
    }

    /// Atomically deletes a batch of masks.
    pub fn delete_masks(&self, mask_ids: &[MaskId]) -> StorageResult<()> {
        self.store.delete_masks(mask_ids)
    }

    /// Forces a checkpoint: database file fsync, WAL truncation, CHI file
    /// rewrite.
    pub fn checkpoint(&self) -> StorageResult<()> {
        self.store.checkpoint()
    }

    /// Ingestion counters.
    pub fn ingest_stats(&self) -> IngestSnapshot {
        self.store
            .ingest_stats()
            .expect("durable store always tracks ingest stats")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_index::ChiConfig;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "masksearch-maskdb-test-{}-{}",
            name,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> DbConfig {
        DbConfig::default()
            .page_size(256)
            .chi_config(ChiConfig::new(4, 4, 4).unwrap())
    }

    #[test]
    fn handle_round_trips_and_clones_share_state() {
        let dir = temp_dir("handle");
        let db = MaskDb::open(&dir, config()).unwrap();
        let clone = db.clone();
        let mask = Mask::from_fn(8, 8, |x, y| ((x + y) % 5) as f32 / 5.0);
        let record = MaskRecord::builder(MaskId::new(1)).shape(8, 8).build();
        db.insert_masks(&[(record, mask.clone())]).unwrap();
        assert_eq!(clone.store().get(MaskId::new(1)).unwrap(), mask);
        assert_eq!(clone.catalog().len(), 1);
        assert_eq!(clone.chi_store().len(), 1);
        assert_eq!(db.ingest_stats().masks_inserted, 1);
        db.checkpoint().unwrap();
        assert_eq!(clone.ingest_stats().checkpoints, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
