//! Crash-recovery torture tests: kill the WAL at every byte boundary of a
//! multi-commit write history and prove the reopened database is always
//! bit-equivalent to a committed prefix — never a mix — with the CHI store
//! holding exactly the surviving masks.

use masksearch_core::{ImageId, Mask, MaskId, MaskRecord};
use masksearch_db::{DbConfig, DurableMaskStore, MaskDb, CHI_FILE, DB_FILE, TILES_FILE, WAL_FILE};
use masksearch_index::{Chi, ChiConfig};
use masksearch_storage::MaskStore;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "masksearch-crash-test-{}-{}",
        name,
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config() -> DbConfig {
    DbConfig::default()
        .page_size(128)
        .pool_pages(64)
        .chi_config(ChiConfig::new(2, 2, 4).unwrap())
        .checkpoint_wal_bytes(0)
}

fn mask(seed: u32) -> Mask {
    Mask::from_fn(4, 4, move |x, y| {
        ((x * 5 + y * 3 + seed) % 11) as f32 / 11.0
    })
}

fn record(id: u64) -> MaskRecord {
    MaskRecord::builder(MaskId::new(id))
        .image_id(ImageId::new(id / 2))
        .shape(4, 4)
        .build()
}

/// One committed write batch plus the full expected database state after it.
struct HistoryStep {
    expected: BTreeMap<MaskId, Mask>,
}

/// Runs a mixed insert/overwrite/delete history against a fresh database and
/// returns the expected state after each commit (index 0 = empty database).
fn run_history(dir: &Path) -> Vec<HistoryStep> {
    let db = MaskDb::open(dir, config()).unwrap();
    let mut model: BTreeMap<MaskId, Mask> = BTreeMap::new();
    let mut steps = vec![HistoryStep {
        expected: model.clone(),
    }];

    let commit_inserts =
        |db: &MaskDb, model: &mut BTreeMap<MaskId, Mask>, ids: &[u64], salt: u32| {
            let batch: Vec<(MaskRecord, Mask)> = ids
                .iter()
                .map(|&i| (record(i), mask(i as u32 + salt)))
                .collect();
            db.insert_masks(&batch).unwrap();
            for (rec, m) in batch {
                model.insert(rec.mask_id, m);
            }
        };

    commit_inserts(&db, &mut model, &[0, 1, 2], 0);
    steps.push(HistoryStep {
        expected: model.clone(),
    });

    commit_inserts(&db, &mut model, &[2, 3, 4], 100); // overwrites mask 2
    steps.push(HistoryStep {
        expected: model.clone(),
    });

    db.delete_masks(&[MaskId::new(1), MaskId::new(3)]).unwrap();
    model.remove(&MaskId::new(1));
    model.remove(&MaskId::new(3));
    steps.push(HistoryStep {
        expected: model.clone(),
    });

    commit_inserts(&db, &mut model, &[5, 6], 7);
    steps.push(HistoryStep {
        expected: model.clone(),
    });

    steps
}

/// Asserts the reopened store is bit-equivalent to `expected`: same ids,
/// same pixels, same catalog records, a CHI for exactly the surviving masks
/// whose *contents* match their pixels, and tile summaries consistent with
/// the pixels (the verification-kernel ingest invariant).
fn assert_state_matches(store: &DurableMaskStore, expected: &BTreeMap<MaskId, Mask>) {
    let ids: Vec<MaskId> = expected.keys().copied().collect();
    assert_eq!(store.ids(), ids);
    for (id, mask) in expected {
        assert_eq!(&store.get(*id).unwrap(), mask, "mask {id} differs");
    }
    let catalog = store.catalog();
    assert_eq!(catalog.mask_ids(), ids);
    for id in &ids {
        assert_eq!(catalog.get(*id).unwrap(), &record(id.raw()));
    }
    let mut chi_ids = store.chi_store().ids();
    chi_ids.sort_unstable();
    assert_eq!(chi_ids, ids, "CHI must hold exactly the surviving masks");
    for (id, mask) in expected {
        let chi = store.chi_store().get(*id).unwrap();
        assert_eq!(
            *chi,
            Chi::build(mask, &store.config().chi_config),
            "CHI of mask {id} does not match its recovered pixels"
        );
    }
    assert_eq!(store.verify_tile_summaries().unwrap(), ids.len());
}

/// Copies the database directory with the WAL truncated to `cut` bytes. The
/// page file and the checkpointed CHI / tile-summary files survive a crash
/// unchanged, so they are copied whole — recovery must cope with index files
/// that predate replayed WAL commits.
fn crashed_copy(src: &Path, dst: &Path, cut: usize) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for file in [DB_FILE, CHI_FILE, TILES_FILE] {
        if src.join(file).exists() {
            fs::copy(src.join(file), dst.join(file)).unwrap();
        }
    }
    let wal = fs::read(src.join(WAL_FILE)).unwrap();
    fs::write(dst.join(WAL_FILE), &wal[..cut.min(wal.len())]).unwrap();
}

/// Matches the reopened state against the history, returning the index of
/// the committed prefix it equals (panicking if it matches none).
fn matching_prefix(store: &DurableMaskStore, steps: &[HistoryStep]) -> usize {
    let ids = store.ids();
    for (i, step) in steps.iter().enumerate() {
        if step.expected.keys().copied().collect::<Vec<_>>() == ids
            && step
                .expected
                .iter()
                .all(|(id, mask)| &store.get(*id).unwrap() == mask)
        {
            assert_state_matches(store, &step.expected);
            return i;
        }
    }
    panic!("recovered state with ids {ids:?} matches no committed prefix of the history");
}

#[test]
fn kill_at_every_byte_recovers_a_committed_prefix() {
    let src = temp_dir("kill-src");
    let steps = run_history(&src);
    let wal_len = fs::read(src.join(WAL_FILE)).unwrap().len();

    let crash_dir = temp_dir("kill-crash");
    let mut last_prefix = 0usize;
    let mut reached = std::collections::BTreeSet::new();
    for cut in 0..=wal_len {
        crashed_copy(&src, &crash_dir, cut);
        let store = DurableMaskStore::open(&crash_dir, config()).unwrap();
        let prefix = matching_prefix(&store, &steps);
        // Longer surviving logs can only recover longer histories.
        assert!(
            prefix >= last_prefix,
            "cut {cut} recovered prefix {prefix} after {last_prefix}"
        );
        last_prefix = prefix;
        reached.insert(prefix);
    }
    // Every commit boundary is reachable, from empty to fully applied.
    assert_eq!(reached, (0..steps.len()).collect());

    fs::remove_dir_all(&src).unwrap();
    fs::remove_dir_all(&crash_dir).unwrap();
}

#[test]
fn flipping_any_wal_byte_never_yields_a_torn_state() {
    let src = temp_dir("flip-src");
    let steps = run_history(&src);
    let wal = fs::read(src.join(WAL_FILE)).unwrap();

    let crash_dir = temp_dir("flip-crash");
    for idx in 0..wal.len() {
        let _ = fs::remove_dir_all(&crash_dir);
        fs::create_dir_all(&crash_dir).unwrap();
        let mut corrupt = wal.clone();
        corrupt[idx] ^= 0xa5;
        fs::write(crash_dir.join(WAL_FILE), &corrupt).unwrap();
        // A flip in the file header is loud corruption and may fail the
        // open; any flip past it must silently recover a committed prefix.
        match DurableMaskStore::open(&crash_dir, config()) {
            Ok(store) => {
                matching_prefix(&store, &steps);
            }
            Err(_) => assert!(idx < 12, "open failed on a body flip at byte {idx}"),
        }
    }

    fs::remove_dir_all(&src).unwrap();
    fs::remove_dir_all(&crash_dir).unwrap();
}

#[test]
fn crash_between_db_flush_and_wal_truncation_is_idempotent() {
    // A checkpoint fsyncs the page file *before* truncating the WAL. Crash
    // in between = both files fully present; replaying the full WAL over the
    // flushed pages must reproduce the same state.
    let src = temp_dir("ckpt-src");
    let steps = run_history(&src);
    let full_wal = fs::read(src.join(WAL_FILE)).unwrap();
    {
        let store = DurableMaskStore::open(&src, config()).unwrap();
        store.checkpoint().unwrap();
    }
    // Simulate the crash window: the page file is flushed but the old log
    // was never truncated. Replaying it over the flushed pages must be a
    // no-op state-wise.
    fs::write(src.join(WAL_FILE), &full_wal).unwrap();
    let store = DurableMaskStore::open(&src, config()).unwrap();
    assert_state_matches(&store, &steps.last().unwrap().expected);
    drop(store);
    // And after a clean checkpoint the db file alone carries the state.
    {
        let store = DurableMaskStore::open(&src, config()).unwrap();
        store.checkpoint().unwrap();
        assert!(store.wal_bytes() <= 12);
    }
    let store = DurableMaskStore::open(&src, config()).unwrap();
    assert_state_matches(&store, &steps.last().unwrap().expected);
    fs::remove_dir_all(&src).unwrap();
}

#[test]
fn fsync_off_under_memory_pressure_still_recovers_a_committed_prefix() {
    // With fsync off, recent commits may be LOST on crash but must never be
    // TORN. The dangerous interaction is extent reuse + buffer-pool
    // pressure: if eviction wrote dirty pages to the database file before
    // the covering WAL record was durable, a lost log tail would leave the
    // surviving directory pointing at physically overwritten pages. The
    // log-ahead rule (dirty pages pinned until a WAL-synced checkpoint)
    // forbids that — the database file must stay untouched between
    // checkpoints no matter how small the pool is.
    let src = temp_dir("nofsync-src");
    let config = config().fsync(false).pool_pages(1); // clamps to the minimum pool
    let expected_states: Vec<BTreeMap<MaskId, Mask>> = {
        let db = MaskDb::open(&src, config).unwrap();
        let mut model = BTreeMap::new();
        let mut states = vec![model.clone()];
        // Repeatedly overwrite a small id set so freed extents get reused
        // while the pool is far too small to hold the working set. (At most
        // 10 rounds: the 4x4 mask generator cycles mod 11, and two rounds
        // with identical pixels would make prefix indices ambiguous.)
        for round in 0..8u32 {
            let batch: Vec<(MaskRecord, Mask)> = (0..6u64)
                .map(|i| (record(i), mask(i as u32 + round * 10)))
                .collect();
            db.insert_masks(&batch).unwrap();
            for (rec, m) in batch {
                model.insert(rec.mask_id, m);
            }
            states.push(model.clone());
        }
        states
    };
    // Nothing may have reached the page file: it was created empty and no
    // checkpoint ran.
    assert_eq!(
        fs::metadata(src.join(DB_FILE)).unwrap().len(),
        0,
        "dirty pages leaked into the database file before a checkpoint"
    );

    let wal = fs::read(src.join(WAL_FILE)).unwrap();
    let crash_dir = temp_dir("nofsync-crash");
    let mut last = 0usize;
    for cut in (0..=wal.len()).step_by(97).chain([wal.len()]) {
        crashed_copy(&src, &crash_dir, cut);
        let store = DurableMaskStore::open(&crash_dir, config).unwrap();
        let ids = store.ids();
        let matched = expected_states
            .iter()
            .position(|state| {
                state.keys().copied().collect::<Vec<_>>() == ids
                    && state.iter().all(|(id, m)| &store.get(*id).unwrap() == m)
            })
            .unwrap_or_else(|| panic!("cut {cut}: recovered state matches no committed prefix"));
        assert!(matched >= last);
        last = matched;
    }
    assert_eq!(last, expected_states.len() - 1);
    fs::remove_dir_all(&src).unwrap();
    fs::remove_dir_all(&crash_dir).unwrap();
}

#[test]
fn stale_index_files_after_post_checkpoint_writes_are_rebuilt() {
    // A checkpoint persists the CHI and tile-summary files; commits after it
    // live only in the WAL. A crash then leaves index files describing
    // *pre-overwrite* pixels. Recovery must detect every mask whose extent
    // the WAL replay rewrote and rebuild its summaries from the recovered
    // pixels — a stale CHI would silently mis-prune, stale tiles would
    // silently mis-count.
    let src = temp_dir("stale-src");
    {
        let db = MaskDb::open(&src, config()).unwrap();
        let batch: Vec<(MaskRecord, Mask)> =
            (0..5u64).map(|i| (record(i), mask(i as u32))).collect();
        db.insert_masks(&batch).unwrap();
        db.checkpoint().unwrap(); // CHI + tiles files now describe masks 0..5
                                  // Post-checkpoint: overwrite two masks, delete one, insert one.
        db.insert_masks(&[(record(1), mask(50)), (record(3), mask(51))])
            .unwrap();
        db.delete_masks(&[MaskId::new(0)]).unwrap();
        db.insert_masks(&[(record(7), mask(52))]).unwrap();
        // Crash: no further checkpoint, so the index files are stale for
        // masks 1, 3 (overwritten), 0 (deleted), and missing 7.
    }
    let crash_dir = temp_dir("stale-crash");
    let wal_len = fs::read(src.join(WAL_FILE)).unwrap().len();
    crashed_copy(&src, &crash_dir, wal_len);
    assert!(crash_dir.join(CHI_FILE).exists());
    assert!(crash_dir.join(TILES_FILE).exists());

    let store = DurableMaskStore::open(&crash_dir, config()).unwrap();
    let expected: BTreeMap<MaskId, Mask> = [
        (MaskId::new(1), mask(50)),
        (MaskId::new(2), mask(2)),
        (MaskId::new(3), mask(51)),
        (MaskId::new(4), mask(4)),
        (MaskId::new(7), mask(52)),
    ]
    .into_iter()
    .collect();
    assert_state_matches(&store, &expected);

    fs::remove_dir_all(&src).unwrap();
    fs::remove_dir_all(&crash_dir).unwrap();
}

#[test]
fn commits_after_recovery_continue_the_history() {
    let src = temp_dir("continue-src");
    let steps = run_history(&src);
    // Tear the last commit off the WAL.
    let wal = fs::read(src.join(WAL_FILE)).unwrap();
    let crash_dir = temp_dir("continue-crash");
    crashed_copy(&src, &crash_dir, wal.len() - 1);
    {
        let store = DurableMaskStore::open(&crash_dir, config()).unwrap();
        let prefix = matching_prefix(&store, &steps);
        assert!(prefix < steps.len() - 1);
        // Write on top of the recovered state.
        store.insert_masks(&[(record(9), mask(9))]).unwrap();
    }
    let store = DurableMaskStore::open(&crash_dir, config()).unwrap();
    assert!(store.contains(MaskId::new(9)));
    assert_eq!(store.get(MaskId::new(9)).unwrap(), mask(9));
    fs::remove_dir_all(&src).unwrap();
    fs::remove_dir_all(&crash_dir).unwrap();
}

#[test]
fn shape_stats_survive_checkpoint_and_torn_files_fall_back_to_defaults() {
    use masksearch_db::SHAPE_STATS_FILE;
    use masksearch_obs::{CatalogStats, ShapeObservation};

    let src = temp_dir("stats-src");
    let shape = "filter/cp=1/roi=const/kernel=auto/idx=incremental";
    {
        let db = MaskDb::open(&src, config()).unwrap();
        db.insert_masks(&[(record(0), mask(0)), (record(1), mask(1))])
            .unwrap();
        let stats = db.mask_store().shape_stats().unwrap();
        for _ in 0..5 {
            stats.record(
                shape,
                &ShapeObservation {
                    candidates: 10,
                    rows: 3,
                    pruned: 6,
                    verified: 4,
                    ..Default::default()
                },
            );
        }
        stats.record_catalog(&CatalogStats {
            planned: 5,
            kernel_on: 4,
            reorders: 1,
            ..Default::default()
        });
        db.checkpoint().unwrap();
    }
    assert!(src.join(SHAPE_STATS_FILE).exists());

    // Clean reopen: the persisted aggregates and catalog line survive.
    {
        let store = DurableMaskStore::open(&src, config()).unwrap();
        let stats = store.shape_stats().unwrap();
        let agg = stats.get(shape).expect("persisted shape aggregate");
        assert_eq!(agg.queries, 5);
        assert_eq!(agg.sums.candidates, 50);
        assert_eq!(stats.catalog().planned, 5);
        assert_eq!(stats.catalog().kernel_on, 4);
    }

    // A torn stats file (crash mid-write) must never block opening: every
    // truncation prefix reopens with default statistics and an intact
    // database.
    let copy_dir = |src: &Path, dst: &Path| {
        let _ = fs::remove_dir_all(dst);
        fs::create_dir_all(dst).unwrap();
        for entry in fs::read_dir(src).unwrap() {
            let entry = entry.unwrap();
            fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    };
    let full = fs::read(src.join(SHAPE_STATS_FILE)).unwrap();
    let crash_dir = temp_dir("stats-crash");
    for len in 0..full.len() {
        copy_dir(&src, &crash_dir);
        fs::write(crash_dir.join(SHAPE_STATS_FILE), &full[..len]).unwrap();
        let store = DurableMaskStore::open(&crash_dir, config()).unwrap();
        let stats = store.shape_stats().unwrap();
        // A truncated file may still end on a complete line boundary; the
        // catalog totals monotonically bound the persisted ones either way,
        // and a mid-line tear yields the default registry.
        assert!(stats.catalog().planned <= 5, "prefix {len}");
        assert!(store.contains(MaskId::new(0)));
        assert_eq!(store.get(MaskId::new(0)).unwrap(), mask(0));
    }
    // A missing file is the same story.
    copy_dir(&src, &crash_dir);
    fs::remove_file(crash_dir.join(SHAPE_STATS_FILE)).unwrap();
    {
        let store = DurableMaskStore::open(&crash_dir, config()).unwrap();
        let stats = store.shape_stats().unwrap();
        assert!(stats.is_empty());
        assert_eq!(stats.catalog(), CatalogStats::default());
    }

    fs::remove_dir_all(&src).unwrap();
    fs::remove_dir_all(&crash_dir).unwrap();
}
