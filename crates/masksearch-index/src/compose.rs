//! Composed `CP` bounds: bound algebra over two masks' CHIs.
//!
//! Multi-mask queries evaluate `CP` over a pixelwise composition
//! `op(a, b)` (`masksearch-core`'s [`MaskOp`]). The filter stage must bound
//! that value **without loading either mask**, from the two per-mask CHIs
//! alone. This module derives sound bounds algebraically.
//!
//! ## Construction
//!
//! Write `G_m(t)` for the *tail count* of mask `m`: the number of ROI pixels
//! with `m ≥ t` (composed pixels with a NaN operand are NaN and never
//! counted). Then `CP(op(a,b), roi, [lo, hi)) = G(lo) − G(hi)` for the
//! composed tail `G`, and the marginal tails compose:
//!
//! * **intersect** (`min`): `min(a,b) ≥ t ⇔ a ≥ t ∧ b ≥ t`, so
//!   `Ga(t) + Gb(t) − |roi| ≤ G∩(t) ≤ min(Ga(t), Gb(t))`.
//! * **union** (`max`): `max(a,b) ≥ t ⇔ a ≥ t ∨ b ≥ t`, so
//!   `max(Ga(t), Gb(t)) ≤ G∪(t) ≤ min(|roi|, Ga(t) + Gb(t))`.
//! * **diff** (`|a−b|`): for in-domain operands `|a−b| ≥ t ⇒ max(a,b) ≥ t`,
//!   so `G△(t) ≤ G∪(t)` for `t > 0`, and `G△(0)` counts every pixel where
//!   both operands are non-NaN.
//!
//! The CHI brackets each marginal tail (`cp_bounds` over `[t, 1)`), and a
//! small *uncountable slack* term — an upper bound on each mask's
//! out-of-domain pixels, derived from the full-range tail — keeps the
//! composition sound even for masks containing NaN/±∞ pixels. For valid
//! masks the slack is exactly zero and costs no pruning power. Interval
//! subtraction of the two composed tails then yields the final
//! [`CpBounds`]; the differential tests prove `lower ≤ exact ≤ upper` on
//! arbitrary masks (including non-finite pixels), ROIs, ranges, and grid
//! configurations.

use crate::bounds::{bin_ranges, CpBounds};
use crate::chi::Chi;
use masksearch_core::{MaskOp, PixelRange, Roi};

/// Lower/upper bounds on a tail count `G(t)`.
#[derive(Debug, Clone, Copy)]
struct Tail {
    lo: u64,
    hi: u64,
}

/// Brackets the marginal tail `G_m(t)` (= `CP(m, roi, [t, 1))` plus pixels
/// `≥ 1`, which the caller accounts for through the slack term).
fn marginal_tail(chi: &Chi, roi: &Roi, t: f32, area: u64) -> Tail {
    if t >= 1.0 {
        return Tail { lo: 0, hi: 0 };
    }
    let range = PixelRange::new(t.max(0.0), 1.0).expect("tail threshold below 1");
    let b = chi.cp_bounds(roi, &range);
    Tail {
        lo: b.lower,
        hi: b.upper.min(area),
    }
}

/// Brackets the composed tail `G(t) = |{p ∈ roi : op(a,b)(p) ≥ t}|`.
///
/// `slack_a`/`slack_b` bound each operand's uncountable (NaN or
/// out-of-domain) pixels inside the ROI; both are zero for valid masks.
/// When the two CHIs share one grid configuration the global bracket is
/// refined **per cell** ([`per_cell_tail`]); the tighter of the two wins.
fn composed_tail(
    a: &Chi,
    b: &Chi,
    op: MaskOp,
    roi: &Roi,
    t: f32,
    area: u64,
    base: (Tail, Tail),
) -> Tail {
    let (ta0, tb0) = base;
    let slack_a = area - ta0.lo;
    let slack_b = area - tb0.lo;
    if t >= 1.0 {
        // Composed values ≥ 1 require an out-of-domain operand.
        let hi = match op {
            MaskOp::Intersect => slack_a.min(slack_b),
            MaskOp::Union | MaskOp::Diff => (slack_a + slack_b).min(area),
        };
        return Tail { lo: 0, hi };
    }
    let ta = marginal_tail(a, roi, t, area);
    let tb = marginal_tail(b, roi, t, area);
    let global = match op {
        MaskOp::Intersect => {
            // a ∈ [t,1) and b ∈ [t,1) pixels are both non-NaN with min ≥ t.
            let lo = (ta.lo + tb.lo).saturating_sub(area);
            let hi = (ta.hi + slack_a).min(tb.hi + slack_b).min(area);
            Tail { lo: lo.min(hi), hi }
        }
        MaskOp::Union => {
            // A pixel with a ∈ [t,1) is only counted when b is non-NaN, so
            // the lower bound sheds the other operand's possible NaNs.
            let lo = ta
                .lo
                .saturating_sub(slack_b)
                .max(tb.lo.saturating_sub(slack_a));
            let hi = (ta.hi + tb.hi + slack_a + slack_b).min(area);
            Tail { lo: lo.min(hi), hi }
        }
        MaskOp::Diff => {
            if t <= 0.0 {
                // |a−b| ≥ 0 whenever both operands are non-NaN.
                let lo = (ta0.lo + tb0.lo).saturating_sub(area);
                Tail { lo, hi: area }
            } else {
                // In-domain: |a−b| ≥ t ⇒ max(a,b) ≥ t; out-of-domain pixels
                // are covered by the slack terms.
                let hi = (ta.hi + tb.hi + slack_a + slack_b).min(area);
                Tail { lo: 0, hi }
            }
        }
    };
    match per_cell_tail(a, b, op, roi, t, (slack_a, slack_b)) {
        Some(refined) => {
            let hi = global.hi.min(refined.hi);
            Tail {
                lo: global.lo.max(refined.lo).min(hi),
                hi,
            }
        }
        None => global,
    }
}

/// Per-cell refinement of the composed tail: the same set-algebra
/// inequalities applied **cell by cell** and summed.
///
/// Whole-ROI composition loses all spatial information — `min(ΣA, ΣB)` is a
/// hopeless upper bound for `Σ min(A_c, B_c)` when two masks are salient in
/// *different places* (the defining situation of a disagreement audit).
/// Summing the per-cell bound instead:
///
/// * **upper** (over the cells of the ROI's covering region — every counted
///   composed pixel lies in one of them): `Σ min(ua, ub)` for intersect,
///   `Σ min(cell, ua + ub)` for union/diff, where `ua`/`ub` are the cell's
///   outer-bin tail counts, plus the global uncountable slack;
/// * **lower** (over the covered region's cells, which lie fully inside the
///   ROI): `Σ max(0, la + lb − cell)` for intersect and
///   `Σ max(la, lb) − slack` for union, from inner-bin tail counts.
///
/// Returns `None` when the grids are incompatible or `t` is outside `(0, 1)`
/// (the global path already handles those exactly enough).
fn per_cell_tail(
    a: &Chi,
    b: &Chi,
    op: MaskOp,
    roi: &Roi,
    t: f32,
    slack: (u64, u64),
) -> Option<Tail> {
    if a.config() != b.config() || t <= 0.0 || t >= 1.0 {
        return None;
    }
    let _ = slack; // per-cell slack below subsumes the global terms
    let bins = a.config().bins();
    let range = PixelRange::new(t, 1.0).ok()?;
    let (outer_lo, _, inner_lo, _) = bin_ranges(&range, bins);
    let (cx0, cy0, cx1, cy1) = a.covering_region(roi)?;
    let covered = a.covered_region(roi);
    let mut upper = 0u64;
    let mut lower = 0u64;
    for cy in cy0..cy1 {
        for cx in cx0..cx1 {
            let cell_w = u64::from(a.x_boundary(cx + 1) - a.x_boundary(cx));
            let cell_h = u64::from(a.y_boundary(cy + 1) - a.y_boundary(cy));
            let cell = cell_w * cell_h;
            // Per-cell uncountable slack: cell pixels the CHI did not bin
            // (NaN / ±∞ / out-of-domain — bin 0 counts the binned ones).
            let sa = cell - cell_bin_count(a, cx, cy, 0).min(cell);
            let sb = cell - cell_bin_count(b, cx, cy, 0).min(cell);
            let (ua, ub) = (
                cell_bin_count(a, cx, cy, outer_lo),
                cell_bin_count(b, cx, cy, outer_lo),
            );
            upper += match op {
                // A counted pixel has `a ≥ t` (in the outer tail or
                // out-of-domain-high, ≤ the cell's slack) and likewise `b`.
                MaskOp::Intersect => (ua + sa).min(ub + sb).min(cell),
                MaskOp::Union | MaskOp::Diff => (ua + ub + sa + sb).min(cell),
            };
            // Lower contributions only from cells fully inside the ROI.
            let inside = covered
                .is_some_and(|(bx0, by0, bx1, by1)| cx >= bx0 && cx < bx1 && cy >= by0 && cy < by1);
            if inside {
                let (la, lb) = (
                    cell_bin_count(a, cx, cy, inner_lo),
                    cell_bin_count(b, cx, cy, inner_lo),
                );
                lower += match op {
                    MaskOp::Intersect => (la + lb).saturating_sub(cell),
                    // A one-sided tail pixel is composed-countable unless
                    // the other operand is NaN (≤ the other side's slack).
                    MaskOp::Union => la.saturating_sub(sb).max(lb.saturating_sub(sa)),
                    MaskOp::Diff => 0,
                };
            }
        }
    }
    Some(Tail {
        lo: lower.min(upper),
        hi: upper,
    })
}

/// Reverse-cumulative count of the *single cell* `(cx, cy)` at `bin`, read
/// straight off the CHI's 2-D-prefix-summed array by four-corner
/// inclusion–exclusion — no histogram materialisation. `bin ≥ bins` counts
/// zero (the tail above the domain).
#[inline]
fn cell_bin_count(chi: &Chi, cx: u32, cy: u32, bin: u32) -> u64 {
    let bins = chi.config().bins();
    if bin >= bins {
        return 0;
    }
    let bins = bins as usize;
    let cells_x = chi.cells_x() as usize;
    let data = chi.data();
    let at = |x: u32, y: u32| -> u64 {
        u64::from(data[(y as usize * cells_x + x as usize) * bins + bin as usize])
    };
    let d = at(cx, cy);
    let b = if cx > 0 { at(cx - 1, cy) } else { 0 };
    let c = if cy > 0 { at(cx, cy - 1) } else { 0 };
    let a = if cx > 0 && cy > 0 {
        at(cx - 1, cy - 1)
    } else {
        0
    };
    // Prefix sums of non-negative data: d + a ≥ b + c always.
    (d + a) - b - c
}

/// Bounds on `CP(op(a, b), roi, range)` computed purely from the two masks'
/// CHIs — the multi-mask counterpart of [`Chi::cp_bounds`].
///
/// The two CHIs must describe masks of identical shape (pair executors
/// enforce this before ever consulting bounds); mismatched shapes fall back
/// to the trivial `[0, |roi|]` bracket, which is sound and simply prunes
/// nothing.
pub fn composed_cp_bounds(a: &Chi, b: &Chi, op: MaskOp, roi: &Roi, range: &PixelRange) -> CpBounds {
    let Some(clip) = roi.clamp_to(a.mask_width(), a.mask_height()) else {
        return CpBounds::empty();
    };
    let area = clip.area();
    if a.mask_width() != b.mask_width() || a.mask_height() != b.mask_height() {
        return CpBounds {
            lower: 0,
            upper: area,
            roi_area: area,
        };
    }
    // Full-range tails bound each operand's countable pixels; their slack
    // (area − lower) bounds the uncountable ones.
    let base = (
        marginal_tail(a, roi, 0.0, area),
        marginal_tail(b, roi, 0.0, area),
    );
    let g_lo = composed_tail(a, b, op, roi, range.lo(), area, base);
    let g_hi = composed_tail(a, b, op, roi, range.hi(), area, base);
    // CP = G(lo) − G(hi) with interval subtraction, clamped to [0, |roi|].
    let upper = g_lo.hi.saturating_sub(g_hi.lo).min(area);
    let lower = g_lo.lo.saturating_sub(g_hi.hi).min(upper);
    CpBounds {
        lower,
        upper,
        roi_area: area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chi::ChiConfig;
    use masksearch_core::{cp_composed, Mask};

    fn check(a: &Mask, b: &Mask, config: &ChiConfig, roi: &Roi, range: &PixelRange, op: MaskOp) {
        let chi_a = Chi::build(a, config);
        let chi_b = Chi::build(b, config);
        let bounds = composed_cp_bounds(&chi_a, &chi_b, op, roi, range);
        let exact = cp_composed(a, b, op, roi, range).unwrap();
        assert!(
            bounds.lower <= exact && exact <= bounds.upper,
            "{op}: exact {exact} outside [{}, {}] for roi {roi} range {range}",
            bounds.lower,
            bounds.upper
        );
        assert!(bounds.upper <= bounds.roi_area);
    }

    fn blob(w: u32, h: u32, cx: f32, cy: f32) -> Mask {
        Mask::from_fn(w, h, move |x, y| {
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            (0.95 * (-(dx * dx + dy * dy) / 60.0).exp()).min(0.999)
        })
    }

    #[test]
    fn composed_bounds_bracket_the_exact_count() {
        let a = blob(48, 48, 16.0, 16.0);
        let b = blob(48, 48, 30.0, 26.0);
        let configs = [
            ChiConfig::new(8, 8, 16).unwrap(),
            ChiConfig::new(5, 7, 4).unwrap(),
            ChiConfig::new(64, 64, 16).unwrap(),
        ];
        let rois = [
            Roi::new(0, 0, 48, 48).unwrap(),
            Roi::new(3, 5, 17, 29).unwrap(),
            Roi::new(40, 40, 100, 100).unwrap(),
        ];
        let ranges = [
            PixelRange::new(0.5, 1.0).unwrap(),
            PixelRange::new(0.25, 0.75).unwrap(),
            PixelRange::new(0.4, 0.45).unwrap(),
            PixelRange::full(),
        ];
        for config in &configs {
            for roi in &rois {
                for range in &ranges {
                    for op in [MaskOp::Intersect, MaskOp::Union, MaskOp::Diff] {
                        check(&a, &b, config, roi, range, op);
                    }
                }
            }
        }
    }

    #[test]
    fn intersect_union_are_tight_on_aligned_queries() {
        // Cell-aligned ROI + bin-aligned range: marginal tails are exact, so
        // the composed brackets collapse to the set-algebra inequalities.
        let a = blob(32, 32, 10.0, 10.0);
        let b = blob(32, 32, 20.0, 24.0);
        let config = ChiConfig::new(8, 8, 16).unwrap();
        let chi_a = Chi::build(&a, &config);
        let chi_b = Chi::build(&b, &config);
        let roi = Roi::new(8, 8, 24, 24).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        let inter = composed_cp_bounds(&chi_a, &chi_b, MaskOp::Intersect, &roi, &range);
        let union = composed_cp_bounds(&chi_a, &chi_b, MaskOp::Union, &roi, &range);
        let exact_i = cp_composed(&a, &b, MaskOp::Intersect, &roi, &range).unwrap();
        let exact_u = cp_composed(&a, &b, MaskOp::Union, &roi, &range).unwrap();
        assert!(inter.lower <= exact_i && exact_i <= inter.upper);
        assert!(union.lower <= exact_u && exact_u <= union.upper);
        // With exact marginals the composed brackets must be at least as
        // tight as the whole-ROI set-algebra inequalities — and the
        // per-cell refinement usually much tighter (two blobs in different
        // cells have near-zero per-cell intersection bounds).
        let ca = chi_a.cp_bounds(&roi, &range);
        let cb = chi_b.cp_bounds(&roi, &range);
        assert!(ca.is_exact() && cb.is_exact());
        assert!(inter.upper <= ca.upper.min(cb.upper));
        assert!(union.lower >= ca.lower.max(cb.lower));
    }

    #[test]
    fn bounds_stay_sound_on_nan_and_inf_pixels() {
        let mut da = vec![0.6f32; 24 * 24];
        let mut db = vec![0.3f32; 24 * 24];
        da[3] = f32::NAN;
        da[100] = f32::INFINITY;
        db[7] = f32::NEG_INFINITY;
        db[200] = f32::NAN;
        db[301] = 1.25;
        let a = Mask::from_data_unchecked(24, 24, da).unwrap();
        let b = Mask::from_data_unchecked(24, 24, db).unwrap();
        let config = ChiConfig::new(6, 6, 8).unwrap();
        for roi in [
            Roi::new(0, 0, 24, 24).unwrap(),
            Roi::new(2, 2, 13, 19).unwrap(),
        ] {
            for range in [
                PixelRange::full(),
                PixelRange::new(0.25, 0.5).unwrap(),
                PixelRange::new(0.29, 0.31).unwrap(),
            ] {
                for op in [MaskOp::Intersect, MaskOp::Union, MaskOp::Diff] {
                    check(&a, &b, &config, &roi, &range, op);
                }
            }
        }
    }

    #[test]
    fn disjoint_roi_and_mismatched_shapes_are_conservative() {
        let a = blob(16, 16, 8.0, 8.0);
        let b = blob(16, 16, 4.0, 4.0);
        let config = ChiConfig::default();
        let chi_a = Chi::build(&a, &config);
        let chi_b = Chi::build(&b, &config);
        let far = Roi::new(100, 100, 120, 120).unwrap();
        assert_eq!(
            composed_cp_bounds(&chi_a, &chi_b, MaskOp::Diff, &far, &PixelRange::full()),
            CpBounds::empty()
        );
        let small = Chi::build(&blob(8, 8, 4.0, 4.0), &config);
        let roi = Roi::new(0, 0, 16, 16).unwrap();
        let bounds = composed_cp_bounds(&chi_a, &small, MaskOp::Union, &roi, &PixelRange::full());
        assert_eq!((bounds.lower, bounds.upper), (0, 256));
    }

    #[test]
    fn selective_diff_on_agreeing_masks_prunes() {
        // Two identical masks: |a−b| = 0 everywhere, and the composed upper
        // bound for a selective range must reach 0 so the filter stage can
        // prune a "disagreement > T" predicate without loading pixels.
        let a = blob(64, 64, 32.0, 32.0);
        let config = ChiConfig::new(8, 8, 16).unwrap();
        let chi = Chi::build(&a, &config);
        let roi = a.full_roi();
        let range = PixelRange::new(0.5, 1.0).unwrap();
        let bounds = composed_cp_bounds(&chi, &chi, MaskOp::Diff, &roi, &range);
        // G△(0.5) ≤ G∪(0.5) ≤ Ga(0.5) + Ga(0.5): small for a concentrated
        // blob; in particular far below the full area.
        assert!(bounds.upper < roi.area() / 4, "upper {}", bounds.upper);
    }
}
