//! A collection of CHIs for a dataset, with persistence and incremental
//! insertion.
//!
//! The paper assumes the CHI of every mask is loaded into memory when a
//! MaskSearch session starts and persisted to disk when it ends (§3.2, §3.6).
//! [`ChiStore`] is that collection: a concurrent map from [`MaskId`] to
//! [`Chi`], a single-file binary serialisation, and size accounting used to
//! report index-size/dataset-size ratios (§4.1).

use crate::chi::{Chi, ChiConfig};
use masksearch_core::{Mask, MaskId};
use masksearch_storage::codec::{Reader, Writer};
use masksearch_storage::{StorageError, StorageResult};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Magic bytes identifying a CHI index file.
pub const CHI_MAGIC: [u8; 4] = *b"MSKI";
/// CHI index file format version.
pub const CHI_FORMAT_VERSION: u16 = 1;

/// A thread-safe collection of per-mask CHIs sharing one configuration.
#[derive(Debug)]
pub struct ChiStore {
    config: ChiConfig,
    entries: RwLock<BTreeMap<MaskId, Arc<Chi>>>,
    /// Bumped (under the entries write lock) by every removal. Lets callers
    /// that built an index from pixels loaded *before* a concurrent
    /// overwrite detect the conflict instead of installing stale bounds —
    /// see [`ChiStore::index_mask_if_current`].
    removals: AtomicU64,
}

/// A read guard over a [`ChiStore`] for batched lookups (see
/// [`ChiStore::reader`]).
#[derive(Debug)]
pub struct ChiReader<'a> {
    entries: parking_lot::RwLockReadGuard<'a, BTreeMap<MaskId, Arc<Chi>>>,
}

impl ChiReader<'_> {
    /// The index of `mask_id`, if present — borrowed from the guard, so no
    /// reference count is touched.
    pub fn get(&self, mask_id: MaskId) -> Option<&Chi> {
        self.entries.get(&mask_id).map(Arc::as_ref)
    }
}

impl ChiStore {
    /// Creates an empty store for indexes built with `config`.
    pub fn new(config: ChiConfig) -> Self {
        Self {
            config,
            entries: RwLock::new(BTreeMap::new()),
            removals: AtomicU64::new(0),
        }
    }

    /// The configuration shared by every index in the store.
    pub fn config(&self) -> &ChiConfig {
        &self.config
    }

    /// Number of indexed masks.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Returns `true` if no masks are indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Returns `true` if `mask_id` has an index.
    pub fn contains(&self, mask_id: MaskId) -> bool {
        self.entries.read().contains_key(&mask_id)
    }

    /// Retrieves the index of `mask_id`, if present.
    pub fn get(&self, mask_id: MaskId) -> Option<Arc<Chi>> {
        self.entries.read().get(&mask_id).cloned()
    }

    /// Takes a read guard for a batch of lookups: one lock acquisition (and
    /// no `Arc` clone per hit) amortised over a whole candidate chunk — the
    /// filter stage's hot loop. Writers block while the reader is held, so
    /// hold it only across CPU-bound work.
    pub fn reader(&self) -> ChiReader<'_> {
        ChiReader {
            entries: self.entries.read(),
        }
    }

    /// Inserts a pre-built index for `mask_id`, replacing any existing one.
    pub fn insert(&self, mask_id: MaskId, chi: Chi) {
        self.entries.write().insert(mask_id, Arc::new(chi));
    }

    /// Builds and inserts the index of `mask` under the store's
    /// configuration (the §3.6 incremental-indexing step), returning it.
    pub fn index_mask(&self, mask_id: MaskId, mask: &Mask) -> Arc<Chi> {
        let chi = Arc::new(Chi::build(mask, &self.config));
        self.entries.write().insert(mask_id, Arc::clone(&chi));
        chi
    }

    /// Removes the index of `mask_id`, returning it if it existed.
    pub fn remove(&self, mask_id: MaskId) -> Option<Arc<Chi>> {
        let mut entries = self.entries.write();
        self.removals.fetch_add(1, Ordering::Relaxed);
        entries.remove(&mask_id)
    }

    /// The current removal generation (see [`ChiStore::index_mask_if_current`]).
    pub fn removal_generation(&self) -> u64 {
        self.removals.load(Ordering::Relaxed)
    }

    /// Builds and inserts the index of `mask` only if no removal has
    /// happened since `generation` (taken via
    /// [`ChiStore::removal_generation`] *before* the mask was loaded) and no
    /// index exists yet. Returns whether the index was installed.
    ///
    /// This is the incremental-indexing race guard: a removal between the
    /// generation snapshot and this call means the loaded pixels may predate
    /// an overwrite or delete, so installing bounds built from them could
    /// corrupt the filter stage. The generation check runs under the same
    /// write lock that removals bump under, so there is no window.
    pub fn index_mask_if_current(&self, mask_id: MaskId, mask: &Mask, generation: u64) -> bool {
        let chi = Arc::new(Chi::build(mask, &self.config));
        let mut entries = self.entries.write();
        if self.removals.load(Ordering::Relaxed) != generation || entries.contains_key(&mask_id) {
            return false;
        }
        entries.insert(mask_id, chi);
        true
    }

    /// Ids of all indexed masks, ascending.
    pub fn ids(&self) -> Vec<MaskId> {
        self.entries.read().keys().copied().collect()
    }

    /// Total in-memory size of the index payloads in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.entries.read().values().map(|c| c.byte_size()).sum()
    }

    /// Serialises the store (configuration + every index) to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let entries = self.entries.read();
        let mut w = Writer::new();
        w.write_bytes(&CHI_MAGIC);
        w.write_u16(CHI_FORMAT_VERSION);
        w.write_u16(0);
        w.write_u32(self.config.cell_width());
        w.write_u32(self.config.cell_height());
        w.write_u32(self.config.bins());
        w.write_u64(entries.len() as u64);
        for (id, chi) in entries.iter() {
            w.write_u64(id.raw());
            w.write_u32(chi.mask_width());
            w.write_u32(chi.mask_height());
            w.write_u32_vec(chi.data());
        }
        w.into_bytes()
    }

    /// Deserialises a store written by [`ChiStore::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> StorageResult<Self> {
        let mut r = Reader::new(bytes, "chi index file");
        let magic = r.read_magic()?;
        if magic != CHI_MAGIC {
            return Err(StorageError::BadMagic {
                path: "<chi index>".to_string(),
                found: magic,
            });
        }
        let version = r.read_u16()?;
        if version > CHI_FORMAT_VERSION {
            return Err(StorageError::UnsupportedVersion {
                found: version,
                supported: CHI_FORMAT_VERSION,
            });
        }
        let _reserved = r.read_u16()?;
        let cell_width = r.read_u32()?;
        let cell_height = r.read_u32()?;
        let bins = r.read_u32()?;
        let config = ChiConfig::new(cell_width, cell_height, bins).ok_or_else(|| {
            StorageError::corrupt("chi index file has a zero-sized configuration")
        })?;
        let count = r.read_u64()?;
        let store = ChiStore::new(config);
        {
            let mut entries = store.entries.write();
            for _ in 0..count {
                let id = MaskId::new(r.read_u64()?);
                let width = r.read_u32()?;
                let height = r.read_u32()?;
                let data = r.read_u32_vec()?;
                let chi = Chi::from_parts(config, width, height, data).ok_or_else(|| {
                    StorageError::corrupt(format!(
                        "chi payload for mask {id} does not match its declared shape"
                    ))
                })?;
                entries.insert(id, Arc::new(chi));
            }
        }
        Ok(store)
    }

    /// Persists the store to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> StorageResult<()> {
        std::fs::write(path.as_ref(), self.to_bytes())
            .map_err(|e| StorageError::io("writing chi index file", e))
    }

    /// Loads a store from a file.
    pub fn load(path: impl AsRef<Path>) -> StorageResult<Self> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| StorageError::io("reading chi index file", e))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{cp, PixelRange, Roi};

    fn mask(seed: u32) -> Mask {
        Mask::from_fn(24, 24, |x, y| ((x * 7 + y * 3 + seed) % 19) as f32 / 19.0)
    }

    fn config() -> ChiConfig {
        ChiConfig::new(8, 8, 8).unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let store = ChiStore::new(config());
        assert!(store.is_empty());
        store.index_mask(MaskId::new(1), &mask(1));
        store.index_mask(MaskId::new(2), &mask(2));
        assert_eq!(store.len(), 2);
        assert!(store.contains(MaskId::new(1)));
        assert!(!store.contains(MaskId::new(3)));
        assert_eq!(store.ids(), vec![MaskId::new(1), MaskId::new(2)]);
        assert!(store.get(MaskId::new(2)).is_some());
        assert!(store.remove(MaskId::new(1)).is_some());
        assert!(store.remove(MaskId::new(1)).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn guarded_install_refuses_after_a_removal() {
        let store = ChiStore::new(config());
        store.index_mask(MaskId::new(1), &mask(1));

        // Simulate incremental indexing racing an overwrite: the generation
        // is snapshotted, then a removal (the overwrite's eviction) happens
        // before the install.
        let generation = store.removal_generation();
        store.remove(MaskId::new(1));
        assert!(!store.index_mask_if_current(MaskId::new(1), &mask(1), generation));
        assert!(!store.contains(MaskId::new(1)));

        // With a fresh snapshot and no interleaved removal, it installs.
        let generation = store.removal_generation();
        assert!(store.index_mask_if_current(MaskId::new(1), &mask(2), generation));
        assert!(store.contains(MaskId::new(1)));
        // ...but never overwrites an existing entry.
        assert!(!store.index_mask_if_current(MaskId::new(1), &mask(3), generation));
    }

    #[test]
    fn indexed_bounds_bracket_exact_values() {
        let store = ChiStore::new(config());
        let m = mask(5);
        let chi = store.index_mask(MaskId::new(5), &m);
        let roi = Roi::new(3, 3, 20, 17).unwrap();
        let range = PixelRange::new(0.3, 0.7).unwrap();
        let b = chi.cp_bounds(&roi, &range);
        let exact = cp(&m, &roi, &range);
        assert!(b.lower <= exact && exact <= b.upper);
    }

    #[test]
    fn total_bytes_accounts_every_index() {
        let store = ChiStore::new(config());
        store.index_mask(MaskId::new(1), &mask(1));
        store.index_mask(MaskId::new(2), &mask(2));
        // 24x24 mask with 8x8 cells -> 3x3 cells x 8 bins x 4 bytes = 288.
        assert_eq!(store.total_bytes(), 2 * 288);
    }

    #[test]
    fn binary_round_trip() {
        let store = ChiStore::new(config());
        for i in 0..5u64 {
            store.index_mask(MaskId::new(i), &mask(i as u32));
        }
        let bytes = store.to_bytes();
        let decoded = ChiStore::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.len(), 5);
        assert_eq!(decoded.config(), store.config());
        for i in 0..5u64 {
            assert_eq!(
                *decoded.get(MaskId::new(i)).unwrap(),
                *store.get(MaskId::new(i)).unwrap()
            );
        }
    }

    #[test]
    fn file_round_trip_and_corruption() {
        let store = ChiStore::new(config());
        store.index_mask(MaskId::new(9), &mask(9));
        let path = std::env::temp_dir().join(format!(
            "masksearch-chistore-test-{}.idx",
            std::process::id()
        ));
        store.save(&path).unwrap();
        let loaded = ChiStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        // Corrupt the file and confirm a typed error.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'Z';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ChiStore::load(&path),
            Err(StorageError::BadMagic { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_index_file_is_rejected() {
        let store = ChiStore::new(config());
        store.index_mask(MaskId::new(1), &mask(1));
        let bytes = store.to_bytes();
        assert!(ChiStore::from_bytes(&bytes[..bytes.len() - 8]).is_err());
    }
}
