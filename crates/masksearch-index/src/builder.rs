//! Parallel bulk construction of CHIs for a whole dataset.
//!
//! The "vanilla MaskSearch" configuration of the paper (§3.6, the *MS* line
//! of Figure 11) builds the index of every mask ahead of time. For `N` masks
//! of `w × h` pixels the cost is `O(N · w · h)`; the builder spreads that
//! over worker threads pulling mask ids from a shared queue, reading masks
//! through a [`MaskStore`].

use crate::chi::ChiConfig;
use crate::store::ChiStore;
use masksearch_core::MaskId;
use masksearch_storage::{MaskStore, StorageResult};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Options controlling a bulk index build.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Number of worker threads. Zero or one means single-threaded.
    pub threads: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Builds the CHI of every mask in `ids`, loading masks from `store`.
///
/// Returns the populated [`ChiStore`]. Masks are loaded through the store
/// (and therefore charged to its I/O cost model), mirroring the paper's
/// accounting where up-front index construction time is attributed to the
/// 0-th query of a workload (Figure 11).
pub fn build_chi_store(
    store: &dyn MaskStore,
    ids: &[MaskId],
    config: ChiConfig,
    options: BuildOptions,
) -> StorageResult<ChiStore> {
    let chi_store = ChiStore::new(config);
    let threads = options.threads.max(1).min(ids.len().max(1));
    if threads <= 1 {
        for &id in ids {
            let mask = store.get(id)?;
            chi_store.index_mask(id, &mask);
        }
        return Ok(chi_store);
    }

    let next = AtomicUsize::new(0);
    let first_error: Mutex<Option<masksearch_storage::StorageError>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ids.len() {
                    break;
                }
                if first_error.lock().is_some() {
                    break;
                }
                let id = ids[i];
                match store.get(id) {
                    Ok(mask) => {
                        chi_store.index_mask(id, &mask);
                    }
                    Err(e) => {
                        let mut slot = first_error.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        break;
                    }
                }
            });
        }
    });

    if let Some(err) = first_error.into_inner() {
        return Err(err);
    }
    Ok(chi_store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{cp, Mask, PixelRange, Roi};
    use masksearch_storage::MemoryMaskStore;

    fn populated_store(n: u64) -> (MemoryMaskStore, Vec<MaskId>) {
        let store = MemoryMaskStore::for_tests();
        let mut ids = Vec::new();
        for i in 0..n {
            let mask = Mask::from_fn(32, 32, |x, y| ((x + y + i as u32) % 23) as f32 / 23.0);
            let id = MaskId::new(i);
            store.put(id, &mask).unwrap();
            ids.push(id);
        }
        (store, ids)
    }

    #[test]
    fn single_threaded_build_indexes_everything() {
        let (store, ids) = populated_store(8);
        let chi_store = build_chi_store(
            &store,
            &ids,
            ChiConfig::new(8, 8, 8).unwrap(),
            BuildOptions { threads: 1 },
        )
        .unwrap();
        assert_eq!(chi_store.len(), 8);
        assert_eq!(store.io_stats().masks_loaded(), 8);
    }

    #[test]
    fn parallel_build_matches_serial_build() {
        let (store, ids) = populated_store(32);
        let config = ChiConfig::new(8, 8, 16).unwrap();
        let serial = build_chi_store(&store, &ids, config, BuildOptions { threads: 1 }).unwrap();
        let parallel = build_chi_store(&store, &ids, config, BuildOptions { threads: 4 }).unwrap();
        assert_eq!(parallel.len(), serial.len());
        for &id in &ids {
            assert_eq!(*parallel.get(id).unwrap(), *serial.get(id).unwrap());
        }
        // Sanity: bounds from a parallel-built index bracket the exact value.
        let mask = store.get(ids[3]).unwrap();
        let roi = Roi::new(5, 5, 30, 30).unwrap();
        let range = PixelRange::new(0.4, 0.9).unwrap();
        let b = parallel.get(ids[3]).unwrap().cp_bounds(&roi, &range);
        let exact = cp(&mask, &roi, &range);
        assert!(b.lower <= exact && exact <= b.upper);
    }

    #[test]
    fn missing_masks_abort_the_build_with_an_error() {
        let (store, mut ids) = populated_store(4);
        ids.push(MaskId::new(999));
        let result = build_chi_store(
            &store,
            &ids,
            ChiConfig::default(),
            BuildOptions { threads: 2 },
        );
        assert!(result.is_err());
        let result = build_chi_store(
            &store,
            &ids,
            ChiConfig::default(),
            BuildOptions { threads: 1 },
        );
        assert!(result.is_err());
    }

    #[test]
    fn empty_id_list_builds_empty_store() {
        let (store, _) = populated_store(2);
        let chi_store =
            build_chi_store(&store, &[], ChiConfig::default(), BuildOptions::default()).unwrap();
        assert!(chi_store.is_empty());
    }
}
