//! The Cumulative Histogram Index for one mask.
//!
//! For a cell grid of `(cell_width, cell_height)` pixels and `bins` equi-width
//! pixel-value buckets, the index stores (paper Eq. 1)
//!
//! ```text
//! H(cx, cy, bin) = CP(mask,
//!                     ((0, 0), (min(cx·cell_width, w), min(cy·cell_height, h))),
//!                     (bin·Δ, 1))
//! ```
//!
//! i.e. for every *prefix rectangle* that ends on a cell boundary, the number
//! of pixels whose value is at least `bin·Δ` (reverse-cumulative over bins).
//! Counts for any *available region* — a rectangle whose corners lie on cell
//! boundaries — follow by inclusion–exclusion (Eq. 2), and bounds on `CP`
//! over arbitrary ROIs follow from the covering/covered available regions
//! (see [`crate::bounds`]).

use crate::bounds::{self, CpBounds};
use masksearch_core::{Mask, PixelRange, Roi};

/// Configuration of a CHI: spatial cell size and number of value bins.
///
/// The paper's defaults are `bins = 16` with `cell = 64×64` for WILDS
/// (448×448 masks) and `cell = 28×28` for ImageNet (224×224 masks), chosen so
/// the index is ≈5 % of the compressed dataset size (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChiConfig {
    cell_width: u32,
    cell_height: u32,
    bins: u32,
}

impl ChiConfig {
    /// Creates a configuration; every parameter must be non-zero.
    pub fn new(cell_width: u32, cell_height: u32, bins: u32) -> Option<Self> {
        if cell_width == 0 || cell_height == 0 || bins == 0 {
            return None;
        }
        Some(Self {
            cell_width,
            cell_height,
            bins,
        })
    }

    /// The paper's WILDS configuration: 64×64 cells, 16 bins.
    pub fn paper_wilds() -> Self {
        Self {
            cell_width: 64,
            cell_height: 64,
            bins: 16,
        }
    }

    /// The paper's ImageNet configuration: 28×28 cells, 16 bins.
    pub fn paper_imagenet() -> Self {
        Self {
            cell_width: 28,
            cell_height: 28,
            bins: 16,
        }
    }

    /// Cell width in pixels.
    pub fn cell_width(&self) -> u32 {
        self.cell_width
    }

    /// Cell height in pixels.
    pub fn cell_height(&self) -> u32 {
        self.cell_height
    }

    /// Number of equi-width pixel-value bins.
    pub fn bins(&self) -> u32 {
        self.bins
    }

    /// Width of one value bin (`Δ` in the paper).
    pub fn delta(&self) -> f64 {
        1.0 / self.bins as f64
    }

    /// Number of grid columns for a mask of width `w` (ragged final column
    /// included).
    pub fn cells_x(&self, width: u32) -> u32 {
        width.div_ceil(self.cell_width)
    }

    /// Number of grid rows for a mask of height `h`.
    pub fn cells_y(&self, height: u32) -> u32 {
        height.div_ceil(self.cell_height)
    }

    /// Index size in bytes for one mask of the given shape
    /// (`4 · bins · cells_x · cells_y`, the paper's space formula).
    pub fn index_bytes(&self, width: u32, height: u32) -> u64 {
        4 * self.bins as u64 * self.cells_x(width) as u64 * self.cells_y(height) as u64
    }

    /// Maps a pixel value in `[0, 1)` to its bin index.
    #[inline]
    pub fn bin_of(&self, value: f32) -> u32 {
        ((value as f64 * self.bins as f64) as u32).min(self.bins - 1)
    }
}

impl Default for ChiConfig {
    fn default() -> Self {
        // A generic default suitable for moderately sized masks.
        Self {
            cell_width: 32,
            cell_height: 32,
            bins: 16,
        }
    }
}

/// The Cumulative Histogram Index of a single mask.
///
/// Internally a flat `Vec<u32>` indexed by `(cy, cx, bin)`; lookups are pure
/// offset arithmetic ("rather than building a B-tree index or a hash index
/// ... an optimized index structure using an array", §3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chi {
    config: ChiConfig,
    mask_width: u32,
    mask_height: u32,
    cells_x: u32,
    cells_y: u32,
    /// `data[((cy * cells_x) + cx) * bins + bin]` = count of pixels in the
    /// prefix rectangle ending at boundary `(cx+1, cy+1)` with value
    /// `>= bin · Δ`.
    data: Vec<u32>,
}

impl Chi {
    /// Builds the CHI of `mask` under `config`.
    ///
    /// Cost is `O(w · h + cells · bins)` — a single pass over the pixels plus
    /// the cumulative sweeps.
    pub fn build(mask: &Mask, config: &ChiConfig) -> Self {
        let (w, h) = mask.shape();
        let cells_x = config.cells_x(w);
        let cells_y = config.cells_y(h);
        let bins = config.bins as usize;
        let mut data = vec![0u32; cells_x as usize * cells_y as usize * bins];

        // Pass 1: per-cell plain histograms. Pixels outside the countable
        // [0, 1) domain (NaN, ±∞, out of range — reachable only through the
        // unchecked constructor, e.g. on hostile blobs) are skipped: no
        // `PixelRange` can ever count them, and binning a NaN (which casts
        // to bin 0) would inflate lower bounds above the exact count,
        // breaking filter-stage soundness.
        for (x, y, v) in mask.iter_pixels() {
            if !(0.0..1.0).contains(&v) {
                continue;
            }
            let cx = (x / config.cell_width) as usize;
            let cy = (y / config.cell_height) as usize;
            let bin = config.bin_of(v) as usize;
            data[(cy * cells_x as usize + cx) * bins + bin] += 1;
        }

        // Pass 2: reverse-cumulative over bins within each cell.
        for cell in data.chunks_exact_mut(bins) {
            for b in (0..bins - 1).rev() {
                cell[b] += cell[b + 1];
            }
        }

        // Pass 3: 2-D prefix sums over the cell grid, per bin.
        // First along x...
        for cy in 0..cells_y as usize {
            for cx in 1..cells_x as usize {
                for b in 0..bins {
                    let prev = data[(cy * cells_x as usize + cx - 1) * bins + b];
                    data[(cy * cells_x as usize + cx) * bins + b] += prev;
                }
            }
        }
        // ...then along y.
        for cy in 1..cells_y as usize {
            for cx in 0..cells_x as usize {
                for b in 0..bins {
                    let prev = data[((cy - 1) * cells_x as usize + cx) * bins + b];
                    data[(cy * cells_x as usize + cx) * bins + b] += prev;
                }
            }
        }

        Self {
            config: *config,
            mask_width: w,
            mask_height: h,
            cells_x,
            cells_y,
            data,
        }
    }

    /// Reconstructs a CHI from its raw parts (used by the persistence layer).
    ///
    /// Returns `None` if the data length is inconsistent with the shape.
    pub fn from_parts(
        config: ChiConfig,
        mask_width: u32,
        mask_height: u32,
        data: Vec<u32>,
    ) -> Option<Self> {
        let cells_x = config.cells_x(mask_width);
        let cells_y = config.cells_y(mask_height);
        if data.len() != cells_x as usize * cells_y as usize * config.bins() as usize {
            return None;
        }
        Some(Self {
            config,
            mask_width,
            mask_height,
            cells_x,
            cells_y,
            data,
        })
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &ChiConfig {
        &self.config
    }

    /// Width of the indexed mask.
    pub fn mask_width(&self) -> u32 {
        self.mask_width
    }

    /// Height of the indexed mask.
    pub fn mask_height(&self) -> u32 {
        self.mask_height
    }

    /// Number of grid columns (including the ragged final column).
    pub fn cells_x(&self) -> u32 {
        self.cells_x
    }

    /// Number of grid rows.
    pub fn cells_y(&self) -> u32 {
        self.cells_y
    }

    /// Raw cumulative data (used by the persistence layer).
    pub fn data(&self) -> &[u32] {
        &self.data
    }

    /// In-memory size of the index payload in bytes.
    pub fn byte_size(&self) -> u64 {
        self.data.len() as u64 * 4
    }

    /// Pixel x-coordinate of grid boundary `i` (`0 ..= cells_x`), clamped to
    /// the mask width for the ragged final column.
    #[inline]
    pub fn x_boundary(&self, i: u32) -> u32 {
        (i * self.config.cell_width).min(self.mask_width)
    }

    /// Pixel y-coordinate of grid boundary `i` (`0 ..= cells_y`).
    #[inline]
    pub fn y_boundary(&self, i: u32) -> u32 {
        (i * self.config.cell_height).min(self.mask_height)
    }

    /// Reverse-cumulative histogram of the prefix rectangle ending at grid
    /// boundary `(bx, by)` (in boundary indices, `0 ..= cells`): element `b`
    /// is the count of pixels with value `>= b · Δ` inside
    /// `[0, x_boundary(bx)) × [0, y_boundary(by))`.
    ///
    /// Boundary index 0 denotes the empty prefix (all zeros).
    pub fn prefix_hist(&self, bx: u32, by: u32) -> Vec<u64> {
        let bins = self.config.bins as usize;
        if bx == 0 || by == 0 {
            return vec![0; bins];
        }
        let cx = (bx - 1).min(self.cells_x - 1) as usize;
        let cy = (by - 1).min(self.cells_y - 1) as usize;
        let start = (cy * self.cells_x as usize + cx) * bins;
        self.data[start..start + bins]
            .iter()
            .map(|&v| v as u64)
            .collect()
    }

    /// One element of [`Chi::prefix_hist`] — the count of pixels with bin
    /// index `>= bin` in the prefix rectangle — without materialising the
    /// histogram. `bin >= bins` counts zero pixels (the implicit
    /// `hist[bins] = 0` element).
    pub fn prefix_count(&self, bx: u32, by: u32, bin: u32) -> u64 {
        if bx == 0 || by == 0 || bin >= self.config.bins {
            return 0;
        }
        let bins = self.config.bins as usize;
        let cx = (bx - 1).min(self.cells_x - 1) as usize;
        let cy = (by - 1).min(self.cells_y - 1) as usize;
        self.data[(cy * self.cells_x as usize + cx) * bins + bin as usize] as u64
    }

    /// One element of [`Chi::region_hist`] without materialising the
    /// histogram: the bounds computation only ever reads two elements per
    /// region, and the per-call histogram allocations dominated the filter
    /// stage's per-candidate cost.
    pub fn region_count(&self, region: (u32, u32, u32, u32), bin: u32) -> u64 {
        let (bx0, by0, bx1, by1) = region;
        debug_assert!(bx0 <= bx1 && by0 <= by1);
        // Same inclusion–exclusion as `region_hist`, which never goes
        // negative for prefix sums of non-negative data.
        self.prefix_count(bx1, by1, bin) + self.prefix_count(bx0, by0, bin)
            - self.prefix_count(bx0, by1, bin)
            - self.prefix_count(bx1, by0, bin)
    }

    /// Reverse-cumulative histogram of an *available region* given by grid
    /// boundary indices `[bx0, bx1) × [by0, by1)` (paper Eq. 2):
    ///
    /// ```text
    /// C(region) = H(bx1, by1) − H(bx0, by1) − H(bx1, by0) + H(bx0, by0)
    /// ```
    pub fn region_hist(&self, bx0: u32, by0: u32, bx1: u32, by1: u32) -> Vec<u64> {
        debug_assert!(bx0 <= bx1 && by0 <= by1);
        let bins = self.config.bins as usize;
        let a = self.prefix_hist(bx1, by1);
        let b = self.prefix_hist(bx0, by1);
        let c = self.prefix_hist(bx1, by0);
        let d = self.prefix_hist(bx0, by0);
        let mut out = vec![0u64; bins];
        for i in 0..bins {
            // Inclusion–exclusion never goes negative for prefix sums of
            // non-negative data; use checked arithmetic in debug builds.
            out[i] = a[i] + d[i] - b[i] - c[i];
        }
        out
    }

    /// Grid-boundary rectangle (in boundary indices) of the smallest
    /// available region that *covers* the pixel rectangle `roi`
    /// (clipped to the mask). Returns `None` if the clipped ROI is empty.
    pub fn covering_region(&self, roi: &Roi) -> Option<(u32, u32, u32, u32)> {
        let clipped = roi.clamp_to(self.mask_width, self.mask_height)?;
        let bx0 = clipped.x0() / self.config.cell_width;
        let by0 = clipped.y0() / self.config.cell_height;
        let bx1 = clipped
            .x1()
            .div_ceil(self.config.cell_width)
            .min(self.cells_x);
        let by1 = clipped
            .y1()
            .div_ceil(self.config.cell_height)
            .min(self.cells_y);
        Some((bx0, by0, bx1, by1))
    }

    /// Grid-boundary rectangle of the largest available region *covered by*
    /// the pixel rectangle `roi` (clipped to the mask). Returns `None` if no
    /// complete cell fits inside the ROI.
    pub fn covered_region(&self, roi: &Roi) -> Option<(u32, u32, u32, u32)> {
        let clipped = roi.clamp_to(self.mask_width, self.mask_height)?;
        let bx0 = clipped.x0().div_ceil(self.config.cell_width);
        let by0 = clipped.y0().div_ceil(self.config.cell_height);
        let bx1 = clipped.x1() / self.config.cell_width;
        let by1 = clipped.y1() / self.config.cell_height;
        // The ragged final boundary equals the mask edge: if the ROI reaches
        // the mask edge it covers the (partial) final cell as well.
        let bx1 = if clipped.x1() == self.mask_width {
            self.cells_x
        } else {
            bx1
        };
        let by1 = if clipped.y1() == self.mask_height {
            self.cells_y
        } else {
            by1
        };
        if bx0 < bx1 && by0 < by1 {
            Some((bx0, by0, bx1, by1))
        } else {
            None
        }
    }

    /// Pixel area of a grid-boundary rectangle.
    pub fn region_area(&self, region: (u32, u32, u32, u32)) -> u64 {
        let (bx0, by0, bx1, by1) = region;
        let w = self.x_boundary(bx1).saturating_sub(self.x_boundary(bx0)) as u64;
        let h = self.y_boundary(by1).saturating_sub(self.y_boundary(by0)) as u64;
        w * h
    }

    /// Upper and lower bounds on `CP(mask, roi, range)` computed purely from
    /// the index (see [`crate::bounds`] for the construction).
    pub fn cp_bounds(&self, roi: &Roi, range: &PixelRange) -> CpBounds {
        bounds::cp_bounds(self, roi, range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_mask(w: u32, h: u32) -> Mask {
        Mask::from_fn(w, h, |x, y| ((x + y) as f32) / ((w + h) as f32))
    }

    #[test]
    fn config_validation_and_geometry() {
        assert!(ChiConfig::new(0, 4, 16).is_none());
        assert!(ChiConfig::new(4, 0, 16).is_none());
        assert!(ChiConfig::new(4, 4, 0).is_none());
        let c = ChiConfig::new(28, 28, 16).unwrap();
        assert_eq!(c.cells_x(224), 8);
        assert_eq!(c.cells_y(224), 8);
        // Ragged: 30 pixels with 28-wide cells -> 2 columns.
        assert_eq!(c.cells_x(30), 2);
        assert_eq!(c.index_bytes(224, 224), 4 * 16 * 64);
        assert!((c.delta() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn bin_mapping_is_clamped() {
        let c = ChiConfig::new(4, 4, 16).unwrap();
        assert_eq!(c.bin_of(0.0), 0);
        assert_eq!(c.bin_of(0.0624), 0);
        assert_eq!(c.bin_of(0.0625), 1);
        assert_eq!(c.bin_of(0.999_999), 15);
    }

    #[test]
    fn paper_index_sizes_are_about_five_percent() {
        // ImageNet: 224x224 masks, 28x28 cells, 16 bins -> 4 KiB per mask
        // vs. 224*224*4 = 196 KiB raw (about 2%; ~5% of the compressed size).
        let c = ChiConfig::paper_imagenet();
        let index = c.index_bytes(224, 224) as f64;
        let raw = (224 * 224 * 4) as f64;
        assert!(index / raw < 0.03);
        // WILDS: 448x448 masks, 64x64 cells, 16 bins.
        let c = ChiConfig::paper_wilds();
        let index = c.index_bytes(448, 448) as f64;
        let raw = (448 * 448 * 4) as f64;
        assert!(index / raw < 0.01);
    }

    #[test]
    fn prefix_hist_matches_brute_force() {
        let mask = gradient_mask(20, 12);
        let config = ChiConfig::new(6, 5, 8).unwrap();
        let chi = Chi::build(&mask, &config);
        for by in 0..=chi.cells_y() {
            for bx in 0..=chi.cells_x() {
                let hist = chi.prefix_hist(bx, by);
                let x1 = chi.x_boundary(bx);
                let y1 = chi.y_boundary(by);
                for (b, &count) in hist.iter().enumerate() {
                    let lo = (b as f32) * (config.delta() as f32);
                    let expected = if x1 == 0 || y1 == 0 {
                        0
                    } else {
                        let roi = Roi::new(0, 0, x1, y1).unwrap();
                        // Count pixels with value >= lo (i.e. in [lo, 1)).
                        mask.count_pixels(&roi, &PixelRange::new(lo.min(0.999_999), 1.0).unwrap())
                    };
                    assert_eq!(count, expected, "bx={bx} by={by} bin={b}");
                }
            }
        }
    }

    #[test]
    fn region_hist_is_additive() {
        // Eq. 2: region counts computed via inclusion-exclusion must match a
        // direct scan of the region, for every bin, on an awkwardly-sized
        // mask (ragged cells).
        let mask = gradient_mask(23, 17);
        let config = ChiConfig::new(7, 5, 4).unwrap();
        let chi = Chi::build(&mask, &config);
        for by0 in 0..chi.cells_y() {
            for bx0 in 0..chi.cells_x() {
                for by1 in (by0 + 1)..=chi.cells_y() {
                    for bx1 in (bx0 + 1)..=chi.cells_x() {
                        let hist = chi.region_hist(bx0, by0, bx1, by1);
                        let roi = Roi::new(
                            chi.x_boundary(bx0),
                            chi.y_boundary(by0),
                            chi.x_boundary(bx1),
                            chi.y_boundary(by1),
                        )
                        .unwrap();
                        for (b, &count) in hist.iter().enumerate() {
                            let lo = (b as f64 * config.delta()) as f32;
                            let expected = mask.count_pixels(
                                &roi,
                                &PixelRange::new(lo.min(0.999_999), 1.0).unwrap(),
                            );
                            assert_eq!(
                                count, expected,
                                "region ({bx0},{by0})-({bx1},{by1}) bin {b}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn covering_and_covered_regions() {
        let mask = gradient_mask(16, 16);
        let config = ChiConfig::new(4, 4, 4).unwrap();
        let chi = Chi::build(&mask, &config);

        // ROI aligned exactly on cell boundaries: covering == covered.
        let aligned = Roi::new(4, 8, 12, 16).unwrap();
        assert_eq!(chi.covering_region(&aligned), Some((1, 2, 3, 4)));
        assert_eq!(chi.covered_region(&aligned), Some((1, 2, 3, 4)));

        // Unaligned ROI.
        let roi = Roi::new(3, 5, 10, 14).unwrap();
        assert_eq!(chi.covering_region(&roi), Some((0, 1, 3, 4)));
        assert_eq!(chi.covered_region(&roi), Some((1, 2, 2, 3)));

        // ROI smaller than a cell: covered region is empty.
        let tiny = Roi::new(5, 5, 7, 7).unwrap();
        assert_eq!(chi.covered_region(&tiny), None);
        assert_eq!(chi.covering_region(&tiny), Some((1, 1, 2, 2)));

        // ROI outside the mask.
        let outside = Roi::new(100, 100, 120, 120).unwrap();
        assert_eq!(chi.covering_region(&outside), None);
        assert_eq!(chi.covered_region(&outside), None);

        // Region area accounts for ragged boundaries.
        let ragged_mask = gradient_mask(10, 10);
        let ragged = Chi::build(&ragged_mask, &ChiConfig::new(4, 4, 4).unwrap());
        // 3 columns with boundaries at 0, 4, 8, 10.
        assert_eq!(ragged.region_area((0, 0, 3, 3)), 100);
        assert_eq!(ragged.region_area((2, 2, 3, 3)), 4);
    }

    #[test]
    fn figure_4_example() {
        // Reproduces the paper's Figure 4: a 6x6 mask, cell size 2x2, 2 bins.
        // We construct a mask where exactly the pixels of the top-left 2x2
        // block are all below 0.5 and 3 pixels overall are >= 0.5 within the
        // 4x4 prefix, matching H(M,1,1) = [4, 0] and H(M,2,2) = [16, 3].
        let mut mask = Mask::zeros(6, 6);
        // Fill with 0.1 everywhere.
        for y in 0..6 {
            for x in 0..6 {
                mask.set(x, y, 0.1);
            }
        }
        // Place 3 high pixels inside [0,4)x[0,4) but outside [0,2)x[0,2).
        mask.set(2, 1, 0.9);
        mask.set(3, 3, 0.7);
        mask.set(0, 2, 0.6);
        let chi = Chi::build(&mask, &ChiConfig::new(2, 2, 2).unwrap());
        assert_eq!(chi.prefix_hist(1, 1), vec![4, 0]);
        assert_eq!(chi.prefix_hist(2, 2), vec![16, 3]);
    }

    #[test]
    fn from_parts_validates_shape() {
        let mask = gradient_mask(8, 8);
        let config = ChiConfig::new(4, 4, 4).unwrap();
        let chi = Chi::build(&mask, &config);
        let rebuilt = Chi::from_parts(config, 8, 8, chi.data().to_vec()).expect("valid parts");
        assert_eq!(rebuilt, chi);
        assert!(Chi::from_parts(config, 8, 8, vec![0; 3]).is_none());
    }

    #[test]
    fn byte_size_matches_config_formula() {
        let mask = gradient_mask(224, 224);
        let config = ChiConfig::paper_imagenet();
        let chi = Chi::build(&mask, &config);
        assert_eq!(chi.byte_size(), config.index_bytes(224, 224));
    }
}
