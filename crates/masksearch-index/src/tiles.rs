//! A persistent collection of tile-summary grids — the within-mask
//! counterpart of [`crate::ChiStore`].
//!
//! The CHI store holds one cumulative histogram index *per mask* for the
//! filter stage; the [`TileStore`] holds one [`TileGrid`] per mask for the
//! verification stage's tiled kernel (`masksearch-core`). The durable mask
//! database maintains a `TileStore` on every commit and persists it at
//! checkpoints, so reopened databases serve pre-built summaries instead of
//! rebuilding them from pixels on first verification.

use masksearch_core::{Mask, MaskId, TileGrid, TileSummary, DEFAULT_TILE_SIZE, TILE_BINS};
use masksearch_storage::codec::{Reader, Writer};
use masksearch_storage::{StorageError, StorageResult};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// Magic bytes identifying a tile-summary file.
pub const TILE_MAGIC: [u8; 4] = *b"MSKT";
/// Tile-summary file format version.
///
/// History: v1 — min/max + cumulative histogram per tile; v2 — adds the
/// per-tile uncountable-pixel count (NaN / out-of-domain), needed so a
/// reopened database never serves a summary that would let the kernel
/// classify a NaN-bearing tile all-in. v1 files (written only from
/// validated masks, whose uncountable counts are all zero) load as v2 with
/// zero counts.
pub const TILE_FORMAT_VERSION: u16 = 2;

/// A thread-safe collection of per-mask tile grids sharing one tile size.
#[derive(Debug)]
pub struct TileStore {
    tile: u32,
    entries: RwLock<BTreeMap<MaskId, Arc<TileGrid>>>,
}

impl Default for TileStore {
    fn default() -> Self {
        Self::new(DEFAULT_TILE_SIZE)
    }
}

impl TileStore {
    /// Creates an empty store for grids with `tile × tile` pixel tiles.
    pub fn new(tile: u32) -> Self {
        assert!(tile > 0, "tile size must be non-zero");
        Self {
            tile,
            entries: RwLock::new(BTreeMap::new()),
        }
    }

    /// Tile edge length shared by every grid in the store.
    pub fn tile(&self) -> u32 {
        self.tile
    }

    /// Number of summarised masks.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Returns `true` if no masks are summarised.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Returns `true` if `mask_id` has a grid.
    pub fn contains(&self, mask_id: MaskId) -> bool {
        self.entries.read().contains_key(&mask_id)
    }

    /// Retrieves the grid of `mask_id`, if present.
    pub fn get(&self, mask_id: MaskId) -> Option<Arc<TileGrid>> {
        self.entries.read().get(&mask_id).cloned()
    }

    /// Inserts a pre-built grid for `mask_id`, replacing any existing one.
    pub fn insert(&self, mask_id: MaskId, grid: Arc<TileGrid>) {
        self.entries.write().insert(mask_id, grid);
    }

    /// Builds and inserts the grid of `mask`, returning it.
    pub fn index_mask(&self, mask_id: MaskId, mask: &Mask) -> Arc<TileGrid> {
        let grid = Arc::new(TileGrid::build_with(mask, self.tile));
        self.entries.write().insert(mask_id, Arc::clone(&grid));
        grid
    }

    /// Removes the grid of `mask_id`, returning it if it existed.
    pub fn remove(&self, mask_id: MaskId) -> Option<Arc<TileGrid>> {
        self.entries.write().remove(&mask_id)
    }

    /// Ids of all summarised masks, ascending.
    pub fn ids(&self) -> Vec<MaskId> {
        self.entries.read().keys().copied().collect()
    }

    /// Total in-memory size of the grid payloads in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.entries.read().values().map(|g| g.byte_size()).sum()
    }

    /// Serialises the store (tile size + every grid) to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let entries = self.entries.read();
        let mut w = Writer::new();
        w.write_bytes(&TILE_MAGIC);
        w.write_u16(TILE_FORMAT_VERSION);
        w.write_u16(0);
        w.write_u32(self.tile);
        w.write_u64(entries.len() as u64);
        for (id, grid) in entries.iter() {
            w.write_u64(id.raw());
            w.write_u32(grid.mask_width());
            w.write_u32(grid.mask_height());
            for summary in grid.summaries() {
                w.write_f32(summary.min());
                w.write_f32(summary.max());
                w.write_u32(summary.uncountable());
                for &c in summary.cum() {
                    w.write_u32(c);
                }
            }
        }
        w.into_bytes()
    }

    /// Deserialises a store written by [`TileStore::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> StorageResult<Self> {
        let mut r = Reader::new(bytes, "tile summary file");
        let magic = r.read_magic()?;
        if magic != TILE_MAGIC {
            return Err(StorageError::BadMagic {
                path: "<tile summaries>".to_string(),
                found: magic,
            });
        }
        let version = r.read_u16()?;
        if version > TILE_FORMAT_VERSION {
            return Err(StorageError::UnsupportedVersion {
                found: version,
                supported: TILE_FORMAT_VERSION,
            });
        }
        let _reserved = r.read_u16()?;
        let tile = r.read_u32()?;
        if tile == 0 {
            return Err(StorageError::corrupt("tile summary file has tile size 0"));
        }
        let count = r.read_u64()?;
        let store = TileStore::new(tile);
        {
            let mut entries = store.entries.write();
            for _ in 0..count {
                let id = MaskId::new(r.read_u64()?);
                let width = r.read_u32()?;
                let height = r.read_u32()?;
                if width == 0 || height == 0 {
                    return Err(StorageError::corrupt(format!(
                        "tile grid for mask {id} declares an empty mask"
                    )));
                }
                let tiles =
                    (width.div_ceil(tile) as usize).saturating_mul(height.div_ceil(tile) as usize);
                // Validate the payload really holds `tiles` summaries before
                // allocating: a corrupt width/height must surface as a typed
                // error (so callers can discard and rebuild the file), never
                // as a capacity-overflow panic or an OOM abort.
                let summary_bytes: usize = if version >= 2 {
                    8 + 4 + 4 * (TILE_BINS + 1)
                } else {
                    8 + 4 * (TILE_BINS + 1)
                };
                if tiles
                    .checked_mul(summary_bytes)
                    .is_none_or(|needed| needed > r.remaining())
                {
                    return Err(StorageError::corrupt(format!(
                        "tile grid for mask {id} declares more tiles than the file holds"
                    )));
                }
                let mut summaries = Vec::with_capacity(tiles);
                for _ in 0..tiles {
                    let min = r.read_f32()?;
                    let max = r.read_f32()?;
                    // v1 files predate the uncountable-pixel counter; they
                    // were only ever written from validated masks, so zero
                    // is the true count.
                    let uncountable = if version >= 2 { r.read_u32()? } else { 0 };
                    let mut cum = [0u32; TILE_BINS + 1];
                    for slot in cum.iter_mut() {
                        *slot = r.read_u32()?;
                    }
                    summaries.push(TileSummary::from_parts(min, max, uncountable, cum));
                }
                let grid =
                    TileGrid::from_parts(width, height, tile, summaries).ok_or_else(|| {
                        StorageError::corrupt(format!(
                            "tile grid for mask {id} does not match its declared shape"
                        ))
                    })?;
                entries.insert(id, Arc::new(grid));
            }
        }
        Ok(store)
    }

    /// Persists the store to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> StorageResult<()> {
        std::fs::write(path.as_ref(), self.to_bytes())
            .map_err(|e| StorageError::io("writing tile summary file", e))
    }

    /// Loads a store from a file.
    pub fn load(path: impl AsRef<Path>) -> StorageResult<Self> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| StorageError::io("reading tile summary file", e))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::{cp, PixelRange, Roi, TileStats};

    fn mask(seed: u32) -> Mask {
        Mask::from_fn(40, 28, |x, y| ((x * 5 + y * 11 + seed) % 23) as f32 / 23.0)
    }

    #[test]
    fn insert_get_remove() {
        let store = TileStore::new(16);
        assert!(store.is_empty());
        store.index_mask(MaskId::new(1), &mask(1));
        store.index_mask(MaskId::new(2), &mask(2));
        assert_eq!(store.len(), 2);
        assert!(store.contains(MaskId::new(1)));
        assert_eq!(store.ids(), vec![MaskId::new(1), MaskId::new(2)]);
        assert!(store.total_bytes() > 0);
        assert!(store.remove(MaskId::new(1)).is_some());
        assert!(store.remove(MaskId::new(1)).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn binary_round_trip_preserves_exact_counts() {
        let store = TileStore::new(16);
        for i in 0..4u64 {
            store.index_mask(MaskId::new(i), &mask(i as u32));
        }
        let decoded = TileStore::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(decoded.len(), 4);
        assert_eq!(decoded.tile(), 16);
        for i in 0..4u64 {
            let m = mask(i as u32);
            let grid = decoded.get(MaskId::new(i)).unwrap();
            assert_eq!(*grid, *store.get(MaskId::new(i)).unwrap());
            assert!(grid.verify(&m));
            let roi = Roi::new(3, 3, 30, 20).unwrap();
            let range = PixelRange::new(0.25, 0.75).unwrap();
            assert_eq!(
                grid.cp(&m, &roi, &range, &mut TileStats::default()),
                cp(&m, &roi, &range)
            );
        }
    }

    #[test]
    fn file_round_trip_and_corruption() {
        let store = TileStore::default();
        store.index_mask(MaskId::new(7), &mask(7));
        let path = std::env::temp_dir().join(format!(
            "masksearch-tilestore-test-{}.tiles",
            std::process::id()
        ));
        store.save(&path).unwrap();
        let loaded = TileStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.tile(), DEFAULT_TILE_SIZE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'Z';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            TileStore::load(&path),
            Err(StorageError::BadMagic { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_shape_fields_error_instead_of_allocating() {
        // Rewrite the first entry's width to a huge value: decoding must
        // return a typed corruption error (the open path discards and
        // rebuilds on Err), not panic or over-allocate.
        let store = TileStore::new(8);
        store.index_mask(MaskId::new(1), &mask(1));
        let mut bytes = store.to_bytes();
        // Layout: magic(4) version(2) reserved(2) tile(4) count(8) id(8) width(4).
        let width_offset = 4 + 2 + 2 + 4 + 8 + 8;
        bytes[width_offset..width_offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            TileStore::from_bytes(&bytes),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let store = TileStore::new(8);
        store.index_mask(MaskId::new(1), &mask(1));
        let bytes = store.to_bytes();
        assert!(TileStore::from_bytes(&bytes[..bytes.len() - 5]).is_err());
    }
}
