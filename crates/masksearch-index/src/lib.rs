//! # masksearch-index
//!
//! The **Cumulative Histogram Index (CHI)** — the paper's core indexing
//! contribution (§3.1) — plus the machinery for building, persisting, and
//! querying it.
//!
//! A CHI summarises one mask by a small 3-D array of pixel counts,
//! cumulative along both the spatial dimensions (2-D prefix rectangles ending
//! on a grid of cell boundaries) and the pixel-value dimension (reverse
//! cumulative over `b` equi-width bins). From that summary MaskSearch can
//! compute, in constant time per mask and **without touching the mask's
//! pixels**, an upper and a lower bound on
//! `CP(mask, roi, (lv, uv))` for *arbitrary* ROIs and value ranges supplied
//! at query time. Those bounds drive the filter–verification executor in
//! `masksearch-query`.
//!
//! Modules:
//!
//! * [`chi`] — index configuration, construction, available regions, and the
//!   additive region-combination rule (paper Eq. 2).
//! * [`bounds`] — upper/lower bounds on `CP` (paper Eqs. 3–4 plus the
//!   symmetric lower-bound construction).
//! * [`compose`] — bound algebra for multi-mask queries: sound `CP` bounds
//!   over a pixelwise composition (`min`/`max`/`|a−b|`) of two masks,
//!   derived from the two per-mask CHIs without loading either mask.
//! * [`store`] — an in-memory collection of CHIs with binary persistence and
//!   incremental insertion (paper §3.6).
//! * [`builder`] — parallel bulk index construction.
//! * [`tiles`] — a persistent collection of per-mask tile-summary grids for
//!   the verification kernel (the within-mask counterpart of the CHI).
//!
//! ```
//! use masksearch_core::{cp, Mask, PixelRange, Roi};
//! use masksearch_index::{Chi, ChiConfig};
//!
//! let mask = Mask::from_fn(64, 64, |x, y| ((x + y) as f32) / 128.0);
//! let chi = Chi::build(&mask, &ChiConfig::new(8, 8, 16).unwrap());
//! let roi = Roi::new(10, 7, 55, 40).unwrap();
//! let range = PixelRange::new(0.3, 0.8).unwrap();
//! let bounds = chi.cp_bounds(&roi, &range);
//! let exact = cp(&mask, &roi, &range);
//! assert!(bounds.lower <= exact && exact <= bounds.upper);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod builder;
pub mod chi;
pub mod compose;
pub mod store;
pub mod tiles;

pub use bounds::CpBounds;
pub use builder::{build_chi_store, BuildOptions};
pub use chi::{Chi, ChiConfig};
pub use compose::composed_cp_bounds;
pub use store::{ChiReader, ChiStore};
pub use tiles::TileStore;
