//! Upper and lower bounds on `CP` derived from a CHI.
//!
//! Given a predicate on `CP(mask, roi, (lv, uv))`, the filter stage needs an
//! upper bound `θ̄` and a lower bound `θ̲` on the true value `θ` computed
//! *without* touching the mask. The paper gives two upper-bound constructions
//! (§3.2.1, Eqs. 3–4) and notes the lower bound is symmetric; both are
//! implemented here.
//!
//! Notation: let `roi⁺` be the smallest available region covering the ROI and
//! `roi⁻` the largest available region covered by it. Let the *outer* bin
//! range be `[⌊lv/Δ⌋, ⌈uv/Δ⌉)` (a superset of `(lv, uv)`) and the *inner* bin
//! range `[⌈lv/Δ⌉, ⌊uv/Δ⌋)` (a subset).
//!
//! * Upper bound 1 (Eq. 3): outer-bin count of `roi⁺`.
//! * Upper bound 2 (Eq. 4): outer-bin count of `roi⁻` plus the pixels of the
//!   ROI not covered by `roi⁻` (each can contribute at most 1).
//! * Lower bound 1: inner-bin count of `roi⁻`.
//! * Lower bound 2: inner-bin count of `roi⁺` minus the pixels of `roi⁺`
//!   outside the ROI.
//!
//! The final bounds are `θ̄ = min(θ̄₁, θ̄₂)` and `θ̲ = max(θ̲₁, θ̲₂)`, clamped to
//! `[0, |roi|]`.

use crate::chi::Chi;
use masksearch_core::{PixelRange, Roi};

/// An upper and lower bound on a `CP` value, plus the ROI area they refer to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpBounds {
    /// Lower bound `θ̲ ≤ θ`.
    pub lower: u64,
    /// Upper bound `θ ≤ θ̄`.
    pub upper: u64,
    /// Pixel area of the (mask-clipped) ROI the bounds refer to.
    pub roi_area: u64,
}

impl CpBounds {
    /// Bounds for an empty ROI (the exact value is zero).
    pub fn empty() -> Self {
        CpBounds {
            lower: 0,
            upper: 0,
            roi_area: 0,
        }
    }

    /// Returns `true` if the bounds pin down the exact value.
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }

    /// Width of the uncertainty interval.
    pub fn gap(&self) -> u64 {
        self.upper - self.lower
    }
}

/// Bin indices of the outer (superset) and inner (subset) bin ranges for a
/// pixel-value range under `bins` equi-width buckets.
///
/// Returns `(outer_lo, outer_hi, inner_lo, inner_hi)` where a range `[a, b)`
/// of bins is empty when `a >= b`.
pub fn bin_ranges(range: &PixelRange, bins: u32) -> (u32, u32, u32, u32) {
    let b = bins as f64;
    let lo = range.lo() as f64 * b;
    let hi = range.hi() as f64 * b;
    let outer_lo = lo.floor() as u32;
    let outer_hi = (hi.ceil() as u32).min(bins);
    let inner_lo = (lo.ceil() as u32).min(bins);
    let inner_hi = hi.floor() as u32;
    (outer_lo, outer_hi, inner_lo, inner_hi)
}

/// Count of pixels with bin index in `[lo, hi)` inside an available region,
/// from two reverse-cumulative lookups. No histogram is materialised: this
/// runs once per candidate mask in the filter stage, and the per-call
/// histogram allocations used to dominate a bounds-decided classification.
fn region_range_count(chi: &Chi, region: (u32, u32, u32, u32), lo: u32, hi: u32) -> u64 {
    if lo >= hi {
        return 0;
    }
    chi.region_count(region, lo)
        .saturating_sub(chi.region_count(region, hi))
}

/// Computes [`CpBounds`] for `CP(mask, roi, range)` from the mask's CHI.
pub fn cp_bounds(chi: &Chi, roi: &Roi, range: &PixelRange) -> CpBounds {
    let Some(clipped) = roi.clamp_to(chi.mask_width(), chi.mask_height()) else {
        return CpBounds::empty();
    };
    let roi_area = clipped.area();
    let bins = chi.config().bins();
    let (outer_lo, outer_hi, inner_lo, inner_hi) = bin_ranges(range, bins);

    let covering = chi
        .covering_region(&clipped)
        .expect("non-empty clipped ROI always has a covering region");
    let covering_area = chi.region_area(covering);

    let covered = chi.covered_region(&clipped);
    let covered_area = covered.map_or(0, |region| chi.region_area(region));

    // Upper bound 1 (Eq. 3): outer bins over the covering region.
    let ub1 = region_range_count(chi, covering, outer_lo, outer_hi);
    // Upper bound 2 (Eq. 4): outer bins over the covered region, plus every
    // ROI pixel the covered region misses.
    let ub2 = match covered {
        Some(region) => {
            region_range_count(chi, region, outer_lo, outer_hi) + (roi_area - covered_area)
        }
        None => roi_area,
    };
    let upper = ub1.min(ub2).min(roi_area);

    // Lower bound 1: inner bins over the covered region.
    let lb1 = match covered {
        Some(region) => region_range_count(chi, region, inner_lo, inner_hi),
        None => 0,
    };
    // Lower bound 2: inner bins over the covering region minus the covering
    // pixels that lie outside the ROI (each could account for one counted
    // pixel).
    let slack = covering_area - roi_area;
    let lb2 = region_range_count(chi, covering, inner_lo, inner_hi).saturating_sub(slack);
    let lower = lb1.max(lb2).min(upper);

    CpBounds {
        lower,
        upper,
        roi_area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chi::ChiConfig;
    use masksearch_core::{cp, Mask};

    fn blob_mask(w: u32, h: u32, cx: f32, cy: f32, sigma: f32) -> Mask {
        Mask::from_fn(w, h, |x, y| {
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            (0.95 * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp()).min(0.999)
        })
    }

    fn check_bounds(mask: &Mask, config: &ChiConfig, roi: &Roi, range: &PixelRange) -> CpBounds {
        let chi = Chi::build(mask, config);
        let bounds = cp_bounds(&chi, roi, range);
        let exact = cp(mask, roi, range);
        assert!(
            bounds.lower <= exact,
            "lower {} > exact {exact} for roi {roi} range {range}",
            bounds.lower
        );
        assert!(
            exact <= bounds.upper,
            "exact {exact} > upper {} for roi {roi} range {range}",
            bounds.upper
        );
        assert!(bounds.upper <= bounds.roi_area);
        bounds
    }

    #[test]
    fn bin_ranges_align_with_boundaries() {
        let r = PixelRange::new(0.5, 1.0).unwrap();
        assert_eq!(bin_ranges(&r, 16), (8, 16, 8, 16));
        let r = PixelRange::new(0.6, 1.0).unwrap();
        assert_eq!(bin_ranges(&r, 16), (9, 16, 10, 16));
        let r = PixelRange::new(0.1, 0.2).unwrap();
        // 16 bins: 0.1*16 = 1.6, 0.2*16 = 3.2
        assert_eq!(bin_ranges(&r, 16), (1, 4, 2, 3));
        // A range narrower than one bin has an empty inner range.
        let r = PixelRange::new(0.11, 0.12).unwrap();
        let (olo, ohi, ilo, ihi) = bin_ranges(&r, 16);
        assert!(olo < ohi);
        assert!(ilo >= ihi);
    }

    #[test]
    fn region_range_count_matches_materialised_histograms() {
        let mask = blob_mask(20, 12, 10.0, 6.0, 4.0);
        let config = ChiConfig::new(6, 5, 8).unwrap();
        let chi = Chi::build(&mask, &config);
        let region = chi
            .covering_region(&Roi::new(1, 1, 19, 11).unwrap())
            .unwrap();
        let (bx0, by0, bx1, by1) = region;
        let hist = chi.region_hist(bx0, by0, bx1, by1);
        let bins = config.bins();
        for lo in 0..=bins + 1 {
            for hi in 0..=bins + 1 {
                let expected = if lo >= hi {
                    0
                } else {
                    let at = |i: u32| *hist.get(i as usize).unwrap_or(&0);
                    at(lo).saturating_sub(at(hi))
                };
                assert_eq!(
                    region_range_count(&chi, region, lo, hi),
                    expected,
                    "lo={lo} hi={hi}"
                );
            }
        }
    }

    #[test]
    fn bounds_are_valid_on_gradient_and_blob_masks() {
        let configs = [
            ChiConfig::new(8, 8, 16).unwrap(),
            ChiConfig::new(5, 7, 4).unwrap(),
            ChiConfig::new(64, 64, 16).unwrap(), // cells larger than some ROIs
        ];
        let masks = [
            Mask::from_fn(48, 48, |x, y| ((x * y) % 97) as f32 / 97.0),
            blob_mask(48, 48, 24.0, 24.0, 8.0),
            Mask::constant(48, 48, 0.42).unwrap(),
        ];
        let rois = [
            Roi::new(0, 0, 48, 48).unwrap(),
            Roi::new(3, 5, 17, 29).unwrap(),
            Roi::new(20, 20, 28, 28).unwrap(),
            Roi::new(1, 1, 3, 3).unwrap(),
            Roi::new(40, 40, 100, 100).unwrap(),
        ];
        let ranges = [
            PixelRange::new(0.5, 1.0).unwrap(),
            PixelRange::new(0.8, 1.0).unwrap(),
            PixelRange::new(0.25, 0.75).unwrap(),
            PixelRange::new(0.4, 0.45).unwrap(),
            PixelRange::full(),
        ];
        for config in &configs {
            for mask in &masks {
                for roi in &rois {
                    for range in &ranges {
                        check_bounds(mask, config, roi, range);
                    }
                }
            }
        }
    }

    #[test]
    fn cell_aligned_roi_and_bin_aligned_range_give_exact_bounds() {
        let mask = blob_mask(32, 32, 16.0, 16.0, 6.0);
        let config = ChiConfig::new(8, 8, 16).unwrap();
        let chi = Chi::build(&mask, &config);
        let roi = Roi::new(8, 8, 24, 24).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap(); // 0.5 = bin boundary
        let bounds = cp_bounds(&chi, &roi, &range);
        assert!(bounds.is_exact());
        assert_eq!(bounds.lower, cp(&mask, &roi, &range));
        assert_eq!(bounds.gap(), 0);
    }

    #[test]
    fn disjoint_roi_yields_empty_bounds() {
        let mask = Mask::zeros(16, 16);
        let chi = Chi::build(&mask, &ChiConfig::default());
        let roi = Roi::new(100, 100, 120, 120).unwrap();
        let bounds = cp_bounds(&chi, &roi, &PixelRange::full());
        assert_eq!(bounds, CpBounds::empty());
    }

    #[test]
    fn figure_6_example_upper_bounds() {
        // Paper Figure 6 example: the same mask as Figure 4, ROI = ((3,3),(5,5))
        // in the paper's 1-based inclusive convention, (lv, uv) = (0.5, 1.0),
        // cell size 2x2, 2 bins.
        //
        // The paper computes θ̄₁ = 8 from the covering region ((3,3),(6,6)) and
        // θ̄₂ = 2 − 0 + 9 − 4 = 7 from the covered region ((3,3),(4,4)).
        // We build a mask consistent with those index values: within rows/cols
        // 2..6 (0-based), 8 pixels ≥ 0.5, of which 2 are inside rows/cols 2..4.
        let mut mask = Mask::zeros(6, 6);
        for y in 0..6 {
            for x in 0..6 {
                mask.set(x, y, 0.1);
            }
        }
        // Two high pixels inside [2,4)x[2,4).
        mask.set(2, 2, 0.9);
        mask.set(3, 3, 0.9);
        // Six more high pixels inside [2,6)x[2,6) but outside [2,4)x[2,4).
        mask.set(4, 2, 0.9);
        mask.set(5, 3, 0.9);
        mask.set(4, 4, 0.9);
        mask.set(5, 5, 0.9);
        mask.set(2, 4, 0.9);
        mask.set(3, 5, 0.9);

        let config = ChiConfig::new(2, 2, 2).unwrap();
        let chi = Chi::build(&mask, &config);
        // Paper ROI ((3,3),(5,5)) 1-based inclusive = [2,5)x[2,5) 0-based.
        let roi = Roi::from_inclusive_corners((3, 3), (5, 5)).unwrap();
        let range = PixelRange::new(0.5, 1.0).unwrap();

        // Covering region boundaries: [2,6)x[2,6) = grid (1,1)..(3,3).
        assert_eq!(chi.covering_region(&roi), Some((1, 1, 3, 3)));
        // Covered region: [2,4)x[2,4) = grid (1,1)..(2,2).
        assert_eq!(chi.covered_region(&roi), Some((1, 1, 2, 2)));

        let covering_hist = chi.region_hist(1, 1, 3, 3);
        assert_eq!(covering_hist[1], 8); // θ̄₁ = 8
        let covered_hist = chi.region_hist(1, 1, 2, 2);
        assert_eq!(covered_hist[1], 2);
        // θ̄₂ = 2 + |roi| − |roi⁻| = 2 + 9 − 4 = 7.
        let bounds = cp_bounds(&chi, &roi, &range);
        assert_eq!(bounds.upper, 7);
        // And the bounds bracket the true value.
        let exact = cp(&mask, &roi, &range);
        assert!(bounds.lower <= exact && exact <= bounds.upper);
    }

    #[test]
    fn full_range_full_roi_is_exact() {
        let mask = blob_mask(40, 30, 12.0, 15.0, 5.0);
        let chi = Chi::build(&mask, &ChiConfig::new(8, 8, 8).unwrap());
        let bounds = cp_bounds(&chi, &mask.full_roi(), &PixelRange::full());
        assert!(bounds.is_exact());
        assert_eq!(bounds.upper, 40 * 30);
    }

    #[test]
    fn finer_grids_give_tighter_bounds() {
        // §4.4: larger (more granular) indexes yield tighter bounds.
        let mask = blob_mask(64, 64, 20.0, 40.0, 10.0);
        let roi = Roi::new(9, 13, 47, 55).unwrap();
        let range = PixelRange::new(0.6, 1.0).unwrap();
        let coarse = Chi::build(&mask, &ChiConfig::new(32, 32, 4).unwrap());
        let fine = Chi::build(&mask, &ChiConfig::new(4, 4, 32).unwrap());
        let cb = cp_bounds(&coarse, &roi, &range);
        let fb = cp_bounds(&fine, &roi, &range);
        assert!(fb.gap() <= cb.gap());
        let exact = cp(&mask, &roi, &range);
        assert!(fb.lower <= exact && exact <= fb.upper);
        assert!(cb.lower <= exact && exact <= cb.upper);
    }
}
