//! End-to-end coordinator tests over in-process shard servers: every query
//! shape merges byte-identically to a single-node oracle session, writes
//! route to owning shards, and the aggregated front end behaves like one
//! big server.

use masksearch_cluster::{ClusterConfig, ClusterReply, Coordinator, CoordinatorServer, ShardMap};
use masksearch_core::{ImageId, Mask, MaskId, MaskRecord};
use masksearch_index::ChiConfig;
use masksearch_query::{IndexingMode, Session, SessionConfig};
use masksearch_service::{Client, Engine, Server, ServerHandle, ServiceConfig};
use masksearch_storage::{Catalog, MaskStore, MemoryMaskStore};
use std::sync::Arc;

const W: u32 = 16;
const H: u32 = 16;

/// Deterministic pseudo-random mask; ids 100/101 and 102/103 are forced
/// duplicates (of each other) so ranked queries exercise cross-shard ties.
fn mask_for(id: u64) -> Mask {
    let key = match id {
        101 => 100,
        103 => 102,
        other => other,
    };
    let mut state = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    Mask::from_fn(W, H, move |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 40) as f32) / (1u64 << 24) as f32
    })
}

fn record_for(id: u64) -> MaskRecord {
    MaskRecord::builder(MaskId::new(id))
        .image_id(ImageId::new(id / 2))
        .shape(W, H)
        .build()
}

fn session_config() -> SessionConfig {
    SessionConfig::new(ChiConfig::new(4, 4, 8).unwrap())
        .threads(2)
        .indexing_mode(IndexingMode::Eager)
}

fn session_over(ids: &[u64]) -> Session {
    let store = Arc::new(MemoryMaskStore::for_tests());
    let mut catalog = Catalog::new();
    for &id in ids {
        store.put(MaskId::new(id), &mask_for(id)).unwrap();
        catalog.insert(record_for(id));
    }
    Session::new(store as Arc<dyn MaskStore>, catalog, session_config()).unwrap()
}

struct TestCluster {
    servers: Vec<ServerHandle>,
    coordinator: Coordinator,
    oracle: Session,
}

fn cluster(num_shards: usize, ids: &[u64]) -> TestCluster {
    let map = ShardMap::new(num_shards).unwrap();
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); num_shards];
    for &id in ids {
        per_shard[map.shard_for_record(&record_for(id))].push(id);
    }
    let servers: Vec<ServerHandle> = per_shard
        .iter()
        .map(|shard_ids| {
            let engine = Engine::new(session_over(shard_ids), ServiceConfig::new(2));
            Server::bind("127.0.0.1:0", engine).unwrap().spawn()
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let coordinator = Coordinator::connect(ClusterConfig::new(addrs)).unwrap();
    TestCluster {
        servers,
        coordinator,
        oracle: session_over(ids),
    }
}

fn rows(reply: ClusterReply) -> masksearch_query::QueryOutput {
    match reply {
        ClusterReply::Rows(output) => *output,
        other => panic!("expected rows, got {other:?}"),
    }
}

/// Every supported read shape, with thresholds that split the data.
fn query_suite() -> Vec<String> {
    let filter_roi = format!("(0, 0, {W}, {H})");
    vec![
        format!(
            "SELECT mask_id FROM masks WHERE CP(mask, {filter_roi}, (0.5, 1.0)) > {}",
            W * H / 2
        ),
        format!("SELECT mask_id FROM masks WHERE CP(mask, (2, 2, 10, 12), (0.0, 0.3)) < 20"),
        format!(
            "SELECT mask_id, CP(mask, {filter_roi}, (0.6, 1.0)) AS s \
             FROM masks ORDER BY s DESC LIMIT 5"
        ),
        format!(
            "SELECT mask_id, CP(mask, (0, 0, 8, 16), (0.5, 1.0)) / CP(mask, full, (0.5, 1.0)) AS r \
             FROM masks ORDER BY r ASC LIMIT 6"
        ),
        format!(
            "SELECT image_id, AVG(CP(mask, full, (0.5, 1.0))) AS s \
             FROM masks GROUP BY image_id"
        ),
        format!(
            "SELECT image_id, SUM(CP(mask, full, (0.7, 1.0))) AS s \
             FROM masks GROUP BY image_id HAVING s > 60"
        ),
        format!(
            "SELECT image_id, MAX(CP(mask, full, (0.5, 1.0))) AS s \
             FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 4"
        ),
        format!(
            "SELECT image_id, CP(INTERSECT(mask > 0.5), full, (0.5, 1.0)) AS s \
             FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 3"
        ),
    ]
}

fn assert_matches_oracle(cluster: &TestCluster, sql: &str) {
    let expected = cluster
        .oracle
        .execute(&masksearch_sql::compile(sql).unwrap())
        .unwrap();
    let got = rows(cluster.coordinator.execute_sql(sql).unwrap());
    assert_eq!(got.rows, expected.rows, "divergence for {sql}");
}

#[test]
fn every_query_shape_is_byte_identical_to_the_oracle() {
    // 60 masks over 30 images, plus two duplicate pairs for ties.
    let ids: Vec<u64> = (0..56).chain(100..104).collect();
    let cluster = cluster(4, &ids);
    assert!(
        cluster.servers.len() == 4,
        "expected in-process shard servers"
    );
    for sql in query_suite() {
        assert_matches_oracle(&cluster, &sql);
    }
    let metrics = cluster.coordinator.metrics();
    assert_eq!(metrics.queries, query_suite().len() as u64);
    assert!(metrics.ranked_queries >= 4);
    assert!(metrics.topk_rounds >= metrics.ranked_queries);
}

#[test]
fn single_shard_cluster_degenerates_cleanly() {
    let ids: Vec<u64> = (0..20).collect();
    let cluster = cluster(1, &ids);
    for sql in query_suite() {
        assert_matches_oracle(&cluster, &sql);
    }
}

#[test]
fn writes_route_to_owning_shards_and_match_the_oracle() {
    let ids: Vec<u64> = (0..24).collect();
    let cluster = cluster(3, &ids);
    let select = format!(
        "SELECT mask_id FROM masks WHERE CP(mask, (0, 0, {W}, {H}), (0.5, 1.0)) > {}",
        W * H / 4
    );

    // INSERT eight new masks (four new images) through the coordinator and
    // the same statement through the oracle.
    let tuples: Vec<String> = (40..48u64)
        .map(|id| {
            let mask = mask_for(id);
            let pixels: Vec<String> = mask.data().iter().map(|v| format!("{v}")).collect();
            format!("({id}, {}, {W}, {H}, ({}))", id / 2, pixels.join(", "))
        })
        .collect();
    let insert = format!("INSERT INTO masks VALUES {}", tuples.join(", "));
    match cluster.coordinator.execute_sql(&insert).unwrap() {
        ClusterReply::Mutation(outcome) => assert_eq!(outcome.inserted, 8),
        other => panic!("expected a mutation reply, got {other:?}"),
    }
    match masksearch_sql::compile_statement(&insert).unwrap() {
        masksearch_sql::Statement::Mutation(m) => {
            cluster.oracle.apply(&m).unwrap();
        }
        _ => unreachable!(),
    }
    assert_matches_oracle(&cluster, &select);

    // The new ids resolve on exactly the shard the map owns them to.
    let map = cluster.coordinator.shard_map();
    for id in 40..48u64 {
        let owner = map.shard_for_image(ImageId::new(id / 2));
        for (shard, server) in cluster.servers.iter().enumerate() {
            let mut client = Client::connect(server.local_addr()).unwrap();
            let present = client.lookup(&[MaskId::new(id)]).unwrap();
            if shard == owner {
                assert_eq!(present, vec![MaskId::new(id)], "shard {shard} id {id}");
            } else {
                assert!(present.is_empty(), "stray replica of {id} on shard {shard}");
            }
            client.quit().unwrap();
        }
    }

    // DELETE ids spread across shards; oracle applies the same statement.
    let delete = "DELETE FROM masks WHERE mask_id IN (1, 5, 9, 40, 47)";
    match cluster.coordinator.execute_sql(delete).unwrap() {
        ClusterReply::Mutation(outcome) => assert_eq!(outcome.deleted, 5),
        other => panic!("expected a mutation reply, got {other:?}"),
    }
    match masksearch_sql::compile_statement(delete).unwrap() {
        masksearch_sql::Statement::Mutation(m) => {
            cluster.oracle.apply(&m).unwrap();
        }
        _ => unreachable!(),
    }
    assert_matches_oracle(&cluster, &select);

    // An unknown id fails the whole DELETE before any side effect.
    let before = rows(cluster.coordinator.execute_sql(&select).unwrap());
    let bad = cluster
        .coordinator
        .execute_sql("DELETE FROM masks WHERE mask_id IN (2, 9999)");
    assert!(
        matches!(bad, Err(masksearch_cluster::ClusterError::UnknownMask(id)) if id.raw() == 9999),
        "expected UnknownMask"
    );
    let after = rows(cluster.coordinator.execute_sql(&select).unwrap());
    assert_eq!(before.rows, after.rows, "failed DELETE had side effects");
}

#[test]
fn overwrites_that_move_images_evict_the_stale_replica() {
    let ids: Vec<u64> = (0..12).collect();
    let cluster = cluster(3, &ids);
    let map = cluster.coordinator.shard_map();

    // Move mask 0 to a new image owned by a different shard.
    let old_owner = map.shard_for_image(ImageId::new(0));
    let new_image = (1..1000u64)
        .find(|&img| map.shard_for_image(ImageId::new(img)) != old_owner)
        .unwrap();
    let mask = mask_for(77);
    let pixels: Vec<String> = mask.data().iter().map(|v| format!("{v}")).collect();
    let insert = format!(
        "INSERT INTO masks VALUES (0, {new_image}, {W}, {H}, ({}))",
        pixels.join(", ")
    );
    match cluster.coordinator.execute_sql(&insert).unwrap() {
        ClusterReply::Mutation(outcome) => assert_eq!(outcome.inserted, 1),
        other => panic!("expected a mutation reply, got {other:?}"),
    }
    // Exactly one shard holds mask 0 now — the new image's owner.
    let located = cluster.coordinator.lookup(&[MaskId::new(0)]).unwrap();
    assert_eq!(located, vec![MaskId::new(0)]);
    for (shard, server) in cluster.servers.iter().enumerate() {
        let mut client = Client::connect(server.local_addr()).unwrap();
        let present = client.lookup(&[MaskId::new(0)]).unwrap();
        let expected_here = shard == map.shard_for_image(ImageId::new(new_image));
        assert_eq!(!present.is_empty(), expected_here, "shard {shard}");
        client.quit().unwrap();
    }
    assert_eq!(cluster.coordinator.metrics().masks_relocated, 1);
}

#[test]
fn coordinator_tcp_front_end_speaks_the_protocol() {
    let ids: Vec<u64> = (0..16).collect();
    let cluster = cluster(2, &ids);
    let front = CoordinatorServer::bind("127.0.0.1:0", cluster.coordinator.clone())
        .unwrap()
        .spawn();

    // Client::connect performs the v2 handshake against the coordinator.
    let mut client = Client::connect(front.local_addr()).unwrap();
    let select = format!(
        "SELECT mask_id FROM masks WHERE CP(mask, (0, 0, {W}, {H}), (0.5, 1.0)) > {}",
        W * H / 2
    );
    let expected = cluster
        .oracle
        .execute(&masksearch_sql::compile(&select).unwrap())
        .unwrap();
    let got = client.query(&select).unwrap();
    assert_eq!(got.rows, expected.rows);

    // Ranked query over TCP.
    let topk = "SELECT mask_id, CP(mask, full, (0.5, 1.0)) AS s FROM masks ORDER BY s DESC LIMIT 3"
        .to_string();
    let expected = cluster
        .oracle
        .execute(&masksearch_sql::compile(&topk).unwrap())
        .unwrap();
    let got = client.query(&topk).unwrap();
    assert_eq!(got.rows, expected.rows);

    // Aggregated STATS: per-shard counters summed + cluster counters.
    let stats = client.stats().unwrap();
    assert!(stats.starts_with("STATS shards=2"), "{stats}");
    assert!(stats.contains("cluster_queries="), "{stats}");
    assert!(stats.contains("topk_rounds="), "{stats}");
    assert!(stats.contains("active_connections="), "{stats}");
    assert!(stats.contains("queue_depth="), "{stats}");

    // SQL errors surface as ERR frames, not dead connections.
    assert!(client.query("SELECT nonsense").is_err());
    assert!(client.ping().is_ok());
    client.quit().unwrap();
    front.shutdown();
}
