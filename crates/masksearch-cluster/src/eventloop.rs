//! A readiness-driven (`poll(2)`) line-protocol server loop for the
//! coordinator front end.
//!
//! The shard server keeps its thread-per-connection design — each shard
//! connection mostly blocks inside the engine anyway — but a coordinator
//! connection spends its life *waiting on other sockets* (the shard links),
//! so a thread per client connection buys nothing and costs a stack plus a
//! context switch per request. This loop multiplexes every client
//! connection onto one thread with non-blocking I/O:
//!
//! * **one event-loop thread** owns the listener and every client socket,
//!   polling for readability/writability and doing all reads, line
//!   splitting, and writes;
//! * **a small worker pool** executes the actual requests (which block on
//!   shard round trips) and hands rendered response frames back through a
//!   channel, waking the loop through a self-pipe;
//! * **untagged (v5 FIFO) requests** stay strictly ordered per connection:
//!   at most one executes at a time, the rest queue;
//! * **`@<id>`-tagged (v6) requests** dispatch freely and complete in any
//!   order, which is what makes pipelined scatter clients fast.
//!
//! The `poll(2)` binding is a three-line FFI declaration rather than a
//! dependency: the symbol is in libc, which `std` already links.

use masksearch_service::protocol::{self, ClientRequest};
use masksearch_service::ServiceError;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::raw::{c_int, c_ulong};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};

/// Executes one parsed request, emitting zero or more rendered response
/// buffers (a streaming request like `MONITOR` emits one per frame). The
/// `@<id>` tag prefix of the first line is the handler's responsibility.
pub(crate) type Handler =
    Arc<dyn Fn(Option<u64>, ClientRequest, &mut dyn FnMut(Vec<u8>)) + Send + Sync>;

#[repr(C)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks in `poll(2)` until any registered fd is ready, retrying on
/// `EINTR`. Returns `false` on an unrecoverable poll error.
fn poll_wait(fds: &mut [PollFd]) -> bool {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, -1) };
        if rc >= 0 {
            return true;
        }
        if std::io::Error::last_os_error().kind() != ErrorKind::Interrupted {
            return false;
        }
    }
}

/// Wakes the event loop from another thread by writing to the self-pipe.
#[derive(Clone)]
pub(crate) struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    pub(crate) fn wake(&self) {
        // A full pipe already guarantees a pending wakeup; errors (including
        // a torn-down loop) are safely ignorable.
        let _ = (&*self.tx).write(&[1]);
    }
}

/// One request handed to the worker pool.
struct Job {
    conn: u64,
    tag: Option<u64>,
    request: ClientRequest,
    serial: bool,
}

/// One worker-to-loop message: a rendered buffer and/or the end of a job.
struct Completion {
    conn: u64,
    bytes: Vec<u8>,
    done: bool,
    serial: bool,
}

/// Per-connection state owned by the event-loop thread.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet split into complete lines.
    rbuf: Vec<u8>,
    /// Rendered response buffers not yet (fully) written.
    outbox: VecDeque<Vec<u8>>,
    /// Progress into `outbox.front()`.
    out_pos: usize,
    /// An untagged request is executing; later untagged requests queue.
    serial_busy: bool,
    /// Untagged requests waiting for FIFO dispatch.
    serial_queue: VecDeque<(Option<u64>, ClientRequest)>,
    /// Jobs dispatched to workers and not yet completed.
    inflight: usize,
    /// `QUIT` seen: stop reading, drain in-flight work, then close.
    closing: bool,
    /// EOF (or read error) seen from the peer.
    read_closed: bool,
    /// The socket died mid-write (or the peer vanished): drop immediately.
    broken: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        stream.set_nonblocking(true).ok();
        stream.set_nodelay(true).ok();
        Self {
            stream,
            rbuf: Vec::new(),
            outbox: VecDeque::new(),
            out_pos: 0,
            serial_busy: false,
            serial_queue: VecDeque::new(),
            inflight: 0,
            closing: false,
            read_closed: false,
            broken: false,
        }
    }

    fn has_output(&self) -> bool {
        !self.outbox.is_empty()
    }

    /// All work drained after the peer went away or said `QUIT`.
    fn finished(&self) -> bool {
        (self.closing || self.read_closed)
            && self.inflight == 0
            && self.serial_queue.is_empty()
            && !self.has_output()
    }

    /// Writes as much buffered output as the socket accepts right now.
    fn try_write(&mut self) {
        while let Some(front) = self.outbox.front() {
            match (&self.stream).write(&front[self.out_pos..]) {
                Ok(n) => {
                    self.out_pos += n;
                    if self.out_pos >= front.len() {
                        self.outbox.pop_front();
                        self.out_pos = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.broken = true;
                    return;
                }
            }
        }
    }
}

/// The coordinator front end's readiness-driven server core. Built by
/// [`CoordinatorServer::bind`](crate::CoordinatorServer::bind); `run`
/// blocks the calling thread until the shutdown flag is raised and the
/// waker poked.
pub(crate) struct EventLoop {
    listener: TcpListener,
    waker_rx: UnixStream,
    waker: Waker,
    shutdown: Arc<AtomicBool>,
    jobs_tx: mpsc::Sender<Job>,
    completion_rx: mpsc::Receiver<Completion>,
}

impl EventLoop {
    /// Builds the loop over a bound listener and starts `workers` handler
    /// threads (idle until requests arrive).
    pub(crate) fn new(
        listener: TcpListener,
        handler: Handler,
        workers: usize,
    ) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        let (waker_rx, waker_tx) = UnixStream::pair()?;
        waker_rx.set_nonblocking(true)?;
        waker_tx.set_nonblocking(true)?;
        let waker = Waker {
            tx: Arc::new(waker_tx),
        };
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let (completion_tx, completion_rx) = mpsc::channel::<Completion>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        for i in 0..workers.max(1) {
            let jobs_rx = Arc::clone(&jobs_rx);
            let completion_tx = completion_tx.clone();
            let waker = waker.clone();
            let handler = Arc::clone(&handler);
            std::thread::Builder::new()
                .name(format!("masksearch-coord-worker-{i}"))
                .spawn(move || loop {
                    // Take the next job; the workers exit when the loop
                    // (the only sender) is gone.
                    let job = {
                        let rx = jobs_rx.lock().unwrap_or_else(PoisonError::into_inner);
                        rx.recv()
                    };
                    let Ok(Job {
                        conn,
                        tag,
                        request,
                        serial,
                    }) = job
                    else {
                        return;
                    };
                    {
                        let completion_tx = &completion_tx;
                        let waker = &waker;
                        let mut emit = |bytes: Vec<u8>| {
                            let _ = completion_tx.send(Completion {
                                conn,
                                bytes,
                                done: false,
                                serial,
                            });
                            waker.wake();
                        };
                        handler(tag, request, &mut emit);
                    }
                    let _ = completion_tx.send(Completion {
                        conn,
                        bytes: Vec::new(),
                        done: true,
                        serial,
                    });
                    waker.wake();
                })
                .map_err(|e| std::io::Error::other(format!("spawn coordinator worker: {e}")))?;
        }
        Ok(Self {
            listener,
            waker_rx,
            waker,
            shutdown: Arc::new(AtomicBool::new(false)),
            jobs_tx,
            completion_rx,
        })
    }

    /// A handle other threads use to interrupt a blocked `poll`.
    pub(crate) fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// The flag `run` checks after every wakeup; raise it (then wake) to
    /// stop the loop.
    pub(crate) fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the loop until shut down. Open connections are dropped on
    /// shutdown (the coordinator is the only state that outlives them).
    pub(crate) fn run(self) {
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        // Connection ids increase monotonically and are never reused, so a
        // completion for a connection dropped mid-request hits a missing
        // map entry instead of a stranger.
        let mut next_conn: u64 = 1;
        let mut pollfds: Vec<PollFd> = Vec::new();
        let mut order: Vec<u64> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            pollfds.clear();
            order.clear();
            pollfds.push(PollFd {
                fd: self.waker_rx.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            pollfds.push(PollFd {
                fd: self.listener.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            for (&id, conn) in &conns {
                let mut events = 0i16;
                if !conn.closing && !conn.read_closed {
                    events |= POLLIN;
                }
                if conn.has_output() {
                    events |= POLLOUT;
                }
                pollfds.push(PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                order.push(id);
            }
            if !poll_wait(&mut pollfds) {
                return;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if pollfds[0].revents != 0 {
                let mut buf = [0u8; 64];
                while matches!((&self.waker_rx).read(&mut buf), Ok(n) if n > 0) {}
            }
            while let Ok(completion) = self.completion_rx.try_recv() {
                apply_completion(&mut conns, completion, &self.jobs_tx);
            }
            if pollfds[1].revents != 0 {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            conns.insert(next_conn, Conn::new(stream));
                            next_conn += 1;
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => break, // drained (WouldBlock) or transient
                    }
                }
            }
            for (i, &id) in order.iter().enumerate() {
                let revents = pollfds[i + 2].revents;
                if revents == 0 {
                    continue;
                }
                let Some(conn) = conns.get_mut(&id) else {
                    continue;
                };
                if revents & (POLLERR | POLLNVAL) != 0 {
                    conn.broken = true;
                    continue;
                }
                if revents & POLLOUT != 0 {
                    conn.try_write();
                }
                if revents & (POLLIN | POLLHUP) != 0 {
                    if conn.read_closed {
                        // POLLHUP with the read side already drained: the
                        // peer is fully gone, output is undeliverable.
                        if revents & POLLHUP != 0 {
                            conn.broken = true;
                        }
                    } else {
                        read_conn(id, conn, &self.jobs_tx);
                        conn.try_write();
                    }
                }
            }
            conns.retain(|_, c| !c.broken && !c.finished());
        }
    }
}

/// Reads everything currently available, splits complete lines, and routes
/// each parsed request (dispatch, FIFO queue, or loop-local answer).
fn read_conn(id: u64, conn: &mut Conn, jobs_tx: &mpsc::Sender<Job>) {
    let mut buf = [0u8; 4096];
    loop {
        match (&conn.stream).read(&mut buf) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.read_closed = true;
                break;
            }
        }
    }
    while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
        if conn.closing {
            // Bytes after QUIT are undefined; stop parsing.
            conn.rbuf.clear();
            break;
        }
        let line: Vec<u8> = conn.rbuf.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&line);
        handle_line(id, conn, line.trim_end_matches(['\r', '\n']), jobs_tx);
    }
}

/// Parses one request line and decides where it goes. Mirrors the shard
/// server's contract: untagged lines are strict FIFO, tagged lines are
/// concurrent, and multi-frame or connection-scoped requests (`MONITOR`,
/// `QUIT`) cannot be multiplexed under a tag.
fn handle_line(id: u64, conn: &mut Conn, line: &str, jobs_tx: &mpsc::Sender<Job>) {
    let (tag, rest) = match protocol::parse_tag(line) {
        Some((tag, rest)) => (Some(tag), rest),
        None => (None, line),
    };
    let Some(request) = ClientRequest::parse(rest) else {
        return; // blank line
    };
    match (tag, request) {
        (None, ClientRequest::Quit) => conn.closing = true,
        (Some(tag), ClientRequest::Quit | ClientRequest::Monitor { .. }) => {
            let mut buf = Vec::with_capacity(96);
            let _ = write!(buf, "@{tag} ");
            let _ = protocol::write_error(
                &mut buf,
                &ServiceError::Protocol(
                    "request cannot be multiplexed; send it untagged".to_string(),
                ),
            );
            conn.outbox.push_back(buf);
        }
        (tag, request) => {
            let serial = tag.is_none();
            if serial && (conn.serial_busy || !conn.serial_queue.is_empty()) {
                conn.serial_queue.push_back((tag, request));
            } else {
                dispatch(id, conn, tag, request, serial, jobs_tx);
            }
        }
    }
}

/// Hands one request to the worker pool and updates the connection's
/// accounting.
fn dispatch(
    id: u64,
    conn: &mut Conn,
    tag: Option<u64>,
    request: ClientRequest,
    serial: bool,
    jobs_tx: &mpsc::Sender<Job>,
) {
    if serial {
        conn.serial_busy = true;
    }
    conn.inflight += 1;
    if jobs_tx
        .send(Job {
            conn: id,
            tag,
            request,
            serial,
        })
        .is_err()
    {
        // Every worker died; nothing will ever answer on this connection.
        conn.broken = true;
    }
}

/// Applies one worker message: queue its output, and on job completion
/// release the FIFO slot and dispatch the next queued untagged request.
fn apply_completion(
    conns: &mut HashMap<u64, Conn>,
    completion: Completion,
    jobs_tx: &mpsc::Sender<Job>,
) {
    let Some(conn) = conns.get_mut(&completion.conn) else {
        return; // connection dropped while the job ran
    };
    if !completion.bytes.is_empty() {
        conn.outbox.push_back(completion.bytes);
    }
    if completion.done {
        conn.inflight = conn.inflight.saturating_sub(1);
        if completion.serial {
            conn.serial_busy = false;
            if let Some((tag, request)) = conn.serial_queue.pop_front() {
                let serial = tag.is_none();
                dispatch(completion.conn, conn, tag, request, serial, jobs_tx);
            }
        }
    }
    conn.try_write();
}
