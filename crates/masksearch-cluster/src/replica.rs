//! Read replicas: a second serving copy of a shard that tails the
//! primary's write-ahead log and applies committed transactions as they
//! land, staying queryable throughout.
//!
//! ## Topology
//!
//! Replication is **WAL shipping over a shared filesystem**: the replica
//! reads the primary's `masks.wal` file directly (primary and replica run
//! on the same host or a shared mount — the deployment this repo's
//! in-process cluster tests and benchmarks model). The tailer remembers a
//! byte watermark into that file, and each poll scans forward from it with
//! the same torn-tail-tolerant scanner crash recovery uses
//! ([`masksearch_db::wal::scan_committed`]): a half-written transaction is
//! simply not there yet, and only whole committed transactions are applied.
//!
//! Each applied transaction goes through
//! [`DurableMaskStore::apply_replicated`](masksearch_db::DurableMaskStore::apply_replicated),
//! which re-logs it in the replica's own WAL (so the replica crash-recovers
//! like any database), installs the page after-images, and maintains the
//! CHI and tile indexes; the serving session then refreshes its catalog and
//! caches. A query on the replica therefore always sees a committed prefix
//! of the primary's write history — possibly a beat behind, never torn.
//!
//! ## Requirements on the primary
//!
//! The primary must keep its WAL growing monotonically while replicas tail
//! it: open it with `checkpoint_wal_bytes(0)` (no automatic truncation) and
//! do not call `checkpoint()` while a replica is attached. A tailer that
//! observes the file shrink below its watermark reports a desync error and
//! stops rather than guessing.

use crate::error::{ClusterError, ClusterResult};
use masksearch_db::wal::{header_page_size, scan_committed, WAL_HEADER_LEN};
use masksearch_db::{DbConfig, MaskDb, WAL_FILE};
use masksearch_query::{Session, SessionConfig};
use masksearch_service::{Engine, Server, ServerHandle, ServiceConfig};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often an idle tailer re-polls the primary's WAL file.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// A serving read replica of one shard: its own durable database plus a
/// TCP server, kept in sync by a background WAL tailer.
pub struct ReplicaShard {
    db: MaskDb,
    session: Arc<Session>,
    handle: Option<ServerHandle>,
    stop: Arc<AtomicBool>,
    applied: Arc<AtomicU64>,
    error: Arc<Mutex<Option<String>>>,
    tailer: Option<std::thread::JoinHandle<()>>,
}

impl ReplicaShard {
    /// Opens a replica database in `replica_dir`, starts its server on an
    /// ephemeral port, and spawns the tailer over the primary database in
    /// `primary_dir`. `db_config` must use the primary's page size (the
    /// tailer verifies this against the primary's WAL header and fails the
    /// start otherwise).
    pub fn start(
        primary_dir: impl AsRef<Path>,
        replica_dir: impl AsRef<Path>,
        db_config: DbConfig,
        session_config: SessionConfig,
        service_config: ServiceConfig,
    ) -> ClusterResult<Self> {
        let primary_wal = primary_dir.as_ref().join(WAL_FILE);
        let db = MaskDb::open(replica_dir.as_ref(), db_config)
            .map_err(|e| ClusterError::Internal(format!("opening replica database: {e}")))?;
        let page_size = db.store().config().page_size;
        // Fail fast on a mismatched primary instead of letting the tailer
        // discover it asynchronously.
        let header = std::fs::read(&primary_wal).map_err(|e| {
            ClusterError::Internal(format!(
                "reading primary wal {}: {e}",
                primary_wal.display()
            ))
        })?;
        let primary_page_size = header_page_size(&header)
            .map_err(|e| ClusterError::Internal(format!("primary wal header: {e}")))?;
        if primary_page_size != page_size {
            return Err(ClusterError::Config(format!(
                "replica page size {page_size} does not match primary wal page size \
                 {primary_page_size}"
            )));
        }

        let session = Arc::new(Session::with_store_maintained_index(
            db.mask_store(),
            db.catalog(),
            session_config,
            db.chi_store(),
        ));
        let engine = Engine::with_shared_session(Arc::clone(&session), service_config);
        let handle = Server::bind("127.0.0.1:0", engine)
            .map_err(|e| ClusterError::Internal(format!("binding replica server: {e}")))?
            .spawn();

        let stop = Arc::new(AtomicBool::new(false));
        let applied = Arc::new(AtomicU64::new(WAL_HEADER_LEN));
        let error = Arc::new(Mutex::new(None));
        let tailer = {
            let db = db.clone();
            let session = Arc::clone(&session);
            let stop = Arc::clone(&stop);
            let applied = Arc::clone(&applied);
            let error = Arc::clone(&error);
            std::thread::Builder::new()
                .name("masksearch-replica-tailer".to_string())
                .spawn(move || {
                    if let Err(e) =
                        tail_wal(&primary_wal, page_size, &db, &session, &stop, &applied)
                    {
                        *error.lock().unwrap() = Some(e);
                    }
                })
                .expect("spawn replica tailer")
        };

        Ok(Self {
            db,
            session,
            handle: Some(handle),
            stop,
            applied,
            error,
            tailer: Some(tailer),
        })
    }

    /// The replica server's address.
    pub fn addr(&self) -> SocketAddr {
        self.handle
            .as_ref()
            .expect("replica server is running")
            .local_addr()
    }

    /// The replica's own database handle.
    pub fn db(&self) -> &MaskDb {
        &self.db
    }

    /// The serving session (e.g. for catalog assertions in tests).
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// Byte offset into the primary's WAL up to which every committed
    /// transaction has been applied.
    pub fn applied_bytes(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// The tailer's terminal error (e.g. a desync after the primary
    /// truncated its WAL), if it died.
    pub fn tailer_error(&self) -> Option<String> {
        self.error.lock().unwrap().clone()
    }

    /// Blocks until the tailer's watermark reaches `bytes` (a primary
    /// `wal_bytes()` reading). Returns `false` on timeout or tailer death.
    pub fn wait_applied(&self, bytes: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.applied_bytes() < bytes {
            if Instant::now() >= deadline || self.tailer_error().is_some() {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Stops the tailer and the server.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(tailer) = self.tailer.take() {
            let _ = tailer.join();
        }
        if let Some(handle) = self.handle.take() {
            handle.shutdown();
        }
    }
}

impl Drop for ReplicaShard {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The tailer loop: poll the primary's WAL, apply newly committed
/// transactions, refresh the serving session. Returns `Ok` on a requested
/// stop and `Err` with a description on desync or an apply failure.
fn tail_wal(
    primary_wal: &PathBuf,
    page_size: u32,
    db: &MaskDb,
    session: &Session,
    stop: &AtomicBool,
    applied: &AtomicU64,
) -> Result<(), String> {
    while !stop.load(Ordering::Acquire) {
        let watermark = applied.load(Ordering::Acquire);
        let bytes = std::fs::read(primary_wal)
            .map_err(|e| format!("reading primary wal {}: {e}", primary_wal.display()))?;
        if (bytes.len() as u64) < watermark {
            return Err(format!(
                "primary wal shrank below the applied watermark ({} < {watermark}): the \
                 primary checkpointed while replicated; replicas require \
                 checkpoint_wal_bytes(0)",
                bytes.len()
            ));
        }
        let (txns, new_watermark) = scan_committed(&bytes, page_size, watermark);
        if txns.is_empty() {
            std::thread::sleep(POLL_INTERVAL);
            continue;
        }
        let mut changed = Vec::new();
        for txn in &txns {
            let ids = db
                .store()
                .apply_replicated(txn)
                .map_err(|e| format!("applying replicated txn {}: {e}", txn.txn_id))?;
            changed.extend(ids);
        }
        // One catalog swap per poll round, after the whole committed batch
        // applied: readers see shard-atomic states, never a half-applied
        // transaction.
        session.sync_replicated(db.catalog(), &changed);
        applied.store(new_watermark, Ordering::Release);
    }
    Ok(())
}
