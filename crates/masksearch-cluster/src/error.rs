//! Cluster-level errors: everything that can go wrong between a statement
//! arriving at the coordinator and its merged result leaving it.

use masksearch_core::MaskId;
use masksearch_service::ServiceError;

/// Result alias for cluster operations.
pub type ClusterResult<T> = Result<T, ClusterError>;

/// An error produced by the cluster layer.
#[derive(Debug)]
pub enum ClusterError {
    /// The cluster was misconfigured (no shards, bad shard-map encoding, …).
    Config(String),
    /// A SQL statement failed to parse or lower at the coordinator.
    Sql(String),
    /// A shard request failed (after the client's bounded reconnect).
    Shard {
        /// Index of the failing shard.
        shard: usize,
        /// Address of the failing shard.
        addr: String,
        /// The underlying service error.
        source: ServiceError,
    },
    /// A `DELETE` referenced a mask id no shard holds (reported before any
    /// shard is mutated, matching single-node semantics).
    UnknownMask(MaskId),
    /// The coordinator produced or received something inconsistent.
    Internal(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "cluster configuration error: {msg}"),
            Self::Sql(msg) => write!(f, "SQL error: {msg}"),
            Self::Shard {
                shard,
                addr,
                source,
            } => write!(f, "shard {shard} ({addr}) failed: {source}"),
            Self::UnknownMask(id) => write!(f, "unknown mask id {}", id.raw()),
            Self::Internal(msg) => write!(f, "cluster internal error: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Shard { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<masksearch_sql::SqlError> for ClusterError {
    fn from(e: masksearch_sql::SqlError) -> Self {
        Self::Sql(e.to_string())
    }
}

impl ClusterError {
    /// A stable, single-line rendering used by the coordinator's TCP front
    /// end (`ERR` frames).
    pub fn wire_message(&self) -> String {
        self.to_string().replace(['\r', '\n'], " ")
    }
}
