//! # masksearch-cluster
//!
//! Sharded scatter-gather execution for MaskSearch: the layer that turns a
//! set of independent [`masksearch-service`](masksearch_service) servers
//! into one system serving a partitioned mask catalog — the multi-user,
//! beyond-one-machine deployment the MaskSearch demonstration paper
//! (arXiv 2404.06563) sketches.
//!
//! ## Architecture
//!
//! ```text
//!   SQL clients (same line protocol as a single server)
//!        │ tagged (@id) or plain lines
//!        ▼
//!   ┌────────────────┐   ShardMap (hash of image id)
//!   │ Coordinator     │─────────────────────────────┐
//!   │  · poll(2) event│ pipelined     pipelined     │ route writes
//!   │    loop front   │ scatter       scatter       │ (primary only)
//!   │    end          ▼               ▼             ▼
//!   │  · broadcast +  ┌─────────┐   ┌─────────┐   ┌─────────┐
//!   │    merge        │ shard 0 │   │ shard 1 │ … │ shard N │
//!   │  · distributed  │ primary │   │ primary │   │ primary │
//!   │    top-k        └────┬────┘   └─────────┘   └─────────┘
//!   │    refinement        │ WAL tail
//!   └────────────────┘┌────▼────┐
//!        ▲            │ replica │◄── reads round-robin here too,
//!        │            └─────────┘    failover when an endpoint dies
//!        └─ merged rows byte-identical to single-node execution
//! ```
//!
//! * [`ShardMap`] — the serializable partitioning function (FNV hash of the
//!   **image id**, the dialect's grouping key, so grouped aggregates never
//!   span shards and every merge is exact).
//! * [`topk`] — the distributed top-k threshold algorithm: bounded per-shard
//!   `k`, k-th-value bounds, and refinement rounds that re-query only the
//!   shards whose bound can still beat the merged k-th row.
//! * [`Coordinator`] / [`CoordinatorServer`] — statement routing over one
//!   multiplexed [`MuxClient`](masksearch_service::mux::MuxClient) link per
//!   shard endpoint (a whole fan-out is one round trip), read balancing
//!   across replicas with transport-error failover, write splitting with
//!   per-shard atomicity, and aggregated `STATS`. The front end serves all
//!   client connections from a readiness-driven `poll(2)` event loop plus a
//!   small worker pool instead of a thread per connection.
//! * [`replica`] — a read replica of a shard: a fresh database that tails
//!   the primary's checksummed WAL and applies committed transactions, kept
//!   queryable throughout.
//!
//! The merge rules themselves live in
//! [`masksearch_query::merge`] so that exactness over *any*
//! image-respecting partition is provable (and property-tested) without
//! networking.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coordinator;
pub mod error;
mod eventloop;
pub mod metrics;
pub mod replica;
pub mod shard;
pub mod topk;

pub use coordinator::{
    ClusterConfig, ClusterReply, Coordinator, CoordinatorHandle, CoordinatorServer,
};
pub use error::{ClusterError, ClusterResult};
pub use metrics::{ClusterMetrics, ClusterMetricsSnapshot};
pub use replica::ReplicaShard;
pub use shard::ShardMap;
pub use topk::{distributed_topk, TopkRun};
