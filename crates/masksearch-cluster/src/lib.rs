//! # masksearch-cluster
//!
//! Sharded scatter-gather execution for MaskSearch: the layer that turns a
//! set of independent [`masksearch-service`](masksearch_service) servers
//! into one system serving a partitioned mask catalog — the multi-user,
//! beyond-one-machine deployment the MaskSearch demonstration paper
//! (arXiv 2404.06563) sketches.
//!
//! ## Architecture
//!
//! ```text
//!   SQL clients (same line protocol as a single server)
//!        │
//!        ▼
//!   ┌───────────────┐   ShardMap (hash of image id)
//!   │ Coordinator    │──────────────────────────────┐
//!   │  · broadcast + │ scatter       scatter        │ route writes
//!   │    merge       ▼               ▼              ▼
//!   │  · distributed ┌─────────┐   ┌─────────┐   ┌─────────┐
//!   │    top-k       │ shard 0 │   │ shard 1 │ … │ shard N │
//!   │    refinement  │ Engine  │   │ Engine  │   │ Engine  │
//!   └───────────────┘└─────────┘   └─────────┘   └─────────┘
//!        ▲       gather: partial QueryOutputs (+ k-th bounds)
//!        └─ merged rows byte-identical to single-node execution
//! ```
//!
//! * [`ShardMap`] — the serializable partitioning function (FNV hash of the
//!   **image id**, the dialect's grouping key, so grouped aggregates never
//!   span shards and every merge is exact).
//! * [`topk`] — the distributed top-k threshold algorithm: bounded per-shard
//!   `k`, k-th-value bounds, and refinement rounds that re-query only the
//!   shards whose bound can still beat the merged k-th row.
//! * [`Coordinator`] / [`CoordinatorServer`] — statement routing,
//!   scatter-gather over pooled [`Client`](masksearch_service::Client)
//!   connections (protocol-version-checked, reconnect-with-backoff), write
//!   splitting with per-shard atomicity, and aggregated `STATS`.
//!
//! The merge rules themselves live in
//! [`masksearch_query::merge`] so that exactness over *any*
//! image-respecting partition is provable (and property-tested) without
//! networking.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coordinator;
pub mod error;
pub mod metrics;
pub mod shard;
pub mod topk;

pub use coordinator::{
    ClusterConfig, ClusterReply, Coordinator, CoordinatorHandle, CoordinatorServer,
};
pub use error::{ClusterError, ClusterResult};
pub use metrics::{ClusterMetrics, ClusterMetricsSnapshot};
pub use shard::ShardMap;
pub use topk::{distributed_topk, TopkRun};
