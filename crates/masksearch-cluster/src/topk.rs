//! The distributed top-k threshold algorithm.
//!
//! Asking every shard for the full `k` and merging is correct but ships
//! `shards × k` rows for `k` answers. Instead the coordinator runs the
//! classic threshold refinement:
//!
//! 1. Ask every shard for a small local top-k′ (`⌈k / shards⌉ + 1`) *plus
//!    its k′-th value as a bound* on everything it did not return
//!    ([`Session::execute_topk_partial`](masksearch_query::Session::execute_topk_partial)).
//! 2. Merge the local results into a candidate global top-k.
//! 3. Re-query **only** the shards whose bound could still beat (or tie —
//!    the ascending-id tie-break can admit a tied hidden row) the merged
//!    k-th value, with a doubled per-shard budget.
//! 4. Repeat until no shard's bound survives; the merge is then provably
//!    byte-identical to single-node execution.
//!
//! Termination: a shard's budget doubles each refinement and its bound
//! disappears once it has returned every candidate it holds, so the number
//! of rounds is logarithmic in the largest shard's candidate count (and 1 in
//! the common case of roughly uniform value distributions).
//!
//! The driver is generic over *how* a round of shard requests is executed —
//! the coordinator fans rounds out over TCP, while tests (and the
//! partition-merge property suite) drive it with in-process [`Session`]s —
//! so the refinement logic itself is exercised without any networking.
//!
//! [`Session`]: masksearch_query::Session

use masksearch_query::merge::{self, RankedPartial};
use masksearch_query::{Order, QueryOutput};

/// The outcome of a distributed top-k run, with the round structure the
/// benchmarks report.
#[derive(Debug)]
pub struct TopkRun {
    /// The exact global top-k.
    pub output: QueryOutput,
    /// Scatter rounds executed (1 = no refinement was needed).
    pub rounds: usize,
    /// Shard re-queries beyond the first round.
    pub refined_requests: usize,
    /// Total shard requests across all rounds.
    pub shard_requests: usize,
}

/// Runs the threshold algorithm. `fetch` executes one scatter round: for
/// each `(shard, k)` pair it returns that shard's local top-`k` and bound,
/// in order.
///
/// With `single_round` set, every shard is asked for the full global `k` in
/// the first round and refinement is skipped. Merging k full local top-ks
/// yields the exact global top-k (a shard's (k+1)-th row entering the
/// global answer would force its k better rows in too — k+1 > k), and
/// `merge_ranked` breaks ties exactly as the threshold path's final merge
/// does, so the rows are byte-identical either way; the planner trades the
/// larger first-round payload against refinement round-trips.
pub fn distributed_topk<E>(
    k: usize,
    order: Order,
    num_shards: usize,
    single_round: bool,
    mut fetch: impl FnMut(&[(usize, usize)]) -> Result<Vec<RankedPartial>, E>,
) -> Result<TopkRun, E> {
    if k == 0 || num_shards == 0 {
        return Ok(TopkRun {
            output: QueryOutput::default(),
            rounds: 0,
            refined_requests: 0,
            shard_requests: 0,
        });
    }

    // First-round budget: enough that a uniform value distribution finishes
    // in one round, small enough that a skewed one still saves bandwidth.
    // Single-round mode asks for everything up front instead.
    let first_k = if single_round {
        k
    } else {
        (k.div_ceil(num_shards) + 1).min(k)
    };
    let mut asked = vec![0usize; num_shards];
    let mut latest: Vec<Option<RankedPartial>> = vec![None; num_shards];
    let mut requests: Vec<(usize, usize)> = (0..num_shards).map(|i| (i, first_k)).collect();

    let mut rounds = 0;
    let mut refined_requests = 0;
    let mut shard_requests = 0;
    loop {
        rounds += 1;
        shard_requests += requests.len();
        let partials = fetch(&requests)?;
        debug_assert_eq!(partials.len(), requests.len());
        for (&(shard, k_asked), partial) in requests.iter().zip(partials) {
            asked[shard] = k_asked;
            latest[shard] = Some(partial);
        }

        let outputs: Vec<QueryOutput> = latest.iter().flatten().map(|p| p.output.clone()).collect();
        let merged = merge::merge_ranked(&outputs, k, order);

        if single_round {
            // Every shard already answered with its full local top-k; the
            // merge above is exact (see the doc comment).
            return Ok(TopkRun {
                output: merged,
                rounds,
                refined_requests,
                shard_requests,
            });
        }

        requests = latest
            .iter()
            .enumerate()
            .filter_map(|(shard, partial)| {
                let partial = partial.as_ref()?;
                if merge::partial_may_improve(partial, &merged, k, order) {
                    // Escalate to at least the global k, then double: the
                    // budget strictly grows, so the shard exhausts its
                    // candidates (dropping its bound) in O(log n) rounds.
                    Some((shard, (asked[shard] * 2).max(k)))
                } else {
                    None
                }
            })
            .collect();
        if requests.is_empty() {
            return Ok(TopkRun {
                output: merged,
                rounds,
                refined_requests,
                shard_requests,
            });
        }
        refined_requests += requests.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::MaskId;
    use masksearch_query::{QueryStats, ResultRow, RowKey};

    /// An in-memory "shard" holding (value, mask id) pairs.
    struct FakeShard {
        rows: Vec<(f64, u64)>,
    }

    impl FakeShard {
        fn partial(&self, k: usize, order: Order) -> RankedPartial {
            let mut rows = self.rows.clone();
            rows.sort_by(|a, b| {
                let cmp = match order {
                    Order::Desc => b.0.partial_cmp(&a.0),
                    Order::Asc => a.0.partial_cmp(&b.0),
                }
                .unwrap();
                cmp.then_with(|| a.1.cmp(&b.1))
            });
            let returned: Vec<ResultRow> = rows
                .iter()
                .take(k)
                .map(|&(v, id)| ResultRow::mask(MaskId::new(id), Some(v)))
                .collect();
            let bound = if returned.len() < rows.len() {
                returned.last().map(|r| r.value.unwrap())
            } else {
                None
            };
            RankedPartial {
                output: QueryOutput {
                    rows: returned,
                    stats: QueryStats::default(),
                },
                bound,
            }
        }
    }

    fn brute_force(shards: &[FakeShard], k: usize, order: Order) -> Vec<(f64, u64)> {
        let mut all: Vec<(f64, u64)> = shards.iter().flat_map(|s| s.rows.clone()).collect();
        all.sort_by(|a, b| {
            let cmp = match order {
                Order::Desc => b.0.partial_cmp(&a.0),
                Order::Asc => a.0.partial_cmp(&b.0),
            }
            .unwrap();
            cmp.then_with(|| a.1.cmp(&b.1))
        });
        all.truncate(k);
        all
    }

    fn run_mode(shards: &[FakeShard], k: usize, order: Order, single_round: bool) -> TopkRun {
        distributed_topk::<std::convert::Infallible>(
            k,
            order,
            shards.len(),
            single_round,
            |requests| {
                Ok(requests
                    .iter()
                    .map(|&(shard, k)| shards[shard].partial(k, order))
                    .collect())
            },
        )
        .unwrap()
    }

    fn run(shards: &[FakeShard], k: usize, order: Order) -> TopkRun {
        run_mode(shards, k, order, false)
    }

    fn check(shards: &[FakeShard], k: usize, order: Order) -> TopkRun {
        let outcome = run(shards, k, order);
        let got: Vec<(f64, u64)> = outcome
            .output
            .rows
            .iter()
            .map(|r| match r.key {
                RowKey::Mask(id) => (r.value.unwrap(), id.raw()),
                RowKey::Image(_) => panic!("mask rows expected"),
            })
            .collect();
        assert_eq!(got, brute_force(shards, k, order), "k={k} {order:?}");
        outcome
    }

    #[test]
    fn uniform_distribution_converges_in_one_round() {
        let shards: Vec<FakeShard> = (0..4)
            .map(|s| FakeShard {
                rows: (0..50u64)
                    .map(|i| ((i * 4 + s) as f64 * 1.37, i * 4 + s))
                    .collect(),
            })
            .collect();
        for order in [Order::Desc, Order::Asc] {
            check(&shards, 8, order);
        }
    }

    #[test]
    fn skewed_distribution_needs_and_survives_refinement() {
        // Shard 0 holds all the large values: the first round's per-shard
        // budget (k/4 + 1) cannot cover the global top-k, forcing rounds.
        let shards = vec![
            FakeShard {
                rows: (0..100u64).map(|i| (1000.0 + i as f64, i)).collect(),
            },
            FakeShard {
                rows: (0..100u64).map(|i| (i as f64, 200 + i)).collect(),
            },
            FakeShard {
                rows: (0..100u64).map(|i| (i as f64 / 2.0, 400 + i)).collect(),
            },
            FakeShard { rows: Vec::new() },
        ];
        let outcome = check(&shards, 20, Order::Desc);
        assert!(outcome.rounds > 1, "expected refinement, got 1 round");
        assert!(outcome.refined_requests > 0);
    }

    #[test]
    fn ties_resolve_by_id_across_shards() {
        // Every value equal: the top-k must be the k smallest ids globally,
        // which forces tie refinement across shards.
        let shards: Vec<FakeShard> = (0..3)
            .map(|s| FakeShard {
                rows: (0..30u64).map(|i| (7.0, i * 3 + s)).collect(),
            })
            .collect();
        for order in [Order::Desc, Order::Asc] {
            let outcome = check(&shards, 10, order);
            let ids: Vec<u64> = outcome
                .output
                .rows
                .iter()
                .map(|r| match r.key {
                    RowKey::Mask(id) => id.raw(),
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(ids, (0..10u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn k_larger_than_population_returns_everything() {
        let shards = vec![
            FakeShard {
                rows: vec![(3.0, 1), (1.0, 2)],
            },
            FakeShard {
                rows: vec![(2.0, 3)],
            },
        ];
        let outcome = check(&shards, 100, Order::Desc);
        assert_eq!(outcome.output.rows.len(), 3);
    }

    #[test]
    fn single_round_mode_is_byte_identical_and_never_refines() {
        // Same skewed layout that forces the threshold algorithm to refine:
        // single-round mode must return identical rows in exactly one round.
        let shards = vec![
            FakeShard {
                rows: (0..100u64).map(|i| (1000.0 + i as f64, i)).collect(),
            },
            FakeShard {
                rows: (0..100u64).map(|i| (i as f64, 200 + i)).collect(),
            },
            FakeShard {
                rows: (0..100u64).map(|i| (i as f64 / 2.0, 400 + i)).collect(),
            },
            FakeShard { rows: Vec::new() },
        ];
        for order in [Order::Desc, Order::Asc] {
            let threshold = run_mode(&shards, 20, order, false);
            let single = run_mode(&shards, 20, order, true);
            assert_eq!(single.output.rows, threshold.output.rows);
            assert_eq!(single.rounds, 1);
            assert_eq!(single.refined_requests, 0);
        }
        // Ties too: equal values force id-order refinement in threshold
        // mode; single-round must resolve them identically.
        let tied: Vec<FakeShard> = (0..3)
            .map(|s| FakeShard {
                rows: (0..30u64).map(|i| (7.0, i * 3 + s)).collect(),
            })
            .collect();
        let threshold = run_mode(&tied, 10, Order::Desc, false);
        let single = run_mode(&tied, 10, Order::Desc, true);
        assert_eq!(single.output.rows, threshold.output.rows);
        assert_eq!(single.rounds, 1);
    }

    #[test]
    fn zero_k_or_zero_shards_is_empty() {
        let outcome = run(&[], 5, Order::Desc);
        assert!(outcome.output.is_empty());
        let shards = vec![FakeShard {
            rows: vec![(1.0, 1)],
        }];
        let outcome = run(&shards, 0, Order::Asc);
        assert!(outcome.output.is_empty());
        assert_eq!(outcome.shard_requests, 0);
    }
}
