//! Coordinator-level metrics: scatter widths, top-k refinement behaviour,
//! and write routing. Lock-free, mirroring the per-shard
//! [`ServiceMetrics`](masksearch_service::ServiceMetrics) design.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counters describing everything a coordinator has done since it started.
#[derive(Debug)]
pub struct ClusterMetrics {
    started: Instant,
    queries: AtomicU64,
    ranked_queries: AtomicU64,
    mutations: AtomicU64,
    failed: AtomicU64,
    shard_requests: AtomicU64,
    topk_rounds: AtomicU64,
    topk_refined_requests: AtomicU64,
    topk_single_round: AtomicU64,
    masks_inserted: AtomicU64,
    masks_deleted: AtomicU64,
    masks_updated: AtomicU64,
    masks_relocated: AtomicU64,
    mutations_deduped: AtomicU64,
    replica_reads: AtomicU64,
    failovers: AtomicU64,
    transactions: AtomicU64,
    owner_resolutions: AtomicU64,
    lookup_broadcasts: AtomicU64,
}

impl Default for ClusterMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterMetrics {
    /// A zeroed registry with the uptime clock starting now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            queries: AtomicU64::new(0),
            ranked_queries: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shard_requests: AtomicU64::new(0),
            topk_rounds: AtomicU64::new(0),
            topk_refined_requests: AtomicU64::new(0),
            topk_single_round: AtomicU64::new(0),
            masks_inserted: AtomicU64::new(0),
            masks_deleted: AtomicU64::new(0),
            masks_updated: AtomicU64::new(0),
            masks_relocated: AtomicU64::new(0),
            mutations_deduped: AtomicU64::new(0),
            replica_reads: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            transactions: AtomicU64::new(0),
            owner_resolutions: AtomicU64::new(0),
            lookup_broadcasts: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_ranked(&self, rounds: usize, refined: usize, single_round: bool) {
        self.ranked_queries.fetch_add(1, Ordering::Relaxed);
        self.topk_rounds.fetch_add(rounds as u64, Ordering::Relaxed);
        self.topk_refined_requests
            .fetch_add(refined as u64, Ordering::Relaxed);
        self.topk_single_round
            .fetch_add(single_round as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_mutation(
        &self,
        inserted: u64,
        deleted: u64,
        updated: u64,
        relocated: u64,
    ) {
        self.mutations.fetch_add(1, Ordering::Relaxed);
        self.masks_inserted.fetch_add(inserted, Ordering::Relaxed);
        self.masks_deleted.fetch_add(deleted, Ordering::Relaxed);
        self.masks_updated.fetch_add(updated, Ordering::Relaxed);
        self.masks_relocated.fetch_add(relocated, Ordering::Relaxed);
    }

    pub(crate) fn record_transaction(&self) {
        self.transactions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_owner_resolutions(&self, n: usize) {
        self.owner_resolutions
            .fetch_add(n as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_lookup_broadcast(&self) {
        self.lookup_broadcasts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_deduped(&self) {
        self.mutations_deduped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shard_requests(&self, n: usize) {
        self.shard_requests.fetch_add(n as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_replica_read(&self) {
        self.replica_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time summary.
    pub fn snapshot(&self) -> ClusterMetricsSnapshot {
        ClusterMetricsSnapshot {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            queries: self.queries.load(Ordering::Relaxed),
            ranked_queries: self.ranked_queries.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shard_requests: self.shard_requests.load(Ordering::Relaxed),
            topk_rounds: self.topk_rounds.load(Ordering::Relaxed),
            topk_refined_requests: self.topk_refined_requests.load(Ordering::Relaxed),
            topk_single_round: self.topk_single_round.load(Ordering::Relaxed),
            masks_inserted: self.masks_inserted.load(Ordering::Relaxed),
            masks_deleted: self.masks_deleted.load(Ordering::Relaxed),
            masks_updated: self.masks_updated.load(Ordering::Relaxed),
            masks_relocated: self.masks_relocated.load(Ordering::Relaxed),
            mutations_deduped: self.mutations_deduped.load(Ordering::Relaxed),
            replica_reads: self.replica_reads.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            transactions: self.transactions.load(Ordering::Relaxed),
            owner_resolutions: self.owner_resolutions.load(Ordering::Relaxed),
            lookup_broadcasts: self.lookup_broadcasts.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of [`ClusterMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterMetricsSnapshot {
    /// Milliseconds since the coordinator started.
    pub uptime_ms: u64,
    /// Read statements served.
    pub queries: u64,
    /// Ranked (distributed top-k) statements among them.
    pub ranked_queries: u64,
    /// Write statements served.
    pub mutations: u64,
    /// Statements that failed.
    pub failed: u64,
    /// Total shard requests issued (scatter width × statements + writes).
    pub shard_requests: u64,
    /// Total top-k scatter rounds (ranked_queries × 1 when no refinement
    /// was ever needed).
    pub topk_rounds: u64,
    /// Shard re-queries issued by top-k refinement beyond each first round.
    pub topk_refined_requests: u64,
    /// Ranked queries the planner ran in single-round mode (full `k` to
    /// every shard, no refinement) instead of the threshold algorithm.
    pub topk_single_round: u64,
    /// Masks inserted through the coordinator.
    pub masks_inserted: u64,
    /// Masks deleted through the coordinator.
    pub masks_deleted: u64,
    /// Masks re-masked in place (`UPDATE`) through the coordinator.
    pub masks_updated: u64,
    /// Stale replicas removed because an overwrite moved a mask to a new
    /// image (and therefore possibly a new owning shard).
    pub masks_relocated: u64,
    /// Mutations answered from the coordinator's token-dedup registry
    /// (client resends after transport errors) without re-routing.
    pub mutations_deduped: u64,
    /// Read requests served by a replica endpoint instead of its shard's
    /// primary (round-robin selection and failover re-routes both count).
    pub replica_reads: u64,
    /// Read requests that failed on their selected endpoint with a
    /// transport error and were successfully re-routed to another endpoint
    /// of the same shard.
    pub failovers: u64,
    /// `BEGIN … COMMIT` scripts applied atomically on a single owning shard.
    pub transactions: u64,
    /// Mask-id owners resolved from the coordinator's in-memory owner index
    /// (no shard round trip).
    pub owner_resolutions: u64,
    /// `LOOKUP` broadcasts issued because a write referenced mask ids the
    /// owner index did not know (zero in steady state: the index is seeded
    /// at connect and maintained by every routed write).
    pub lookup_broadcasts: u64,
}

impl ClusterMetricsSnapshot {
    /// Mean top-k rounds per ranked query (1.0 = refinement never needed).
    pub fn mean_topk_rounds(&self) -> f64 {
        if self.ranked_queries == 0 {
            0.0
        } else {
            self.topk_rounds as f64 / self.ranked_queries as f64
        }
    }

    /// Mean rounds over *threshold-mode* ranked queries only — single-round
    /// queries take exactly one round by construction and would bias the
    /// planner's convergence feedback towards flapping back to threshold
    /// mode. `None` until a threshold-mode query has run.
    pub fn mean_threshold_rounds(&self) -> Option<f64> {
        let threshold_queries = self.ranked_queries - self.topk_single_round;
        if threshold_queries == 0 {
            None
        } else {
            Some((self.topk_rounds - self.topk_single_round) as f64 / threshold_queries as f64)
        }
    }
}
