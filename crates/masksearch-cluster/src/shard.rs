//! The [`ShardMap`]: the pure, serializable partitioning function every
//! cluster participant must agree on.
//!
//! Masks are partitioned by **image id** (FNV-1a hash modulo the shard
//! count), not by mask id. The image id is the grouping key of the dialect's
//! aggregation queries (`GROUP BY image_id`), so hashing it co-locates every
//! mask of an image on one shard — which is exactly the property that makes
//! scatter-gather *exact* for every query shape:
//!
//! * filter rows are per-mask and partition-independent,
//! * scalar and mask aggregates are computed over complete groups on the
//!   owning shard (no cross-shard `AVG` recombination, no shipping of mask
//!   pixels for `INTERSECT`/`UNION` aggregation),
//! * ranked queries merge local top-k's of disjoint candidate sets.
//!
//! The map is deliberately tiny state — shard count and hash seed — and has
//! a canonical text encoding so clients, the coordinator, and tooling can
//! exchange and persist it without agreeing on anything else.

use crate::error::{ClusterError, ClusterResult};
use masksearch_core::{ImageId, MaskRecord};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash-partitioning of the mask catalog across `shards` shards, routing by
/// image id so grouped queries never span shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    seed: u64,
}

impl ShardMap {
    /// A map over `shards` shards with the default seed.
    pub fn new(shards: usize) -> ClusterResult<Self> {
        Self::with_seed(shards, 0)
    }

    /// A map over `shards` shards with an explicit hash seed (useful to
    /// rebalance a pathological key distribution without resharding code).
    pub fn with_seed(shards: usize, seed: u64) -> ClusterResult<Self> {
        if shards == 0 {
            return Err(ClusterError::Config(
                "a shard map needs at least one shard".to_string(),
            ));
        }
        Ok(Self { shards, seed })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn fnv1a(&self, value: u64) -> u64 {
        let mut hash = FNV_OFFSET ^ self.seed;
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// The shard owning an image (and therefore all of its masks).
    pub fn shard_for_image(&self, image: ImageId) -> usize {
        (self.fnv1a(image.raw()) % self.shards as u64) as usize
    }

    /// The shard owning a mask record (routes by its image id).
    pub fn shard_for_record(&self, record: &MaskRecord) -> usize {
        self.shard_for_image(record.image_id)
    }

    /// Canonical text encoding, e.g. `shardmap v1 shards=4 seed=0`.
    pub fn encode(&self) -> String {
        format!("shardmap v1 shards={} seed={}", self.shards, self.seed)
    }

    /// Parses [`ShardMap::encode`]'s output.
    pub fn decode(text: &str) -> ClusterResult<Self> {
        let mut tokens = text.split_ascii_whitespace();
        if tokens.next() != Some("shardmap") || tokens.next() != Some("v1") {
            return Err(ClusterError::Config(format!(
                "not a v1 shard map: {text:?}"
            )));
        }
        let mut shards = None;
        let mut seed = 0u64;
        for token in tokens {
            if let Some(v) = token.strip_prefix("shards=") {
                shards = v.parse::<usize>().ok();
            } else if let Some(v) = token.strip_prefix("seed=") {
                seed = v
                    .parse::<u64>()
                    .map_err(|_| ClusterError::Config(format!("bad shard-map seed in {text:?}")))?;
            }
        }
        match shards {
            Some(shards) => Self::with_seed(shards, seed),
            None => Err(ClusterError::Config(format!(
                "shard map without a shard count: {text:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masksearch_core::MaskId;

    #[test]
    fn encoding_round_trips() {
        let map = ShardMap::with_seed(7, 42).unwrap();
        let decoded = ShardMap::decode(&map.encode()).unwrap();
        assert_eq!(decoded, map);
        assert!(ShardMap::decode("shardmap v2 shards=2 seed=0").is_err());
        assert!(ShardMap::decode("shardmap v1 seed=3").is_err());
        assert!(ShardMap::decode("garbage").is_err());
        assert!(ShardMap::new(0).is_err());
    }

    #[test]
    fn routing_is_stable_and_covers_all_shards() {
        let map = ShardMap::new(4).unwrap();
        let mut seen = [0usize; 4];
        for image in 0..1000u64 {
            let shard = map.shard_for_image(ImageId::new(image));
            assert_eq!(shard, map.shard_for_image(ImageId::new(image)));
            assert!(shard < 4);
            seen[shard] += 1;
        }
        for (shard, count) in seen.iter().enumerate() {
            // FNV over sequential ids spreads well; demand rough balance.
            assert!(*count > 150, "shard {shard} got only {count}/1000 images");
        }
    }

    #[test]
    fn records_route_by_their_image() {
        let map = ShardMap::new(3).unwrap();
        let record = MaskRecord::builder(MaskId::new(99))
            .image_id(ImageId::new(5))
            .build();
        assert_eq!(
            map.shard_for_record(&record),
            map.shard_for_image(ImageId::new(5))
        );
    }

    #[test]
    fn seeds_change_the_layout() {
        let a = ShardMap::with_seed(4, 0).unwrap();
        let b = ShardMap::with_seed(4, 99).unwrap();
        let moved = (0..200u64)
            .filter(|&i| a.shard_for_image(ImageId::new(i)) != b.shard_for_image(ImageId::new(i)))
            .count();
        assert!(moved > 0);
    }
}
