//! The [`Coordinator`]: scatter-gather execution of the masksearch-sql
//! dialect over a set of shard servers, plus its own TCP front end speaking
//! the same line protocol — so a cluster looks exactly like a bigger server
//! to any client.
//!
//! Statement routing follows [`masksearch_sql::Statement::routing`]:
//!
//! * `Broadcast` (filters, plain and `HAVING` aggregations) — forward the
//!   raw SQL to every shard in parallel and merge the disjoint row sets by
//!   key ([`masksearch_query::merge::merge_unordered`]).
//! * `Ranked` (`ORDER BY … LIMIT`) — the distributed threshold algorithm of
//!   [`crate::topk`] over `PARTIAL K=<n>` shard requests.
//! * `ByImage` (`INSERT`) — split the batch by the [`ShardMap`] owner of
//!   each tuple's image id and apply each sub-batch atomically on its shard;
//!   overwrites that move a mask to a different image first delete the stale
//!   replica from its old shard.
//! * `ByMaskId` (`DELETE`, `UPDATE`) — resolve each id's owning shard from
//!   the coordinator's **owner index** (below) and split; an id that exists
//!   nowhere fails the statement before any side effect, matching
//!   single-node semantics.
//! * `Ddl` (`CREATE INDEX` / `DROP INDEX`) — apply on every shard so index
//!   definitions cannot drift between shards.
//! * `Control` — a bare `BEGIN`/`COMMIT`/`ROLLBACK` is rejected; a whole
//!   `BEGIN; …; COMMIT` script is routed to the single shard owning every
//!   mask it touches and applied there as one atomic commit. A script whose
//!   statements span shards is rejected loudly before any side effect —
//!   there is no cross-shard transaction.
//!
//! ## The owner index
//!
//! The coordinator keeps an in-memory `mask id → owning shard` map, seeded
//! with a `LOOKUP *` scatter at connect time and maintained by every routed
//! write (inserts add, deletes remove; `UPDATE` cannot move a mask because
//! the sharding key is immutable). Write routing resolves owners from this
//! map, so steady-state `DELETE`/`UPDATE`/overwrite routing costs **zero
//! `LOOKUP` broadcasts** — a broadcast happens only for ids the map does not
//! know (counted by `lookup_broadcasts`), and its answer heals the map.
//! Writes that bypass the coordinator and land on a shard directly are
//! outside this model, exactly as they already were for `LOOKUP`-routed
//! deletes.
//!
//! ## Shard links: one pipelined connection each
//!
//! Each shard endpoint is reached through a single multiplexed
//! [`MuxClient`] connection (protocol v6, `@<id>`-tagged frames). A scatter
//! writes every shard's request before waiting on any response, so a
//! fan-out over N shards costs **one round trip**, not N — the fix for the
//! fan-out regression where per-shard synchronous round trips made a
//! 4-shard cluster slower per-coordinator-thread than one shard.
//!
//! ## Replicas and failover
//!
//! A shard may have read replicas ([`ClusterConfig::replicas`]) tailing its
//! primary's WAL. Broadcast and `PARTIAL` reads round-robin across the
//! primary and its replicas; a read that fails with a transport error fails
//! over to the shard's other endpoints before the statement fails. Writes,
//! `LOOKUP` (which feeds write routing and must see the latest writes),
//! `STATS`, `RECORD`, and `EXPLAIN` always address the primary; a write to
//! a dead primary is an error — failover is reads-only.
//!
//! Consistency model: each shard applies its sub-batch atomically (and
//! durably, on a `masksearch-db` backed shard), but there is **no
//! cross-shard transaction** — a reader racing a multi-shard write can
//! observe a state where only some shards have applied it. Because a mask
//! lives on exactly one shard, per-mask reads are still never torn.
//! Replicas apply whole committed transactions and so only ever serve
//! (possibly slightly stale) shard-atomic states.

use crate::error::{ClusterError, ClusterResult};
use crate::eventloop::{EventLoop, Handler, Waker};
use crate::metrics::{ClusterMetrics, ClusterMetricsSnapshot};
use crate::shard::ShardMap;
use crate::topk;
use masksearch_core::{Mask, MaskId, MaskRecord};
use masksearch_obs::{counters as obs_counters, keys as obs_keys, prom::PromText};
use masksearch_obs::{ProfileRing, QueryProfile};
use masksearch_query::merge::{self, RankedPartial};
use masksearch_query::{Mutation, MutationOutcome, Order, QueryOutput, QueryStats};
use masksearch_service::job::{MutationResponse, QueryResponse};
use masksearch_service::mux::MuxClient;
use masksearch_service::protocol::{self, ClientRequest, Frame, WireResponse};
use masksearch_service::ServiceError;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cluster topology and tuning.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Shard primary addresses; index in this list is the shard id the
    /// [`ShardMap`] routes to.
    pub shard_addrs: Vec<String>,
    /// Read-replica addresses per shard (outer index = shard id). Empty
    /// means no replicas anywhere; when non-empty it must have one (possibly
    /// empty) entry per shard.
    pub replica_addrs: Vec<Vec<String>>,
    /// Hash seed of the shard map (must match what loaded the shards).
    pub shard_seed: u64,
    /// Whether coordinated statements are traced into the coordinator's
    /// profile ring (`STATS PROFILES`). Scatter spans cost two `Instant`
    /// reads per round; disabling restores the exact pre-tracing path.
    pub tracing: bool,
}

impl ClusterConfig {
    /// A configuration over the given shard addresses with defaults
    /// (seed 0, no replicas, tracing on).
    pub fn new(shard_addrs: Vec<String>) -> Self {
        Self {
            shard_addrs,
            replica_addrs: Vec::new(),
            shard_seed: 0,
            tracing: true,
        }
    }

    /// Sets the shard-map hash seed.
    pub fn shard_seed(mut self, seed: u64) -> Self {
        self.shard_seed = seed;
        self
    }

    /// Sets the per-shard read-replica addresses (outer index = shard id;
    /// must match the shard count).
    pub fn replicas(mut self, replica_addrs: Vec<Vec<String>>) -> Self {
        self.replica_addrs = replica_addrs;
        self
    }

    /// Enables or disables coordinator-side query tracing.
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }
}

/// What one coordinated statement produced.
#[derive(Debug)]
pub enum ClusterReply {
    /// Merged rows of a read statement (boxed: `QueryOutput` dwarfs the
    /// other variants).
    Rows(Box<QueryOutput>),
    /// Outcome of a routed write.
    Mutation(MutationOutcome),
    /// Rendered plan of an `EXPLAIN [ANALYZE]` statement: the coordinator's
    /// scatter root with each shard's plan as an indented sub-tree.
    Plan(Vec<String>),
}

/// Capacity of the coordinator's profile ring.
const PROFILE_RING_CAPACITY: usize = 128;

/// Worker threads executing requests behind the coordinator front end's
/// event loop. Each worker blocks on shard round trips for its request's
/// duration, so this bounds the front end's in-flight statement depth.
const COORDINATOR_WORKERS: usize = 8;

/// Every `READ_PROBE_INTERVAL`-th read picked for a shard ignores the
/// down-marks, so an endpoint that recovered (e.g. a restarted primary) is
/// rediscovered without a background health checker.
const READ_PROBE_INTERVAL: usize = 16;

/// One shard endpoint: a multiplexed connection plus a health mark used by
/// read routing.
struct Endpoint {
    addr: String,
    client: MuxClient,
    /// Set when a request to this endpoint failed with a transport error;
    /// cleared by any success (including probe reads).
    down: AtomicBool,
}

impl Endpoint {
    fn connect(addr: &str) -> Result<Self, ServiceError> {
        let client = MuxClient::connect(addr)?.with_reconnect(true);
        Ok(Self {
            addr: addr.to_string(),
            client,
            down: AtomicBool::new(false),
        })
    }
}

/// One shard's endpoints: the primary (index 0) plus its read replicas,
/// with a round-robin cursor for read balancing.
struct ShardLink {
    primary: Endpoint,
    replicas: Vec<Endpoint>,
    rr: AtomicUsize,
}

impl ShardLink {
    fn endpoints(&self) -> usize {
        1 + self.replicas.len()
    }

    /// Endpoint 0 is the primary; `i > 0` is `replicas[i - 1]`.
    fn endpoint(&self, idx: usize) -> &Endpoint {
        if idx == 0 {
            &self.primary
        } else {
            &self.replicas[idx - 1]
        }
    }

    /// Picks the endpoint for the next read: round-robin over the healthy
    /// endpoints, with a periodic probe that includes down-marked ones so
    /// recovery is noticed.
    fn pick_read(&self) -> usize {
        let n = self.endpoints();
        if n == 1 {
            return 0;
        }
        let tick = self.rr.fetch_add(1, Ordering::Relaxed);
        if tick.is_multiple_of(READ_PROBE_INTERVAL) {
            return tick % n;
        }
        for offset in 0..n {
            let idx = (tick + offset) % n;
            if !self.endpoint(idx).down.load(Ordering::Relaxed) {
                return idx;
            }
        }
        // Everything is marked down; any pick surfaces the real error.
        tick % n
    }
}

/// Where a scatter's requests may be served.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Route {
    /// Any endpoint of the shard (round-robin, with failover on transport
    /// errors). Only for requests whose answer may lag the primary by a
    /// replication beat: broadcast queries and `PARTIAL` top-k rounds.
    Read,
    /// The primary only. Mutations, `LOOKUP` (feeds write routing),
    /// `STATS`/`RECORD`/`EXPLAIN` (operate on the authoritative server).
    Primary,
}

struct Inner {
    links: Vec<ShardLink>,
    map: ShardMap,
    metrics: ClusterMetrics,
    /// The owner index: which shard currently holds each mask id. Seeded
    /// from a `LOOKUP *` scatter at connect and maintained by every routed
    /// write, so steady-state write routing never broadcasts `LOOKUP`s.
    owners: std::sync::Mutex<HashMap<MaskId, usize>>,
    /// Client-facing mutation tokens: a resend of an already-routed write is
    /// answered from the recorded outcome instead of being re-routed (the
    /// per-shard sub-batches carry fresh tokens of their own, so only the
    /// coordinator can deduplicate the *whole* statement).
    dedup: masksearch_service::MutationDedup,
    /// Recent coordinated-query span trees, served by `STATS PROFILES`.
    profiles: ProfileRing,
    /// Windowed time series over coordinated statements (`METRICS WINDOW`).
    timeseries: masksearch_obs::TimeSeries,
    /// Whether coordinated statements open a trace (see
    /// [`ClusterConfig::tracing`]).
    tracing: bool,
}

/// A connected cluster coordinator. Cloning is cheap and shares the shard
/// links and metrics.
#[derive(Clone)]
pub struct Coordinator {
    inner: Arc<Inner>,
}

impl Coordinator {
    /// Connects one multiplexed link to every shard primary and replica
    /// (verifying liveness and protocol version via the `PING` handshake)
    /// and returns a coordinator over them.
    pub fn connect(config: ClusterConfig) -> ClusterResult<Self> {
        if config.shard_addrs.is_empty() {
            return Err(ClusterError::Config(
                "a cluster needs at least one shard".to_string(),
            ));
        }
        if !config.replica_addrs.is_empty()
            && config.replica_addrs.len() != config.shard_addrs.len()
        {
            return Err(ClusterError::Config(format!(
                "replica topology lists {} shards, cluster has {}",
                config.replica_addrs.len(),
                config.shard_addrs.len()
            )));
        }
        let map = ShardMap::with_seed(config.shard_addrs.len(), config.shard_seed)?;
        let mut links = Vec::with_capacity(config.shard_addrs.len());
        for (shard, addr) in config.shard_addrs.iter().enumerate() {
            let connect = |addr: &String| {
                Endpoint::connect(addr).map_err(|source| ClusterError::Shard {
                    shard,
                    addr: addr.clone(),
                    source,
                })
            };
            let primary = connect(addr)?;
            let replicas = match config.replica_addrs.get(shard) {
                Some(addrs) => addrs.iter().map(connect).collect::<ClusterResult<_>>()?,
                None => Vec::new(),
            };
            links.push(ShardLink {
                primary,
                replicas,
                rr: AtomicUsize::new(0),
            });
        }
        let coordinator = Self {
            inner: Arc::new(Inner {
                links,
                map,
                metrics: ClusterMetrics::new(),
                owners: std::sync::Mutex::new(HashMap::new()),
                dedup: masksearch_service::MutationDedup::new(),
                profiles: ProfileRing::new(PROFILE_RING_CAPACITY),
                timeseries: masksearch_obs::TimeSeries::new(),
                tracing: config.tracing,
            }),
        };
        // Seed the owner index so routed writes start at zero LOOKUP
        // broadcasts even against shards loaded before this coordinator.
        let seeded = coordinator.fetch_all_owners()?;
        *coordinator.inner.owners.lock().expect("owner index lock") = seeded;
        Ok(coordinator)
    }

    /// One `LOOKUP *` scatter over the shard primaries: the full
    /// `mask id → owning shard` map as the shards currently hold it.
    fn fetch_all_owners(&self) -> ClusterResult<HashMap<MaskId, usize>> {
        let wires = self.scatter_rows(self.all("LOOKUP *"), Route::Primary)?;
        let mut owners = HashMap::new();
        for (shard, wire) in wires.into_iter().enumerate() {
            for id in wire.mask_ids() {
                owners.insert(id, shard);
            }
        }
        Ok(owners)
    }

    /// The partitioning function this cluster agreed on.
    pub fn shard_map(&self) -> ShardMap {
        self.inner.map
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inner.links.len()
    }

    /// Coordinator-level metrics.
    pub fn metrics(&self) -> ClusterMetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    fn shard_err(&self, shard: usize, source: ServiceError) -> ClusterError {
        ClusterError::Shard {
            shard,
            addr: self.inner.links[shard].primary.addr.clone(),
            source,
        }
    }

    /// The same request line addressed to every shard.
    fn all(&self, line: &str) -> Vec<(usize, String)> {
        (0..self.shards()).map(|s| (s, line.to_string())).collect()
    }

    /// Pipelined scatter: **phase 1** starts every request on its shard's
    /// chosen endpoint without waiting (the whole fan-out is in flight after
    /// one pass), **phase 2** gathers responses in request order. The whole
    /// scatter therefore costs one round trip to the slowest shard instead
    /// of one per shard.
    ///
    /// `Route::Read` requests that die with a transport error fail over to
    /// the shard's other endpoints; any other failure (or a transport error
    /// on the primary route) fails the scatter with that shard's identity.
    fn scatter<T>(
        &self,
        requests: Vec<(usize, String)>,
        route: Route,
        parse: impl Fn(usize, Frame) -> Result<T, ServiceError>,
    ) -> ClusterResult<Vec<T>> {
        self.inner.metrics.record_shard_requests(requests.len());
        obs_counters::add(&obs_counters::SCATTER_REQUESTS, requests.len() as u64);
        // Inert unless a trace is open on this thread (both phases run on
        // the coordinating thread, so the span nests under the query).
        let _span = masksearch_obs::span("scatter");
        masksearch_obs::add_counter("shards", requests.len() as u64);
        let started = Instant::now();
        let mut inflight = Vec::with_capacity(requests.len());
        for (shard, line) in requests {
            let link = &self.inner.links[shard];
            let ep = match route {
                Route::Primary => 0,
                Route::Read => link.pick_read(),
            };
            let endpoint = link.endpoint(ep);
            let pending = match route {
                // The primary route carries mutations: TOKEN-wrap them so
                // the link's bounded reconnect can resend exactly-once.
                Route::Primary => endpoint.client.begin_query(&line),
                Route::Read => endpoint.client.begin(&line),
            };
            inflight.push((shard, ep, line, pending));
        }
        let gather = || {
            let mut results = Vec::with_capacity(inflight.len());
            for (shard, ep, line, pending) in inflight {
                let frame = match pending.wait() {
                    Ok(frame) => {
                        let endpoint = self.inner.links[shard].endpoint(ep);
                        endpoint.down.store(false, Ordering::Relaxed);
                        if ep != 0 {
                            self.inner.metrics.record_replica_read();
                        }
                        frame
                    }
                    Err(err @ ServiceError::Io(_)) if route == Route::Read => {
                        self.failover_read(shard, ep, &line, err)?
                    }
                    Err(err) => return Err(self.shard_err(shard, err)),
                };
                results.push(parse(shard, frame).map_err(|e| self.shard_err(shard, e))?);
            }
            Ok(results)
        };
        let result = gather();
        obs_counters::add(
            &obs_counters::SCATTER_WAIT_US,
            started.elapsed().as_micros() as u64,
        );
        result
    }

    /// After a read died on `failed` with a transport error, tries the
    /// shard's other endpoints (primary first) before giving up. A non-
    /// transport error means a server answered — that is the statement's
    /// result, not a reason to re-route.
    fn failover_read(
        &self,
        shard: usize,
        failed: usize,
        line: &str,
        original: ServiceError,
    ) -> ClusterResult<Frame> {
        let link = &self.inner.links[shard];
        link.endpoint(failed).down.store(true, Ordering::Relaxed);
        for idx in 0..link.endpoints() {
            if idx == failed {
                continue;
            }
            let endpoint = link.endpoint(idx);
            match endpoint.client.call(line) {
                Ok(frame) => {
                    endpoint.down.store(false, Ordering::Relaxed);
                    self.inner.metrics.record_failover();
                    if idx != 0 {
                        self.inner.metrics.record_replica_read();
                    }
                    return Ok(frame);
                }
                Err(ServiceError::Io(_)) => {
                    endpoint.down.store(true, Ordering::Relaxed);
                }
                Err(err) => return Err(self.shard_err(shard, err)),
            }
        }
        Err(self.shard_err(shard, original))
    }

    /// Scatter expecting a rows frame from every shard.
    fn scatter_rows(
        &self,
        requests: Vec<(usize, String)>,
        route: Route,
    ) -> ClusterResult<Vec<WireResponse>> {
        self.scatter(requests, route, |_, frame| match frame {
            Frame::Rows(rows) => Ok(rows),
            other => Err(ServiceError::Protocol(format!(
                "expected rows, got {other:?}"
            ))),
        })
    }

    /// Scatter expecting a one-line control reply from every shard.
    fn scatter_control(
        &self,
        requests: Vec<(usize, String)>,
        route: Route,
    ) -> ClusterResult<Vec<String>> {
        self.scatter(requests, route, |_, frame| match frame {
            Frame::Control(line) => Ok(line),
            other => Err(ServiceError::Protocol(format!(
                "expected a control reply, got {other:?}"
            ))),
        })
    }

    /// Scatter expecting a plan frame from every shard.
    fn scatter_plans(&self, requests: Vec<(usize, String)>) -> ClusterResult<Vec<Vec<String>>> {
        self.scatter(requests, Route::Primary, |_, frame| match frame {
            Frame::Plan(lines) => Ok(lines),
            other => Err(ServiceError::Protocol(format!(
                "expected a plan, got {other:?}"
            ))),
        })
    }

    /// Compiles and executes one SQL statement against the cluster.
    ///
    /// `EXPLAIN [ANALYZE] <query>` is recognised here too and answered with
    /// [`ClusterReply::Plan`] — the coordinator's scatter root over each
    /// shard's own plan (see [`Coordinator::explain_sql`]).
    pub fn execute_sql(&self, sql: &str) -> ClusterResult<ClusterReply> {
        let trace = self
            .inner
            .tracing
            .then(|| masksearch_obs::trace("cluster_query"));
        let started = Instant::now();
        let result = self.execute_sql_inner(sql);
        if result.is_err() {
            self.inner.metrics.record_failed();
        }
        self.observe_series(started.elapsed(), &result);
        self.observe(trace, sql, started, result.is_ok());
        result
    }

    /// Feeds one coordinated statement into the windowed time series.
    fn observe_series(&self, wall: Duration, result: &ClusterResult<ClusterReply>) {
        let stages = match result {
            Ok(ClusterReply::Rows(output)) => masksearch_obs::StageCounts {
                candidates: output.stats.candidates,
                pruned: output.stats.pruned,
                verified: output.stats.verified,
                loaded: output.stats.masks_loaded,
            },
            _ => masksearch_obs::StageCounts::default(),
        };
        self.inner
            .timeseries
            .observe(wall.as_micros() as u64, result.is_ok(), stages);
    }

    /// Closes `trace` and, when the statement succeeded, records its span
    /// tree in the profile ring. A failed statement's trace is discarded —
    /// its timings describe an aborted scatter, not a query.
    fn observe(
        &self,
        trace: Option<masksearch_obs::TraceGuard>,
        sql: &str,
        started: Instant,
        ok: bool,
    ) {
        let Some(trace) = trace else { return };
        if let (Some(root), true) = (trace.finish(), ok) {
            self.inner
                .profiles
                .record(sql.trim(), started.elapsed().as_micros() as u64, root);
        }
    }

    /// Executes one SQL statement carrying a client deduplication token
    /// (`TOKEN <id> <sql>`): reads pass straight through, and a mutation
    /// whose token already applied is answered from the recorded outcome
    /// without touching any shard — the coordinator-level half of
    /// exactly-once client resends.
    pub fn execute_sql_tokened(&self, token: u64, sql: &str) -> ClusterResult<ClusterReply> {
        // Explains never mutate, so the token is meaningless; the plain
        // path also traces them like any other coordinated statement.
        if masksearch_sql::strip_explain(sql).is_some() {
            return self.execute_sql(sql);
        }
        let trace = self
            .inner
            .tracing
            .then(|| masksearch_obs::trace("cluster_query"));
        let started = Instant::now();
        let result = self.execute_sql_tokened_inner(token, sql);
        self.observe_series(started.elapsed(), &result);
        self.observe(trace, sql, started, result.is_ok());
        result
    }

    fn execute_sql_tokened_inner(&self, token: u64, sql: &str) -> ClusterResult<ClusterReply> {
        use masksearch_service::Admission;
        // A transaction script mutates as one unit, so it dedups as one
        // unit too (mirroring the shard engine's tokened script path).
        if let Some((mutations, commit)) = compile_transaction_script(sql)? {
            return match self.inner.dedup.begin(token) {
                Admission::Replay(outcome) => {
                    self.inner.metrics.record_deduped();
                    Ok(ClusterReply::Mutation(outcome))
                }
                Admission::Execute => {
                    let permit = self.inner.dedup.permit(token);
                    let outcome = self
                        .run_transaction_script(sql, mutations, commit)
                        .inspect_err(|_| self.inner.metrics.record_failed())?;
                    permit.finish(outcome);
                    Ok(ClusterReply::Mutation(outcome))
                }
            };
        }
        let statement = masksearch_sql::compile_statement(sql)?;
        if !matches!(
            statement.routing(),
            masksearch_sql::Routing::ByImage
                | masksearch_sql::Routing::ByMaskId
                | masksearch_sql::Routing::Ddl
        ) {
            return self.execute_sql_with(sql, statement);
        }
        match self.inner.dedup.begin(token) {
            Admission::Replay(outcome) => {
                self.inner.metrics.record_deduped();
                Ok(ClusterReply::Mutation(outcome))
            }
            Admission::Execute => {
                // The permit abandons the token on error or unwind, so a
                // resend never parks behind a dead execution.
                let permit = self.inner.dedup.permit(token);
                let reply = self.execute_sql_with(sql, statement)?;
                if let ClusterReply::Mutation(outcome) = &reply {
                    permit.finish(*outcome);
                }
                Ok(reply)
            }
        }
    }

    /// [`Coordinator::execute_sql`] over an already compiled statement
    /// (avoids re-parsing large `INSERT` payloads on the tokened path).
    fn execute_sql_with(
        &self,
        sql: &str,
        statement: masksearch_sql::Statement,
    ) -> ClusterResult<ClusterReply> {
        let result = self.execute_compiled(sql, statement);
        if result.is_err() {
            self.inner.metrics.record_failed();
        }
        result
    }

    fn execute_sql_inner(&self, sql: &str) -> ClusterResult<ClusterReply> {
        if let Some((mode, inner)) = masksearch_sql::strip_explain(sql) {
            let analyze = mode == masksearch_sql::ExplainMode::Analyze;
            return Ok(ClusterReply::Plan(self.explain_sql(analyze, inner)?));
        }
        if let Some((mutations, commit)) = compile_transaction_script(sql)? {
            return Ok(ClusterReply::Mutation(
                self.run_transaction_script(sql, mutations, commit)?,
            ));
        }
        let statement = masksearch_sql::compile_statement(sql)?;
        self.execute_compiled(sql, statement)
    }

    /// Renders the distributed plan of a query: a `cluster` root naming the
    /// scatter routing, then one `shard <i>` node per shard with the shard's
    /// own plan indented beneath it. With `analyze`, each shard *executes*
    /// the query and its sub-tree carries measured stage times and counters
    /// (the single-node `EXPLAIN ANALYZE` contract: counters equal the
    /// shard's `QueryStats` exactly), and the root records the scatter's
    /// wall time. Plans always come from the primaries, whose state is
    /// authoritative.
    ///
    /// Ranked queries are explained shard-locally as full queries; at
    /// execution time the coordinator instead issues bounded `PARTIAL`
    /// requests plus refinement rounds, which the root line names so the
    /// plan does not overstate what each shard returns.
    pub fn explain_sql(&self, analyze: bool, sql: &str) -> ClusterResult<Vec<String>> {
        let statement = masksearch_sql::compile_statement(sql)?;
        let routing = match statement.routing() {
            masksearch_sql::Routing::Broadcast => "broadcast".to_string(),
            masksearch_sql::Routing::Ranked { k, .. } => format!("ranked_partial k={k}"),
            masksearch_sql::Routing::ByImage
            | masksearch_sql::Routing::ByMaskId
            | masksearch_sql::Routing::Ddl => {
                return Err(ClusterError::Sql(
                    "EXPLAIN applies to queries, not writes".to_string(),
                ))
            }
            masksearch_sql::Routing::Control => {
                return Err(ClusterError::Sql(
                    "EXPLAIN applies to queries, not transaction control".to_string(),
                ))
            }
        };
        let keyword = if analyze {
            "EXPLAIN ANALYZE"
        } else {
            "EXPLAIN"
        };
        let started = Instant::now();
        let plans = self.scatter_plans(self.all(&format!("{keyword} {sql}")))?;
        let mut lines = Vec::with_capacity(plans.iter().map(Vec::len).sum::<usize>() + 1);
        let mut root = format!("cluster shards={} routing={routing}", self.shards());
        if analyze {
            root.push_str(&format!(
                " {}={}",
                obs_keys::WALL_US,
                started.elapsed().as_micros()
            ));
        }
        lines.push(root);
        for (shard, plan) in plans.iter().enumerate() {
            lines.push(format!(
                "  shard {shard} addr={}",
                self.inner.links[shard].primary.addr
            ));
            for line in plan {
                lines.push(format!("    {line}"));
            }
        }
        Ok(lines)
    }

    /// The most recent `n` coordinated-query profiles, newest first.
    pub fn recent_profiles(&self, n: usize) -> Vec<QueryProfile> {
        self.inner.profiles.recent(n)
    }

    /// The coordinator's own Prometheus text exposition: routing,
    /// refinement, replica-read and failover counters plus the
    /// process-global observability counters (scatter width and wait time
    /// among them). Shard-level metrics are scraped from the shards
    /// directly — summing histograms across processes is the scraper's job,
    /// not the coordinator's.
    pub fn prometheus_text(&self) -> String {
        let m = self.metrics();
        let mut p = PromText::new();
        p.gauge(
            "masksearch_cluster_shards",
            "Number of shards this coordinator scatters over.",
            self.shards() as f64,
        );
        p.gauge(
            "masksearch_cluster_uptime_seconds",
            "Seconds since the coordinator started.",
            m.uptime_ms as f64 / 1e3,
        );
        p.counter(
            "masksearch_cluster_queries_total",
            "Read statements coordinated.",
            m.queries,
        );
        p.counter(
            "masksearch_cluster_ranked_queries_total",
            "Distributed top-k statements among them.",
            m.ranked_queries,
        );
        p.counter(
            "masksearch_cluster_mutations_total",
            "Write statements routed.",
            m.mutations,
        );
        p.counter(
            "masksearch_cluster_mutations_deduped_total",
            "Mutations answered from the coordinator token-dedup registry.",
            m.mutations_deduped,
        );
        p.counter(
            "masksearch_cluster_failed_total",
            "Statements that failed.",
            m.failed,
        );
        p.counter(
            "masksearch_cluster_shard_requests_total",
            "Shard requests issued by scatter rounds.",
            m.shard_requests,
        );
        p.counter(
            "masksearch_cluster_replica_reads_total",
            "Read requests served by a replica endpoint.",
            m.replica_reads,
        );
        p.counter(
            "masksearch_cluster_failovers_total",
            "Reads re-routed to another endpoint after a transport error.",
            m.failovers,
        );
        p.counter(
            "masksearch_cluster_topk_rounds_total",
            "Distributed top-k scatter rounds.",
            m.topk_rounds,
        );
        p.counter(
            "masksearch_cluster_topk_refined_requests_total",
            "Shard re-queries issued by top-k refinement.",
            m.topk_refined_requests,
        );
        p.counter(
            "masksearch_cluster_topk_single_round_total",
            "Ranked queries the planner ran in single-round mode.",
            m.topk_single_round,
        );
        p.counter(
            "masksearch_cluster_masks_inserted_total",
            "Masks inserted through the coordinator.",
            m.masks_inserted,
        );
        p.counter(
            "masksearch_cluster_masks_deleted_total",
            "Masks deleted through the coordinator.",
            m.masks_deleted,
        );
        p.counter(
            "masksearch_cluster_masks_updated_total",
            "Masks re-masked in place (UPDATE) through the coordinator.",
            m.masks_updated,
        );
        p.counter(
            "masksearch_cluster_transactions_total",
            "BEGIN ... COMMIT scripts applied atomically on a single shard.",
            m.transactions,
        );
        p.counter(
            "masksearch_cluster_owner_resolutions_total",
            "Mask-id owners resolved from the in-memory owner index.",
            m.owner_resolutions,
        );
        p.counter(
            "masksearch_cluster_lookup_broadcasts_total",
            "LOOKUP broadcasts issued for ids the owner index did not know.",
            m.lookup_broadcasts,
        );
        p.counter(
            "masksearch_cluster_masks_relocated_total",
            "Stale replicas evicted by overwrites that moved a mask.",
            m.masks_relocated,
        );
        p.counter(
            "masksearch_cluster_profiles_recorded_total",
            "Coordinated-query profiles recorded.",
            self.inner.profiles.recorded(),
        );
        for (name, value) in obs_counters::snapshot() {
            p.counter(
                &format!("masksearch_{name}_total"),
                "Process-global observability counter.",
                value,
            );
        }
        p.finish()
    }

    /// Executes an already compiled statement (`sql` is the raw text, still
    /// needed because read statements are forwarded to shards verbatim).
    fn execute_compiled(
        &self,
        sql: &str,
        statement: masksearch_sql::Statement,
    ) -> ClusterResult<ClusterReply> {
        match statement.routing() {
            masksearch_sql::Routing::Broadcast => {
                self.inner.metrics.record_query();
                Ok(ClusterReply::Rows(Box::new(self.broadcast_query(sql)?)))
            }
            masksearch_sql::Routing::Ranked { k, order } => {
                self.inner.metrics.record_query();
                Ok(ClusterReply::Rows(Box::new(self.ranked_query(sql, k, order)?)))
            }
            masksearch_sql::Routing::ByImage => {
                let masksearch_sql::Statement::Mutation(Mutation::Insert(batch)) = statement else {
                    return Err(ClusterError::Internal(
                        "ByImage routing on a non-insert statement".to_string(),
                    ));
                };
                Ok(ClusterReply::Mutation(self.routed_insert(batch)?))
            }
            masksearch_sql::Routing::ByMaskId => match statement {
                masksearch_sql::Statement::Mutation(Mutation::Delete(ids)) => {
                    Ok(ClusterReply::Mutation(self.routed_delete(ids)?))
                }
                masksearch_sql::Statement::Mutation(Mutation::Update(updates)) => {
                    Ok(ClusterReply::Mutation(self.routed_update(sql, updates)?))
                }
                _ => Err(ClusterError::Internal(
                    "ByMaskId routing on a non-delete, non-update statement".to_string(),
                )),
            },
            masksearch_sql::Routing::Ddl => Ok(ClusterReply::Mutation(self.broadcast_ddl(sql)?)),
            masksearch_sql::Routing::Control => Err(ClusterError::Sql(
                "BEGIN/COMMIT/ROLLBACK control a connection's open transaction; \
                 on a cluster send the whole transaction as one `BEGIN; ...; COMMIT` script"
                    .to_string(),
            )),
        }
    }

    /// Forwards `sql` to every shard (read-balanced) and merges the
    /// disjoint row sets.
    fn broadcast_query(&self, sql: &str) -> ClusterResult<QueryOutput> {
        let partials = self
            .scatter_rows(self.all(sql), Route::Read)?
            .into_iter()
            .map(wire_to_output)
            .collect();
        Ok(merge::merge_unordered(partials))
    }

    /// Distributed top-k over `PARTIAL` requests. The planner picks between
    /// the threshold algorithm (small first-round budgets, refinement
    /// rounds as needed) and single-round mode (full `k` to every shard) —
    /// both return byte-identical rows, so the choice is purely a
    /// bandwidth-vs-round-trips trade informed by observed convergence.
    fn ranked_query(&self, sql: &str, k: usize, order: Order) -> ClusterResult<QueryOutput> {
        let single_round = masksearch_plan::choose_single_round(
            k,
            self.shards(),
            self.inner.metrics.snapshot().mean_threshold_rounds(),
        );
        let run = topk::distributed_topk(k, order, self.shards(), single_round, |requests| {
            let lines: Vec<(usize, String)> = requests
                .iter()
                .map(|&(shard, k_shard)| (shard, format!("PARTIAL K={k_shard} {sql}")))
                .collect();
            let wires = self.scatter_rows(lines, Route::Read)?;
            Ok::<Vec<RankedPartial>, ClusterError>(
                wires
                    .into_iter()
                    .map(|wire| {
                        let bound = wire.summary.bound;
                        RankedPartial {
                            output: wire_to_output(wire),
                            bound,
                        }
                    })
                    .collect(),
            )
        })?;
        self.inner
            .metrics
            .record_ranked(run.rounds, run.refined_requests, single_round);
        Ok(run.output)
    }

    /// Which shards currently hold each of `ids` (shard → present ids),
    /// resolved with a `LOOKUP` broadcast to the primaries (authoritative).
    /// Write routing goes through [`Coordinator::resolve_owners`] instead,
    /// which only falls back to this broadcast for ids the owner index does
    /// not know.
    fn locate(&self, ids: &[MaskId]) -> ClusterResult<Vec<Vec<MaskId>>> {
        if ids.is_empty() {
            return Ok(vec![Vec::new(); self.shards()]);
        }
        let mut line = String::from("LOOKUP");
        for id in ids {
            line.push(' ');
            line.push_str(&id.raw().to_string());
        }
        let wires = self.scatter_rows(self.all(&line), Route::Primary)?;
        Ok(wires.into_iter().map(|w| w.mask_ids()).collect())
    }

    /// Union of the shards' holdings for `ids`, ascending and deduplicated.
    /// Always asks the primaries; what it learns heals the owner index.
    pub fn lookup(&self, ids: &[MaskId]) -> ClusterResult<Vec<MaskId>> {
        let located = self.locate(ids)?;
        {
            let mut owners = self.inner.owners.lock().expect("owner index lock");
            for id in ids {
                owners.remove(id);
            }
            for (shard, present) in located.iter().enumerate() {
                for &id in present {
                    owners.insert(id, shard);
                }
            }
        }
        let mut present: Vec<MaskId> = located.into_iter().flatten().collect();
        present.sort_unstable();
        present.dedup();
        Ok(present)
    }

    /// Every mask id the cluster holds (`LOOKUP *` scattered over the
    /// primaries), ascending; the answer also reseeds the owner index.
    pub fn lookup_all(&self) -> ClusterResult<Vec<MaskId>> {
        let owners = self.fetch_all_owners()?;
        let mut ids: Vec<MaskId> = owners.keys().copied().collect();
        ids.sort_unstable();
        *self.inner.owners.lock().expect("owner index lock") = owners;
        Ok(ids)
    }

    /// Resolves the owning shard of each of `ids`. Owner-index hits cost no
    /// shard round trip; the ids the index does not know (if any) are
    /// resolved with **one** `LOOKUP` broadcast whose answer heals the
    /// index. Ids held by no shard are absent from the result.
    fn resolve_owners(&self, ids: &[MaskId]) -> ClusterResult<HashMap<MaskId, usize>> {
        let mut resolved = HashMap::with_capacity(ids.len());
        let mut unknown: Vec<MaskId> = Vec::new();
        {
            let owners = self.inner.owners.lock().expect("owner index lock");
            for &id in ids {
                match owners.get(&id) {
                    Some(&shard) => {
                        resolved.insert(id, shard);
                    }
                    None => unknown.push(id),
                }
            }
        }
        self.inner.metrics.record_owner_resolutions(resolved.len());
        if !unknown.is_empty() {
            self.inner.metrics.record_lookup_broadcast();
            let located = self.locate(&unknown)?;
            let mut owners = self.inner.owners.lock().expect("owner index lock");
            for (shard, present) in located.into_iter().enumerate() {
                for id in present {
                    owners.insert(id, shard);
                    resolved.insert(id, shard);
                }
            }
        }
        Ok(resolved)
    }

    /// Routes an `INSERT` batch: each tuple goes to the shard owning its
    /// image id; stale replicas of overwritten mask ids that lived on other
    /// shards (the overwrite moved the mask to a new image) are deleted
    /// first so no id ever resolves on two shards.
    fn routed_insert(&self, batch: Vec<(MaskRecord, Mask)>) -> ClusterResult<MutationOutcome> {
        // The single-node wire contract reports one insert per *tuple*, so
        // remember the requested count before deduplication.
        let requested = batch.len();
        // Within one statement, the last tuple for a mask id wins (the
        // single-node batch applies tuples in order, so its final state is
        // the last write); earlier duplicates are dropped before routing so
        // two shards cannot both end up holding the id.
        let mut dedup: BTreeMap<MaskId, (MaskRecord, Mask)> = BTreeMap::new();
        for (record, mask) in batch {
            dedup.insert(record.mask_id, (record, mask));
        }
        let mut owner: HashMap<MaskId, usize> = HashMap::new();
        let mut per_shard: Vec<Vec<(MaskRecord, Mask)>> = vec![Vec::new(); self.shards()];
        for (id, (record, mask)) in dedup {
            let shard = self.inner.map.shard_for_record(&record);
            owner.insert(id, shard);
            per_shard[shard].push((record, mask));
        }
        // Phase 1: evict stale replicas from non-owner shards. The owner
        // index knows each overwritten id's current holder, so this costs
        // no `LOOKUP` broadcast — an id the index does not know is new and
        // cannot have a stale replica anywhere.
        let mut relocated = 0u64;
        let mut stale_per_shard: Vec<Vec<MaskId>> = vec![Vec::new(); self.shards()];
        {
            let owners = self.inner.owners.lock().expect("owner index lock");
            for (&id, &new_shard) in &owner {
                if let Some(&current) = owners.get(&id) {
                    if current != new_shard {
                        stale_per_shard[current].push(id);
                    }
                }
            }
        }
        self.inner.metrics.record_owner_resolutions(owner.len());
        let stale_work: Vec<(usize, String)> = stale_per_shard
            .iter()
            .enumerate()
            .filter(|(_, stale)| !stale.is_empty())
            .map(|(shard, stale)| (shard, render_delete(stale)))
            .collect();
        if !stale_work.is_empty() {
            let deleted = self.scatter_rows(stale_work, Route::Primary)?;
            relocated += deleted.iter().map(|r| r.summary.deleted).sum::<u64>();
        }

        // Phase 2: per-shard atomic inserts.
        let requests: Vec<(usize, String)> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, batch)| !batch.is_empty())
            .map(|(shard, batch)| (shard, render_insert(batch)))
            .collect();
        let responses = self.scatter_rows(requests, Route::Primary)?;
        let applied: u64 = responses.iter().map(|r| r.summary.inserted).sum();
        {
            let mut owners = self.inner.owners.lock().expect("owner index lock");
            for (id, shard) in owner {
                owners.insert(id, shard);
            }
        }
        self.inner.metrics.record_mutation(applied, 0, 0, relocated);
        // Report the requested tuple count, matching what a single-node
        // server answers for the same statement (duplicate-id tuples count
        // once per tuple there too, the later ones overwriting in place).
        Ok(MutationOutcome {
            inserted: requested,
            deleted: 0,
            updated: 0,
        })
    }

    /// Routes a `DELETE`: owners come from the owner index (steady state
    /// costs zero `LOOKUP` broadcasts; unknown ids fall back to one); an id
    /// held by no shard fails the whole statement *before* any shard is
    /// mutated (single-node `DELETE` semantics); the rest splits into
    /// per-shard atomic batches.
    fn routed_delete(&self, ids: Vec<MaskId>) -> ClusterResult<MutationOutcome> {
        let ids: Vec<MaskId> = {
            let mut seen = BTreeSet::new();
            ids.into_iter().filter(|id| seen.insert(*id)).collect()
        };
        if ids.is_empty() {
            return Ok(MutationOutcome::default());
        }
        let owners = self.resolve_owners(&ids)?;
        for &id in &ids {
            if !owners.contains_key(&id) {
                return Err(ClusterError::UnknownMask(id));
            }
        }
        let mut per_shard: Vec<Vec<MaskId>> = vec![Vec::new(); self.shards()];
        for &id in &ids {
            per_shard[owners[&id]].push(id);
        }
        let requests: Vec<(usize, String)> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, present)| !present.is_empty())
            .map(|(shard, present)| (shard, render_delete(present)))
            .collect();
        self.scatter_rows(requests, Route::Primary)?;
        {
            let mut map = self.inner.owners.lock().expect("owner index lock");
            for &id in &ids {
                map.remove(&id);
            }
        }
        self.inner
            .metrics
            .record_mutation(0, ids.len() as u64, 0, 0);
        Ok(MutationOutcome {
            inserted: 0,
            deleted: ids.len(),
            updated: 0,
        })
    }

    /// Routes an `UPDATE`: the sharding key is immutable, so the statement
    /// is forwarded verbatim to the shard owning its target mask (resolved
    /// from the owner index — steady state costs zero `LOOKUP` broadcasts).
    /// An id held by no shard fails before any side effect.
    fn routed_update(
        &self,
        sql: &str,
        updates: Vec<masksearch_query::MaskUpdate>,
    ) -> ClusterResult<MutationOutcome> {
        let ids: Vec<MaskId> = updates.iter().map(|u| u.mask_id).collect();
        let owners = self.resolve_owners(&ids)?;
        for &id in &ids {
            if !owners.contains_key(&id) {
                return Err(ClusterError::UnknownMask(id));
            }
        }
        let shards: BTreeSet<usize> = ids.iter().map(|id| owners[id]).collect();
        // The grammar scopes one UPDATE to one mask id, so one owning shard.
        let Some(&shard) = shards.first().filter(|_| shards.len() == 1) else {
            return Err(ClusterError::Internal(
                "UPDATE statement spans shards".to_string(),
            ));
        };
        let responses = self.scatter_rows(vec![(shard, sql.to_string())], Route::Primary)?;
        let updated: u64 = responses.iter().map(|r| r.summary.updated).sum();
        self.inner.metrics.record_mutation(0, 0, updated, 0);
        Ok(MutationOutcome {
            inserted: 0,
            deleted: 0,
            updated: updated as usize,
        })
    }

    /// Applies a DDL statement (`CREATE INDEX` / `DROP INDEX`) on every
    /// shard primary. Every shard must succeed, so index definitions cannot
    /// drift between shards; `IF [NOT] EXISTS` makes retries after a
    /// partial failure idempotent.
    fn broadcast_ddl(&self, sql: &str) -> ClusterResult<MutationOutcome> {
        self.scatter_rows(self.all(sql), Route::Primary)?;
        self.inner.metrics.record_mutation(0, 0, 0, 0);
        Ok(MutationOutcome::default())
    }

    /// Executes a recognised `BEGIN; …; COMMIT` script: every statement
    /// must resolve to the same owning shard, and the raw script is then
    /// forwarded there verbatim so the shard applies it as **one** atomic
    /// storage commit. A script that would touch two shards — including an
    /// overwrite that would move a mask between shards — is rejected loudly
    /// before any side effect: there is no cross-shard transaction. A
    /// script ending in `ROLLBACK` answers a zero outcome without touching
    /// any shard.
    fn run_transaction_script(
        &self,
        sql: &str,
        mutations: Vec<Mutation>,
        commit: bool,
    ) -> ClusterResult<MutationOutcome> {
        if !commit || mutations.is_empty() {
            return Ok(MutationOutcome::default());
        }
        let mut target: Option<usize> = None;
        let mut require = |shard: usize| -> ClusterResult<()> {
            match target {
                None => {
                    target = Some(shard);
                    Ok(())
                }
                Some(t) if t == shard => Ok(()),
                Some(t) => Err(ClusterError::Sql(format!(
                    "cross-shard transaction: statements land on shard {t} and shard {shard}; \
                     a cluster transaction must touch a single shard"
                ))),
            }
        };
        // Ids created by an earlier statement in the same script: later
        // DELETEs and UPDATEs must observe them (single-node transaction
        // semantics) without consulting the owner index, which only knows
        // committed state.
        let mut pending: HashMap<MaskId, usize> = HashMap::new();
        for mutation in &mutations {
            match mutation {
                Mutation::Insert(batch) => {
                    for (record, _) in batch {
                        let shard = self.inner.map.shard_for_record(record);
                        if let Some(&current) = self
                            .inner
                            .owners
                            .lock()
                            .expect("owner index lock")
                            .get(&record.mask_id)
                        {
                            if current != shard {
                                return Err(ClusterError::Sql(format!(
                                    "cross-shard transaction: overwriting mask {} would move \
                                     it from shard {current} to shard {shard}; relocate it \
                                     outside a transaction",
                                    record.mask_id.raw()
                                )));
                            }
                        }
                        require(shard)?;
                        pending.insert(record.mask_id, shard);
                    }
                }
                Mutation::Delete(ids) => {
                    let committed: Vec<MaskId> = ids
                        .iter()
                        .copied()
                        .filter(|id| !pending.contains_key(id))
                        .collect();
                    let owners = self.resolve_owners(&committed)?;
                    for &id in ids {
                        match pending.get(&id).or_else(|| owners.get(&id)) {
                            Some(&shard) => require(shard)?,
                            None => return Err(ClusterError::UnknownMask(id)),
                        }
                    }
                }
                Mutation::Update(updates) => {
                    let committed: Vec<MaskId> = updates
                        .iter()
                        .map(|u| u.mask_id)
                        .filter(|id| !pending.contains_key(id))
                        .collect();
                    let owners = self.resolve_owners(&committed)?;
                    for update in updates {
                        let id = update.mask_id;
                        match pending.get(&id).or_else(|| owners.get(&id)) {
                            Some(&shard) => require(shard)?,
                            None => return Err(ClusterError::UnknownMask(id)),
                        }
                    }
                }
                Mutation::CreateIndex { .. } | Mutation::DropIndex { .. } => {
                    return Err(ClusterError::Sql(
                        "DDL inside a transaction script is not supported on a cluster; \
                         run CREATE INDEX / DROP INDEX as its own statement"
                            .to_string(),
                    ))
                }
            }
        }
        let Some(shard) = target else {
            return Ok(MutationOutcome::default());
        };
        let responses = self.scatter_rows(vec![(shard, sql.to_string())], Route::Primary)?;
        let summary = responses[0].summary;
        // Replay the script's ownership effects into the owner index in
        // statement order, so a later DELETE wins over an earlier INSERT.
        {
            let mut owners = self.inner.owners.lock().expect("owner index lock");
            for mutation in &mutations {
                match mutation {
                    Mutation::Insert(batch) => {
                        for (record, _) in batch {
                            owners.insert(record.mask_id, shard);
                        }
                    }
                    Mutation::Delete(ids) => {
                        for id in ids {
                            owners.remove(id);
                        }
                    }
                    _ => {}
                }
            }
        }
        self.inner.metrics.record_transaction();
        self.inner
            .metrics
            .record_mutation(summary.inserted, summary.deleted, summary.updated, 0);
        Ok(MutationOutcome {
            inserted: summary.inserted as usize,
            deleted: summary.deleted as usize,
            updated: summary.updated as usize,
        })
    }

    /// One aggregated `STATS` line: shard-primary counters summed (latency
    /// percentiles maxed), plus the coordinator's own scatter/refinement/
    /// replication counters.
    pub fn stats_line(&self) -> ClusterResult<String> {
        let lines = self.scatter_control(self.all("STATS"), Route::Primary)?;
        let mut sums: BTreeMap<&'static str, f64> = BTreeMap::new();
        let mut maxes: BTreeMap<&'static str, f64> = BTreeMap::new();
        // The aggregation arrays are the shared registry the shard-side
        // `STATS` writer spells its keys from, so writer and merge cannot
        // drift apart.
        for line in &lines {
            for token in line.split_ascii_whitespace().skip(1) {
                let Some((key, value)) = token.split_once('=') else {
                    continue;
                };
                let Ok(value) = value.parse::<f64>() else {
                    continue;
                };
                if let Some(key) = obs_keys::STATS_SUM_KEYS.iter().find(|k| **k == key) {
                    *sums.entry(key).or_insert(0.0) += value;
                } else if let Some(key) = obs_keys::STATS_MAX_KEYS.iter().find(|k| **k == key) {
                    let slot = maxes.entry(key).or_insert(0.0);
                    *slot = slot.max(value);
                }
            }
        }
        let m = self.metrics();
        let mut line = format!("STATS shards={}", self.shards());
        for (key, value) in sums {
            if key == obs_keys::QPS {
                line.push_str(&format!(" {key}={value:.3}"));
            } else {
                line.push_str(&format!(" {key}={}", value as u64));
            }
        }
        for (key, value) in maxes {
            line.push_str(&format!(" {key}={}", value as u64));
        }
        line.push_str(&format!(
            " cluster_queries={} cluster_ranked={} cluster_mutations={} cluster_deduped={} \
             cluster_failed={} shard_requests={} replica_reads={} failovers={} topk_rounds={} \
             topk_refined_requests={} topk_single_round={} relocated={} cluster_transactions={} \
             cluster_updated={} owner_resolutions={} lookup_broadcasts={}",
            m.queries,
            m.ranked_queries,
            m.mutations,
            m.mutations_deduped,
            m.failed,
            m.shard_requests,
            m.replica_reads,
            m.failovers,
            m.topk_rounds,
            m.topk_refined_requests,
            m.topk_single_round,
            m.masks_relocated,
            m.transactions,
            m.masks_updated,
            m.owner_resolutions,
            m.lookup_broadcasts,
        ));
        Ok(line)
    }

    /// Summary of the last `secs` seconds of coordinated statements from
    /// the coordinator's own windowed time series.
    pub fn window(&self, secs: u64) -> masksearch_obs::WindowSummary {
        self.inner.timeseries.window(secs)
    }

    /// The coordinator's windowed gauges for `secs` as a Prometheus text
    /// exposition (the payload of a `METRICS WINDOW <secs>` frame).
    pub fn metrics_window_text(&self, secs: u64) -> String {
        let mut text = String::new();
        self.inner.timeseries.render_prometheus(&[secs], &mut text);
        text
    }

    /// Cluster-wide cumulative values of the `MONITOR` counters: every
    /// shard primary's `STATS` line scattered and the
    /// [`obs_keys::MONITOR_DELTA_KEYS`] summed, so coordinator `MONITOR`
    /// deltas sum to the same totals an aggregated `STATS` reports.
    pub fn monitor_values(&self) -> ClusterResult<Vec<(&'static str, u64)>> {
        let lines = self.scatter_control(self.all("STATS"), Route::Primary)?;
        let mut sums = vec![0u64; obs_keys::MONITOR_DELTA_KEYS.len()];
        for line in &lines {
            for token in line.split_ascii_whitespace().skip(1) {
                let Some((key, value)) = token.split_once('=') else {
                    continue;
                };
                let Ok(value) = value.parse::<u64>() else {
                    continue;
                };
                if let Some(pos) = obs_keys::MONITOR_DELTA_KEYS.iter().position(|k| *k == key) {
                    sums[pos] += value;
                }
            }
        }
        Ok(obs_keys::MONITOR_DELTA_KEYS
            .iter()
            .zip(sums)
            .map(|(&key, value)| (key, value))
            .collect())
    }

    /// Broadcasts a `RECORD` control to every shard primary and merges the
    /// replies. `START` derives one file per shard (`<path>.shard<i>`) from
    /// the given base path, so a cluster capture replays shard-by-shard;
    /// counters are summed and `active` means *every* shard is recording.
    pub fn record_control(
        &self,
        control: &protocol::RecordControl,
    ) -> ClusterResult<masksearch_obs::RecorderStatus> {
        let lines = match control {
            protocol::RecordControl::Start(Some(base)) => {
                let requests = (0..self.shards())
                    .map(|shard| (shard, format!("RECORD START {base}.shard{shard}")))
                    .collect();
                self.scatter_control(requests, Route::Primary)?
            }
            protocol::RecordControl::Start(None) => {
                return Err(ClusterError::Sql(
                    "RECORD START needs a path on a coordinator (per-shard \
                     files are derived from it)"
                        .to_string(),
                ))
            }
            protocol::RecordControl::Stop => {
                self.scatter_control(self.all("RECORD STOP"), Route::Primary)?
            }
            protocol::RecordControl::Status => {
                self.scatter_control(self.all("RECORD STATUS"), Route::Primary)?
            }
        };
        let mut merged = masksearch_obs::RecorderStatus {
            active: !lines.is_empty(),
            path: if let protocol::RecordControl::Start(Some(base)) = control {
                Some(base.into())
            } else {
                None
            },
            records: 0,
            bytes: 0,
            dropped: 0,
        };
        for line in &lines {
            for token in line.split_ascii_whitespace().skip(1) {
                let Some((key, value)) = token.split_once('=') else {
                    continue;
                };
                match key {
                    "active" => merged.active &= value == "1",
                    // No base path to report (STOP/STATUS): the first
                    // shard's file stands in for the family.
                    "path" if merged.path.is_none() && value != "-" => {
                        merged.path = Some(value.into());
                    }
                    "records" => merged.records += value.parse::<u64>().unwrap_or(0),
                    "bytes" => merged.bytes += value.parse::<u64>().unwrap_or(0),
                    "dropped" => merged.dropped += value.parse::<u64>().unwrap_or(0),
                    _ => {}
                }
            }
        }
        Ok(merged)
    }
}

/// Converts a parsed shard wire response into a [`QueryOutput`] for the
/// merge layer (stage counters travel in the summary; timings stay
/// shard-local).
fn wire_to_output(wire: WireResponse) -> QueryOutput {
    let stats = QueryStats {
        candidates: wire.summary.candidates,
        pruned: wire.summary.pruned,
        verified: wire.summary.verified,
        masks_loaded: wire.summary.loaded,
        ..Default::default()
    };
    QueryOutput {
        rows: wire.rows,
        stats,
    }
}

/// Renders a per-shard `INSERT` sub-batch back into the dialect. Pixels use
/// Rust's shortest round-trip `f32` formatting, which re-parses (via `f64`)
/// to the identical bits — the shard stores exactly what the client sent.
fn render_insert(batch: &[(MaskRecord, Mask)]) -> String {
    let tuples: Vec<String> = batch
        .iter()
        .map(|(record, mask)| {
            let pixels: Vec<String> = mask.data().iter().map(|v| format!("{v}")).collect();
            format!(
                "({}, {}, {}, {}, ({}))",
                record.mask_id.raw(),
                record.image_id.raw(),
                record.width,
                record.height,
                pixels.join(", ")
            )
        })
        .collect();
    format!("INSERT INTO masks VALUES {}", tuples.join(", "))
}

/// Recognises a multi-statement `BEGIN; …; COMMIT|ROLLBACK` script and
/// returns its mutations plus whether it commits. `Ok(None)` means `sql` is
/// a single statement (a lone trailing `;` is fine) and takes the ordinary
/// routing path. Mirrors the shard engine's script compiler so a script
/// means exactly the same thing to a cluster and to a single server.
fn compile_transaction_script(sql: &str) -> ClusterResult<Option<(Vec<Mutation>, bool)>> {
    use masksearch_sql::{Statement, TxnControl};
    if !sql.contains(';') {
        return Ok(None);
    }
    let statements = masksearch_sql::compile_script(sql)?;
    if statements.len() <= 1 {
        return Ok(None);
    }
    let err = |msg: &str| Err(ClusterError::Sql(msg.to_string()));
    let mut iter = statements.into_iter();
    if !matches!(iter.next(), Some(Statement::Control(TxnControl::Begin))) {
        return err("a multi-statement script must be wrapped in BEGIN ... COMMIT");
    }
    let mut mutations = Vec::new();
    let mut finished = None;
    for statement in iter {
        if finished.is_some() {
            return err("statements after COMMIT/ROLLBACK in a transaction script");
        }
        match statement {
            Statement::Mutation(m) => mutations.push(m),
            Statement::Control(TxnControl::Commit) => finished = Some(true),
            Statement::Control(TxnControl::Rollback) => finished = Some(false),
            Statement::Control(TxnControl::Begin) => {
                return err("nested BEGIN in a transaction script")
            }
            Statement::Query(_) => {
                return err("queries are not allowed inside a transaction script")
            }
        }
    }
    match finished {
        Some(commit) => Ok(Some((mutations, commit))),
        None => err("a transaction script must end with COMMIT (or ROLLBACK)"),
    }
}

/// Renders a per-shard `DELETE` sub-batch.
fn render_delete(ids: &[MaskId]) -> String {
    let list: Vec<String> = ids.iter().map(|id| id.raw().to_string()).collect();
    format!("DELETE FROM masks WHERE mask_id IN ({})", list.join(", "))
}

/// The coordinator's TCP front end: accepts the same line protocol as a
/// shard server (tagged and untagged), so `masksearch_service::Client`,
/// [`MuxClient`], and anything else speaking the dialect can talk to a
/// cluster without knowing it is one. Connections are served by a
/// readiness-driven `poll(2)` event loop — one poller thread plus a small
/// worker pool — instead of a thread per connection.
pub struct CoordinatorServer {
    eventloop: EventLoop,
    coordinator: Coordinator,
    addr: SocketAddr,
}

impl CoordinatorServer {
    /// Binds to `addr` (port 0 for an ephemeral port) and builds the event
    /// loop without accepting yet.
    pub fn bind(addr: impl ToSocketAddrs, coordinator: Coordinator) -> ClusterResult<Self> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| ClusterError::Config(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ClusterError::Config(format!("local_addr failed: {e}")))?;
        let handler: Handler = {
            let coordinator = coordinator.clone();
            Arc::new(move |tag, request, emit: &mut dyn FnMut(Vec<u8>)| {
                execute_request(&coordinator, tag, request, emit)
            })
        };
        let eventloop = EventLoop::new(listener, handler, COORDINATOR_WORKERS)
            .map_err(|e| ClusterError::Config(format!("event loop setup failed: {e}")))?;
        Ok(Self {
            eventloop,
            coordinator,
            addr,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves connections until shut down, blocking the calling thread.
    pub fn run(self) {
        self.eventloop.run()
    }

    /// Starts the event loop on a background thread.
    pub fn spawn(self) -> CoordinatorHandle {
        let addr = self.addr;
        let coordinator = self.coordinator.clone();
        let shutdown = self.eventloop.shutdown_flag();
        let waker = self.eventloop.waker();
        let join = std::thread::Builder::new()
            .name("masksearch-coordinator".to_string())
            .spawn(move || self.run())
            .expect("spawn coordinator event loop");
        CoordinatorHandle {
            addr,
            shutdown,
            waker,
            coordinator,
            join: Some(join),
        }
    }
}

/// Control handle for a [`CoordinatorServer::spawn`].
pub struct CoordinatorHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    coordinator: Coordinator,
    join: Option<std::thread::JoinHandle<()>>,
}

impl CoordinatorHandle {
    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The coordinator behind the front end (e.g. for metrics).
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// Stops the event loop and joins it; open connections are dropped.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.join.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Release);
        self.waker.wake();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for CoordinatorHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Executes one parsed front-end request on an event-loop worker, emitting
/// rendered response frames (each prefixed with the request's `@<id>` tag
/// when present). `MONITOR` streams one buffer per delta frame; everything
/// else emits exactly one frame.
fn execute_request(
    coordinator: &Coordinator,
    tag: Option<u64>,
    request: ClientRequest,
    emit: &mut dyn FnMut(Vec<u8>),
) {
    match request {
        ClientRequest::Monitor {
            frames,
            interval_ms,
        } => {
            // Same contract as a single server: baseline zero, one delta
            // frame per tick, cluster-wide values from a STATS scatter.
            // (The event loop only dispatches MONITOR untagged.)
            let mut prev = vec![0u64; obs_keys::MONITOR_DELTA_KEYS.len()];
            for seq in 0..frames {
                let mut buf = frame_buf(tag);
                match coordinator.monitor_values() {
                    Ok(values) => {
                        let deltas: Vec<(&str, u64)> = values
                            .iter()
                            .zip(prev.iter())
                            .map(|(&(key, value), &p)| (key, value.saturating_sub(p)))
                            .collect();
                        let _ = protocol::write_delta_frame(&mut buf, seq as u64, &deltas);
                        emit(buf);
                        for (slot, &(_, value)) in prev.iter_mut().zip(values.iter()) {
                            *slot = value;
                        }
                    }
                    Err(e) => {
                        let _ = write_cluster_error(&mut buf, &e);
                        emit(buf);
                        return;
                    }
                }
                if seq + 1 < frames {
                    std::thread::sleep(Duration::from_millis(interval_ms));
                }
            }
        }
        request => {
            let mut buf = frame_buf(tag);
            render_reply(coordinator, request, &mut buf);
            emit(buf);
        }
    }
}

/// An output buffer pre-seeded with the `@<id>` tag prefix.
fn frame_buf(tag: Option<u64>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    if let Some(id) = tag {
        let _ = write!(buf, "@{id} ");
    }
    buf
}

/// Renders the response frame for every single-frame request kind.
fn render_reply(coordinator: &Coordinator, request: ClientRequest, buf: &mut Vec<u8>) {
    // Writes into a Vec<u8> cannot fail.
    let _ = match request {
        // QUIT closes in the event loop and MONITOR streams in
        // `execute_request`; neither reaches this renderer.
        ClientRequest::Quit | ClientRequest::Monitor { .. } => Ok(()),
        ClientRequest::Ping => protocol::write_pong(buf),
        ClientRequest::Metrics => {
            protocol::write_metrics_response(buf, &coordinator.prometheus_text())
        }
        ClientRequest::MetricsWindow(secs) => {
            protocol::write_metrics_response(buf, &coordinator.metrics_window_text(secs))
        }
        ClientRequest::Record(control) => match coordinator.record_control(&control) {
            Ok(status) => protocol::write_record_status(buf, &status),
            Err(e) => write_cluster_error(buf, &e),
        },
        ClientRequest::Profiles(n) => {
            let lines: Vec<String> = coordinator
                .recent_profiles(n)
                .iter()
                .flat_map(|p| p.render())
                .collect();
            protocol::write_profiles_response(buf, &lines)
        }
        ClientRequest::Stats => match coordinator.stats_line() {
            Ok(line) => {
                writeln!(buf, "{line}").and_then(|()| writeln!(buf, "{}", protocol::END_MARKER))
            }
            Err(e) => write_cluster_error(buf, &e),
        },
        ClientRequest::Lookup(ids) => match coordinator.lookup(&ids) {
            Ok(present) => protocol::write_lookup_response(buf, &present),
            Err(e) => write_cluster_error(buf, &e),
        },
        ClientRequest::LookupAll => match coordinator.lookup_all() {
            Ok(present) => protocol::write_lookup_response(buf, &present),
            Err(e) => write_cluster_error(buf, &e),
        },
        // PARTIAL is a shard-internal request; a coordinator is not a
        // shard of another coordinator (no recursive sharding yet).
        ClientRequest::Partial { .. } => write_cluster_error(
            buf,
            &ClusterError::Sql("PARTIAL is not served by a coordinator".to_string()),
        ),
        ClientRequest::Tokened { token, sql } => {
            let started = Instant::now();
            write_sql_reply(buf, coordinator.execute_sql_tokened(token, &sql), started)
        }
        ClientRequest::Sql(sql) => {
            let started = Instant::now();
            write_sql_reply(buf, coordinator.execute_sql(&sql), started)
        }
    };
}

/// Writes the outcome of a coordinated SQL statement as one frame.
fn write_sql_reply(
    buf: &mut Vec<u8>,
    result: ClusterResult<ClusterReply>,
    started: Instant,
) -> std::io::Result<()> {
    match result {
        Ok(ClusterReply::Rows(output)) => {
            let response = QueryResponse {
                output: *output,
                queue_wait: Duration::ZERO,
                exec_time: started.elapsed(),
            };
            protocol::write_response(buf, &response)
        }
        Ok(ClusterReply::Mutation(outcome)) => {
            let response = MutationResponse {
                outcome,
                queue_wait: Duration::ZERO,
                exec_time: started.elapsed(),
            };
            protocol::write_mutation_response(buf, &response)
        }
        Ok(ClusterReply::Plan(lines)) => protocol::write_plan_response(buf, &lines),
        Err(e) => write_cluster_error(buf, &e),
    }
}

fn write_cluster_error<W: Write>(w: &mut W, error: &ClusterError) -> std::io::Result<()> {
    writeln!(w, "ERR {}", error.wire_message())?;
    writeln!(w, "{}", protocol::END_MARKER)
}
